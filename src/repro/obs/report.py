"""``repro report RUNDIR`` — render a traced run directory as text.

Reads the artifacts :class:`~repro.obs.trace.RunTracer` wrote
(``meta.json``, ``trace.jsonl``, ``profile.json``) and renders a compact
run report: command, wall time, task/cache totals, engine counters, the
slowest tasks, and the merged cProfile hotspot table when profiling was
on.  Every artifact is optional — the report renders whatever exists.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any

from repro.obs.profile import format_hotspots

__all__ = ["configure_parser", "main", "render_report", "run_report"]


def _load_json(path: Path) -> dict[str, Any] | None:
    if not path.exists():
        return None
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None
    return payload if isinstance(payload, dict) else None


def _load_jsonl(path: Path) -> list[dict[str, Any]]:
    if not path.exists():
        return []
    events: list[dict[str, Any]] = []
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(event, dict):
            events.append(event)
    return events


def _format_count(value: float) -> str:
    if value == int(value):
        return f"{int(value):,}"
    return f"{value:,.2f}"


def render_report(rundir: str | Path, top: int = 15) -> str:
    """Render the text report for one traced run directory."""
    rundir = Path(rundir)
    meta = _load_json(rundir / "meta.json")
    events = _load_jsonl(rundir / "trace.jsonl")
    profile = _load_json(rundir / "profile.json")

    lines: list[str] = [f"run report: {rundir}"]

    if meta is None and not events and profile is None:
        lines.append("  (no trace artifacts found — run with --trace DIR)")
        return "\n".join(lines)

    if meta is not None:
        if meta.get("command"):
            lines.append(f"  command:  {meta['command']}")
        if "wall_s" in meta:
            lines.append(f"  wall:     {float(meta['wall_s']):.2f}s")
        tasks = meta.get("tasks")
        hits = int(meta.get("cache_hits", 0))
        misses = int(meta.get("cache_misses", 0))
        if tasks is not None or hits or misses:
            lines.append(
                f"  tasks:    {tasks if tasks is not None else '?'} executed, "
                f"{hits} cache hit(s), {misses} miss(es)"
            )
        workers = meta.get("workers") or []
        if workers:
            lines.append(f"  workers:  {len(workers)} pid(s)")
        for key in ("shards", "units", "units_per_s"):
            if key in meta:
                value = meta[key]
                rendered = f"{value:,.1f}" if isinstance(value, float) else f"{value:,}"
                lines.append(f"  {key + ':':<9} {rendered}")

    task_events = [e for e in events if e.get("event") == "task"]
    if task_events:
        lines.append("")
        lines.append(f"slowest tasks ({min(len(task_events), 10)} of {len(task_events)}):")
        slowest = sorted(task_events, key=lambda e: -float(e.get("wall_s", 0.0)))[:10]
        for event in slowest:
            label = str(event.get("label", "?"))
            lines.append(
                f"  {float(event.get('wall_s', 0.0)):>8.2f}s  pid {event.get('pid', '?')}  {label}"
            )

    counters = (meta or {}).get("counters") or {}
    if counters:
        lines.append("")
        lines.append("engine counters:")
        width = max(len(name) for name in counters)
        for name in sorted(counters):
            lines.append(f"  {name:<{width}}  {_format_count(float(counters[name]))}")

    if profile is not None and profile.get("rows"):
        lines.append("")
        lines.append(f"cProfile hotspots ({profile.get('tasks_profiled', '?')} task(s) profiled):")
        for line in format_hotspots(profile["rows"], top=top).splitlines():
            lines.append(f"  {line}")

    return "\n".join(lines)


def configure_parser(parser: argparse.ArgumentParser) -> argparse.ArgumentParser:
    """Declare the ``repro report`` option surface on ``parser``.

    Shared between the standalone parser below and the ``report``
    subcommand of the main CLI, so both spellings accept exactly the
    same flags.
    """
    parser.add_argument("rundir", help="Run directory written by --trace")
    parser.add_argument("--top", type=int, default=15, help="Hotspot rows to show (default 15)")
    return parser


def run_report(options: argparse.Namespace) -> int:
    """Execute ``repro report`` from parsed options; returns the exit code."""
    rundir = Path(options.rundir)
    if not rundir.is_dir():
        print(f"error: {rundir} is not a directory", file=sys.stderr)
        return 2
    print(render_report(rundir, top=options.top))
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``repro report``."""
    parser = configure_parser(
        argparse.ArgumentParser(
            prog="repro report",
            description="Render a report for a traced run directory.",
        )
    )
    return run_report(parser.parse_args(argv))
