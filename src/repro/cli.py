"""Command-line interface: reproduce any of the paper's figures from a shell.

Usage::

    repro list                       # list available figures
    repro fig2a                      # parallel-connections lab figure
    repro fig5 --quick               # paired-link treatment-effect table
    repro fig10 --seed 11 --jobs 4   # design comparison, 4 worker processes
    repro topo_rtt --jobs 4          # A/B bias under heterogeneous RTTs
    repro topo_aqm --quick           # does CoDel shrink the A/B bias?
    repro topo_parking --jobs 4      # parking-lot bias + cross-segment spillover
    repro topo_fq --quick            # does per-flow FQ eliminate the bias?
    repro topo_churn --quick         # bias under flow churn + switchback-vs-ramp
    repro topo_l4s --quick           # does L4S/DCTCP marking shrink the bias?
    repro fleet --quick --jobs 4     # sharded fleet: bias vs cluster size
    repro sweep fig5 --replications 5 --jobs 4   # multi-seed mean ± CI
    repro lint src                   # invariant linter (see docs/invariants.md)
    repro fleet --quick --trace RUN --profile --probe 0.5  # traced + profiled run
    repro report RUN                 # render a traced run directory

``--trace DIR`` records runner-level spans and cache events to a run
directory (JSONL + Chrome trace-event JSON, openable in Perfetto),
``--profile`` adds per-task cProfile hotspots, and ``--probe SECONDS``
samples in-sim telemetry on fleet shards — all without changing any
simulated result (see ``docs/observability.md``).

Every figure command prints the same rows/series the corresponding
benchmark asserts on; ``--quick`` shrinks the synthetic workload for
faster runs.  ``--jobs N`` fans independent simulation arms out over N
worker processes (results are bit-identical to ``--jobs 1``), and
``--cache`` reuses results of unchanged runs from an on-disk cache.

``repro sweep FIGURE`` runs ``--replications`` seeds of one figure
through the parallel runner and reports each scalar cell's mean with a
95 % confidence interval across seeds.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

import numpy as np

from repro.core.units import SESSION_METRICS
from repro.experiments import (
    PairedLinkExperiment,
    compare_designs,
    compare_links_at_baseline,
    run_aqm_experiment,
    run_cc_experiment,
    run_churn_experiment,
    run_connections_experiment,
    run_fleet_experiment,
    run_fq_experiment,
    run_l4s_experiment,
    run_pacing_experiment,
    run_parking_lot_experiment,
    run_rtt_experiment,
    run_switchback_ramp_experiment,
)
from repro.reporting import format_table
from repro.runner import ParallelExecutor, ResultCache, ScenarioSpec, default_cache_dir
from repro.runner.tasks import FIGURE_CELL_TASKS
from repro.workload import WorkloadConfig

__all__ = ["main"]

#: Figures that only need the fluid lab simulator.
LAB_FIGURES = {
    "fig2a": run_connections_experiment,
    "fig2b": run_pacing_experiment,
    "fig3": run_cc_experiment,
}

#: Figures derived from the paired-link workload run.
PAIRED_FIGURES = ("baseline", "fig5", "fig7", "fig8", "fig9", "fig10")

#: Beyond-the-paper topology figures on the packet-level simulator.
TOPOLOGY_FIGURES = (
    "topo_rtt",
    "topo_aqm",
    "topo_parking",
    "topo_fq",
    "topo_churn",
    "topo_l4s",
)

#: Topology figures that consume the seed (dynamic-traffic randomness);
#: the rest are deterministic and collapse to one sweep replication.
SEEDED_TOPOLOGY_FIGURES = ("topo_churn",)

#: The sharded packet/fluid fleet experiment (bias vs cluster size).
FLEET_FIGURES = ("fleet",)


def _make_cache(args: argparse.Namespace) -> ResultCache | None:
    if not args.cache:
        return None
    return ResultCache(args.cache_dir or default_cache_dir())


def _print_lab_figure(name: str, args: argparse.Namespace) -> None:
    figure = LAB_FIGURES[name](jobs=args.jobs, cache=_make_cache(args))
    print("\n".join(figure.summary_lines()))


def _parse_rtt_spread(text: str, parser: argparse.ArgumentParser) -> tuple[float, ...]:
    try:
        values = tuple(float(part) for part in text.split(",") if part.strip())
    except ValueError:
        values = ()
    if not values or any(v <= 0 for v in values):
        parser.error(f"--rtt-spread needs positive comma-separated ms values, got {text!r}")
    return values


def _parse_disciplines(text: str, parser: argparse.ArgumentParser) -> tuple[str, ...]:
    from repro.netsim.packet.queue import QUEUE_DISCIPLINES

    names = tuple(part.strip() for part in text.split(",") if part.strip())
    unknown = [name for name in names if name not in QUEUE_DISCIPLINES]
    if not names or unknown:
        parser.error(
            f"--disciplines needs comma-separated names from "
            f"{', '.join(sorted(QUEUE_DISCIPLINES))}; got {text!r}"
        )
    return names


def _parse_churn_rates(text: str, parser: argparse.ArgumentParser) -> tuple[float, ...]:
    try:
        values = tuple(float(part) for part in text.split(",") if part.strip())
    except ValueError:
        values = ()
    if not values or any(v < 0 for v in values) or len(set(values)) != len(values):
        parser.error(
            f"--churn-rates needs distinct non-negative comma-separated "
            f"flow-per-second values, got {text!r}"
        )
    return values


def _print_topology_figure(
    name: str, args: argparse.Namespace, parser: argparse.ArgumentParser
) -> None:
    if name == "topo_churn":
        if not 0.5 < args.traffic_split <= 1.0:
            parser.error("--traffic-split must be in (0.5, 1.0]")
        cache = _make_cache(args)
        comparison = run_churn_experiment(
            churn_rates=_parse_churn_rates(args.churn_rates, parser),
            quick=args.quick,
            jobs=args.jobs,
            cache=cache,
            seed=args.seed,
        )
        print("\n".join(comparison.summary_lines()))
        print()
        ramp = run_switchback_ramp_experiment(
            traffic_split=args.traffic_split,
            quick=args.quick,
            jobs=args.jobs,
            cache=cache,
            seed=args.seed,
        )
        print("\n".join(ramp.summary_lines()))
        return
    if name == "topo_l4s":
        comparison = run_l4s_experiment(
            quick=args.quick,
            jobs=args.jobs,
            cache=_make_cache(args),
        )
        print("\n".join(comparison.summary_lines()))
        return
    if name == "topo_rtt":
        figure = run_rtt_experiment(
            rtt_spread_ms=_parse_rtt_spread(args.rtt_spread, parser),
            quick=args.quick,
            jobs=args.jobs,
            cache=_make_cache(args),
        )
        print("\n".join(figure.summary_lines()))
        return
    if name == "topo_parking":
        from repro.experiments.lab_parking_lot import MIN_SEGMENTS

        if args.segments < MIN_SEGMENTS:
            parser.error(
                f"--segments must be at least {MIN_SEGMENTS} (cross-segment "
                "spillover needs two disjoint unit spans)"
            )
        comparison = run_parking_lot_experiment(
            n_segments=args.segments,
            quick=args.quick,
            jobs=args.jobs,
            cache=_make_cache(args),
        )
    elif name == "topo_fq":
        # topo_fq has its own discipline default (droptail vs fq_codel);
        # an explicit --disciplines still overrides it.
        if args.disciplines != parser.get_default("disciplines"):
            disciplines = _parse_disciplines(args.disciplines, parser)
        else:
            disciplines = ("droptail", "fq_codel")
        comparison = run_fq_experiment(
            disciplines=disciplines,
            quick=args.quick,
            jobs=args.jobs,
            cache=_make_cache(args),
        )
    else:
        comparison = run_aqm_experiment(
            disciplines=_parse_disciplines(args.disciplines, parser),
            quick=args.quick,
            jobs=args.jobs,
            cache=_make_cache(args),
        )
    print("\n".join(comparison.summary_lines()))


def _command_line(args: argparse.Namespace) -> str:
    """Reconstruct a readable command line for the trace metadata."""
    parts = ["repro", args.figure]
    if args.target:
        parts.append(args.target)
    if args.quick:
        parts.append("--quick")
    if args.jobs != 1:
        parts.append(f"--jobs {args.jobs}")
    if getattr(args, "probe", None):
        parts.append(f"--probe {args.probe:g}")
    if args.profile:
        parts.append("--profile")
    return " ".join(parts)


def _make_tracer(args: argparse.Namespace):
    """The run tracer for ``--trace DIR``, or ``None``."""
    if not args.trace:
        return None
    from repro.obs.trace import RunTracer

    return RunTracer(args.trace, command=_command_line(args))


def _print_fleet_figure(args: argparse.Namespace, parser: argparse.ArgumentParser) -> None:
    from repro.netsim.fleet import GRANULARITIES

    granularities = (
        GRANULARITIES if args.granularity == "all" else (args.granularity,)
    )
    if args.units is not None and args.units < 1:
        parser.error("--units must be positive")
    if args.edges is not None and args.edges < 1:
        parser.error("--edges must be positive")

    # Observability: a traced/profiled executor plus a live shard
    # progress line (on a terminal, or whenever a trace is requested).
    tracer = _make_tracer(args)
    progress = None
    if tracer is not None or sys.stderr.isatty():
        from repro.obs.trace import ProgressPrinter

        progress = ProgressPrinter("shards")
    executor = None
    if tracer is not None or args.profile or progress is not None:
        executor = ParallelExecutor(
            jobs=args.jobs,
            cache=_make_cache(args),
            tracer=tracer,
            profile=args.profile,
            on_task_done=progress,
        )

    from repro.obs.trace import walltime

    started = walltime()
    comparison = run_fleet_experiment(
        units=args.units,
        edges=args.edges,
        granularities=granularities,
        quick=args.quick,
        jobs=args.jobs,
        cache=_make_cache(args) if executor is None else None,
        executor=executor,
        probe_interval_s=args.probe or 0.0,
        seed=args.seed,
    )
    print("\n".join(comparison.summary_lines()))

    if tracer is not None:
        wall = walltime() - started
        fleets = len(comparison.outcomes) + 2
        tracer.add_counters(comparison.counters)
        tracer.finish(
            {
                "figure": "fleet",
                "shards": comparison.spec.edges * fleets,
                "units": comparison.spec.units,
                "units_per_s": (
                    comparison.spec.units * fleets / wall if wall > 0 else 0.0
                ),
            }
        )
        print(f"trace written to {args.trace}", file=sys.stderr)


def _run_paired(args: argparse.Namespace):
    sessions = 150 if args.quick else 300
    config = WorkloadConfig(sessions_at_peak=sessions, seed=args.seed)
    return PairedLinkExperiment(config=config).run(
        jobs=args.jobs, cache=_make_cache(args)
    )


def _print_paired_figure(name: str, args: argparse.Namespace) -> None:
    outcome = _run_paired(args)
    if name == "baseline":
        rows = [
            [r.metric, f"{r.relative_percent:+.1f}%", "yes" if r.significant else "no"]
            for r in compare_links_at_baseline(outcome.baseline_table)
        ]
        print(format_table(["metric", "link1 vs link2", "significant"], rows))
    elif name == "fig5":
        rows = [
            [
                row["metric"],
                f"{row['ab_0.05']:+.1f}%",
                f"{row['ab_0.95']:+.1f}%",
                f"{row['tte']:+.1f}%",
                f"{row['spillover']:+.1f}%",
            ]
            for row in outcome.figure5_rows()
        ]
        print(format_table(["metric", "A/B 5%", "A/B 95%", "TTE", "spillover"], rows))
    elif name == "fig7":
        cells = outcome.figure7_cells()
        print(
            format_table(
                ["cell", "throughput (Mb/s)"],
                [
                    ["link 1, capped 95%", f"{cells.link1_treated:.2f}"],
                    ["link 1, uncapped 5%", f"{cells.link1_control:.2f}"],
                    ["link 2, capped 5%", f"{cells.link2_treated:.2f}"],
                    ["link 2, uncapped 95%", f"{cells.link2_control:.2f}"],
                ],
            )
        )
    elif name == "fig8":
        cells = outcome.figure8_cells()
        print(
            format_table(
                ["cell", "min RTT (normalized)"],
                [
                    ["link 1, capped 95%", f"{cells.link1_treated:.3f}"],
                    ["link 1, uncapped 5%", f"{cells.link1_control:.3f}"],
                    ["link 2, capped 5%", f"{cells.link2_treated:.3f}"],
                    ["link 2, uncapped 95%", f"{cells.link2_control:.3f}"],
                ],
            )
        )
    elif name == "fig9":
        split = outcome.figure9_retransmit_split()
        print(
            format_table(
                ["period", "retransmit change"],
                [
                    ["peak", f"{100 * split['peak']:+.1f}%"],
                    ["off-peak", f"{100 * split['off_peak']:+.1f}%"],
                    ["overall TTE", f"{100 * split['overall']:+.1f}%"],
                ],
            )
        )
    elif name == "fig10":
        comparison = compare_designs(
            outcome.experiment_table,
            (0, 1, 2, 3, 4),
            outcome.estimates["tte"],
            baselines=outcome.baselines,
            jobs=args.jobs,
            cache=_make_cache(args),
        )
        rows = [
            [
                row["metric"],
                f"{row['paired_link']:+.1f}%",
                f"{row['switchback']:+.1f}%",
                f"{row['event_study']:+.1f}%",
            ]
            for row in comparison.rows(SESSION_METRICS)
        ]
        print(format_table(["metric", "paired link", "switchback", "event study"], rows))
    else:  # pragma: no cover - guarded by argparse choices
        raise KeyError(name)


def _confidence_half_width(values: np.ndarray, confidence: float = 0.95) -> float:
    """Half-width of the t-based CI on the mean of ``values``."""
    n = len(values)
    if n < 2:
        return 0.0
    from scipy import stats

    std = float(np.std(values, ddof=1))
    return float(stats.t.ppf(0.5 + confidence / 2.0, n - 1) * std / np.sqrt(n))


def _run_sweep(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    target = args.target
    if target is None or target not in FIGURE_CELL_TASKS:
        parser.error(
            f"'sweep' needs a figure to replicate; choose one of {', '.join(FIGURE_CELL_TASKS)}"
        )
    if args.replications < 1:
        parser.error("--replications must be at least 1")

    # Only include knobs the figure actually consumes: noise applies to lab
    # figures, quick to paired-link and topology figures.  Keeping inert
    # flags out of the spec keeps them out of the content key, so they
    # cannot split the cache.
    params: dict[str, object] = {"figure": target}
    if target in LAB_FIGURES:
        params["noise"] = args.noise
    else:
        params["quick"] = args.quick
    # Topology figures other than topo_churn ignore the seed entirely
    # (packet sims are deterministic), so replications would recompute
    # identical cells; collapse them to one seed-free run.  topo_churn
    # draws its arrivals and flow sizes from the seed, so its
    # replications genuinely differ.
    deterministic = (
        target in TOPOLOGY_FIGURES and target not in SEEDED_TOPOLOGY_FIGURES
    )
    replication_count = 1 if deterministic else args.replications
    specs = [
        ScenarioSpec(
            task="figure.cells",
            params=params,
            seed=None if deterministic else args.seed + r,
            label=f"sweep[{target}, seed={args.seed + r}]",
        )
        for r in range(replication_count)
    ]
    tracer = _make_tracer(args)
    executor = ParallelExecutor(
        jobs=args.jobs,
        cache=_make_cache(args),
        tracer=tracer,
        profile=args.profile,
    )
    replications = executor.map(specs)
    if tracer is not None:
        tracer.finish({"figure": target, "replications": replication_count})
        print(f"trace written to {args.trace}", file=sys.stderr)

    cells = list(replications[0])
    rows = []
    for cell in cells:
        values = np.array([float(rep[cell]) for rep in replications])
        half = _confidence_half_width(values)
        rows.append([cell, f"{values.mean():+.3f}", f"±{half:.3f}", str(len(values))])
    if deterministic:
        print(f"{target}: deterministic figure, 1 replication (seeds have no effect)")
    else:
        print(
            f"{target}: {args.replications} replication(s), "
            f"seeds {args.seed}..{args.seed + args.replications - 1}"
        )
    print(format_table(["cell", "mean", "95% CI", "n"], rows))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce figures from 'Unbiased Experiments in Congested Networks' (IMC 2021)."
        ),
    )
    parser.add_argument(
        "figure",
        choices=[
            "list",
            "sweep",
            *LAB_FIGURES,
            *PAIRED_FIGURES,
            *TOPOLOGY_FIGURES,
            *FLEET_FIGURES,
        ],
        help="which figure to reproduce ('list' to enumerate, 'sweep' to replicate one)",
    )
    parser.add_argument(
        "target",
        nargs="?",
        default=None,
        help="for 'sweep': the figure to replicate across seeds",
    )
    parser.add_argument(
        "--quick", action="store_true", help="use a smaller synthetic workload"
    )
    parser.add_argument("--seed", type=int, default=7, help="workload random seed")
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for independent simulation arms (default: 1)",
    )
    parser.add_argument(
        "--replications",
        type=int,
        default=5,
        help="number of seeds for 'sweep' (default: 5)",
    )
    parser.add_argument(
        "--noise",
        type=float,
        default=0.02,
        help="measurement-noise level for lab figures under 'sweep' (default: 0.02)",
    )
    parser.add_argument(
        "--rtt-spread",
        default="10,20,40,80",
        help="per-unit RTT profile for topo_rtt, comma-separated ms (default: 10,20,40,80)",
    )
    parser.add_argument(
        "--disciplines",
        default="droptail,codel",
        help=(
            "queue disciplines compared by topo_aqm (default: droptail,codel) "
            "and topo_fq (default there: droptail,fq_codel)"
        ),
    )
    parser.add_argument(
        "--segments",
        type=int,
        default=4,
        help="bottleneck segments in the topo_parking chain (default: 4)",
    )
    parser.add_argument(
        "--churn-rates",
        default="0,2,6",
        help=(
            "churn intensities compared by topo_churn, comma-separated flow "
            "arrivals per second (default: 0,2,6; include 0 for the static "
            "reference)"
        ),
    )
    parser.add_argument(
        "--traffic-split",
        type=float,
        default=1.0,
        help=(
            "within-interval allocation of topo_churn's switchback-ramp "
            "scenario, in (0.5, 1]: 1 (default) runs pure 100/0 intervals, "
            "0.95 the production 95/5 variant (scales the unit count up so "
            "the 5%% arm keeps a unit — markedly slower)"
        ),
    )
    parser.add_argument(
        "--units",
        type=int,
        default=None,
        help="fleet size for 'fleet' (default: 20000, or 10000 with --quick)",
    )
    parser.add_argument(
        "--edges",
        type=int,
        default=None,
        help="edge bottlenecks for 'fleet' (default: 200, or 100 with --quick)",
    )
    parser.add_argument(
        "--granularity",
        choices=["unit", "edge", "region", "all"],
        default="all",
        help="assignment granularity compared by 'fleet' (default: all three)",
    )
    parser.add_argument(
        "--trace",
        metavar="DIR",
        default=None,
        help=(
            "write run tracing (task spans, cache events; JSONL + Chrome "
            "trace-event JSON) to this directory — 'sweep' and 'fleet' only; "
            "render it afterwards with 'repro report DIR'"
        ),
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="wrap each runner task in cProfile (requires --trace)",
    )
    parser.add_argument(
        "--probe",
        type=float,
        metavar="SECONDS",
        default=None,
        help=(
            "sample in-sim queue depth on every fleet shard at this simulated-"
            "time cadence ('fleet' only; never changes results)"
        ),
    )
    parser.add_argument(
        "--cache",
        action="store_true",
        help="reuse results of unchanged runs from the on-disk cache",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="cache location (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point.  Returns a process exit code."""
    arguments = list(sys.argv[1:] if argv is None else argv)
    if arguments and arguments[0] == "lint":
        # The invariant linter has its own option surface (paths,
        # --select, --list-rules), so it dispatches before the figure
        # parser sees the arguments.
        from repro.devtools.lint.engine import main as lint_main

        return lint_main(arguments[1:])
    if arguments and arguments[0] == "report":
        # So does the run-report renderer (a run directory + --top).
        from repro.obs.report import main as report_main

        return report_main(arguments[1:])
    parser = build_parser()
    args = parser.parse_args(arguments)
    if args.target is not None and args.figure != "sweep":
        parser.error(
            f"unexpected argument {args.target!r}; only 'sweep' takes a target figure"
        )
    if args.trace is not None and args.figure not in ("sweep", *FLEET_FIGURES):
        parser.error("--trace is only supported for 'sweep' and 'fleet'")
    if args.profile and args.trace is None:
        parser.error("--profile requires --trace DIR (hotspots land in the trace)")
    if args.probe is not None:
        if args.figure not in FLEET_FIGURES:
            parser.error("--probe only applies to the 'fleet' figure")
        if args.probe <= 0:
            parser.error("--probe needs a positive sampling interval in seconds")
    if args.figure == "list":
        print("lab figures:        " + ", ".join(sorted(LAB_FIGURES)))
        print("paired-link figures: " + ", ".join(PAIRED_FIGURES))
        print("topology figures:    " + ", ".join(TOPOLOGY_FIGURES))
        print("fleet figures:       " + ", ".join(FLEET_FIGURES))
        print("sweepable figures:   " + ", ".join(FIGURE_CELL_TASKS))
        print(
            "tools:               lint (invariant linter; repro lint --list-rules), "
            "report (render a --trace run directory)"
        )
        return 0
    if args.figure == "sweep":
        return _run_sweep(args, parser)
    if args.figure in LAB_FIGURES:
        _print_lab_figure(args.figure, args)
    elif args.figure in TOPOLOGY_FIGURES:
        _print_topology_figure(args.figure, args, parser)
    elif args.figure in FLEET_FIGURES:
        _print_fleet_figure(args, parser)
    else:
        _print_paired_figure(args.figure, args)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
