"""Topology experiments: parking-lot spillover and per-flow fair queueing.

Two experiments close out the topology axes the paper names but its
testbed could not build:

* :func:`run_parking_lot_experiment` — the connection-count treatment on
  a multi-bottleneck *parking lot*: segments in series, every unit
  crossing two consecutive segments, neighbouring spans overlapping, and
  one unmeasured cross-traffic flow per segment.  Spillover now travels
  *along the chain*: treating a unit on segments (0, 1) displaces the
  units on (1, 2), which in turn changes what the units on (2, 3) see —
  control outcomes shift on segments the treated unit never touches.
  The experiment quantifies both headline predictions: the A/B bias is
  *larger* than on a single bottleneck of the same capacity, and the
  spillover reaches units that share no queue with the treatment
  (:attr:`ParkingLotComparison.remote_spillover_mbps`), which is what
  makes the bias harder to localize in a real network.
* :func:`run_fq_experiment` — the same sweep under drop-tail and under
  FQ-CoDel with per-unit sub-queues.  The paper's sharpest falsifiable
  prediction: per-user fair queueing makes the extra connection worthless
  (each unit's share is pinned by round-robin, not by its connection
  count), so the naive A/B estimate *and* the TTE both collapse to zero
  and the bias vanishes.  Drop-tail on the identical workload reproduces
  the familiar, clearly nonzero bias.

Both run every simulation arm through the
:class:`~repro.runner.executor.ParallelExecutor` (``jobs``/``cache``),
so results are deterministic and bit-identical for any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.experiments.lab_common import figure_cells_spec, LabFigure, packet_sweep_to_figure
from repro.runner.spec import ScenarioSpec
from repro.experiments.lab_topology import AqmBiasComparison, run_aqm_experiment
from repro.netsim.packet.network import parking_lot_path, parking_lot_queues
from repro.netsim.packet.simulation import FlowConfig
from repro.netsim.packet.sweep import run_packet_sweep

__all__ = [
    "DEFAULT_SEGMENTS",
    "MIN_SEGMENTS",
    "SEGMENT_SPAN",
    "ParkingLotComparison",
    "run_parking_lot_experiment",
    "parking_lot_spec",
    "fq_figure_spec",
    "run_fq_experiment",
]

#: Number of bottleneck segments in the default parking lot.
DEFAULT_SEGMENTS = 4

#: Consecutive segments each experimental unit crosses.
SEGMENT_SPAN = 2

#: Fewest segments with two disjoint unit spans (three distinct span
#: starts), which the cross-segment spillover measurement requires.
MIN_SEGMENTS = SEGMENT_SPAN + 2

#: Flow-id offset of unmeasured cross-traffic applications (clear of units).
CROSS_TRAFFIC_ID_BASE = 1000


def _parking_scale(quick: bool) -> dict[str, object]:
    """Sweep sizing; allocations include 0 and 1 for the remote-spillover
    measurement and the midpoint for the 50 % A/B comparison."""
    if quick:
        return dict(
            n_units=6,
            allocations=(0, 1, 3, 6),
            capacity_mbps=24.0,
            duration_s=6.0,
            warmup_s=2.0,
        )
    return dict(
        n_units=6,
        allocations=(0, 1, 2, 3, 4, 6),
        capacity_mbps=48.0,
        duration_s=10.0,
        warmup_s=3.0,
    )


def _unit_start_segment(unit: int, n_segments: int) -> int:
    """Start segment of a unit's span, cycled so spans stay balanced."""
    return unit % (n_segments - SEGMENT_SPAN + 1)


@dataclass
class ParkingLotComparison:
    """The connection-count sweep on a single bottleneck vs a parking lot.

    ``figures`` holds one :class:`LabFigure` per topology (``"single"``,
    ``"parking"``); :meth:`bias` reduces each to how far the naive A/B
    estimate sits from the true total treatment effect.

    Attributes
    ----------
    n_segments:
        Segments in the parking-lot chain.
    remote_spillover_mbps:
        Mean throughput change, between the all-control run and the run
        with exactly one treated unit, of the control units that share
        *no* queue with that treated unit.  Nonzero means treatment
        effects propagate across segments the treated traffic never
        crosses — interference a per-queue audit cannot localize.
    """

    figures: dict[str, LabFigure]
    n_segments: int
    remote_spillover_mbps: float
    allocation: float = 0.5

    def bias(self, topology: str, metric: str = "throughput_mbps") -> float:
        """Naive A/B estimate minus the TTE at :attr:`allocation` (per unit)."""
        figure = self.figures[topology]
        return figure.ab_estimate(metric, self.allocation) - figure.tte(metric)

    def summary_lines(self) -> list[str]:
        """Per-topology figure summaries plus the bias comparison."""
        lines: list[str] = []
        for topology, figure in self.figures.items():
            lines.append(f"=== topology: {topology} ===")
            lines.extend(figure.summary_lines())
        lines.append("")
        lines.append(
            f"A/B-vs-TTE bias at {self.allocation:.0%} allocation (throughput, Mb/s per unit):"
        )
        for topology in self.figures:
            lines.append(f"  {topology:>9}: {self.bias(topology):+.2f}")
        lines.append(
            f"cross-segment spillover (1 treated unit, controls sharing no queue "
            f"with it): {self.remote_spillover_mbps:+.2f} Mb/s"
        )
        return lines


def run_parking_lot_experiment(
    n_segments: int = DEFAULT_SEGMENTS,
    treatment_connections: int = 2,
    control_connections: int = 1,
    cross_traffic_per_segment: int = 1,
    quick: bool = False,
    jobs: int = 1,
    cache=None,
) -> ParkingLotComparison:
    """The parallel-connections bias on a parking lot vs a single bottleneck.

    Unit ``i`` crosses segments ``s .. s+1`` with ``s = i mod
    (n_segments - 1)``, so neighbouring spans overlap and every interior
    segment carries two span populations.  Each segment additionally
    carries ``cross_traffic_per_segment`` unmeasured single-connection
    flows.  The reference sweep runs the identical unit population *and*
    the identical cross-traffic population on one drop-tail bottleneck of
    the same per-queue capacity — only the topology differs, so the bias
    gap is attributable to the multi-bottleneck structure.

    Parameters
    ----------
    n_segments:
        Bottleneck segments in the chain (at least 4 so that some pairs
        of 2-segment spans share no segment, which the cross-segment
        spillover measurement requires).  The bias amplification depends on
        the per-segment load: stretching the same unit population over
        many more segments dilutes the contention and with it the
        amplification (the defaults keep every segment congested).
    treatment_connections, control_connections:
        Connections opened by treated / control applications (paper: 2 / 1).
    cross_traffic_per_segment:
        Unmeasured background flows pinned to each single segment.
    quick:
        Shrink the sweep (fewer arms, shorter runs) for smoke tests.
    jobs, cache:
        Worker processes and optional result cache for the sweep arms.
    """
    if n_segments < MIN_SEGMENTS:
        raise ValueError(
            f"parking-lot experiment needs at least {MIN_SEGMENTS} segments "
            "(otherwise every pair of units shares a queue and cross-segment "
            "spillover is unmeasurable)"
        )
    if treatment_connections < 1 or control_connections < 1:
        raise ValueError("connection counts must be at least 1")
    if cross_traffic_per_segment < 0:
        raise ValueError("cross_traffic_per_segment must be non-negative")

    scale = _parking_scale(quick)
    n_units = scale.pop("n_units")
    capacity = scale["capacity_mbps"]

    def flow(i: int, connections: int) -> FlowConfig:
        return FlowConfig(
            i,
            cc="reno",
            connections=connections,
            path=parking_lot_path(
                _unit_start_segment(i, n_segments), n_segments, span=SEGMENT_SPAN
            ),
        )

    parking_cross = tuple(
        FlowConfig(
            CROSS_TRAFFIC_ID_BASE + segment * cross_traffic_per_segment + j,
            cc="reno",
            connections=1,
            path=parking_lot_path(segment, n_segments, span=1),
        )
        for segment in range(n_segments)
        for j in range(cross_traffic_per_segment)
    )
    # The same background population, all sharing the single bottleneck.
    single_cross = tuple(
        FlowConfig(CROSS_TRAFFIC_ID_BASE + j, cc="reno", connections=1)
        for j in range(n_segments * cross_traffic_per_segment)
    )

    parking_sweep = run_packet_sweep(
        n_units,
        treatment_factory=lambda i: flow(i, treatment_connections),
        control_factory=lambda i: flow(i, control_connections),
        extra_queues=parking_lot_queues(n_segments, capacity),
        cross_traffic=parking_cross,
        jobs=jobs,
        cache=cache,
        **scale,
    )
    single_sweep = run_packet_sweep(
        n_units,
        treatment_factory=lambda i: FlowConfig(
            i, cc="reno", connections=treatment_connections
        ),
        control_factory=lambda i: FlowConfig(
            i, cc="reno", connections=control_connections
        ),
        cross_traffic=single_cross,
        jobs=jobs,
        cache=cache,
        **scale,
    )

    figures = {
        "single": packet_sweep_to_figure(
            single_sweep,
            name="topo_parking[single]",
            description=(
                f"{n_units} applications using {treatment_connections} (treatment) "
                f"or {control_connections} (control) TCP Reno connections plus "
                f"{len(single_cross)} unmeasured cross-traffic flow(s) on one "
                f"shared drop-tail bottleneck"
            ),
        ),
        "parking": packet_sweep_to_figure(
            parking_sweep,
            name="topo_parking[parking]",
            description=(
                f"the same applications crossing {SEGMENT_SPAN}-segment spans of a "
                f"{n_segments}-segment drop-tail parking lot with "
                f"{cross_traffic_per_segment} unmeasured cross-traffic flow(s) "
                f"per segment"
            ),
        ),
    }
    return ParkingLotComparison(
        figures=figures,
        n_segments=n_segments,
        remote_spillover_mbps=_remote_spillover(parking_sweep, n_units, n_segments),
    )


def _remote_spillover(sweep, n_units: int, n_segments: int) -> float:
    """Throughput shift of controls that share no segment with unit 0.

    Compares the all-control arm (k=0) with the one-treated arm (k=1,
    treated = unit 0) on the units whose spans are disjoint from unit
    0's.  Any shift reached them through the chain, not through a shared
    queue.
    """
    base = sweep.results.get(0)
    one_treated = sweep.results.get(1)
    if base is None or one_treated is None:  # pragma: no cover - guarded by scale
        raise ValueError("remote spillover needs the k=0 and k=1 arms")
    treated_span = _span_segments(0, n_segments)
    remote_units = [
        i
        for i in range(1, n_units)
        if not (_span_segments(i, n_segments) & treated_span)
    ]
    if not remote_units:
        raise ValueError(
            f"no unit's span is disjoint from unit 0's with {n_segments} segments"
        )
    before = sum(base.flow(i).throughput_mbps for i in remote_units)
    after = sum(one_treated.flow(i).throughput_mbps for i in remote_units)
    return (after - before) / len(remote_units)


def _span_segments(unit: int, n_segments: int) -> set[int]:
    start = _unit_start_segment(unit, n_segments)
    return set(range(start, start + SEGMENT_SPAN))


def run_fq_experiment(
    disciplines: Sequence[str] = ("droptail", "fq_codel"),
    treatment_connections: int = 2,
    control_connections: int = 1,
    quick: bool = False,
    jobs: int = 1,
    cache=None,
) -> AqmBiasComparison:
    """The parallel-connections bias under drop-tail vs per-flow FQ-CoDel.

    Reuses the AQM comparison harness with FQ-CoDel in the discipline
    list.  The network builder keys FQ-CoDel sub-queues by *application*
    (the experimental unit), so this is the paper's per-user fair
    queueing scenario: the expected outcome is a clearly positive
    drop-tail bias and an FQ-CoDel bias of approximately zero.

    Parameters
    ----------
    disciplines:
        Queue disciplines to compare; defaults to drop-tail against
        FQ-CoDel.
    treatment_connections, control_connections:
        Connections opened by treated / control applications (paper: 2 / 1).
    quick:
        Shrink the sweep (fewer units, shorter runs) for smoke tests.
    jobs, cache:
        Worker processes and optional result cache for the sweep arms.
    """
    return run_aqm_experiment(
        disciplines=disciplines,
        treatment_connections=treatment_connections,
        control_connections=control_connections,
        quick=quick,
        jobs=jobs,
        cache=cache,
        name="topo_fq",
    )


def parking_lot_spec(quick: bool = False, label: str | None = None) -> ScenarioSpec:
    """Runner spec for the topo_parking figure (deterministic, seed-free).

    The campaign compiler's entry point: returns the content-keyed
    ``figure.cells`` spec whose execution reproduces
    :func:`run_parking_lot_experiment`'s scalar cells.
    """
    return figure_cells_spec("topo_parking", quick=quick, label=label)


def fq_figure_spec(quick: bool = False, label: str | None = None) -> ScenarioSpec:
    """Runner spec for the topo_fq figure (deterministic, seed-free).

    The campaign compiler's entry point: returns the content-keyed
    ``figure.cells`` spec whose execution reproduces
    :func:`run_fq_experiment`'s scalar cells.
    """
    return figure_cells_spec("topo_fq", quick=quick, label=label)
