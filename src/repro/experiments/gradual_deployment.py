"""Gradual-deployment event study harness (Section 5.1).

Runs a staged deployment of bitrate capping on the synthetic workload —
one allocation stage per day — and measures, at every stage, the A/B
effect, the partial treatment effect and the spillover, finishing with the
TTE once the ramp reaches 100 %.  The SUTVA consistency checks of
:mod:`repro.core.analysis.interference` are then applied to the per-stage
estimates, turning an ordinary deployment ramp into an interference
detector, exactly as the paper proposes.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.core.analysis.interference import InterferenceDiagnostics, detect_interference
from repro.core.analysis.pipeline import AnalysisConfig, MetricEstimate
from repro.core.designs import GradualDeploymentDesign
from repro.core.experiment import ExperimentResult, evaluate_design
from repro.core.units import SESSION_METRICS, OutcomeTable
from repro.workload.netflix import PairedLinkWorkload, WorkloadConfig

__all__ = ["GradualDeploymentOutcome", "run_gradual_deployment"]


@dataclass
class GradualDeploymentOutcome:
    """Per-stage estimates and interference diagnostics for one metric."""

    design: GradualDeploymentDesign
    metric: str
    table: OutcomeTable
    estimates: dict[str, MetricEstimate]

    def _by_prefix(self, prefix: str) -> dict[float, MetricEstimate]:
        out: dict[float, MetricEstimate] = {}
        for estimand, estimate in self.estimates.items():
            if estimand.startswith(prefix):
                out[float(estimand[len(prefix):])] = estimate
        return out

    @property
    def ab_effects(self) -> dict[float, MetricEstimate]:
        """A/B effect at each interior allocation stage."""
        return self._by_prefix("ab_")

    @property
    def spillovers(self) -> dict[float, MetricEstimate]:
        """Spillover at each allocation stage (vs the all-control stage)."""
        return self._by_prefix("spillover_")

    @property
    def partial_effects(self) -> dict[float, MetricEstimate]:
        """Partial effect at each allocation stage (vs the all-control stage)."""
        return self._by_prefix("partial_")

    @property
    def tte(self) -> MetricEstimate | None:
        """The TTE once the ramp reached 100 %, if it did."""
        return self.estimates.get("tte")

    def diagnostics(self) -> InterferenceDiagnostics:
        """Apply the SUTVA consistency checks to the per-stage estimates."""
        return detect_interference(
            {p: e.relative for p, e in self.ab_effects.items()},
            {p: e.relative for p, e in self.spillovers.items()},
            {p: e.relative for p, e in self.partial_effects.items()},
        )


def run_gradual_deployment(
    config: WorkloadConfig | None = None,
    design: GradualDeploymentDesign | None = None,
    metric: str = "throughput_mbps",
    analysis: AnalysisConfig | None = None,
) -> GradualDeploymentOutcome:
    """Run a gradual deployment of bitrate capping and analyze every stage.

    Parameters
    ----------
    config:
        Workload configuration (defaults to the standard paired-link
        workload; both links ramp together, as a real deployment would).
    design:
        The allocation ramp (defaults to
        :data:`repro.core.designs.gradual_deployment.DEFAULT_RAMP`).
    metric:
        The outcome metric to analyze (one of
        :data:`repro.core.units.SESSION_METRICS`).
    analysis:
        Statistical analysis configuration.
    """
    if metric not in SESSION_METRICS:
        raise KeyError(f"unknown metric {metric!r}; expected one of {SESSION_METRICS}")
    config = config or WorkloadConfig()
    design = design or GradualDeploymentDesign()
    workload = PairedLinkWorkload(config)
    days: Sequence[int] = tuple(range(len(design.ramp)))

    plan = design.allocation_plan(config.links, days)
    table = workload.generate(plan, days)
    result = ExperimentResult(design, table, tuple(config.links), tuple(days))
    estimates = evaluate_design(result, metrics=(metric,), config=analysis)

    flattened = {estimand: per_metric[metric] for estimand, per_metric in estimates.items()}
    return GradualDeploymentOutcome(
        design=design, metric=metric, table=table, estimates=flattened
    )
