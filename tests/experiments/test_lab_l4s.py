"""Tests for the L4S lab (signal-based vs scheduling-based sharing).

The pinned claims:

* the connection-count A/B bias survives every signal-based arm — L4S's
  fine-grained marking and proportional response trim it below the
  classic-ECN CoDel arm's, but only scheduling-based FQ-CoDel collapses
  it (the acceptance ordering of the L4S lab);
* classic and L4S traffic coexist on one DualPI2 bottleneck without
  starvation (the RFC 9332 coupling law at work);
* the whole experiment is bit-identical for any worker count.
"""

import pytest

from repro.experiments.lab_l4s import L4S_ARMS, run_l4s_experiment
from repro.runner.spec import ScenarioSpec, run_spec


@pytest.fixture(scope="module")
def l4s_comparison():
    return run_l4s_experiment(quick=True, seed=0)


class TestL4sExperiment:
    def test_all_four_arms_present(self, l4s_comparison):
        assert l4s_comparison.arms() == tuple(arm for arm, *_ in L4S_ARMS)
        assert set(l4s_comparison.figures) == {
            "droptail",
            "codel-classic",
            "dualpi2-l4s",
            "fq_codel",
        }

    def test_bias_reported_for_every_arm(self, l4s_comparison):
        for arm in l4s_comparison.arms():
            assert l4s_comparison.bias(arm) == pytest.approx(
                l4s_comparison.figures[arm].ab_estimate("throughput_mbps", 0.5)
                - l4s_comparison.figures[arm].tte("throughput_mbps")
            )

    def test_l4s_bias_smaller_than_classic_ecn_codel(self, l4s_comparison):
        # The acceptance ordering: the DualPI2/L4S arm's smooth
        # proportional response tracks the fair share without the
        # halving sawtooth that overshoots in favour of multi-connection
        # units, so its bias lands below the classic-ECN CoDel arm's.
        assert l4s_comparison.bias("dualpi2-l4s") < l4s_comparison.bias(
            "codel-classic"
        )

    def test_signal_based_sharing_does_not_collapse_the_bias(self, l4s_comparison):
        # The lab's falsifiable answer: every connection sees the same
        # marks, so a second connection still buys close to a second
        # share — the bias stays large under the full L4S stack ...
        assert l4s_comparison.bias("dualpi2-l4s") > 1.0
        assert l4s_comparison.bias("droptail") > 1.0

    def test_only_scheduling_collapses_the_bias(self, l4s_comparison):
        # ... while per-unit fair queueing eliminates it (PR 3's result,
        # reproduced here as the reference arm).
        assert abs(l4s_comparison.bias("fq_codel")) < 0.5
        assert l4s_comparison.bias("fq_codel") < l4s_comparison.bias("dualpi2-l4s")

    def test_coexistence_without_starvation(self, l4s_comparison):
        # Classic and L4S units share one DualPI2 bottleneck.  The
        # coupling law keeps the camps in the same ballpark (the L queue's
        # near-zero delay gives L4S an RTT edge, so the ratio sits above
        # one, far from the starvation either camp risks without coupling).
        assert l4s_comparison.coexistence_classic_mbps > 1.0
        assert l4s_comparison.coexistence_l4s_mbps > 1.0
        assert 0.5 < l4s_comparison.coexistence_ratio < 2.5

    def test_summary_names_every_arm_and_the_ratio(self, l4s_comparison):
        text = "\n".join(l4s_comparison.summary_lines())
        for arm in l4s_comparison.arms():
            assert arm in text
        assert "coexistence" in text
        assert "ratio" in text

    def test_invalid_connection_counts_rejected(self):
        with pytest.raises(ValueError):
            run_l4s_experiment(treatment_connections=0)
        with pytest.raises(ValueError):
            run_l4s_experiment(control_connections=0)


class TestDeterminism:
    def test_jobs_do_not_change_results(self, l4s_comparison):
        # The acceptance determinism pin: a 4-worker run is bit-identical
        # to the serial one, figure rows and coexistence cells included.
        parallel = run_l4s_experiment(quick=True, seed=0, jobs=4)
        for arm in l4s_comparison.arms():
            assert parallel.figures[arm].rows == l4s_comparison.figures[arm].rows
            assert parallel.bias(arm) == l4s_comparison.bias(arm)
        assert parallel.coexistence_l4s_mbps == l4s_comparison.coexistence_l4s_mbps
        assert (
            parallel.coexistence_classic_mbps
            == l4s_comparison.coexistence_classic_mbps
        )

    def test_seeded_run_reproducible(self, l4s_comparison):
        again = run_l4s_experiment(quick=True, seed=0)
        for arm in l4s_comparison.arms():
            assert again.figures[arm].rows == l4s_comparison.figures[arm].rows
        assert again.coexistence_ratio == l4s_comparison.coexistence_ratio


class TestFigureCells:
    def test_topo_l4s_cells_cover_arms_and_coexistence(self):
        result = run_spec(
            ScenarioSpec(
                task="figure.cells", params={"figure": "topo_l4s", "quick": True}
            )
        )
        assert set(result) == {
            "bias_throughput@0.5:droptail",
            "bias_throughput@0.5:codel-classic",
            "bias_throughput@0.5:dualpi2-l4s",
            "bias_throughput@0.5:fq_codel",
            "coexistence_ratio",
        }
        assert result["bias_throughput@0.5:dualpi2-l4s"] < result[
            "bias_throughput@0.5:codel-classic"
        ]
