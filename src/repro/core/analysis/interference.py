"""Diagnostics for congestion interference (SUTVA violations).

Section 5.1 of the paper describes how a gradual deployment — a series of
A/B tests at increasing allocations ``p_1 < p_2 < ...`` — can be used to
*measure* interference.  If SUTVA holds then, for every pair of allocations,

* the average treatment effects agree: ``tau(p_i) = tau(p_j)``,
* the partial effects agree with the average effects: ``rho(p_i) = tau(p_i)``,
* the spillovers are zero: ``s(p_i) = 0``.

:func:`detect_interference` applies these checks to a set of estimates (one
per allocation), using the estimates' confidence intervals as the test: two
estimates "disagree" when their intervals do not overlap, and a spillover is
"non-zero" when its interval excludes zero.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping

from repro.core.estimators import EstimateWithCI

__all__ = ["InterferenceDiagnostics", "detect_interference", "intervals_overlap"]


def intervals_overlap(a: EstimateWithCI, b: EstimateWithCI) -> bool:
    """True when two confidence intervals overlap."""
    return a.ci_low <= b.ci_high and b.ci_low <= a.ci_high


@dataclass(frozen=True)
class InterferenceDiagnostics:
    """Result of the interference checks across allocations.

    Attributes
    ----------
    inconsistent_ate_pairs:
        Pairs of allocations whose average treatment effects have
        non-overlapping confidence intervals.
    nonzero_spillovers:
        Allocations at which the spillover confidence interval excludes zero.
    partial_vs_ate_disagreements:
        Allocations at which the partial effect and the average effect have
        non-overlapping intervals.
    """

    inconsistent_ate_pairs: tuple[tuple[float, float], ...] = ()
    nonzero_spillovers: tuple[float, ...] = ()
    partial_vs_ate_disagreements: tuple[float, ...] = ()

    @property
    def interference_detected(self) -> bool:
        """True when any of the SUTVA implications fails."""
        return bool(
            self.inconsistent_ate_pairs
            or self.nonzero_spillovers
            or self.partial_vs_ate_disagreements
        )

    def summary(self) -> str:
        """Human-readable one-paragraph summary of the diagnostics."""
        if not self.interference_detected:
            return "No evidence of congestion interference at the tested allocations."
        parts: list[str] = []
        if self.inconsistent_ate_pairs:
            pairs = ", ".join(f"(p={a:g}, p={b:g})" for a, b in self.inconsistent_ate_pairs)
            parts.append(f"treatment effects disagree between allocations {pairs}")
        if self.nonzero_spillovers:
            allocs = ", ".join(f"p={p:g}" for p in self.nonzero_spillovers)
            parts.append(f"non-zero spillover at {allocs}")
        if self.partial_vs_ate_disagreements:
            allocs = ", ".join(f"p={p:g}" for p in self.partial_vs_ate_disagreements)
            parts.append(f"partial effects disagree with A/B effects at {allocs}")
        return "Congestion interference detected: " + "; ".join(parts) + "."


def detect_interference(
    ate_by_allocation: Mapping[float, EstimateWithCI],
    spillover_by_allocation: Mapping[float, EstimateWithCI] | None = None,
    partial_by_allocation: Mapping[float, EstimateWithCI] | None = None,
) -> InterferenceDiagnostics:
    """Apply the SUTVA consistency checks to a set of estimates.

    Parameters
    ----------
    ate_by_allocation:
        Estimated average treatment effect at each deployed allocation.
    spillover_by_allocation:
        Estimated spillover at each allocation (optional).
    partial_by_allocation:
        Estimated partial treatment effect at each allocation (optional).
    """
    if not ate_by_allocation:
        raise ValueError("at least one average treatment effect estimate is required")

    allocations = sorted(ate_by_allocation)
    inconsistent: list[tuple[float, float]] = []
    for i, p_i in enumerate(allocations):
        for p_j in allocations[i + 1 :]:
            if not intervals_overlap(ate_by_allocation[p_i], ate_by_allocation[p_j]):
                inconsistent.append((p_i, p_j))

    nonzero_spill: list[float] = []
    for p, estimate in sorted((spillover_by_allocation or {}).items()):
        if estimate.significant:
            nonzero_spill.append(p)

    partial_disagree: list[float] = []
    for p, estimate in sorted((partial_by_allocation or {}).items()):
        if p in ate_by_allocation and not intervals_overlap(
            estimate, ate_by_allocation[p]
        ):
            partial_disagree.append(p)

    return InterferenceDiagnostics(
        inconsistent_ate_pairs=tuple(inconsistent),
        nonzero_spillovers=tuple(nonzero_spill),
        partial_vs_ate_disagreements=tuple(partial_disagree),
    )
