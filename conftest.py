"""Pytest configuration for the repository root.

Ensures the in-tree sources under ``src/`` are importable even when the
package has not been installed (e.g. in offline environments where
``pip install -e .`` cannot build an editable wheel).
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
