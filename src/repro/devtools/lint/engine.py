"""Lint orchestration and the ``repro lint`` command.

:func:`lint_paths` is the library entry point: expand paths, parse each
file, run every selected rule that is in scope, drop suppressed
findings, and return the sorted diagnostics.  :func:`main` wraps it as
the ``repro lint`` subcommand (exit 0 clean / 1 violations / 2 usage).
"""

from __future__ import annotations

import argparse
from collections.abc import Sequence
from pathlib import Path

# Importing the rule families registers them with the rule registry.
import repro.devtools.lint.api  # noqa: F401
import repro.devtools.lint.contentkey  # noqa: F401
import repro.devtools.lint.determinism  # noqa: F401
from repro.devtools.lint.base import RULES, Diagnostic, Rule
from repro.devtools.lint.config import DEFAULT_CONFIG, LintConfig
from repro.devtools.lint.contentkey import InertDefaultRule
from repro.devtools.lint.reporter import (
    render_diagnostics,
    render_rule_table,
    render_summary,
)
from repro.devtools.lint.walker import collect_files, load_file

__all__ = ["configure_parser", "lint_paths", "main", "run_lint"]


def _build_rules(config: LintConfig, select: Sequence[str] | None) -> list[Rule]:
    """Instantiate the selected rules (all registered rules by default)."""
    codes = sorted(RULES) if select is None else list(select)
    unknown = [c for c in codes if c not in RULES]
    if unknown:
        raise KeyError(
            f"unknown rule code(s) {', '.join(unknown)}; known: {', '.join(sorted(RULES))}"
        )
    rules: list[Rule] = []
    for code in codes:
        cls = RULES[code]
        if cls is InertDefaultRule:
            rules.append(InertDefaultRule(config))
        else:
            rules.append(cls())
    return rules


def lint_paths(
    paths: Sequence[str | Path],
    config: LintConfig = DEFAULT_CONFIG,
    select: Sequence[str] | None = None,
) -> list[Diagnostic]:
    """Lint files/directories and return sorted diagnostics.

    Parameters
    ----------
    paths:
        Files or directories; directories are walked for ``*.py``.
    config:
        Scope and baseline policy (defaults to the repo policy).
    select:
        Restrict to these rule codes; ``None`` runs every rule.
    """
    files = collect_files([Path(p) for p in paths])
    rules = _build_rules(config, select)
    diagnostics: list[Diagnostic] = []
    for path in files:
        try:
            ctx = load_file(path)
        except SyntaxError as exc:
            diagnostics.append(
                Diagnostic(
                    path=str(path),
                    line=exc.lineno or 1,
                    col=(exc.offset or 0) + 1 if exc.offset is not None else 1,
                    code="PARSE",
                    message=f"file does not parse: {exc.msg}",
                )
            )
            continue
        for rule in rules:
            if not rule.applies_to(ctx.module):
                continue
            for diag in rule.check(ctx):
                if not ctx.is_suppressed(diag.code, diag.line):
                    diagnostics.append(diag)
    return sorted(diagnostics)


def count_files(paths: Sequence[str | Path]) -> int:
    """Number of Python files a lint of ``paths`` would cover."""
    return len(collect_files([Path(p) for p in paths]))


def configure_parser(parser: argparse.ArgumentParser) -> argparse.ArgumentParser:
    """Declare the ``repro lint`` option surface on ``parser``.

    Shared between the standalone parser below and the ``lint``
    subcommand of the main CLI, so both spellings accept exactly the
    same flags.
    """
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def build_parser() -> argparse.ArgumentParser:
    """Argument parser for ``repro lint``."""
    return configure_parser(
        argparse.ArgumentParser(
            prog="repro lint",
            description=(
                "AST-based invariant linter: determinism (DET*), content-key "
                "hygiene (KEY*) and API hygiene (API*) contracts.  See "
                "docs/invariants.md for the rule table and rationale."
            ),
        )
    )


def run_lint(args: argparse.Namespace) -> int:
    """Execute ``repro lint`` from parsed options; returns the exit code."""
    if args.list_rules:
        print(render_rule_table())
        return 0
    select = None
    if args.select:
        select = [c.strip() for c in args.select.split(",") if c.strip()]
    try:
        diagnostics = lint_paths(args.paths, select=select)
        files_checked = count_files(args.paths)
    except FileNotFoundError as exc:
        print(f"repro lint: error: {exc}")
        return 2
    except KeyError as exc:
        print(f"repro lint: error: {exc.args[0]}")
        return 2
    if diagnostics:
        print(render_diagnostics(diagnostics))
    print(render_summary(diagnostics, files_checked))
    return 1 if diagnostics else 0


def main(argv: Sequence[str] | None = None) -> int:
    """``repro lint`` entry point; returns the process exit code."""
    return run_lint(build_parser().parse_args(argv))
