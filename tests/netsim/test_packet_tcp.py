"""Tests for the simplified TCP senders and the packet-level simulation."""

import pytest

from repro.netsim.packet import FlowConfig, simulate
from repro.netsim.packet.engine import EventScheduler
from repro.netsim.packet.packets import Packet
from repro.netsim.packet.tcp import BBRSender, CubicSender, RenoSender, make_sender


def make_reno(paced=False, initial_cwnd=10.0):
    sched = EventScheduler()
    sent = []
    sender = RenoSender(
        0,
        sched,
        transmit=sent.append,
        mss_bytes=1500,
        base_rtt_s=0.02,
        paced=paced,
        initial_cwnd=initial_cwnd,
    )
    return sched, sender, sent


def ack_packet(sender, packet, rtt=0.02):
    sender.handle_ack(packet, rtt)


class TestSenderBasics:
    def test_start_sends_initial_window(self):
        _, sender, sent = make_reno(initial_cwnd=10)
        sender.start()
        assert len(sent) == 10
        assert sender.inflight == 10

    def test_ack_opens_window_in_slow_start(self):
        _, sender, sent = make_reno(initial_cwnd=2)
        sender.start()
        before = sender.cwnd
        ack_packet(sender, sent[0])
        assert sender.cwnd == pytest.approx(before + 1.0)
        # Slow start sends two packets per ack (the acked slot plus growth).
        assert len(sent) == 4

    def test_loss_halves_window(self):
        _, sender, sent = make_reno(initial_cwnd=10)
        sender.start()
        sender.ssthresh = 1.0  # force congestion avoidance
        sender.cwnd = 10.0
        sender.handle_loss(sent[0])
        assert sender.cwnd == pytest.approx(5.0)

    def test_loss_schedules_retransmission(self):
        _, sender, sent = make_reno(initial_cwnd=4)
        sender.start()
        sender.handle_loss(sent[0])
        # The retransmission waits for the (halved) window to open again.
        for packet in sent[1:4]:
            ack_packet(sender, packet)
        retransmissions = [p for p in sent if p.is_retransmission]
        assert len(retransmissions) == 1
        assert sender.bytes_retransmitted == 1500

    def test_rtt_estimators_update(self):
        _, sender, sent = make_reno()
        sender.start()
        ack_packet(sender, sent[0], rtt=0.05)
        assert sender.min_rtt == pytest.approx(0.05)
        assert sender.srtt > 0.02

    def test_goodput_measurement_window(self):
        sched, sender, sent = make_reno(initial_cwnd=4)
        sender.start()
        sender.begin_measurement()
        for p in sent[:4]:
            ack_packet(sender, p)
        goodput = sender.goodput_mbps(end_time=1.0)
        assert goodput == pytest.approx(4 * 1500 * 8 / 1e6, rel=0.01)

    def test_retransmit_fraction_zero_without_losses(self):
        _, sender, sent = make_reno(initial_cwnd=4)
        sender.start()
        sender.begin_measurement()
        for p in sent[:4]:
            ack_packet(sender, p)
        assert sender.retransmit_fraction() == 0.0

    def test_invalid_parameters_raise(self):
        sched = EventScheduler()
        with pytest.raises(ValueError):
            RenoSender(0, sched, lambda p: None, mss_bytes=0)
        with pytest.raises(ValueError):
            RenoSender(0, sched, lambda p: None, base_rtt_s=0)
        with pytest.raises(ValueError):
            RenoSender(0, sched, lambda p: None, initial_cwnd=0)


class TestPacedSender:
    def test_paced_sender_spreads_packets_over_time(self):
        sched, sender, sent = make_reno(paced=True, initial_cwnd=10)
        sender.start()
        # Pacing releases packets via timers instead of an immediate burst.
        assert len(sent) < 10
        sched.run(until=0.05)
        assert len(sent) == 10

    def test_pacing_rate_uses_slow_start_gain(self):
        _, sender, _ = make_reno(paced=True)
        in_ss = sender.current_pacing_rate_bps()
        sender.ssthresh = 1.0  # leave slow start
        in_ca = sender.current_pacing_rate_bps()
        assert in_ss > in_ca


class TestCubicSender:
    def test_loss_reduces_window_by_cubic_beta(self):
        sched = EventScheduler()
        sender = CubicSender(0, sched, lambda p: None, initial_cwnd=10)
        sender.ssthresh = 1.0
        sender.cwnd = 10.0
        sender.handle_loss(Packet(0, 0, 1500, 0.0))
        assert sender.cwnd == pytest.approx(7.0)

    def test_window_grows_after_ack(self):
        sched = EventScheduler()
        sent = []
        sender = CubicSender(0, sched, sent.append, initial_cwnd=4)
        sender.ssthresh = 1.0
        sender.start()
        before = sender.cwnd
        sender.handle_ack(sent[0], 0.02)
        assert sender.cwnd >= before


class TestBBRSender:
    def test_always_paced(self):
        sched = EventScheduler()
        sender = BBRSender(0, sched, lambda p: None, paced=False)
        assert sender.paced

    def test_loss_does_not_change_rate_model(self):
        sched = EventScheduler()
        sent = []
        sender = BBRSender(0, sched, sent.append)
        sender.start()
        sched.run(until=0.05)
        bw_before = sender.bottleneck_bw_bps
        sender.handle_loss(sent[0])
        assert sender.bottleneck_bw_bps == pytest.approx(bw_before)

    def test_bandwidth_estimate_from_acks(self):
        sched = EventScheduler()
        sent = []
        sender = BBRSender(0, sched, sent.append, base_rtt_s=0.02)
        sender.start()
        sched.run(until=0.1)
        for p in list(sent)[:5]:
            sched.run(until=sched.now)  # keep clock
            sender.handle_ack(p, 0.02)
        assert sender.bottleneck_bw_bps > 0
        assert sender.estimated_bdp_packets > 0

    def test_make_sender_factory(self):
        sched = EventScheduler()
        assert isinstance(make_sender("reno", 0, sched, lambda p: None), RenoSender)
        assert isinstance(make_sender("cubic", 0, sched, lambda p: None), CubicSender)
        assert isinstance(make_sender("bbr", 0, sched, lambda p: None), BBRSender)
        with pytest.raises(ValueError):
            make_sender("vegas", 0, sched, lambda p: None)


class TestPacketSimulation:
    """Integration tests of the single-bottleneck simulation."""

    def test_single_flow_achieves_near_capacity(self):
        result = simulate(
            [FlowConfig(0, cc="reno")],
            capacity_mbps=20,
            base_rtt_ms=20,
            duration_s=10,
            warmup_s=2,
        )
        assert result.flow(0).throughput_mbps == pytest.approx(20.0, rel=0.15)

    def test_reno_flows_share_fairly(self):
        result = simulate(
            [FlowConfig(i, cc="reno") for i in range(4)],
            capacity_mbps=40,
            base_rtt_ms=20,
            duration_s=15,
            warmup_s=5,
        )
        throughputs = [f.throughput_mbps for f in result.flows]
        assert sum(throughputs) == pytest.approx(40.0, rel=0.15)
        assert max(throughputs) < 2.0 * min(throughputs)

    def test_two_connections_get_roughly_double(self):
        flows = [FlowConfig(0, cc="reno", connections=2, treated=True)] + [
            FlowConfig(i, cc="reno") for i in range(1, 5)
        ]
        result = simulate(
            flows, capacity_mbps=30, base_rtt_ms=20, duration_s=15, warmup_s=5
        )
        ratio = result.group_mean_throughput(True) / result.group_mean_throughput(False)
        assert 1.5 < ratio < 2.6

    def test_full_connection_switch_has_no_throughput_tte(self):
        one = simulate(
            [FlowConfig(i, cc="reno", connections=1) for i in range(5)],
            capacity_mbps=30,
            duration_s=15,
            warmup_s=5,
        )
        two = simulate(
            [FlowConfig(i, cc="reno", connections=2) for i in range(5)],
            capacity_mbps=30,
            duration_s=15,
            warmup_s=5,
        )
        assert two.total_throughput_mbps() == pytest.approx(
            one.total_throughput_mbps(), rel=0.1
        )

    def test_more_connections_cause_more_drops(self):
        one = simulate(
            [FlowConfig(i, cc="reno", connections=1) for i in range(5)],
            capacity_mbps=30,
            duration_s=15,
            warmup_s=5,
        )
        two = simulate(
            [FlowConfig(i, cc="reno", connections=2) for i in range(5)],
            capacity_mbps=30,
            duration_s=15,
            warmup_s=5,
        )
        assert two.total_drops > one.total_drops

    def test_cubic_only_and_bbr_only_both_fill_the_link(self):
        for cc in ("cubic", "bbr"):
            result = simulate(
                [FlowConfig(i, cc=cc) for i in range(4)],
                capacity_mbps=40,
                duration_s=15,
                warmup_s=5,
            )
            assert result.total_throughput_mbps() == pytest.approx(40.0, rel=0.2)

    def test_duplicate_flow_ids_raise(self):
        with pytest.raises(ValueError):
            simulate([FlowConfig(0), FlowConfig(0)])

    def test_duration_must_exceed_warmup(self):
        with pytest.raises(ValueError):
            simulate([FlowConfig(0)], duration_s=1.0, warmup_s=2.0)

    def test_empty_flow_list_raises(self):
        with pytest.raises(ValueError):
            simulate([])

    def test_unknown_flow_lookup_raises(self):
        result = simulate([FlowConfig(0)], capacity_mbps=10, duration_s=5, warmup_s=1)
        with pytest.raises(KeyError):
            result.flow(99)

    def test_group_mean_requires_members(self):
        result = simulate([FlowConfig(0)], capacity_mbps=10, duration_s=5, warmup_s=1)
        with pytest.raises(ValueError):
            result.group_mean_throughput(True)
