"""End-to-end reproductions of every experiment in the paper.

Each module runs one of the paper's experiments on the corresponding
substrate and returns the rows/series behind the paper's figures:

* :mod:`repro.experiments.lab_connections` — Figure 2a (parallel
  connections).
* :mod:`repro.experiments.lab_pacing` — Figure 2b (pacing).
* :mod:`repro.experiments.lab_cc` — Figure 3 (Cubic vs BBR).
* :mod:`repro.experiments.lab_topology` — beyond-the-paper topology
  scenarios: A/B bias under heterogeneous RTTs and under AQM (CoDel/RED)
  vs drop-tail, on the packet-level simulator.
* :mod:`repro.experiments.lab_parking_lot` — beyond-the-paper topology
  scenarios: multi-bottleneck parking lots with unmeasured cross traffic
  (bias amplification, cross-segment spillover) and per-flow FQ-CoDel
  (the paper's bias-elimination prediction).
* :mod:`repro.experiments.lab_churn` — dynamic-traffic scenarios: the
  A/B bias as a function of short-flow churn intensity, and a
  switchback-vs-event-study comparison under a ramping demand profile.
* :mod:`repro.experiments.lab_l4s` — the L4S lab: the connection-count
  bias under drop-tail vs classic-ECN CoDel vs the DualPI2/DCTCP L4S
  stack vs FQ-CoDel (signal-based vs scheduling-based sharing), plus a
  classic/L4S coexistence arm on one DualPI2 bottleneck.
* :mod:`repro.experiments.lab_fleet` — the fleet experiment: the A/B
  bias vs assignment cluster size (unit / edge / region) on the sharded
  packet/fluid hybrid at five-figure unit counts.
* :mod:`repro.experiments.baseline_validation` — the Section 4.1 baseline
  link-similarity table.
* :mod:`repro.experiments.paired_link` — the Section 4 bitrate-capping
  experiment (Figures 5-9 and 13).
* :mod:`repro.experiments.alternate_designs` — the Section 5 emulated
  switchback and event study (Figures 10-12) and the A/A calibration.
"""

from functools import partial

from repro.experiments.lab_common import (
    DETERMINISTIC_FIGURES,
    FLEET_CELL_FIGURES,
    LAB_CELL_FIGURES,
    LabFigure,
    PAIRED_CELL_FIGURES,
    TOPOLOGY_CELL_FIGURES,
    figure_cells_spec,
    packet_sweep_to_figure,
    sweep_to_figure,
)
from repro.experiments.lab_connections import (
    connections_spec,
    run_connections_experiment,
)
from repro.experiments.lab_pacing import pacing_spec, run_pacing_experiment
from repro.experiments.lab_cc import cc_spec, run_cc_experiment
from repro.experiments.lab_topology import (
    AqmBiasComparison,
    aqm_spec,
    rtt_spec,
    run_aqm_experiment,
    run_rtt_experiment,
)
from repro.experiments.lab_parking_lot import (
    ParkingLotComparison,
    fq_figure_spec,
    parking_lot_spec,
    run_fq_experiment,
    run_parking_lot_experiment,
)
from repro.experiments.lab_churn import (
    ChurnBiasComparison,
    SwitchbackRampOutcome,
    churn_spec,
    run_churn_experiment,
    run_switchback_ramp_experiment,
)
from repro.experiments.lab_l4s import (
    L4sBiasComparison,
    l4s_spec,
    run_l4s_experiment,
)
from repro.experiments.paired_link import (
    PairedLinkExperiment,
    PairedLinkOutcome,
    paired_figure_spec,
)
from repro.experiments.baseline_validation import baseline_spec, compare_links_at_baseline
from repro.experiments.alternate_designs import (
    AlternateDesignComparison,
    emulate_event_study,
    emulate_switchback,
    run_aa_calibration,
    compare_designs,
)
from repro.experiments.gradual_deployment import (
    GradualDeploymentOutcome,
    run_gradual_deployment,
)
from repro.experiments.lab_fleet import (
    FleetBiasComparison,
    FleetOutcome,
    fleet_spec,
    run_fleet_experiment,
)

#: Spec-producing entry point per sweepable figure: each callable returns
#: the content-keyed ``figure.cells`` :class:`~repro.runner.ScenarioSpec`
#: for one replication of that figure.  Lab figures take ``(noise, seed)``,
#: deterministic topology figures take ``(quick)``, and every other figure
#: takes ``(quick, seed)`` — the campaign compiler targets this registry.
FIGURE_SPECS = {
    "fig2a": connections_spec,
    "fig2b": pacing_spec,
    "fig3": cc_spec,
    "baseline": baseline_spec,
    "fig5": partial(paired_figure_spec, "fig5"),
    "fig7": partial(paired_figure_spec, "fig7"),
    "fig8": partial(paired_figure_spec, "fig8"),
    "fig9": partial(paired_figure_spec, "fig9"),
    "fig10": partial(paired_figure_spec, "fig10"),
    "topo_rtt": rtt_spec,
    "topo_aqm": aqm_spec,
    "topo_parking": parking_lot_spec,
    "topo_fq": fq_figure_spec,
    "topo_churn": churn_spec,
    "topo_l4s": l4s_spec,
    "fleet": fleet_spec,
}

__all__ = [
    "LabFigure",
    "sweep_to_figure",
    "packet_sweep_to_figure",
    "figure_cells_spec",
    "FIGURE_SPECS",
    "LAB_CELL_FIGURES",
    "PAIRED_CELL_FIGURES",
    "TOPOLOGY_CELL_FIGURES",
    "FLEET_CELL_FIGURES",
    "DETERMINISTIC_FIGURES",
    "connections_spec",
    "pacing_spec",
    "cc_spec",
    "baseline_spec",
    "paired_figure_spec",
    "rtt_spec",
    "aqm_spec",
    "parking_lot_spec",
    "fq_figure_spec",
    "churn_spec",
    "l4s_spec",
    "fleet_spec",
    "run_connections_experiment",
    "run_pacing_experiment",
    "run_cc_experiment",
    "AqmBiasComparison",
    "run_rtt_experiment",
    "run_aqm_experiment",
    "ParkingLotComparison",
    "run_parking_lot_experiment",
    "run_fq_experiment",
    "ChurnBiasComparison",
    "SwitchbackRampOutcome",
    "run_churn_experiment",
    "run_switchback_ramp_experiment",
    "FleetBiasComparison",
    "FleetOutcome",
    "run_fleet_experiment",
    "L4sBiasComparison",
    "run_l4s_experiment",
    "PairedLinkExperiment",
    "PairedLinkOutcome",
    "compare_links_at_baseline",
    "AlternateDesignComparison",
    "emulate_event_study",
    "emulate_switchback",
    "run_aa_calibration",
    "compare_designs",
    "GradualDeploymentOutcome",
    "run_gradual_deployment",
]
