"""Targeted switchback design (Section 5.2).

A switchback divides time into intervals (the paper recommends starting
with one-day intervals for networking algorithms).  Each interval is
randomly assigned to be a *treatment interval* or a *control interval*.
During treatment intervals, a large fraction (90-99 %) of traffic in the
targeted network runs the new algorithm; during control intervals only a
small fraction does.  Keeping a small opposite-arm slice inside every
interval lets the experimenter additionally estimate spillover and the
bias of naive A/B tests.

The analysis compares the treated sessions of treatment intervals against
the control sessions of control intervals, which estimates (approximately)
the total treatment effect within the targeted network.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.assignment import interval_assignment
from repro.core.designs.base import (
    AllocationPlan,
    CellSelector,
    ComparisonSpec,
    ExperimentDesign,
)

__all__ = ["SwitchbackDesign"]


class SwitchbackDesign(ExperimentDesign):
    """Randomized treatment/control days within a targeted network.

    Parameters
    ----------
    treatment_allocation:
        Within-interval allocation during treatment intervals (paper: 0.95).
    control_allocation:
        Within-interval allocation during control intervals (paper: 0.05).
        Setting it above zero preserves a small treated slice for spillover
        and bias estimation.
    interval_days:
        Length of each switchback interval in days (default one day).
    seed:
        Randomization seed for the interval assignment.
    treatment_days:
        Optional explicit set of treatment days.  When given, the random
        interval assignment is skipped — the paper's Section 5.3 emulation
        fixes the assignment to days 0, 2 and 4.
    """

    name = "switchback"

    def __init__(
        self,
        treatment_allocation: float = 0.95,
        control_allocation: float = 0.05,
        interval_days: int = 1,
        seed: int | None = None,
        treatment_days: Sequence[int] | None = None,
    ):
        if not 0.0 < treatment_allocation <= 1.0:
            raise ValueError("treatment_allocation must be in (0, 1]")
        if not 0.0 <= control_allocation < 1.0:
            raise ValueError("control_allocation must be in [0, 1)")
        if treatment_allocation <= control_allocation:
            raise ValueError("treatment_allocation must exceed control_allocation")
        if interval_days < 1:
            raise ValueError("interval_days must be at least one day")
        self.treatment_allocation = float(treatment_allocation)
        self.control_allocation = float(control_allocation)
        self.interval_days = int(interval_days)
        self.seed = seed
        self._explicit_treatment_days = (
            tuple(int(d) for d in treatment_days) if treatment_days is not None else None
        )

    # -- interval assignment --------------------------------------------------

    def treatment_days_for(self, days: Sequence[int]) -> tuple[int, ...]:
        """Return the set of days assigned to treatment intervals."""
        days = [int(d) for d in days]
        if self._explicit_treatment_days is not None:
            unknown = set(self._explicit_treatment_days) - set(days)
            if unknown:
                raise ValueError(
                    f"explicit treatment days {sorted(unknown)} not in experiment days"
                )
            return self._explicit_treatment_days
        intervals = [
            days[i : i + self.interval_days]
            for i in range(0, len(days), self.interval_days)
        ]
        assignment = interval_assignment(
            len(intervals), treatment_probability=0.5, seed=self.seed
        )
        treated_days: list[int] = []
        for interval, is_treatment in zip(intervals, assignment):
            if is_treatment:
                treated_days.extend(interval)
        return tuple(treated_days)

    def control_days_for(self, days: Sequence[int]) -> tuple[int, ...]:
        """Return the set of days assigned to control intervals."""
        treated = set(self.treatment_days_for(days))
        return tuple(int(d) for d in days if int(d) not in treated)

    # -- design interface -------------------------------------------------------

    def allocation_plan(
        self, links: Sequence[int], days: Sequence[int]
    ) -> AllocationPlan:
        treatment_days = set(self.treatment_days_for(days))
        cells: dict[tuple[int, int], float] = {}
        for day in days:
            allocation = (
                self.treatment_allocation
                if int(day) in treatment_days
                else self.control_allocation
            )
            for link in links:
                cells[(int(link), int(day))] = allocation
        return AllocationPlan(cells, default=self.control_allocation)

    def comparisons(
        self, links: Sequence[int], days: Sequence[int]
    ) -> list[ComparisonSpec]:
        links_t = tuple(int(link) for link in links)
        treatment_days = self.treatment_days_for(days)
        control_days = self.control_days_for(days)
        specs = [
            ComparisonSpec(
                estimand="tte",
                treatment_selector=CellSelector(links_t, treatment_days, treated=True),
                control_selector=CellSelector(links_t, control_days, treated=False),
                description=(
                    "Switchback TTE estimate: treated sessions during treatment "
                    "intervals vs control sessions during control intervals."
                ),
            )
        ]
        if self.control_allocation > 0.0:
            specs.append(
                ComparisonSpec(
                    estimand="spillover",
                    treatment_selector=CellSelector(
                        links_t, treatment_days, treated=False
                    ),
                    control_selector=CellSelector(links_t, control_days, treated=False),
                    description=(
                        "Spillover estimate: control sessions during treatment "
                        "intervals vs control sessions during control intervals."
                    ),
                )
            )
        return specs

    def describe(self) -> str:
        return (
            f"Switchback with {self.interval_days}-day intervals, "
            f"treatment intervals at p={self.treatment_allocation:g}, "
            f"control intervals at p={self.control_allocation:g}"
        )
