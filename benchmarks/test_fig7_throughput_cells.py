"""Figure 7: average throughput in the four experiment cells.

Paper finding: both naive A/B tests confidently report that capping lowers
throughput (within each link the capped cell is slightly below the
uncapped cell), yet both cells on the mostly-capped link sit above both
cells on the mostly-uncapped link — the TTE and spillover are positive.
"""

from benchmarks._helpers import run_once

from repro.reporting import format_table


def test_fig7_throughput_cells(benchmark, paired_outcome):
    cells = run_once(benchmark, paired_outcome.figure7_cells)

    print(
        "\n"
        + format_table(
            ["cell", "throughput (Mb/s)"],
            [
                ["link 1, capped 95%", f"{cells.link1_treated:.2f}"],
                ["link 1, uncapped 5%", f"{cells.link1_control:.2f}"],
                ["link 2, capped 5%", f"{cells.link2_treated:.2f}"],
                ["link 2, uncapped 95%", f"{cells.link2_control:.2f}"],
            ],
        )
    )

    # Within each link the capped cell is (slightly) below the uncapped cell:
    # the naive A/B conclusion "capping hurts throughput".
    assert cells.naive_high < 0.0
    assert cells.naive_low < 0.0
    # Across links, capping the majority improves everyone: positive TTE and spillover.
    assert cells.approximate_tte > 0.0
    assert cells.spillover > 0.0
    assert cells.spillover > abs(cells.naive_low)
