"""Process-parallel execution of scenario specs.

:class:`ParallelExecutor` is deliberately small: resolve cache hits,
fan the misses out over a process pool (or run them inline for
``jobs=1``), store fresh results back into the cache, and return results
in spec order.  Because every spec carries its own seed, the results are
bit-identical regardless of ``jobs``.

Observability (all off by default, and the untraced path is exactly the
historical code): a :class:`~repro.obs.trace.RunTracer` receives task
spans and cache hit/miss events, ``profile=True`` wraps each task body
in cProfile, and ``on_task_done`` delivers live progress callbacks —
``(done, total, run)`` — as tasks complete.  None of these change what
is executed or cached, only what is observed about it.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import TYPE_CHECKING, Any

from repro.runner.cache import ResultCache
from repro.runner.spec import ScenarioSpec, content_key, run_spec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.trace import RunTracer, TaskRun

__all__ = ["ParallelExecutor", "run_specs"]


def _execute(spec: ScenarioSpec) -> Any:
    # Module-level so worker processes can unpickle a reference to it.
    return run_spec(spec)


class ParallelExecutor:
    """Runs scenario specs serially or across worker processes.

    Parameters
    ----------
    jobs:
        Number of worker processes.  ``1`` (the default) runs every spec
        in the current process with no pool overhead; ``None`` or any
        value below 1 means "one per CPU".
    cache:
        Optional :class:`ResultCache`.  Hits skip execution entirely;
        fresh results are stored after execution.
    tracer:
        Optional :class:`~repro.obs.trace.RunTracer`: receives a span per
        executed task and a cache event per lookup.
    profile:
        Wrap each executed task in cProfile; the hotspot rows travel back
        on the task spans (requires a ``tracer`` to go anywhere).
    on_task_done:
        Optional live-progress callback, invoked in the parent process as
        ``on_task_done(done, total, run)`` after each task completes.
    """

    def __init__(
        self,
        jobs: int | None = 1,
        cache: ResultCache | None = None,
        tracer: RunTracer | None = None,
        profile: bool = False,
        on_task_done: Callable[[int, int, TaskRun], None] | None = None,
    ):
        if jobs is None or jobs < 1:
            jobs = os.cpu_count() or 1
        self.jobs = int(jobs)
        self.cache = cache
        self.tracer = tracer
        self.profile = profile
        self.on_task_done = on_task_done

    def _observing(self) -> bool:
        return self.tracer is not None or self.profile or self.on_task_done is not None

    def run(self, spec: ScenarioSpec) -> Any:
        """Execute a single spec (through the cache if one is set)."""
        return self.map([spec])[0]

    def map(self, specs: Iterable[ScenarioSpec]) -> list[Any]:
        """Execute specs and return their results in input order."""
        specs = list(specs)
        results: list[Any] = [None] * len(specs)
        keys: dict[int, str] = {}
        pending: list[int] = []

        if self.cache is None:
            pending = list(range(len(specs)))
        else:
            for i, spec in enumerate(specs):
                key = content_key(spec)
                keys[i] = key
                hit, value = self.cache.get(key)
                if self.tracer is not None:
                    self.tracer.cache_event(hit, spec.label or spec.task)
                if hit:
                    results[i] = value
                else:
                    pending.append(i)

        if pending:
            to_run = [specs[i] for i in pending]
            if self._observing():
                fresh = self._execute_observed(to_run)
            else:
                fresh = self._execute_pending(to_run)
            for i, value in zip(pending, fresh):
                results[i] = value
                if self.cache is not None:
                    self.cache.put(keys[i], value)
        return results

    def _execute_pending(self, specs: Sequence[ScenarioSpec]) -> list[Any]:
        if self.jobs == 1 or len(specs) == 1:
            return [run_spec(spec) for spec in specs]
        workers = min(self.jobs, len(specs))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(_execute, specs))

    def _execute_observed(self, specs: Sequence[ScenarioSpec]) -> list[Any]:
        """Execute with tracing/profiling/progress; same results, observed."""
        from repro.obs.trace import TaskRun, observe_spec

        total = len(specs)
        results: list[Any] = [None] * total
        done = 0

        def fold(index: int, run: TaskRun) -> None:
            nonlocal done
            done += 1
            results[index] = run.result
            if self.tracer is not None:
                self.tracer.task(run)
            if self.on_task_done is not None:
                self.on_task_done(done, total, run)

        if self.jobs == 1 or total == 1:
            for index, spec in enumerate(specs):
                fold(index, observe_spec(spec, self.profile))
            return results

        workers = min(self.jobs, total)
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(observe_spec, spec, self.profile): index
                for index, spec in enumerate(specs)
            }
            for future in as_completed(futures):
                fold(futures[future], future.result())
        return results


def run_specs(
    specs: Iterable[ScenarioSpec],
    jobs: int | None = 1,
    cache: ResultCache | None = None,
) -> list[Any]:
    """Convenience wrapper: build an executor and map the specs."""
    return ParallelExecutor(jobs=jobs, cache=cache).map(specs)
