"""Figure 2a: throughput and retransmissions vs number of treated applications.

Paper finding: applications using two connections see ~100 % higher
throughput than applications using one in *every* A/B test, with no
within-test retransmission difference; yet the TTE on throughput is zero
and the TTE on retransmitted bytes is a large increase.
"""

import pytest
from benchmarks._helpers import run_once

from repro.experiments import run_connections_experiment


def test_fig2a_parallel_connections(benchmark):
    figure = run_once(benchmark, run_connections_experiment, 10)

    print("\n" + "\n".join(figure.summary_lines()))

    throughput = figure.throughput_curve
    retransmit = figure.retransmit_curve
    control_thr = throughput.mu_control(0.0)
    control_rtx = retransmit.mu_control(0.0)

    # Every interior A/B test reports roughly +100 % throughput for treatment.
    for p in (0.1, 0.3, 0.5, 0.7, 0.9):
        assert throughput.ate(p) / throughput.mu_control(p) == pytest.approx(1.0, rel=0.05)
        assert retransmit.ate(p) == pytest.approx(0.0, abs=1e-9)

    # TTE: no throughput change, large retransmission increase.
    assert throughput.tte() / control_thr == pytest.approx(0.0, abs=1e-6)
    assert retransmit.tte() / control_rtx > 1.0

    # Spillover: the remaining single-connection application loses throughput.
    assert throughput.spillover(0.9) / control_thr < -0.2
