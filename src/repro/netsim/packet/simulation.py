"""Packet-level simulation harness.

Builds a lab topology — ``n`` applications, each with one or more TCP
connections, crossing one or more bottleneck queues — runs it for a fixed
duration, and reports per-application throughput and retransmission
fraction measured after a warm-up period.

The default topology mirrors the paper's testbed: a single drop-tail
bottleneck, symmetric propagation delay, receivers acknowledging every
packet immediately.  Beyond the default, every axis is composable via
:mod:`repro.netsim.packet.network`: per-flow RTTs (``FlowConfig.rtt_ms``),
AQM queue disciplines (``queue_discipline="red"`` / ``"codel"`` /
``"fq_codel"`` / ``"dualpi2"``), ECN negotiation (``FlowConfig.ecn``), random-loss path
segments (``FlowConfig.path``), additional named queues
(``extra_queues``, e.g. a parking-lot chain) and unmeasured background
flows (``cross_traffic``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from collections.abc import Mapping, Sequence
from typing import TYPE_CHECKING, Any

from repro.netsim.packet.network import Network, PathConfig, QueueConfig
from repro.netsim.packet.tcp.base import normalize_ecn
from repro.obs.metrics import EngineCounters
from repro.obs.probe import ProbeConfig, ProbeLog

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.netsim.traffic.source import DynamicTrafficResult, TrafficSource

__all__ = ["FlowConfig", "FlowResult", "PacketSimResult", "simulate"]


@dataclass(frozen=True)
class FlowConfig:
    """Configuration of one application in a packet-level simulation.

    Parameters
    ----------
    flow_id:
        Identifier of the application.
    cc:
        Congestion control algorithm: ``"reno"``, ``"cubic"`` or ``"bbr"``.
    connections:
        Number of parallel TCP connections the application opens.
    paced:
        Whether the application's loss-based connections pace their packets
        (BBR always paces).
    ecn:
        ECN negotiation and response mode of the application's
        connections.  ``False`` (default): no ECN.  ``True`` or
        ``"classic"``: the RFC 3168 response — AQM queues CE-mark the
        packets instead of dropping them and each echoed mark costs one
        loss-equivalent window reduction per RTT, with no retransmission
        (``True`` is a backward-compatible alias for ``"classic"``).
        ``"l4s"``: the scalable DCTCP/Prague response — the sender keeps
        a per-RTT EWMA of the *fraction* of acked packets carrying CE
        (``l4s_alpha``) and cuts the window proportionally
        (``cwnd -= cwnd * alpha / 2``) instead of halving, so
        fine-grained shallow marking steers it smoothly; the packets are
        flagged as L4S (the model's ECT(1)), which the ``"dualpi2"``
        discipline classifies into its low-latency queue.  BBR ignores
        marks in both modes.
    treated:
        Arm label carried through to the results; does not change behaviour.
    rtt_ms:
        This application's two-way propagation delay.  ``None`` inherits
        the simulation's ``base_rtt_ms``; setting it overrides the path's
        ``rtt_ms`` too.
    path:
        Network path of this application's packets (loss segment, queue
        sequence).  ``None`` means the default path through the single
        bottleneck.
    transfer_bytes:
        Bytes *each* of the application's connections transfers before
        completing; ``None`` (default) models unlimited bulk transfers
        present for the whole simulation.  Finite applications record a
        flow-completion time (``FlowResult.fct_s``) once every
        connection has delivered its transfer.
    """

    flow_id: int
    cc: str = "reno"
    connections: int = 1
    paced: bool = False
    ecn: bool | str = False
    treated: bool = False
    rtt_ms: float | None = None
    path: PathConfig | None = None
    transfer_bytes: float | None = None

    def __post_init__(self) -> None:
        if self.connections < 1:
            raise ValueError("connections must be at least 1")
        normalize_ecn(self.ecn)  # reject invalid modes at config time
        if self.rtt_ms is not None and self.rtt_ms <= 0:
            raise ValueError("rtt_ms must be positive")
        if self.transfer_bytes is not None and self.transfer_bytes < 0:
            raise ValueError("transfer_bytes must be non-negative")


@dataclass
class FlowResult:
    """Measured outcomes of one application."""

    flow_id: int
    treated: bool
    throughput_mbps: float
    retransmit_fraction: float
    packets_sent: int
    packets_lost: int
    #: Acked packets that carried a CE mark (0 unless the flow uses ECN).
    packets_marked: int = 0
    #: Whether a finite application (``FlowConfig.transfer_bytes``)
    #: delivered every connection's transfer before the simulation ended;
    #: ``None`` for unlimited applications.
    completed: bool | None = None
    #: Flow-completion time of a finite application, in seconds: from its
    #: first connection's start to its last connection's completion.
    #: ``None`` while incomplete and for unlimited applications.
    fct_s: float | None = None


@dataclass
class PacketSimResult:
    """Results of a packet-level simulation run.

    Cross-traffic applications are excluded from ``flows`` but their
    packets still show up in the queue counters.

    Flow-completion accounting (the dynamic-traffic subsystem):

    * finite *measured* applications (``FlowConfig.transfer_bytes``)
      report their completion state and flow-completion time on their own
      :class:`FlowResult` (``completed``/``fct_s``);
    * *dynamic* flows spawned by traffic sources are unmeasured — like
      cross traffic they never appear in ``flows`` — but each source's
      lifecycle lands in ``traffic``: flows started/completed, the
      per-flow completion times (spawn order) and delivered bytes, see
      :class:`~repro.netsim.traffic.source.DynamicTrafficResult`.
      :meth:`mean_dynamic_fct_s` and :meth:`dynamic_flow_counts`
      aggregate across sources.
    """

    flows: list[FlowResult]
    duration_s: float
    capacity_mbps: float
    total_drops: int
    max_queue_occupancy_bytes: float
    #: Drops per named queue (one entry, "bottleneck", in the default topology).
    queue_drops: dict[str, int] = field(default_factory=dict)
    #: ECN CE marks per named queue.
    queue_marks: dict[str, int] = field(default_factory=dict)
    #: Per-source lifecycle results of dynamic traffic, keyed by the
    #: source's label (``"source<i>"`` when unset); empty without sources.
    traffic: dict[str, DynamicTrafficResult] = field(default_factory=dict)
    #: Engine counters of the run (uniform schema for both scheduler
    #: kinds); ``None`` only for hand-built results in tests.
    engine: EngineCounters | None = None
    #: Sampled in-sim telemetry when the run was probed, else ``None``.
    probe: ProbeLog | None = None

    def flow(self, flow_id: int) -> FlowResult:
        """Result of the application with the given id."""
        for f in self.flows:
            if f.flow_id == flow_id:
                return f
        raise KeyError(f"no flow with id {flow_id}")

    def group_mean_throughput(self, treated: bool) -> float:
        """Mean application throughput (Mb/s) of one arm."""
        values = [f.throughput_mbps for f in self.flows if f.treated == treated]
        if not values:
            raise ValueError("no flows in the requested arm")
        return sum(values) / len(values)

    def group_mean_retransmit(self, treated: bool) -> float:
        """Mean retransmit fraction of one arm."""
        values = [f.retransmit_fraction for f in self.flows if f.treated == treated]
        if not values:
            raise ValueError("no flows in the requested arm")
        return sum(values) / len(values)

    def total_throughput_mbps(self) -> float:
        """Aggregate throughput of all applications."""
        return sum(f.throughput_mbps for f in self.flows)

    def total_marks(self) -> int:
        """Aggregate ECN CE marks across all queues."""
        return sum(self.queue_marks.values())

    def dynamic_flow_counts(self) -> tuple[int, int]:
        """(started, completed) dynamic flows across all traffic sources."""
        started = sum(t.flows_started for t in self.traffic.values())
        completed = sum(t.flows_completed for t in self.traffic.values())
        return started, completed

    def mean_dynamic_fct_s(self) -> float | None:
        """Mean flow-completion time across every source's completed
        dynamic flows, or ``None`` when nothing completed."""
        fcts = [
            fct for t in self.traffic.values() for fct in t.completion_times_s
        ]
        if not fcts:
            return None
        return sum(fcts) / len(fcts)

    def dynamic_fct_percentile(self, percentile: float) -> float | None:
        """Nearest-rank percentile of the pooled dynamic FCTs.

        ``percentile`` is in [0, 100]; pools the completion times of all
        traffic sources (like :meth:`mean_dynamic_fct_s`) and returns
        ``None`` when nothing completed.  Tail percentiles (p95/p99) are
        the latency observable the mean FCT hides: a handful of elephant
        flows dominate the mean while the tail tracks queueing.
        """
        if not 0.0 <= percentile <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        fcts = sorted(
            fct for t in self.traffic.values() for fct in t.completion_times_s
        )
        if not fcts:
            return None
        rank = max(int(math.ceil(percentile / 100.0 * len(fcts))) - 1, 0)
        return fcts[min(rank, len(fcts) - 1)]


def simulate(
    flows: Sequence[FlowConfig],
    capacity_mbps: float = 100.0,
    base_rtt_ms: float = 20.0,
    buffer_bdp: float = 1.0,
    mss_bytes: int = 1500,
    duration_s: float = 10.0,
    warmup_s: float = 2.0,
    queue_discipline: str = "droptail",
    queue_params: Mapping[str, Any] | None = None,
    extra_queues: Sequence[QueueConfig] | None = None,
    cross_traffic: Sequence[FlowConfig] | None = None,
    traffic_sources: Sequence[TrafficSource] | None = None,
    seed: int | None = None,
    scheduler: str = "auto",
    event_batching: bool = False,
    batch_segments: int = 8,
    probe: ProbeConfig | None = None,
) -> PacketSimResult:
    """Run a packet-level simulation of flows sharing a bottleneck.

    A thin wrapper over :class:`~repro.netsim.packet.network.Network`:
    builds the default single-bottleneck topology, adds any extra queues
    and cross traffic, attaches every flow (honouring per-flow ``rtt_ms``
    and ``path`` overrides) and runs it.

    Parameters
    ----------
    flows:
        Application configurations.
    capacity_mbps:
        Bottleneck capacity in megabits per second.  The default is scaled
        down from the paper's 10 Gb/s so simulations complete quickly; the
        sharing behaviour under study is rate-independent.
    base_rtt_ms:
        Two-way propagation delay in milliseconds; flows with their own
        ``rtt_ms`` override it.
    buffer_bdp:
        Bottleneck buffer in bandwidth-delay products (paper: 1 BDP).
    mss_bytes:
        Segment size.
    duration_s:
        Total simulated time.
    warmup_s:
        Time excluded from measurements while flows ramp up.
    queue_discipline:
        Bottleneck queue discipline: ``"droptail"`` (default), ``"red"``,
        ``"codel"``, ``"fq_codel"`` or ``"dualpi2"``.
    queue_params:
        Extra parameters for the queue discipline (RED thresholds, CoDel
        target delay, ...).
    extra_queues:
        Additional named queues beyond the default bottleneck (e.g. the
        chain built by
        :func:`~repro.netsim.packet.network.parking_lot_queues`); paths
        may then route through them by name.
    cross_traffic:
        Unmeasured background applications: they compete in the queues
        like any flow but are excluded from the result's ``flows``.
    traffic_sources:
        Dynamic traffic: each source spawns finite flows at runtime
        (arrival process × size sampler, optionally demand-modulated).
        Spawned flows are unmeasured like cross traffic; their lifecycle
        is reported per source in the result's ``traffic`` mapping.
    seed:
        Seed for the random-loss and RED RNGs, and for every traffic
        source's arrival/size draws; inert for the default loss-free,
        churn-free drop-tail topology.
    scheduler:
        Event-scheduler implementation: ``"auto"`` (default — picks the
        calendar queue when the workload suits it, the heap otherwise),
        ``"heap"`` or ``"calendar"``.  All deliver the identical event
        order, so this knob changes speed, never results.
    event_batching:
        Default-off fast path: coalesce up to ``batch_segments`` MSS
        segments into one macro-packet (one scheduler event per burst).
        Steady-state rates match the unbatched run within the tolerances
        pinned by the trace-equivalence tests, but traces are not
        bit-identical; leave it off when they must be.
    batch_segments:
        Macro-packet size cap when ``event_batching`` is on (default 8);
        inert otherwise.
    probe:
        In-sim telemetry sampling (:class:`repro.obs.probe.ProbeConfig`).
        ``None`` (default) disables probing; when set, the result's
        ``probe`` field carries the sampled :class:`~repro.obs.probe.ProbeLog`.
        Probing is non-perturbing — flows, drops and counters are
        byte-identical with it on or off — and inert in content keys.
    """
    if not flows:
        raise ValueError("at least one flow is required")
    if duration_s <= warmup_s:
        raise ValueError("duration_s must exceed warmup_s")
    ids = [f.flow_id for f in flows] + [f.flow_id for f in (cross_traffic or ())]
    if len(set(ids)) != len(ids):
        raise ValueError("flow ids must be unique (including cross traffic)")

    network = Network(
        capacity_mbps=capacity_mbps,
        base_rtt_ms=base_rtt_ms,
        buffer_bdp=buffer_bdp,
        mss_bytes=mss_bytes,
        queue_discipline=queue_discipline,
        queue_params=dict(queue_params) if queue_params else None,
        seed=seed,
        scheduler=scheduler,
        event_batching=event_batching,
        batch_segments=batch_segments,
    )
    for queue_config in extra_queues or ():
        network.add_queue_config(queue_config)
    for config in flows:
        network.add_flow(config)
    for config in cross_traffic or ():
        network.add_cross_traffic(config)
    for source in traffic_sources or ():
        network.add_traffic_source(source)
    return network.run(duration_s=duration_s, warmup_s=warmup_s, probe=probe)
