"""Tests for the command-line interface."""

import pytest

from repro.cli import (
    FLEET_FIGURES,
    LAB_FIGURES,
    PAIRED_FIGURES,
    TOPOLOGY_FIGURES,
    build_parser,
    main,
)


class TestParser:
    def test_known_figures_accepted(self):
        parser = build_parser()
        for name in (
            list(LAB_FIGURES)
            + list(PAIRED_FIGURES)
            + list(TOPOLOGY_FIGURES)
            + list(FLEET_FIGURES)
        ):
            args = parser.parse_args([name])
            assert args.figure == name

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_quick_and_seed_flags(self):
        args = build_parser().parse_args(["fig5", "--quick", "--seed", "3"])
        assert args.quick is True
        assert args.seed == 3

    def test_jobs_and_cache_flags(self):
        args = build_parser().parse_args(["fig5", "--jobs", "4", "--cache"])
        assert args.jobs == 4
        assert args.cache is True

    def test_sweep_accepts_target(self):
        args = build_parser().parse_args(["sweep", "fig2a", "--replications", "3"])
        assert args.figure == "sweep"
        assert args.target == "fig2a"
        assert args.replications == 3


class TestCommands:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig2a" in out
        assert "fig5" in out
        assert "fleet" in out

    def test_lab_figure_command(self, capsys):
        assert main(["fig2a"]) == 0
        out = capsys.readouterr().out
        assert "TTE throughput" in out

    def test_paired_figure_command_quick(self, capsys):
        assert main(["fig9", "--quick", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "off-peak" in out
        assert "overall TTE" in out

    def test_topo_rtt_command_quick(self, capsys):
        assert main(["topo_rtt", "--quick", "--rtt-spread", "10,40"]) == 0
        out = capsys.readouterr().out
        assert "heterogeneous RTTs (10/40 ms)" in out
        assert "TTE throughput" in out

    def test_topo_aqm_command_quick(self, capsys):
        assert main(["topo_aqm", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "queue discipline: droptail" in out
        assert "queue discipline: codel" in out
        assert "bias" in out.lower()

    def test_topo_aqm_custom_disciplines(self, capsys):
        assert main(["topo_aqm", "--quick", "--disciplines", "droptail,red"]) == 0
        out = capsys.readouterr().out
        assert "queue discipline: red" in out
        assert "codel" not in out

    def test_topo_fq_command_quick(self, capsys):
        assert main(["topo_fq", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "queue discipline: droptail" in out
        assert "queue discipline: fq_codel" in out
        assert "bias" in out.lower()

    def test_topo_fq_custom_disciplines(self, capsys):
        argv = ["topo_fq", "--quick", "--disciplines", "droptail,codel,fq_codel"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "queue discipline: codel" in out
        assert "queue discipline: fq_codel" in out

    def test_topo_churn_command_quick(self, capsys):
        assert main(["topo_churn", "--quick", "--churn-rates", "0,3"]) == 0
        out = capsys.readouterr().out
        assert "churn intensity: 0 flows/s" in out
        assert "churn intensity: 3 flows/s" in out
        assert "mean FCT" in out
        # The second section: switchback vs event study under the ramp.
        assert "switchback" in out
        assert "event-study" in out
        assert "ground-truth" in out

    def test_invalid_churn_rates_rejected(self, capsys):
        for bad in ("abc", "", "1,-2", "2,2"):
            with pytest.raises(SystemExit):
                main(["topo_churn", "--quick", "--churn-rates", bad])
        assert "--churn-rates" in capsys.readouterr().err

    def test_topo_l4s_command_quick(self, capsys):
        assert main(["topo_l4s", "--quick", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        for arm in ("droptail", "codel-classic", "dualpi2-l4s", "fq_codel"):
            assert f"arm: {arm}" in out
        assert "bias" in out.lower()
        assert "coexistence" in out

    def test_topo_churn_traffic_split_variant(self, capsys):
        argv = ["topo_churn", "--quick", "--churn-rates", "0",
                "--traffic-split", "0.75"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "75%/25% intervals" in out
        assert "within-interval" in out

    def test_invalid_traffic_split_rejected(self, capsys):
        for bad in ("0.5", "1.2", "0.0"):
            with pytest.raises(SystemExit):
                main(["topo_churn", "--quick", "--traffic-split", bad])
        assert "--traffic-split" in capsys.readouterr().err

    def test_topo_parking_command_quick(self, capsys):
        assert main(["topo_parking", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "topology: single" in out
        assert "topology: parking" in out
        assert "cross-segment spillover" in out

    def test_topo_parking_invalid_segments_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["topo_parking", "--quick", "--segments", "3"])
        assert "--segments" in capsys.readouterr().err

    def test_fleet_command_small(self, capsys):
        argv = ["fleet", "--quick", "--units", "120", "--edges", "6",
                "--granularity", "edge", "--seed", "2"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "120 units on 6 edge bottlenecks" in out
        assert "ground-truth TTE" in out
        assert "edge" in out
        assert "unit " not in out  # only the requested granularity runs

    def test_fleet_all_granularities(self, capsys):
        argv = ["fleet", "--quick", "--units", "80", "--edges", "4", "--seed", "2"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        for granularity in ("unit", "edge", "region"):
            assert granularity in out

    def test_fleet_invalid_sizes_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["fleet", "--quick", "--units", "0"])
        assert "--units" in capsys.readouterr().err
        with pytest.raises(SystemExit):
            main(["fleet", "--quick", "--edges", "-2"])
        assert "--edges" in capsys.readouterr().err

    def test_invalid_rtt_spread_rejected(self):
        with pytest.raises(SystemExit):
            main(["topo_rtt", "--quick", "--rtt-spread", "10,-4"])
        with pytest.raises(SystemExit):
            main(["topo_rtt", "--quick", "--rtt-spread", "abc"])

    def test_invalid_disciplines_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["topo_aqm", "--quick", "--disciplines", "bogus"])
        assert "--disciplines" in capsys.readouterr().err
        with pytest.raises(SystemExit):
            main(["topo_aqm", "--quick", "--disciplines", ""])


class TestParallelDeterminism:
    def test_lab_figure_same_output_jobs_1_vs_4(self, capsys):
        assert main(["fig2a", "--jobs", "1"]) == 0
        serial = capsys.readouterr().out
        assert main(["fig2a", "--jobs", "4"]) == 0
        parallel = capsys.readouterr().out
        assert serial == parallel

    def test_paired_figure_same_output_jobs_1_vs_4(self, capsys):
        argv = ["fig9", "--quick", "--seed", "5"]
        assert main([*argv, "--jobs", "1"]) == 0
        serial = capsys.readouterr().out
        assert main([*argv, "--jobs", "4"]) == 0
        parallel = capsys.readouterr().out
        assert serial == parallel

    def test_topology_figure_same_output_jobs_1_vs_4(self, capsys):
        argv = ["topo_aqm", "--quick"]
        assert main([*argv, "--jobs", "1"]) == 0
        serial = capsys.readouterr().out
        assert main([*argv, "--jobs", "4"]) == 0
        parallel = capsys.readouterr().out
        assert serial == parallel

    @pytest.mark.parametrize(
        "figure", ["topo_fq", "topo_parking", "topo_churn", "topo_l4s"]
    )
    def test_new_topology_figures_same_output_jobs_1_vs_4(self, figure, capsys):
        argv = [figure, "--quick"]
        assert main([*argv, "--jobs", "1"]) == 0
        serial = capsys.readouterr().out
        assert main([*argv, "--jobs", "4"]) == 0
        parallel = capsys.readouterr().out
        assert serial == parallel

    def test_fleet_same_output_jobs_1_vs_4(self, capsys):
        argv = ["fleet", "--quick", "--units", "120", "--edges", "6", "--seed", "2"]
        assert main([*argv, "--jobs", "1"]) == 0
        serial = capsys.readouterr().out
        assert main([*argv, "--jobs", "4"]) == 0
        parallel = capsys.readouterr().out
        assert serial == parallel

    def test_topology_figure_cached_rerun_identical(self, tmp_path, capsys):
        argv = ["topo_rtt", "--quick", "--cache", "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert len(list(tmp_path.glob("*.pkl"))) > 0
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second

    def test_parking_figure_cached_rerun_identical(self, tmp_path, capsys):
        # Exercises content-keying of QueueConfig chains and cross-traffic
        # flow configs inside the scenario specs.
        argv = ["topo_parking", "--quick", "--cache", "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        entries = len(list(tmp_path.glob("*.pkl")))
        assert entries > 0
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second
        assert len(list(tmp_path.glob("*.pkl"))) == entries


class TestSweepCommand:
    def test_sweep_output_is_stable_across_runs(self, capsys):
        argv = [
            "sweep",
            "fig2a",
            "--replications",
            "3",
            "--noise",
            "0.05",
            "--seed",
            "2",
            "--jobs",
            "2",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second
        assert "mean" in first
        assert "tte_throughput_mbps" in first
        assert "seeds 2..4" in first

    def test_sweep_requires_known_target(self):
        with pytest.raises(SystemExit):
            main(["sweep"])
        with pytest.raises(SystemExit):
            main(["sweep", "not-a-figure"])

    def test_stray_target_on_non_sweep_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig5", "fig10"])

    def test_inert_quick_flag_does_not_split_lab_sweep_cache(self, tmp_path, capsys):
        # Lab figures ignore --quick, so adding it must reuse the cached
        # arms rather than recompute under a different content key.
        argv = ["sweep", "fig2a", "--replications", "1", "--cache",
                "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        entries = len(list(tmp_path.glob("*.pkl")))
        assert entries > 0
        assert main([*argv, "--quick"]) == 0
        assert len(list(tmp_path.glob("*.pkl"))) == entries
        capsys.readouterr()

    def test_list_mentions_sweepable_figures(self, capsys):
        assert main(["list"]) == 0
        assert "sweepable" in capsys.readouterr().out

    def test_topology_sweep_collapses_to_one_replication(self, capsys):
        # Topology figures ignore seeds, so asking for 3 replications must
        # run (and report) a single deterministic one.
        assert main(["sweep", "topo_rtt", "--quick", "--replications", "3"]) == 0
        out = capsys.readouterr().out
        assert "deterministic figure, 1 replication" in out
        assert "tte_throughput_mbps" in out

    def test_fq_sweep_reports_both_disciplines(self, capsys):
        assert main(["sweep", "topo_fq", "--quick", "--replications", "2"]) == 0
        out = capsys.readouterr().out
        assert "deterministic figure, 1 replication" in out
        assert "bias_throughput@0.5:droptail" in out
        assert "bias_throughput@0.5:fq_codel" in out

    def test_parking_sweep_reports_spillover_cell(self, capsys):
        assert main(["sweep", "topo_parking", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "bias_throughput@0.5:single" in out
        assert "bias_throughput@0.5:parking" in out
        assert "remote_spillover_mbps" in out

    def test_churn_sweep_keeps_seeded_replications(self, capsys):
        # topo_churn consumes the seed (arrivals, sizes), so the sweep
        # must NOT collapse it to one deterministic replication.
        argv = ["sweep", "topo_churn", "--quick", "--replications", "2",
                "--seed", "3", "--jobs", "2"]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "2 replication(s), seeds 3..4" in out
        assert "bias_throughput@0.5:churn0" in out
        assert "mean_fct_s:churn6" in out
        # The zero-churn cell ignores the seed, so its CI is exactly 0.
        for line in out.splitlines():
            if "bias_throughput@0.5:churn0" in line:
                assert "±0.000" in line

    def test_topology_sweep_seed_does_not_split_cache(self, tmp_path, capsys):
        argv = ["sweep", "topo_rtt", "--quick", "--cache",
                "--cache-dir", str(tmp_path)]
        assert main([*argv, "--seed", "1"]) == 0
        entries = len(list(tmp_path.glob("*.pkl")))
        assert entries > 0
        assert main([*argv, "--seed", "2"]) == 0
        assert len(list(tmp_path.glob("*.pkl"))) == entries
        capsys.readouterr()
