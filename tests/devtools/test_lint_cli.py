"""CLI tests for ``repro lint``: dispatch, exit codes, report format."""

import textwrap

from repro.cli import main

BAD_SNIPPET = """
import random

def jitter():
    return random.random()
"""

GOOD_SNIPPET = """
import numpy as np

def draw(seed):
    return np.random.default_rng(seed).random()
"""


def write(tmp_path, code, name="snippet.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(code))
    return path


class TestLintCli:
    def test_violations_exit_one_with_file_line_diagnostics(self, tmp_path, capsys):
        bad = write(tmp_path, BAD_SNIPPET)
        assert main(["lint", str(bad)]) == 1
        out = capsys.readouterr().out
        assert f"{bad}:5:" in out  # file:line:col anchor
        assert "DET001" in out
        assert "found 1 violation(s)" in out

    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        good = write(tmp_path, GOOD_SNIPPET)
        assert main(["lint", str(good)]) == 0
        out = capsys.readouterr().out
        assert "no invariant violations" in out

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path / "missing")]) == 2
        assert "error" in capsys.readouterr().out

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        good = write(tmp_path, GOOD_SNIPPET)
        assert main(["lint", "--select", "NOPE001", str(good)]) == 2
        assert "unknown rule" in capsys.readouterr().out

    def test_select_filters_rules(self, tmp_path, capsys):
        bad = write(tmp_path, BAD_SNIPPET)
        assert main(["lint", "--select", "DET002", str(bad)]) == 0
        assert main(["lint", "--select", "DET001,DET002", str(bad)]) == 1

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("DET001", "DET002", "DET003", "KEY001", "KEY002", "API001"):
            assert code in out

    def test_lint_listed_as_tool(self, capsys):
        assert main(["list"]) == 0
        assert "lint" in capsys.readouterr().out

    def test_directory_lint(self, tmp_path, capsys):
        write(tmp_path, BAD_SNIPPET, name="bad.py")
        write(tmp_path, GOOD_SNIPPET, name="good.py")
        assert main(["lint", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "bad.py" in out
        assert "good.py" not in out
