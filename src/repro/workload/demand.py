"""Diurnal demand model.

Video-streaming demand follows a strong daily pattern: load builds through
the afternoon, peaks in the evening ("peak hours", when the peering links
congest), and collapses overnight.  Weekends carry more daytime traffic
than weekdays — the seasonality that biases event studies in the paper's
Section 5.3.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DiurnalDemandModel", "DEFAULT_HOURLY_SHAPE"]

#: Relative demand by hour of day (0-23), normalized to peak = 1.0.
#: Shape: quiet overnight, ramp through the afternoon, evening peak.
DEFAULT_HOURLY_SHAPE: tuple[float, ...] = (
    0.22, 0.16, 0.12, 0.10, 0.09, 0.10,  # 00-05
    0.13, 0.18, 0.25, 0.32, 0.38, 0.44,  # 06-11
    0.50, 0.55, 0.58, 0.62, 0.68, 0.76,  # 12-17
    0.86, 0.95, 1.00, 0.98, 0.80, 0.45,  # 18-23
)


@dataclass(frozen=True)
class DiurnalDemandModel:
    """Hourly demand multipliers with a weekday/weekend distinction.

    Parameters
    ----------
    hourly_shape:
        24 relative demand levels, one per hour of day.
    weekend_factor:
        Multiplier applied to every hour of a weekend day (weekends carry
        more traffic, especially during the day).
    weekend_daytime_boost:
        Additional multiplier applied to weekend daytime hours (10-18),
        making the weekend shape genuinely different from weekdays rather
        than just scaled — this is what breaks event studies.
    start_weekday:
        Weekday of experiment day 0 (0=Monday ... 6=Sunday).  The paper's
        experiment ran Wednesday through Sunday, so the default is 2.
    """

    hourly_shape: tuple[float, ...] = DEFAULT_HOURLY_SHAPE
    weekend_factor: float = 1.12
    weekend_daytime_boost: float = 1.15
    start_weekday: int = 2

    def __post_init__(self) -> None:
        if len(self.hourly_shape) != 24:
            raise ValueError("hourly_shape must contain exactly 24 values")
        if any(v < 0 for v in self.hourly_shape):
            raise ValueError("hourly demand values must be non-negative")
        if max(self.hourly_shape) <= 0:
            raise ValueError("at least one hour must have positive demand")
        if not 0 <= self.start_weekday <= 6:
            raise ValueError("start_weekday must be in 0..6")

    def weekday_of(self, day: int) -> int:
        """Weekday (0=Monday ... 6=Sunday) of experiment day ``day``."""
        return (self.start_weekday + int(day)) % 7

    def is_weekend(self, day: int) -> bool:
        """True when experiment day ``day`` falls on Saturday or Sunday."""
        return self.weekday_of(day) >= 5

    def relative_demand(self, day: int, hour: int) -> float:
        """Relative demand (peak weekday evening = 1.0) for a (day, hour)."""
        if not 0 <= hour < 24:
            raise ValueError("hour must be in 0..23")
        level = self.hourly_shape[hour]
        if self.is_weekend(day):
            level *= self.weekend_factor
            if 10 <= hour <= 18:
                level *= self.weekend_daytime_boost
        return float(level)

    def peak_relative_demand(self) -> float:
        """Largest relative demand over a weekday (used for calibration)."""
        return float(max(self.hourly_shape))

    def sessions_in_hour(
        self,
        day: int,
        hour: int,
        sessions_at_peak: float,
        rng: np.random.Generator | None = None,
    ) -> int:
        """Number of sessions arriving in a given (day, hour).

        The expected count is ``sessions_at_peak`` scaled by the relative
        demand; the realized count is Poisson-distributed when ``rng`` is
        given, otherwise the expectation is rounded.
        """
        if sessions_at_peak < 0:
            raise ValueError("sessions_at_peak must be non-negative")
        expected = sessions_at_peak * self.relative_demand(day, hour)
        if rng is None:
            return int(round(expected))
        return int(rng.poisson(expected))
