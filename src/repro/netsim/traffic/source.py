"""Dynamic traffic sources: churning finite flows over the network.

A :class:`TrafficSource` is the declarative description of one class of
dynamic traffic: an arrival process (when flows start), a size sampler
(how much each transfers), an optional demand profile (how the arrival
rate moves over time) and the transport configuration the spawned flows
use (congestion control, pacing, ECN, RTT, path).  The
:class:`~repro.netsim.packet.network.Network` builder turns each source
into senders that spawn at runtime, transfer their sampled size, record
a flow-completion time and retire.

Dynamic flows are *unmeasured* for the per-application throughput
results — like cross traffic, they model the background the experiment
cannot observe — but their lifecycle is fully accounted in
:class:`DynamicTrafficResult` (spawn/completion counts, per-flow FCTs,
delivered bytes), which is how churn itself becomes an observable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.netsim.packet.network import PathConfig
from repro.netsim.packet.tcp.base import normalize_ecn
from repro.netsim.traffic.arrivals import ArrivalProcess
from repro.netsim.traffic.demand import DemandProfile
from repro.netsim.traffic.sizes import SizeSampler

__all__ = ["TrafficSource", "DynamicTrafficResult"]


@dataclass(frozen=True)
class TrafficSource:
    """One class of dynamic (finite, churning) traffic.

    Attributes
    ----------
    arrivals:
        When new flows spawn (Poisson, on/off bursts, or a trace).
    sizes:
        Transfer size sampled per spawned flow, in bytes.
    demand:
        Optional time-varying modulation of the arrival rate; ``None``
        keeps the process homogeneous.
    cc, paced, ecn:
        Transport configuration of every spawned flow (``ecn`` accepts
        the same ``False`` / ``True`` / ``"classic"`` / ``"l4s"`` modes
        as :class:`~repro.netsim.packet.simulation.FlowConfig`).
    rtt_ms:
        Propagation delay of spawned flows (``None`` inherits the
        network's base RTT, or the path's).
    path:
        Network path of spawned flows (``None`` means the default
        bottleneck).
    label:
        Key of this source's :class:`DynamicTrafficResult` in the
        simulation results; empty labels become ``"source<i>"``.
    """

    arrivals: ArrivalProcess
    sizes: SizeSampler
    demand: DemandProfile | None = None
    cc: str = "reno"
    paced: bool = False
    ecn: bool | str = False
    rtt_ms: float | None = None
    path: PathConfig | None = None
    label: str = ""

    def __post_init__(self) -> None:
        if self.rtt_ms is not None and self.rtt_ms <= 0:
            raise ValueError("rtt_ms must be positive")
        normalize_ecn(self.ecn)  # reject invalid modes at config time


@dataclass
class DynamicTrafficResult:
    """Lifecycle outcomes of one traffic source over a simulation run.

    Attributes
    ----------
    label:
        The source's label (``"source<i>"`` when it did not set one).
    flows_started:
        Flows that spawned within the simulated horizon.
    flows_completed:
        Of those, the ones that delivered their full transfer before the
        simulation ended.
    completion_times_s:
        Flow-completion times (completion minus arrival) of the
        completed flows, in spawn order.
    bytes_acked:
        Bytes delivered across all of the source's flows, including the
        ones still in progress at the end.
    """

    label: str
    flows_started: int = 0
    flows_completed: int = 0
    completion_times_s: tuple[float, ...] = field(default_factory=tuple)
    bytes_acked: int = 0

    def mean_fct_s(self) -> float | None:
        """Mean flow-completion time, or ``None`` with no completions."""
        if not self.completion_times_s:
            return None
        return sum(self.completion_times_s) / len(self.completion_times_s)

    def p95_fct_s(self) -> float | None:
        """95th-percentile flow-completion time (nearest-rank)."""
        if not self.completion_times_s:
            return None
        ordered = sorted(self.completion_times_s)
        rank = max(int(0.95 * len(ordered) + 0.5) - 1, 0)
        return ordered[min(rank, len(ordered) - 1)]
