"""Helpers shared by the figure-reproduction benchmarks."""

#: Days of the main paired-link experiment (Wednesday through Sunday).
EXPERIMENT_DAYS = (0, 1, 2, 3, 4)


def run_once(benchmark, fn, *args, **kwargs):
    """Run a benchmark exactly once (the workloads are too large to repeat)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
