"""Tests for the statistical analysis pipeline (Appendix B machinery)."""

import numpy as np
import pytest

from repro.core.analysis import (
    AnalysisConfig,
    InterferenceDiagnostics,
    aggregate_by_account,
    aggregate_hourly,
    analyze_metric,
    detect_interference,
    minimum_detectable_effect,
    newey_west_covariance,
    ols,
    required_sample_size,
    treatment_effect_regression,
)
from repro.core.analysis.newey_west import bartlett_weights
from repro.core.analysis.power import switchback_intervals_needed
from repro.core.estimators import EstimateWithCI
from repro.core.units import OutcomeTable


def make_table(n_per_cell=20, days=(0, 1), effect=2.0, seed=0):
    """Session table with a known treatment effect and hour structure."""
    rng = np.random.default_rng(seed)
    cols = {k: [] for k in ("day", "hour", "treated", "account_id", "value")}
    for day in days:
        for hour in range(24):
            for arm in (0, 1):
                values = rng.normal(10.0 + hour * 0.1 + arm * effect, 1.0, n_per_cell)
                cols["day"].extend([day] * n_per_cell)
                cols["hour"].extend([hour] * n_per_cell)
                cols["treated"].extend([arm] * n_per_cell)
                cols["account_id"].extend(
                    rng.integers(0, 50, n_per_cell).tolist()
                )
                cols["value"].extend(values.tolist())
    return OutcomeTable({k: np.array(v, dtype=float) for k, v in cols.items()})


class TestHourlyAggregation:
    def test_cell_count(self):
        table = make_table(days=(0,))
        agg = aggregate_hourly(table, "value")
        assert len(agg) == 24 * 2

    def test_counts_match(self):
        table = make_table(n_per_cell=7, days=(0,))
        agg = aggregate_hourly(table, "value")
        assert all(c == 7 for c in agg.count)

    def test_values_are_cell_means(self):
        table = OutcomeTable(
            {
                "day": [0, 0, 0, 0],
                "hour": [5, 5, 5, 5],
                "treated": [0, 0, 1, 1],
                "value": [1.0, 3.0, 10.0, 20.0],
            }
        )
        agg = aggregate_hourly(table, "value")
        control = agg.value[agg.treated == 0][0]
        treated = agg.value[agg.treated == 1][0]
        assert control == pytest.approx(2.0)
        assert treated == pytest.approx(15.0)

    def test_missing_column_raises(self):
        table = OutcomeTable({"value": [1.0]})
        with pytest.raises(KeyError):
            aggregate_hourly(table, "value")

    def test_time_index_spans_days(self):
        table = make_table(days=(0, 1))
        agg = aggregate_hourly(table, "value")
        assert agg.time_index.max() >= 24


class TestAccountAggregation:
    def test_account_cells(self):
        table = OutcomeTable(
            {
                "account_id": [1, 1, 2, 2],
                "treated": [0, 0, 1, 1],
                "value": [1.0, 3.0, 5.0, 7.0],
            }
        )
        values, arms, counts = aggregate_by_account(table, "value")
        assert len(values) == 2
        assert sorted(values.tolist()) == [2.0, 6.0]
        assert sorted(counts.tolist()) == [2, 2]

    def test_account_in_both_arms_gets_two_cells(self):
        table = OutcomeTable(
            {
                "account_id": [1, 1],
                "treated": [0, 1],
                "value": [1.0, 9.0],
            }
        )
        values, arms, _ = aggregate_by_account(table, "value")
        assert len(values) == 2
        assert set(arms.tolist()) == {0, 1}

    def test_missing_column_raises(self):
        with pytest.raises(KeyError):
            aggregate_by_account(OutcomeTable({"value": [1.0]}), "value")


class TestNeweyWest:
    def test_bartlett_weights(self):
        weights = bartlett_weights(2)
        assert weights == pytest.approx([2.0 / 3.0, 1.0 / 3.0])

    def test_zero_lag_equals_white(self):
        rng = np.random.default_rng(0)
        X = np.column_stack([np.ones(100), rng.normal(size=100)])
        e = rng.normal(size=100)
        cov = newey_west_covariance(X, e, max_lag=0)
        assert cov.shape == (2, 2)
        assert np.allclose(cov, cov.T)

    def test_positive_autocorrelation_inflates_variance(self):
        rng = np.random.default_rng(1)
        n = 400
        X = np.ones((n, 1))
        # AR(1) residuals with strong positive autocorrelation.
        e = np.zeros(n)
        for t in range(1, n):
            e[t] = 0.8 * e[t - 1] + rng.normal()
        cov0 = newey_west_covariance(X, e, max_lag=0)[0, 0]
        cov5 = newey_west_covariance(X, e, max_lag=5)[0, 0]
        assert cov5 > cov0

    def test_dimension_checks(self):
        with pytest.raises(ValueError):
            newey_west_covariance(np.ones(5), np.ones(5))
        with pytest.raises(ValueError):
            newey_west_covariance(np.ones((5, 1)), np.ones(4))
        with pytest.raises(ValueError):
            newey_west_covariance(np.ones((2, 3)), np.ones(2))


class TestOLS:
    def test_recovers_exact_coefficients(self):
        X = np.column_stack([np.ones(50), np.arange(50.0)])
        y = 3.0 + 2.0 * np.arange(50.0)
        fit = ols(X, y, ("intercept", "slope"))
        assert fit.coefficient("intercept") == pytest.approx(3.0)
        assert fit.coefficient("slope") == pytest.approx(2.0)
        assert fit.r_squared(y) == pytest.approx(1.0)

    def test_noisy_recovery_with_ci(self):
        rng = np.random.default_rng(2)
        X = np.column_stack([np.ones(500), rng.normal(size=500)])
        y = 1.0 + 0.5 * X[:, 1] + rng.normal(0, 0.3, 500)
        fit = ols(X, y, ("intercept", "beta"))
        ci = fit.confidence_interval("beta")
        assert ci.covers(0.5)
        assert ci.significant

    def test_unknown_coefficient_raises(self):
        fit = ols(np.ones((5, 1)), np.ones(5), ("intercept",))
        with pytest.raises(KeyError):
            fit.coefficient("nope")

    def test_too_few_observations_raise(self):
        with pytest.raises(ValueError):
            ols(np.ones((2, 3)), np.ones(2))

    def test_column_name_mismatch_raises(self):
        with pytest.raises(ValueError):
            ols(np.ones((5, 2)), np.ones(5), ("only_one",))


class TestTreatmentEffectRegression:
    def test_recovers_known_effect(self):
        table = make_table(effect=2.0, seed=3)
        agg = aggregate_hourly(table, "value")
        fit = treatment_effect_regression(agg)
        ci = fit.confidence_interval("treatment")
        assert ci.covers(2.0)
        assert ci.significant

    def test_null_effect_not_significant(self):
        table = make_table(effect=0.0, seed=4)
        agg = aggregate_hourly(table, "value")
        ci = treatment_effect_regression(agg).confidence_interval("treatment")
        assert ci.covers(0.0)

    def test_hour_fixed_effects_absorb_diurnal_pattern(self):
        table = make_table(effect=1.0, seed=5)
        agg = aggregate_hourly(table, "value")
        fit = treatment_effect_regression(agg)
        # The hour-23 fixed effect should be near 23 * 0.1 = 2.3.
        assert fit.coefficient("hour_23") == pytest.approx(2.3, abs=0.5)

    def test_empty_aggregate_raises(self):
        table = make_table(days=(0,))
        agg = aggregate_hourly(table, "value")
        empty = type(agg)(
            hour=agg.hour[:0],
            time_index=agg.time_index[:0],
            treated=agg.treated[:0],
            value=agg.value[:0],
            count=agg.count[:0],
        )
        with pytest.raises(ValueError):
            treatment_effect_regression(empty)

    def test_weighted_regression_runs(self):
        table = make_table(effect=2.0, seed=6)
        agg = aggregate_hourly(table, "value")
        fit = treatment_effect_regression(agg, weight_by_count=True)
        assert fit.confidence_interval("treatment").covers(2.0)


class TestAnalyzeMetric:
    def test_hourly_and_account_agree_on_point_estimate(self):
        table = make_table(effect=2.0, seed=7)
        treated = table.where(treated=1)
        control = table.where(treated=0)
        hourly = analyze_metric(
            treated, control, "value", "test", config=AnalysisConfig("hourly")
        )
        account = analyze_metric(
            treated, control, "value", "test", config=AnalysisConfig("account")
        )
        assert hourly.absolute.estimate == pytest.approx(
            account.absolute.estimate, abs=0.3
        )

    def test_relative_normalization(self):
        table = make_table(effect=2.0, seed=8)
        treated = table.where(treated=1)
        control = table.where(treated=0)
        result = analyze_metric(treated, control, "value", "test", baseline=10.0)
        assert result.relative.estimate == pytest.approx(
            result.absolute.estimate / 10.0
        )
        assert result.relative_percent == pytest.approx(
            100.0 * result.relative.estimate
        )

    def test_zero_baseline_raises(self):
        table = make_table(seed=9)
        with pytest.raises(ZeroDivisionError):
            analyze_metric(
                table.where(treated=1),
                table.where(treated=0),
                "value",
                "test",
                baseline=0.0,
            )

    def test_invalid_config_raises(self):
        with pytest.raises(ValueError):
            AnalysisConfig(aggregation="nope")
        with pytest.raises(ValueError):
            AnalysisConfig(confidence=1.5)
        with pytest.raises(ValueError):
            AnalysisConfig(hac_max_lag=-1)


class TestPower:
    def test_required_sample_size_decreases_with_effect(self):
        small = required_sample_size(0.1, 1.0)
        large = required_sample_size(1.0, 1.0)
        assert small > large

    def test_mde_round_trip(self):
        n = required_sample_size(0.5, 2.0, power=0.8)
        mde = minimum_detectable_effect(n, 2.0, power=0.8)
        assert mde <= 0.5 * 1.05

    def test_switchback_intervals(self):
        assert switchback_intervals_needed(1.0, 1.0) == 2 * required_sample_size(1.0, 1.0)

    def test_invalid_inputs_raise(self):
        with pytest.raises(ValueError):
            required_sample_size(0.0, 1.0)
        with pytest.raises(ValueError):
            required_sample_size(1.0, -1.0)
        with pytest.raises(ValueError):
            minimum_detectable_effect(0, 1.0)


class TestInterferenceDiagnostics:
    def _estimate(self, value, width=0.1):
        return EstimateWithCI(value, width / 4, value - width / 2, value + width / 2)

    def test_consistent_effects_pass(self):
        diag = detect_interference(
            {0.05: self._estimate(1.0), 0.5: self._estimate(1.02)},
            {0.05: self._estimate(0.0), 0.5: self._estimate(0.01)},
        )
        assert not diag.interference_detected
        assert "No evidence" in diag.summary()

    def test_disagreeing_ates_detected(self):
        diag = detect_interference(
            {0.05: self._estimate(1.0), 0.95: self._estimate(2.0)}
        )
        assert diag.interference_detected
        assert diag.inconsistent_ate_pairs == ((0.05, 0.95),)

    def test_nonzero_spillover_detected(self):
        diag = detect_interference(
            {0.5: self._estimate(1.0)},
            {0.5: self._estimate(0.5)},
        )
        assert diag.nonzero_spillovers == (0.5,)
        assert "spillover" in diag.summary()

    def test_partial_vs_ate_disagreement_detected(self):
        diag = detect_interference(
            {0.5: self._estimate(1.0)},
            partial_by_allocation={0.5: self._estimate(3.0)},
        )
        assert diag.partial_vs_ate_disagreements == (0.5,)

    def test_empty_input_raises(self):
        with pytest.raises(ValueError):
            detect_interference({})

    def test_diagnostics_dataclass_defaults(self):
        assert not InterferenceDiagnostics().interference_detected
