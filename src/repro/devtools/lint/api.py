"""API-hygiene rule: API001 (no cross-module reads of ``_private`` names).

PR 2's composable-network refactor was forced by exactly this class of
bug: experiment code reached into senders' private counters, and the
refactor silently changed what those counters meant.  Private attributes
and module-private helpers are invisible to the content-key and
compatibility contracts, so other modules must not depend on them.

The check is scoped per module: reading ``other._cells`` inside the
module that *assigns* ``_cells`` (merge methods, alternate
constructors) is conventional Python and stays legal; reading a private
attribute never assigned in the current module — or importing a
``_name`` from another module — is flagged.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.devtools.lint.base import Diagnostic, Rule, register_rule
from repro.devtools.lint.config import RULE_SCOPES
from repro.devtools.lint.walker import FileContext

__all__ = ["PrivateAccessRule"]


def _is_private(name: str) -> bool:
    """Single-underscore private (dunders are protocol, not private)."""
    return name.startswith("_") and not (name.startswith("__") and name.endswith("__"))


def _local_private_names(tree: ast.Module) -> frozenset[str]:
    """Private attribute/function/class names defined in this module.

    Collects attribute-store targets (``self._x = ...``), function,
    class and variable definitions, plus class-body annotations — the
    set of private names this module legitimately owns.
    """
    owned: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Attribute) and isinstance(node.ctx, (ast.Store, ast.Del)):
            owned.add(node.attr)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            owned.add(node.name)
            if isinstance(node, ast.ClassDef):
                for stmt in node.body:
                    if isinstance(stmt, ast.AnnAssign) and isinstance(
                        stmt.target, ast.Name
                    ):
                        owned.add(stmt.target.id)
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            owned.add(node.id)
        elif isinstance(node, ast.arg):
            owned.add(node.arg)
    return frozenset(owned)


@register_rule
class PrivateAccessRule(Rule):
    """API001: no cross-module reads of ``_private`` attributes or names."""

    code = "API001"
    summary = "cross-module read/import of a _private attribute or helper"
    scopes = RULE_SCOPES["API001"]

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        """Flag private imports and reads of externally-owned private attrs."""
        owned = _local_private_names(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    if _is_private(alias.name):
                        source = ("." * node.level) + (node.module or "")
                        yield self.report(
                            ctx,
                            node,
                            f"importing private name {alias.name!r} from "
                            f"{source or 'module'}: promote it to a public "
                            "name or move the shared logic",
                        )
            elif isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
                if not _is_private(node.attr) or node.attr in owned:
                    continue
                base = node.value
                if isinstance(base, ast.Name) and base.id in ("self", "cls"):
                    continue
                if isinstance(base, ast.Call) and isinstance(base.func, ast.Name):
                    if base.func.id == "super":
                        continue
                yield self.report(
                    ctx,
                    node,
                    f"read of private attribute {node.attr!r} not owned by "
                    "this module; use (or add) a public accessor",
                )
