"""Tests for the DCTCP/Prague (L4S) sender response.

The contract: ``ecn="l4s"`` keeps a per-RTT EWMA of the marked fraction
(``l4s_alpha``) and reacts to an echoed mark with a *proportional* cut —
``cwnd *= 1 - alpha/2`` — instead of the classic loss-equivalent
reduction; ``ecn=True`` stays an exact alias for ``ecn="classic"``; and
BBR ignores marks in both modes.
"""

import pytest

from repro.netsim.packet.engine import EventScheduler
from repro.netsim.packet.packets import Packet
from repro.netsim.packet.simulation import FlowConfig, simulate
from repro.netsim.packet.tcp import BBRSender, CubicSender, RenoSender
from repro.netsim.traffic import TrafficSource
from repro.netsim.traffic.arrivals import PoissonArrivals
from repro.netsim.traffic.sizes import FixedSizes


def make_sender(cls=RenoSender, ecn="l4s", **kwargs):
    scheduler = EventScheduler()
    sent = []
    sender = cls(0, scheduler, sent.append, ecn=ecn, **kwargs)
    return sender, scheduler, sent


def make_ce_packet(sender, ce=True, sequence=0):
    return Packet(
        flow_id=0,
        sequence=sequence,
        size_bytes=sender.mss_bytes,
        send_time=sender.scheduler.now,
        ecn_capable=True,
        l4s=sender.ecn_mode == "l4s",
        ce_marked=ce,
    )


def ack_packet(sender, ce=False, sequence=0):
    packet = make_ce_packet(sender, ce=ce, sequence=sequence)
    sender.handle_ack(packet, sender.base_rtt_s)
    return packet


class TestEcnModeNormalization:
    def test_bool_true_is_classic(self):
        sender, _, _ = make_sender(ecn=True)
        assert sender.ecn is True
        assert sender.ecn_mode == "classic"

    def test_bool_false_is_no_ecn(self):
        sender, _, _ = make_sender(ecn=False)
        assert sender.ecn is False
        assert sender.ecn_mode is None

    def test_l4s_mode(self):
        sender, _, _ = make_sender(ecn="l4s")
        assert sender.ecn is True
        assert sender.ecn_mode == "l4s"

    def test_invalid_mode_rejected_everywhere(self):
        with pytest.raises(ValueError):
            make_sender(ecn="bogus")
        with pytest.raises(ValueError):
            FlowConfig(0, ecn="bogus")
        with pytest.raises(ValueError):
            TrafficSource(
                arrivals=PoissonArrivals(1.0),
                sizes=FixedSizes(1000.0),
                ecn="bogus",
            )

    @pytest.mark.parametrize("sneaky", [0, 1, 0.0])
    def test_non_bool_scalars_rejected_at_config_time(self, sneaky):
        # 0 == False and 1 == True, so an equality-based check would let
        # these through config validation only to crash mid-simulation;
        # the shared normalizer rejects them up front, everywhere.
        with pytest.raises(ValueError):
            FlowConfig(0, ecn=sneaky)
        with pytest.raises(ValueError):
            make_sender(ecn=sneaky)
        with pytest.raises(ValueError):
            TrafficSource(
                arrivals=PoissonArrivals(1.0),
                sizes=FixedSizes(1000.0),
                ecn=sneaky,
            )

    def test_l4s_packets_carry_the_flag(self):
        sender, _, sent = make_sender(ecn="l4s")
        sender.start()
        assert sent and all(p.l4s and p.ecn_capable for p in sent)

    def test_classic_packets_do_not(self):
        sender, _, sent = make_sender(ecn="classic")
        sender.start()
        assert sent and all(not p.l4s and p.ecn_capable for p in sent)


class TestProportionalCut:
    def test_cut_is_proportional_to_alpha(self):
        sender, _, _ = make_sender()
        sender.start()
        sender.cwnd = 100.0
        sender.l4s_alpha = 0.2
        sender.on_ecn_mark(make_ce_packet(sender))
        assert sender.cwnd == pytest.approx(100.0 * (1.0 - 0.2 / 2.0))
        assert sender.ssthresh == pytest.approx(sender.cwnd)

    def test_saturated_alpha_halves_like_classic(self):
        sender, _, _ = make_sender()
        sender.start()
        sender.cwnd = 100.0
        sender.l4s_alpha = 1.0
        sender.on_ecn_mark(make_ce_packet(sender))
        assert sender.cwnd == pytest.approx(50.0)

    def test_cut_respects_the_window_floor(self):
        sender, _, _ = make_sender()
        sender.start()
        sender.cwnd = 2.0
        sender.l4s_alpha = 1.0
        sender.on_ecn_mark(make_ce_packet(sender))
        assert sender.cwnd >= 2.0

    def test_classic_mode_still_halves_regardless_of_marks_density(self):
        sender, _, _ = make_sender(ecn="classic")
        sender.start()
        sender.cwnd = 100.0
        sender.ssthresh = 100.0  # out of slow start
        sender.on_ecn_mark(make_ce_packet(sender))
        assert sender.cwnd == pytest.approx(50.0)

    def test_cubic_epoch_resets_with_the_cut(self):
        sender, _, _ = make_sender(cls=CubicSender)
        sender.start()
        sender.cwnd = 100.0
        sender.ssthresh = 100.0
        sender._epoch_start = 1.0
        sender.l4s_alpha = 0.5
        sender.on_l4s_mark(make_ce_packet(sender))
        assert sender.cwnd == pytest.approx(75.0)
        assert sender._epoch_start is None
        assert sender._w_max == pytest.approx(100.0)

    def test_bbr_ignores_l4s_marks(self):
        sender, _, _ = make_sender(cls=BBRSender)
        sender.start()
        before = sender.window_limit()
        for seq in range(5):
            ack_packet(sender, ce=True, sequence=seq)
        assert sender.window_limit() >= before // 2  # no mark-driven collapse
        assert sender.packets_marked == 5


class TestAlphaEstimator:
    def test_alpha_tracks_the_marked_fraction(self):
        sender, scheduler, _ = make_sender()
        sender.start()
        sender.cwnd = 1000.0  # keep the ack clock from stalling
        # Feed several RTT windows of half-marked acks; alpha must move
        # from its conservative 1.0 toward 0.5.
        seq = 0
        for window in range(30):
            for i in range(10):
                ack_packet(sender, ce=i % 2 == 0, sequence=seq)
                seq += 1
            scheduler._now = scheduler.now + sender.srtt + 1e-6
        assert 0.4 < sender.l4s_alpha < 0.75

    def test_alpha_decays_without_marks(self):
        sender, scheduler, _ = make_sender()
        sender.start()
        sender.cwnd = 1000.0
        sender.l4s_alpha = 1.0
        seq = 0
        for window in range(40):
            for i in range(10):
                ack_packet(sender, ce=False, sequence=seq)
                seq += 1
            scheduler._now = scheduler.now + sender.srtt + 1e-6
        assert sender.l4s_alpha < 0.2


class TestClassicAliasEquivalence:
    def test_true_and_classic_simulate_identically(self):
        def run(ecn):
            return simulate(
                [FlowConfig(0, ecn=ecn), FlowConfig(1, ecn=ecn)],
                capacity_mbps=20.0,
                duration_s=6.0,
                warmup_s=2.0,
                queue_discipline="codel",
            )

        a, b = run(True), run("classic")
        assert a.flows == b.flows
        assert a.queue_marks == b.queue_marks
        assert a.total_drops == b.total_drops


class TestL4sEndToEnd:
    def test_l4s_flow_on_dualpi2_is_marked_never_dropped(self):
        result = simulate(
            [FlowConfig(0, ecn="l4s", paced=True), FlowConfig(1, ecn="l4s", paced=True)],
            capacity_mbps=20.0,
            duration_s=6.0,
            warmup_s=2.0,
            queue_discipline="dualpi2",
            buffer_bdp=20.0,  # deep buffer: every AQM decision is a mark
            seed=0,
        )
        for flow in result.flows:
            assert flow.packets_marked > 0
            assert flow.packets_lost == 0
            assert flow.retransmit_fraction == 0.0
        assert result.total_marks() > 0

    def test_l4s_marks_are_fine_grained(self):
        # The step threshold signals far more often than classic CoDel's
        # control law — the fine-grained signal the proportional response
        # needs.  Compare marks for the same offered load.
        def marks(ecn, discipline):
            result = simulate(
                [FlowConfig(0, ecn=ecn, paced=True), FlowConfig(1, ecn=ecn, paced=True)],
                capacity_mbps=20.0,
                duration_s=6.0,
                warmup_s=2.0,
                queue_discipline=discipline,
                buffer_bdp=20.0,
                seed=0,
            )
            return result.total_marks()

        assert marks("l4s", "dualpi2") > 3 * marks("classic", "codel")
