"""Paired-link video workload generator.

This is the synthetic stand-in for the production system of Section 4: a
location with two identical clusters, each behind its own congested
100 Gb/s peering link to the same ISP.  Demand on each link follows the
diurnal curve; each session is assigned to treatment (bitrate capping) or
control according to an :class:`~repro.core.designs.base.AllocationPlan`;
the aggregate offered load of a link-hour determines its congestion state;
and per-session outcomes are drawn from the QoE model.

Because congestion is computed from the *total* load on a link, capping a
large fraction of a link's traffic delays congestion onset and softens it
— improving outcomes for every session on that link, treated or not.
Capping a small fraction barely changes the link's load, so treated and
control sessions both see the original congestion.  This is precisely the
interference mechanism the paper identifies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Mapping, Sequence

import numpy as np

from repro.core.designs.base import AllocationPlan
from repro.core.units import SESSION_METRICS, OutcomeTable
from repro.workload.congestion import CongestionModel, LinkHourState
from repro.workload.demand import DiurnalDemandModel
from repro.workload.qoe import LinkEffects, SessionOutcomeModel
from repro.workload.video import BitrateCapPolicy

__all__ = ["WorkloadConfig", "PairedLinkWorkload", "DEFAULT_LINK_EFFECTS"]


#: Pre-existing differences between the two links measured in the paper's
#: baseline week: link 1 had ~20 % more rebuffers, ~5 % more bytes, ~2 %
#: higher stability and ~0.1 % lower perceptual quality than link 2.
DEFAULT_LINK_EFFECTS: dict[int, LinkEffects] = {
    1: LinkEffects(
        rebuffer_multiplier=1.20,
        bytes_multiplier=1.05,
        stability_offset=2.0,
        quality_offset=-0.1,
    ),
    2: LinkEffects(),
}


@dataclass(frozen=True)
class WorkloadConfig:
    """Configuration of the paired-link workload.

    Parameters
    ----------
    links:
        Link identifiers (paper: links 1 and 2).
    sessions_at_peak:
        Expected number of session arrivals per link during the weekday
        peak hour.  Total session counts scale with this.
    n_accounts:
        Size of the account population per link (sessions are assigned to
        accounts uniformly; accounts carry persistent access-network
        effects).
    capacity_gbps:
        Capacity of each peering link.
    uncapped_nominal_mbps:
        Average offered rate of an uncapped session while streaming.
    capped_nominal_mbps:
        Average offered rate of a capped session (the paper reports
        capping reduced traffic by ~25 %).
    peak_utilization_uncapped:
        Link utilization reached at the weekday peak hour when *no* traffic
        is capped.  Values above 1 make the link reliably congested during
        peak hours, as in the paper.
    cap_policy:
        The bitrate cap applied to treated sessions.
    demand, congestion, outcomes:
        The demand curve, congestion model and per-session outcome model.
    link_effects:
        Persistent per-link differences.
    hourly_shock_sigma:
        Log-normal sigma of a shock shared by all sessions in a link-hour
        cell.  Non-zero values create the within-hour correlation that the
        paper's conservative hourly-aggregation analysis is designed to be
        robust to (Figure 13).
    seed:
        Master random seed.
    """

    links: tuple[int, ...] = (1, 2)
    sessions_at_peak: int = 400
    n_accounts: int = 5000
    capacity_gbps: float = 100.0
    uncapped_nominal_mbps: float = 4.6
    capped_nominal_mbps: float = 3.45
    peak_utilization_uncapped: float = 1.32
    cap_policy: BitrateCapPolicy = field(default_factory=BitrateCapPolicy)
    demand: DiurnalDemandModel = field(default_factory=DiurnalDemandModel)
    congestion: CongestionModel = field(default_factory=CongestionModel)
    outcomes: SessionOutcomeModel = field(default_factory=SessionOutcomeModel)
    link_effects: Mapping[int, LinkEffects] = field(
        default_factory=lambda: dict(DEFAULT_LINK_EFFECTS)
    )
    hourly_shock_sigma: float = 0.08
    seed: int = 0

    def __post_init__(self) -> None:
        if len(self.links) < 1:
            raise ValueError("at least one link is required")
        if self.sessions_at_peak <= 0:
            raise ValueError("sessions_at_peak must be positive")
        if self.n_accounts <= 0:
            raise ValueError("n_accounts must be positive")
        if self.uncapped_nominal_mbps <= 0 or self.capped_nominal_mbps <= 0:
            raise ValueError("nominal session rates must be positive")
        if self.capped_nominal_mbps > self.uncapped_nominal_mbps:
            raise ValueError("capping cannot increase a session's offered rate")
        if self.peak_utilization_uncapped <= 0:
            raise ValueError("peak_utilization_uncapped must be positive")

    @property
    def concurrency_factor(self) -> float:
        """Scale from per-hour arrivals to concurrent offered load.

        Chosen so that a weekday peak hour with every session uncapped
        offers ``peak_utilization_uncapped * capacity`` to the link.
        """
        peak_sessions = self.sessions_at_peak * self.demand.peak_relative_demand()
        peak_offered_mbps = peak_sessions * self.uncapped_nominal_mbps
        target_mbps = self.peak_utilization_uncapped * self.capacity_gbps * 1000.0
        return target_mbps / peak_offered_mbps


class PairedLinkWorkload:
    """Generates session-level outcomes for the paired-link experiment."""

    def __init__(self, config: WorkloadConfig | None = None):
        self.config = config or WorkloadConfig()
        rng = np.random.default_rng(self.config.seed)
        # Persistent per-account effects: shared access network quality.
        self._account_throughput_factor = np.exp(
            rng.normal(0.0, 0.25, size=self.config.n_accounts)
        )
        self._account_rtt_factor = np.exp(
            rng.normal(0.0, 0.20, size=self.config.n_accounts)
        )

    # -- load / congestion --------------------------------------------------------

    def offered_load_gbps(self, n_uncapped: int, n_capped: int) -> float:
        """Offered load on a link given the mix of active sessions."""
        cfg = self.config
        offered_mbps = cfg.concurrency_factor * (
            n_uncapped * cfg.uncapped_nominal_mbps + n_capped * cfg.capped_nominal_mbps
        )
        return offered_mbps / 1000.0

    def link_hour_state(self, n_uncapped: int, n_capped: int) -> LinkHourState:
        """Congestion state of a link-hour with the given session mix."""
        return self.config.congestion.state_for_load(
            self.offered_load_gbps(n_uncapped, n_capped)
        )

    # -- generation ------------------------------------------------------------------

    def generate(
        self,
        plan: AllocationPlan,
        days: Sequence[int],
        treatment_active: bool = True,
        seed_offset: int = 1,
    ) -> OutcomeTable:
        """Generate the session table for an experiment.

        Parameters
        ----------
        plan:
            Allocation plan giving the treated fraction per (link, day).
        days:
            Days to simulate (day 0 is the first experiment day).
        treatment_active:
            When False, sessions are still labelled treated/control but the
            cap is not actually applied — an A/A test.
        seed_offset:
            Offset added to the master seed so different runs (baseline,
            main experiment, A/A week) draw different randomness.
        """
        cfg = self.config
        rng = np.random.default_rng(cfg.seed + seed_offset)

        columns: dict[str, list[np.ndarray]] = {
            name: []
            for name in (
                "session_id",
                "account_id",
                "day",
                "hour",
                "link",
                "treated",
                *SESSION_METRICS,
            )
        }
        next_session_id = 0

        for day in days:
            day = int(day)
            weekend = cfg.demand.is_weekend(day)
            for link in cfg.links:
                allocation = plan.allocation(link, day)
                effects = cfg.link_effects.get(int(link), LinkEffects())
                for hour in range(24):
                    n = cfg.demand.sessions_in_hour(day, hour, cfg.sessions_at_peak, rng)
                    if n == 0:
                        continue
                    treated = rng.random(n) < allocation
                    capped = treated & treatment_active
                    state = self.link_hour_state(
                        int(n - capped.sum()), int(capped.sum())
                    )
                    account_ids = rng.integers(0, cfg.n_accounts, size=n)
                    cell_shock = (
                        float(np.exp(rng.normal(0.0, cfg.hourly_shock_sigma)))
                        if cfg.hourly_shock_sigma > 0
                        else 1.0
                    )
                    outcomes = cfg.outcomes.generate(
                        capped=capped,
                        state=state,
                        link_effects=effects,
                        cap_policy=cfg.cap_policy,
                        account_throughput_factor=self._account_throughput_factor[
                            account_ids
                        ],
                        account_rtt_factor=self._account_rtt_factor[account_ids],
                        weekend=weekend,
                        rng=rng,
                        cell_shock=cell_shock,
                    )
                    columns["session_id"].append(
                        np.arange(next_session_id, next_session_id + n, dtype=float)
                    )
                    next_session_id += n
                    columns["account_id"].append(account_ids.astype(float))
                    columns["day"].append(np.full(n, float(day)))
                    columns["hour"].append(np.full(n, float(hour)))
                    columns["link"].append(np.full(n, float(link)))
                    columns["treated"].append(treated.astype(float))
                    for name in SESSION_METRICS:
                        columns[name].append(np.asarray(outcomes[name], dtype=float))

        if next_session_id == 0:
            raise ValueError("the workload generated zero sessions")
        return OutcomeTable({k: np.concatenate(v) for k, v in columns.items()})

    def generate_baseline(
        self, days: Sequence[int], seed_offset: int = 101
    ) -> OutcomeTable:
        """Generate a baseline period with no treatment anywhere."""
        plan = AllocationPlan({}, default=0.0)
        return self.generate(
            plan, days, treatment_active=False, seed_offset=seed_offset
        )

    def generate_aa_test(
        self,
        days: Sequence[int],
        allocation: float = 0.5,
        seed_offset: int = 202,
    ) -> OutcomeTable:
        """Generate an A/A week: sessions are labelled but never capped."""
        plan = AllocationPlan({}, default=allocation)
        return self.generate(
            plan, days, treatment_active=False, seed_offset=seed_offset
        )
