"""Command-line interface: reproduce figures, sweeps and whole campaigns.

The CLI is a family of subcommands::

    repro list                       # enumerate figures and tools
    repro fig2a                      # parallel-connections lab figure
    repro fig5 --quick               # paired-link treatment-effect table
    repro fig10 --seed 11 --jobs 4   # design comparison, 4 worker processes
    repro topo_rtt --jobs 4          # A/B bias under heterogeneous RTTs
    repro topo_aqm --quick           # does CoDel shrink the A/B bias?
    repro topo_parking --jobs 4      # parking-lot bias + cross-segment spillover
    repro topo_fq --quick            # does per-flow FQ eliminate the bias?
    repro topo_churn --quick         # bias under flow churn + switchback-vs-ramp
    repro topo_l4s --quick           # does L4S/DCTCP marking shrink the bias?
    repro fleet --quick --jobs 4     # sharded fleet: bias vs cluster size
    repro sweep fig5 --replications 5 --jobs 4   # multi-seed mean ± CI
    repro run campaign.yaml --jobs 4 --trace RUN # declarative campaign
    repro validate RUN               # check a campaign run directory
    repro lint src                   # invariant linter (see docs/invariants.md)
    repro report RUN                 # render a traced run directory

Every figure subcommand prints the same rows/series the corresponding
benchmark asserts on; ``--quick`` shrinks the synthetic workload for
faster runs.  ``--jobs N`` fans independent simulation arms out over N
worker processes (results are bit-identical to ``--jobs 1``), and
``--cache`` reuses results of unchanged runs from an on-disk cache.

``repro sweep FIGURE`` runs ``--replications`` seeds of one figure
through the parallel runner and reports each scalar cell's mean with a
95 % confidence interval across seeds.  ``repro run CAMPAIGN`` scales
that up to a declarative YAML/JSON campaign file — many figures, knob
sweeps and seed grids in one command (see ``docs/campaigns.md``) — and
``repro validate RUNDIR`` replays the resulting ``manifest.json``.

``--trace DIR`` (on ``sweep``, ``fleet`` and ``run``) records runner
spans and cache events to a run directory, ``--profile`` adds per-task
cProfile hotspots, and ``--probe SECONDS`` samples in-sim telemetry on
fleet shards — all without changing any simulated result (see
``docs/observability.md``).  Each flag lives only on the subcommands it
applies to, so an inapplicable flag is a parse error, not a silent no-op.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence
from pathlib import Path

import numpy as np

from repro.core.units import SESSION_METRICS
from repro.experiments import (
    PairedLinkExperiment,
    compare_designs,
    compare_links_at_baseline,
    run_aqm_experiment,
    run_cc_experiment,
    run_churn_experiment,
    run_connections_experiment,
    run_fleet_experiment,
    run_fq_experiment,
    run_l4s_experiment,
    run_pacing_experiment,
    run_parking_lot_experiment,
    run_rtt_experiment,
    run_switchback_ramp_experiment,
)
from repro.reporting import format_table
from repro.runner import ParallelExecutor, ResultCache, ScenarioSpec, default_cache_dir
from repro.runner.tasks import FIGURE_CELL_TASKS
from repro.workload import WorkloadConfig

__all__ = ["build_parser", "main"]

#: Figures that only need the fluid lab simulator.
LAB_FIGURES = {
    "fig2a": run_connections_experiment,
    "fig2b": run_pacing_experiment,
    "fig3": run_cc_experiment,
}

#: Figures derived from the paired-link workload run.
PAIRED_FIGURES = ("baseline", "fig5", "fig7", "fig8", "fig9", "fig10")

#: Beyond-the-paper topology figures on the packet-level simulator.
TOPOLOGY_FIGURES = (
    "topo_rtt",
    "topo_aqm",
    "topo_parking",
    "topo_fq",
    "topo_churn",
    "topo_l4s",
)

#: Topology figures that consume the seed (dynamic-traffic randomness);
#: the rest are deterministic and collapse to one sweep replication.
SEEDED_TOPOLOGY_FIGURES = ("topo_churn",)

#: The sharded packet/fluid fleet experiment (bias vs cluster size).
FLEET_FIGURES = ("fleet",)

#: One-line help per figure subcommand (shown in ``repro --help``).
_FIGURE_HELP = {
    "fig2a": "parallel-connections lab figure (Figure 2a)",
    "fig2b": "pacing lab figure (Figure 2b)",
    "fig3": "Cubic-vs-BBR lab figure (Figure 3)",
    "baseline": "Section 4.1 baseline link-similarity table",
    "fig5": "paired-link treatment-effect table (Figure 5)",
    "fig7": "paired-link throughput cells (Figure 7)",
    "fig8": "paired-link min-RTT cells (Figure 8)",
    "fig9": "paired-link retransmission split (Figure 9)",
    "fig10": "switchback / event-study design comparison (Figure 10)",
    "topo_rtt": "A/B bias under heterogeneous RTTs",
    "topo_aqm": "A/B bias under AQM (CoDel/RED) vs drop-tail",
    "topo_parking": "parking-lot bias and cross-segment spillover",
    "topo_fq": "per-flow FQ-CoDel vs drop-tail bias",
    "topo_churn": "bias under flow churn + switchback-vs-ramp",
    "topo_l4s": "L4S/DCTCP marking vs classic AQM bias",
    "fleet": "sharded fleet: bias vs assignment cluster size",
}


def _make_cache(args: argparse.Namespace) -> ResultCache | None:
    if not args.cache:
        return None
    return ResultCache(args.cache_dir or default_cache_dir())


def _print_lab_figure(name: str, args: argparse.Namespace) -> None:
    figure = LAB_FIGURES[name](jobs=args.jobs, cache=_make_cache(args))
    print("\n".join(figure.summary_lines()))


def _parse_rtt_spread(text: str, parser: argparse.ArgumentParser) -> tuple[float, ...]:
    try:
        values = tuple(float(part) for part in text.split(",") if part.strip())
    except ValueError:
        values = ()
    if not values or any(v <= 0 for v in values):
        parser.error(f"--rtt-spread needs positive comma-separated ms values, got {text!r}")
    return values


def _parse_disciplines(text: str, parser: argparse.ArgumentParser) -> tuple[str, ...]:
    from repro.netsim.packet.queue import QUEUE_DISCIPLINES

    names = tuple(part.strip() for part in text.split(",") if part.strip())
    unknown = [name for name in names if name not in QUEUE_DISCIPLINES]
    if not names or unknown:
        parser.error(
            f"--disciplines needs comma-separated names from "
            f"{', '.join(sorted(QUEUE_DISCIPLINES))}; got {text!r}"
        )
    return names


def _parse_churn_rates(text: str, parser: argparse.ArgumentParser) -> tuple[float, ...]:
    try:
        values = tuple(float(part) for part in text.split(",") if part.strip())
    except ValueError:
        values = ()
    if not values or any(v < 0 for v in values) or len(set(values)) != len(values):
        parser.error(
            f"--churn-rates needs distinct non-negative comma-separated "
            f"flow-per-second values, got {text!r}"
        )
    return values


def _print_topology_figure(
    name: str, args: argparse.Namespace, parser: argparse.ArgumentParser
) -> None:
    if name == "topo_churn":
        if not 0.5 < args.traffic_split <= 1.0:
            parser.error("--traffic-split must be in (0.5, 1.0]")
        cache = _make_cache(args)
        comparison = run_churn_experiment(
            churn_rates=_parse_churn_rates(args.churn_rates, parser),
            quick=args.quick,
            jobs=args.jobs,
            cache=cache,
            seed=args.seed,
        )
        print("\n".join(comparison.summary_lines()))
        print()
        ramp = run_switchback_ramp_experiment(
            traffic_split=args.traffic_split,
            quick=args.quick,
            jobs=args.jobs,
            cache=cache,
            seed=args.seed,
        )
        print("\n".join(ramp.summary_lines()))
        return
    if name == "topo_l4s":
        comparison = run_l4s_experiment(
            quick=args.quick,
            jobs=args.jobs,
            cache=_make_cache(args),
        )
        print("\n".join(comparison.summary_lines()))
        return
    if name == "topo_rtt":
        figure = run_rtt_experiment(
            rtt_spread_ms=_parse_rtt_spread(args.rtt_spread, parser),
            quick=args.quick,
            jobs=args.jobs,
            cache=_make_cache(args),
        )
        print("\n".join(figure.summary_lines()))
        return
    if name == "topo_parking":
        from repro.experiments.lab_parking_lot import MIN_SEGMENTS

        if args.segments < MIN_SEGMENTS:
            parser.error(
                f"--segments must be at least {MIN_SEGMENTS} (cross-segment "
                "spillover needs two disjoint unit spans)"
            )
        comparison = run_parking_lot_experiment(
            n_segments=args.segments,
            quick=args.quick,
            jobs=args.jobs,
            cache=_make_cache(args),
        )
    elif name == "topo_fq":
        # topo_fq has its own discipline default (droptail vs fq_codel);
        # an explicit --disciplines still overrides it.
        if args.disciplines is not None:
            disciplines = _parse_disciplines(args.disciplines, parser)
        else:
            disciplines = ("droptail", "fq_codel")
        comparison = run_fq_experiment(
            disciplines=disciplines,
            quick=args.quick,
            jobs=args.jobs,
            cache=_make_cache(args),
        )
    else:
        comparison = run_aqm_experiment(
            disciplines=_parse_disciplines(args.disciplines, parser),
            quick=args.quick,
            jobs=args.jobs,
            cache=_make_cache(args),
        )
    print("\n".join(comparison.summary_lines()))


def _command_line(args: argparse.Namespace) -> str:
    """Reconstruct a readable command line for the trace metadata."""
    parts = ["repro", args.figure]
    for attribute in ("campaign_file", "target"):
        value = getattr(args, attribute, None)
        if value:
            parts.append(str(value))
    if getattr(args, "quick", False):
        parts.append("--quick")
    if getattr(args, "jobs", 1) != 1:
        parts.append(f"--jobs {args.jobs}")
    probe = getattr(args, "probe", None)
    if probe:
        parts.append(f"--probe {probe:g}")
    if getattr(args, "profile", False):
        parts.append("--profile")
    return " ".join(parts)


def _make_tracer(args: argparse.Namespace):
    """The run tracer for ``--trace DIR``, or ``None``."""
    if not args.trace:
        return None
    from repro.obs.trace import RunTracer

    return RunTracer(args.trace, command=_command_line(args))


def _print_fleet_figure(args: argparse.Namespace, parser: argparse.ArgumentParser) -> None:
    from repro.netsim.fleet import GRANULARITIES

    granularities = (
        GRANULARITIES if args.granularity == "all" else (args.granularity,)
    )
    if args.units is not None and args.units < 1:
        parser.error("--units must be positive")
    if args.edges is not None and args.edges < 1:
        parser.error("--edges must be positive")

    # Observability: a traced/profiled executor plus a live shard
    # progress line (on a terminal, or whenever a trace is requested).
    tracer = _make_tracer(args)
    progress = None
    if tracer is not None or sys.stderr.isatty():
        from repro.obs.trace import ProgressPrinter

        progress = ProgressPrinter("shards")
    executor = None
    if tracer is not None or args.profile or progress is not None:
        executor = ParallelExecutor(
            jobs=args.jobs,
            cache=_make_cache(args),
            tracer=tracer,
            profile=args.profile,
            on_task_done=progress,
        )

    from repro.obs.trace import walltime

    started = walltime()
    comparison = run_fleet_experiment(
        units=args.units,
        edges=args.edges,
        granularities=granularities,
        quick=args.quick,
        jobs=args.jobs,
        cache=_make_cache(args) if executor is None else None,
        executor=executor,
        probe_interval_s=args.probe or 0.0,
        seed=args.seed,
    )
    print("\n".join(comparison.summary_lines()))

    if tracer is not None:
        wall = walltime() - started
        fleets = len(comparison.outcomes) + 2
        tracer.add_counters(comparison.counters)
        tracer.finish(
            {
                "figure": "fleet",
                "shards": comparison.spec.edges * fleets,
                "units": comparison.spec.units,
                "units_per_s": (
                    comparison.spec.units * fleets / wall if wall > 0 else 0.0
                ),
            }
        )
        print(f"trace written to {args.trace}", file=sys.stderr)


def _run_paired(args: argparse.Namespace):
    sessions = 150 if args.quick else 300
    config = WorkloadConfig(sessions_at_peak=sessions, seed=args.seed)
    return PairedLinkExperiment(config=config).run(
        jobs=args.jobs, cache=_make_cache(args)
    )


def _print_paired_figure(name: str, args: argparse.Namespace) -> None:
    outcome = _run_paired(args)
    if name == "baseline":
        rows = [
            [r.metric, f"{r.relative_percent:+.1f}%", "yes" if r.significant else "no"]
            for r in compare_links_at_baseline(outcome.baseline_table)
        ]
        print(format_table(["metric", "link1 vs link2", "significant"], rows))
    elif name == "fig5":
        rows = [
            [
                row["metric"],
                f"{row['ab_0.05']:+.1f}%",
                f"{row['ab_0.95']:+.1f}%",
                f"{row['tte']:+.1f}%",
                f"{row['spillover']:+.1f}%",
            ]
            for row in outcome.figure5_rows()
        ]
        print(format_table(["metric", "A/B 5%", "A/B 95%", "TTE", "spillover"], rows))
    elif name == "fig7":
        cells = outcome.figure7_cells()
        print(
            format_table(
                ["cell", "throughput (Mb/s)"],
                [
                    ["link 1, capped 95%", f"{cells.link1_treated:.2f}"],
                    ["link 1, uncapped 5%", f"{cells.link1_control:.2f}"],
                    ["link 2, capped 5%", f"{cells.link2_treated:.2f}"],
                    ["link 2, uncapped 95%", f"{cells.link2_control:.2f}"],
                ],
            )
        )
    elif name == "fig8":
        cells = outcome.figure8_cells()
        print(
            format_table(
                ["cell", "min RTT (normalized)"],
                [
                    ["link 1, capped 95%", f"{cells.link1_treated:.3f}"],
                    ["link 1, uncapped 5%", f"{cells.link1_control:.3f}"],
                    ["link 2, capped 5%", f"{cells.link2_treated:.3f}"],
                    ["link 2, uncapped 95%", f"{cells.link2_control:.3f}"],
                ],
            )
        )
    elif name == "fig9":
        split = outcome.figure9_retransmit_split()
        print(
            format_table(
                ["period", "retransmit change"],
                [
                    ["peak", f"{100 * split['peak']:+.1f}%"],
                    ["off-peak", f"{100 * split['off_peak']:+.1f}%"],
                    ["overall TTE", f"{100 * split['overall']:+.1f}%"],
                ],
            )
        )
    elif name == "fig10":
        comparison = compare_designs(
            outcome.experiment_table,
            (0, 1, 2, 3, 4),
            outcome.estimates["tte"],
            baselines=outcome.baselines,
            jobs=args.jobs,
            cache=_make_cache(args),
        )
        rows = [
            [
                row["metric"],
                f"{row['paired_link']:+.1f}%",
                f"{row['switchback']:+.1f}%",
                f"{row['event_study']:+.1f}%",
            ]
            for row in comparison.rows(SESSION_METRICS)
        ]
        print(format_table(["metric", "paired link", "switchback", "event study"], rows))
    else:  # pragma: no cover - guarded by argparse choices
        raise KeyError(name)


def _run_sweep(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    target = args.target
    if target is None or target not in FIGURE_CELL_TASKS:
        parser.error(
            f"'sweep' needs a figure to replicate; choose one of {', '.join(FIGURE_CELL_TASKS)}"
        )
    if args.replications < 1:
        parser.error("--replications must be at least 1")
    if args.profile and args.trace is None:
        parser.error("--profile requires --trace DIR (hotspots land in the trace)")

    # Only include knobs the figure actually consumes: noise applies to lab
    # figures, quick to paired-link and topology figures.  Keeping inert
    # flags out of the spec keeps them out of the content key, so they
    # cannot split the cache.
    params: dict[str, object] = {"figure": target}
    if target in LAB_FIGURES:
        params["noise"] = args.noise
    else:
        params["quick"] = args.quick
    # Topology figures other than topo_churn ignore the seed entirely
    # (packet sims are deterministic), so replications would recompute
    # identical cells; collapse them to one seed-free run.  topo_churn
    # draws its arrivals and flow sizes from the seed, so its
    # replications genuinely differ.
    deterministic = (
        target in TOPOLOGY_FIGURES and target not in SEEDED_TOPOLOGY_FIGURES
    )
    replication_count = 1 if deterministic else args.replications
    specs = [
        ScenarioSpec(
            task="figure.cells",
            params=params,
            seed=None if deterministic else args.seed + r,
            label=f"sweep[{target}, seed={args.seed + r}]",
        )
        for r in range(replication_count)
    ]
    tracer = _make_tracer(args)
    executor = ParallelExecutor(
        jobs=args.jobs,
        cache=_make_cache(args),
        tracer=tracer,
        profile=args.profile,
    )
    replications = executor.map(specs)
    if tracer is not None:
        tracer.finish({"figure": target, "replications": replication_count})
        print(f"trace written to {args.trace}", file=sys.stderr)

    from repro.campaign.run import confidence_half_width

    cells = list(replications[0])
    rows = []
    for cell in cells:
        values = np.array([float(rep[cell]) for rep in replications])
        half = confidence_half_width(values)
        rows.append([cell, f"{values.mean():+.3f}", f"±{half:.3f}", str(len(values))])
    if deterministic:
        print(f"{target}: deterministic figure, 1 replication (seeds have no effect)")
    else:
        print(
            f"{target}: {args.replications} replication(s), "
            f"seeds {args.seed}..{args.seed + args.replications - 1}"
        )
    print(format_table(["cell", "mean", "95% CI", "n"], rows))
    return 0


def _run_campaign_command(
    args: argparse.Namespace, parser: argparse.ArgumentParser
) -> int:
    """``repro run CAMPAIGN``: execute a declarative campaign file."""
    from repro.campaign import CampaignError, load_campaign, run_campaign

    if args.profile and args.trace is None:
        parser.error("--profile requires --trace DIR (hotspots land in the trace)")
    try:
        campaign = load_campaign(args.campaign_file)
    except CampaignError as exc:
        parser.error(str(exc))
    tracer = _make_tracer(args)
    cache = _make_cache(args)
    result = run_campaign(
        campaign,
        jobs=args.jobs,
        cache=cache,
        tracer=tracer,
        profile=args.profile,
        rundir=args.trace,
    )
    print("\n".join(result.summary_lines()))
    if cache is not None:
        print(
            f"cache: {result.cache_hits} hit(s), {result.cache_misses} miss(es)",
            file=sys.stderr,
        )
    if tracer is not None:
        tracer.finish(
            {
                "campaign": campaign.name,
                "stages": len(campaign.stages),
                "arms": len(result.arms),
                "unique_arms": result.unique_arms,
            }
        )
        print(f"trace written to {args.trace}", file=sys.stderr)
    return 0


def _run_validate_command(
    args: argparse.Namespace, parser: argparse.ArgumentParser
) -> int:
    """``repro validate RUNDIR``: check a campaign run directory."""
    from repro.campaign import CampaignError, load_campaign, validate_run

    campaign = None
    if args.campaign:
        try:
            campaign = load_campaign(args.campaign)
        except CampaignError as exc:
            parser.error(str(exc))
    rundir = Path(args.rundir)
    if not rundir.is_dir():
        print(f"error: {rundir} is not a directory", file=sys.stderr)
        return 2
    report = validate_run(rundir, campaign=campaign)
    print("\n".join(report.summary_lines()))
    return 0 if report.ok else 1


def _run_list_command() -> int:
    """``repro list``: enumerate figures, campaign commands and tools."""
    print("lab figures:        " + ", ".join(sorted(LAB_FIGURES)))
    print("paired-link figures: " + ", ".join(PAIRED_FIGURES))
    print("topology figures:    " + ", ".join(TOPOLOGY_FIGURES))
    print("fleet figures:       " + ", ".join(FLEET_FIGURES))
    print("sweepable figures:   " + ", ".join(FIGURE_CELL_TASKS))
    print(
        "campaigns:           run (repro run campaign.yaml --jobs N --trace RUN), "
        "validate (repro validate RUN)"
    )
    print(
        "tools:               lint (invariant linter; repro lint --list-rules), "
        "report (render a --trace run directory)"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the subcommand-structured CLI argument parser.

    Every figure is its own subcommand sharing the common execution
    flags; scoped flags (``--trace``, ``--probe``, sweep knobs, topology
    knobs) exist only on the subcommands that consume them.
    """
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--quick", action="store_true", help="use a smaller synthetic workload"
    )
    common.add_argument("--seed", type=int, default=7, help="workload random seed")
    common.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for independent simulation arms (default: 1)",
    )
    common.add_argument(
        "--cache",
        action="store_true",
        help="reuse results of unchanged runs from the on-disk cache",
    )
    common.add_argument(
        "--cache-dir",
        default=None,
        help="cache location (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )

    tracing = argparse.ArgumentParser(add_help=False)
    tracing.add_argument(
        "--trace",
        metavar="DIR",
        default=None,
        help=(
            "write run tracing (task spans, cache events; JSONL + Chrome "
            "trace-event JSON) to this directory; render it afterwards "
            "with 'repro report DIR'"
        ),
    )
    tracing.add_argument(
        "--profile",
        action="store_true",
        help="wrap each runner task in cProfile (requires --trace)",
    )

    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce figures from 'Unbiased Experiments in Congested Networks' (IMC 2021)."
        ),
    )
    parser.set_defaults(target=None)
    subparsers = parser.add_subparsers(
        dest="figure", required=True, metavar="command"
    )

    list_parser = subparsers.add_parser(
        "list", help="enumerate figures, campaign commands and tools"
    )
    list_parser.set_defaults(_subparser=list_parser)

    sweep = subparsers.add_parser(
        "sweep",
        parents=[common, tracing],
        help="replicate one figure across seeds and report mean ± CI per cell",
    )
    sweep.add_argument(
        "target",
        nargs="?",
        default=None,
        help="the figure to replicate across seeds",
    )
    sweep.add_argument(
        "--replications",
        type=int,
        default=5,
        help="number of seeds (default: 5)",
    )
    sweep.add_argument(
        "--noise",
        type=float,
        default=0.02,
        help="measurement-noise level for lab figures (default: 0.02)",
    )
    sweep.set_defaults(_subparser=sweep)

    run_parser = subparsers.add_parser(
        "run",
        parents=[tracing],
        help="execute a declarative campaign file (YAML/JSON)",
    )
    run_parser.add_argument(
        "campaign_file",
        metavar="CAMPAIGN",
        help="campaign file declaring stages, knobs and seed grids",
    )
    run_parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for independent simulation arms (default: 1)",
    )
    run_parser.add_argument(
        "--cache",
        action="store_true",
        help="reuse results of unchanged arms from the on-disk cache",
    )
    run_parser.add_argument(
        "--cache-dir",
        default=None,
        help="cache location (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    run_parser.set_defaults(_subparser=run_parser)

    validate = subparsers.add_parser(
        "validate",
        help="check a campaign run directory (manifest vs results vs package)",
    )
    validate.add_argument(
        "rundir",
        metavar="RUNDIR",
        help="run directory written by 'repro run ... --trace RUNDIR'",
    )
    validate.add_argument(
        "--campaign",
        metavar="CAMPAIGN",
        default=None,
        help="also check the run against this campaign file's content key",
    )
    validate.set_defaults(_subparser=validate)

    lint = subparsers.add_parser(
        "lint",
        help="AST invariant linter (determinism, content-key and API hygiene)",
    )
    from repro.devtools.lint.engine import configure_parser as configure_lint_parser

    configure_lint_parser(lint)
    lint.set_defaults(_subparser=lint)

    report = subparsers.add_parser(
        "report", help="render a report for a traced run directory"
    )
    from repro.obs.report import configure_parser as configure_report_parser

    configure_report_parser(report)
    report.set_defaults(_subparser=report)

    for name in (*LAB_FIGURES, *PAIRED_FIGURES):
        figure = subparsers.add_parser(
            name, parents=[common], help=_FIGURE_HELP[name]
        )
        figure.set_defaults(_subparser=figure)

    for name in TOPOLOGY_FIGURES:
        figure = subparsers.add_parser(
            name, parents=[common], help=_FIGURE_HELP[name]
        )
        if name == "topo_rtt":
            figure.add_argument(
                "--rtt-spread",
                default="10,20,40,80",
                help="per-unit RTT profile, comma-separated ms (default: 10,20,40,80)",
            )
        if name == "topo_aqm":
            figure.add_argument(
                "--disciplines",
                default="droptail,codel",
                help="queue disciplines to compare (default: droptail,codel)",
            )
        if name == "topo_fq":
            figure.add_argument(
                "--disciplines",
                default=None,
                help="queue disciplines to compare (default: droptail,fq_codel)",
            )
        if name == "topo_parking":
            figure.add_argument(
                "--segments",
                type=int,
                default=4,
                help="bottleneck segments in the parking-lot chain (default: 4)",
            )
        if name == "topo_churn":
            figure.add_argument(
                "--churn-rates",
                default="0,2,6",
                help=(
                    "churn intensities, comma-separated flow arrivals per "
                    "second (default: 0,2,6; include 0 for the static "
                    "reference)"
                ),
            )
            figure.add_argument(
                "--traffic-split",
                type=float,
                default=1.0,
                help=(
                    "within-interval allocation of the switchback-ramp "
                    "scenario, in (0.5, 1]: 1 (default) runs pure 100/0 "
                    "intervals, 0.95 the production 95/5 variant (scales the "
                    "unit count up so the 5%% arm keeps a unit — markedly "
                    "slower)"
                ),
            )
        figure.set_defaults(_subparser=figure)

    fleet = subparsers.add_parser(
        "fleet", parents=[common, tracing], help=_FIGURE_HELP["fleet"]
    )
    fleet.add_argument(
        "--units",
        type=int,
        default=None,
        help="fleet size (default: 20000, or 10000 with --quick)",
    )
    fleet.add_argument(
        "--edges",
        type=int,
        default=None,
        help="edge bottlenecks (default: 200, or 100 with --quick)",
    )
    fleet.add_argument(
        "--granularity",
        choices=["unit", "edge", "region", "all"],
        default="all",
        help="assignment granularity to compare (default: all three)",
    )
    fleet.add_argument(
        "--probe",
        type=float,
        metavar="SECONDS",
        default=None,
        help=(
            "sample in-sim queue depth on every fleet shard at this simulated-"
            "time cadence (never changes results)"
        ),
    )
    fleet.set_defaults(_subparser=fleet)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point.  Returns a process exit code."""
    arguments = list(sys.argv[1:] if argv is None else argv)
    parser = build_parser()
    args = parser.parse_args(arguments)
    subparser = getattr(args, "_subparser", parser)
    if args.figure == "list":
        return _run_list_command()
    if args.figure == "sweep":
        return _run_sweep(args, subparser)
    if args.figure == "run":
        return _run_campaign_command(args, subparser)
    if args.figure == "validate":
        return _run_validate_command(args, subparser)
    if args.figure == "lint":
        from repro.devtools.lint.engine import run_lint

        return run_lint(args)
    if args.figure == "report":
        from repro.obs.report import run_report

        return run_report(args)
    if getattr(args, "profile", False) and args.trace is None:
        subparser.error("--profile requires --trace DIR (hotspots land in the trace)")
    if getattr(args, "probe", None) is not None and args.probe <= 0:
        subparser.error("--probe needs a positive sampling interval in seconds")
    if args.figure in LAB_FIGURES:
        _print_lab_figure(args.figure, args)
    elif args.figure in TOPOLOGY_FIGURES:
        _print_topology_figure(args.figure, args, subparser)
    elif args.figure in FLEET_FIGURES:
        _print_fleet_figure(args, subparser)
    else:
        _print_paired_figure(args.figure, args)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
