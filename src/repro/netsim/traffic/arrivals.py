"""Flow arrival processes for dynamic traffic.

An arrival process turns a seeded RNG and a simulation horizon into the
times at which new finite flows enter the network.  All three processes
accept an optional :class:`~repro.netsim.traffic.demand.DemandProfile`
that modulates the instantaneous arrival rate over time (implemented by
thinning, so the modulated process is still exact):

* :class:`PoissonArrivals` — memoryless arrivals at ``rate_per_s``; the
  canonical model for independent user sessions;
* :class:`OnOffSource` — a Markov-modulated Poisson process: exponential
  ON periods (arrivals at ``rate_per_s``) alternate with exponential OFF
  periods (silence), producing the bursty churn of an on/off background
  application;
* :class:`TraceArrivals` — replay an explicit list of arrival instants
  (a measured trace); demand modulation does not apply to traces.

Arrival times are generated *before* the simulation runs and scheduled
on the event scheduler, so the sequence is a pure function of the seed —
independent of event interleaving, worker count and queue behaviour.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.netsim.traffic.demand import DemandProfile

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "OnOffSource",
    "TraceArrivals",
]


class ArrivalProcess:
    """Base class for flow arrival processes."""

    def arrival_times(
        self,
        rng: random.Random,
        horizon_s: float,
        demand: DemandProfile | None = None,
    ) -> list[float]:
        """Arrival instants in ``[0, horizon_s)``, sorted ascending."""
        raise NotImplementedError


def _thinned_poisson(
    rng: random.Random,
    rate_per_s: float,
    start_s: float,
    end_s: float,
    demand: DemandProfile | None,
    horizon_s: float,
) -> list[float]:
    """Exact non-homogeneous Poisson arrivals on ``[start_s, end_s)``.

    Samples a homogeneous process at the envelope rate and keeps each
    candidate with probability ``multiplier(t) / max_multiplier`` —
    Lewis & Shedler thinning.
    """
    if rate_per_s <= 0.0 or end_s <= start_s:
        return []
    envelope = 1.0 if demand is None else demand.max_multiplier(horizon_s)
    if envelope <= 0.0:
        return []
    max_rate = rate_per_s * envelope
    times: list[float] = []
    t = start_s
    while True:
        t += rng.expovariate(max_rate)
        if t >= end_s:
            return times
        if demand is not None:
            accept = rate_per_s * demand.multiplier(t) / max_rate
            if rng.random() >= accept:
                continue
        times.append(t)


@dataclass(frozen=True)
class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals at ``rate_per_s`` flows per second."""

    rate_per_s: float

    def __post_init__(self) -> None:
        if self.rate_per_s < 0:
            raise ValueError("rate_per_s must be non-negative")

    def arrival_times(
        self,
        rng: random.Random,
        horizon_s: float,
        demand: DemandProfile | None = None,
    ) -> list[float]:
        return _thinned_poisson(rng, self.rate_per_s, 0.0, horizon_s, demand, horizon_s)


@dataclass(frozen=True)
class OnOffSource(ArrivalProcess):
    """Bursty churn: Poisson arrivals gated by exponential ON/OFF periods.

    The source alternates ON periods (mean ``mean_on_s``, arrivals at
    ``rate_per_s``) with OFF periods (mean ``mean_off_s``, silence).
    Whether it starts ON or OFF is itself random, weighted by the
    stationary occupancy, so an ensemble of sources is in steady state
    from t=0 instead of synchronising their first burst.
    """

    rate_per_s: float
    mean_on_s: float = 2.0
    mean_off_s: float = 2.0

    def __post_init__(self) -> None:
        if self.rate_per_s < 0:
            raise ValueError("rate_per_s must be non-negative")
        if self.mean_on_s <= 0 or self.mean_off_s <= 0:
            raise ValueError("mean_on_s and mean_off_s must be positive")

    def arrival_times(
        self,
        rng: random.Random,
        horizon_s: float,
        demand: DemandProfile | None = None,
    ) -> list[float]:
        times: list[float] = []
        on = rng.random() < self.mean_on_s / (self.mean_on_s + self.mean_off_s)
        t = 0.0
        while t < horizon_s:
            if on:
                period_end = min(t + rng.expovariate(1.0 / self.mean_on_s), horizon_s)
                times.extend(
                    _thinned_poisson(
                        rng, self.rate_per_s, t, period_end, demand, horizon_s
                    )
                )
                t = period_end
            else:
                t += rng.expovariate(1.0 / self.mean_off_s)
            on = not on
        return times


@dataclass(frozen=True)
class TraceArrivals(ArrivalProcess):
    """Replay explicit arrival instants (a measured trace).

    Times outside ``[0, horizon_s)`` are dropped; demand modulation is
    ignored — the trace already *is* the realized demand.
    """

    times: tuple[float, ...]

    def __post_init__(self) -> None:
        if any(t < 0 or not math.isfinite(t) for t in self.times):
            raise ValueError("trace times must be finite and non-negative")
        object.__setattr__(self, "times", tuple(sorted(float(t) for t in self.times)))

    def arrival_times(
        self,
        rng: random.Random,
        horizon_s: float,
        demand: DemandProfile | None = None,
    ) -> list[float]:
        return [t for t in self.times if t < horizon_s]
