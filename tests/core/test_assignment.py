"""Tests for repro.core.assignment."""

import numpy as np
import pytest

from repro.core.assignment import (
    Assignment,
    bernoulli_assignment,
    cluster_assignment,
    fixed_fraction_assignment,
    interval_assignment,
)


class TestAssignment:
    def test_counts(self):
        a = Assignment(np.array([True, False, True]), 0.5)
        assert a.n_units == 3
        assert a.n_treated == 2
        assert a.n_control == 1

    def test_realized_allocation(self):
        a = Assignment(np.array([True, False, True, False]), 0.5)
        assert a.realized_allocation == pytest.approx(0.5)

    def test_realized_allocation_empty(self):
        a = Assignment(np.array([], dtype=bool), 0.5)
        assert a.realized_allocation == 0.0

    def test_invalid_allocation_raises(self):
        with pytest.raises(ValueError):
            Assignment(np.array([True]), 1.5)

    def test_indices(self):
        a = Assignment(np.array([True, False, True]), 0.5)
        assert list(a.treatment_indices()) == [0, 2]
        assert list(a.control_indices()) == [1]

    def test_inverted(self):
        a = Assignment(np.array([True, False]), 0.3)
        inv = a.inverted()
        assert list(inv.treated) == [False, True]
        assert inv.allocation == pytest.approx(0.7)


class TestBernoulliAssignment:
    def test_length(self):
        assert bernoulli_assignment(100, 0.5, seed=0).n_units == 100

    def test_extreme_allocations(self):
        assert bernoulli_assignment(50, 0.0, seed=0).n_treated == 0
        assert bernoulli_assignment(50, 1.0, seed=0).n_treated == 50

    def test_reproducible_with_seed(self):
        a = bernoulli_assignment(200, 0.3, seed=42)
        b = bernoulli_assignment(200, 0.3, seed=42)
        assert np.array_equal(a.treated, b.treated)

    def test_different_seeds_differ(self):
        a = bernoulli_assignment(200, 0.5, seed=1)
        b = bernoulli_assignment(200, 0.5, seed=2)
        assert not np.array_equal(a.treated, b.treated)

    def test_allocation_approximately_respected(self):
        a = bernoulli_assignment(20000, 0.25, seed=3)
        assert a.realized_allocation == pytest.approx(0.25, abs=0.02)

    def test_negative_units_raise(self):
        with pytest.raises(ValueError):
            bernoulli_assignment(-1, 0.5)

    def test_invalid_allocation_raises(self):
        with pytest.raises(ValueError):
            bernoulli_assignment(10, 1.2)


class TestFixedFractionAssignment:
    def test_exact_count(self):
        a = fixed_fraction_assignment(10, 0.3, seed=0)
        assert a.n_treated == 3

    def test_rounding(self):
        a = fixed_fraction_assignment(10, 0.95, seed=0)
        assert a.n_treated == 10  # round(9.5) == 10 under banker's? check explicit

    def test_all_and_none(self):
        assert fixed_fraction_assignment(7, 1.0, seed=0).n_treated == 7
        assert fixed_fraction_assignment(7, 0.0, seed=0).n_treated == 0

    def test_reproducible(self):
        a = fixed_fraction_assignment(50, 0.5, seed=9)
        b = fixed_fraction_assignment(50, 0.5, seed=9)
        assert np.array_equal(a.treated, b.treated)

    def test_invalid_allocation_raises(self):
        with pytest.raises(ValueError):
            fixed_fraction_assignment(10, -0.1)


class TestIntervalAssignment:
    def test_length(self):
        assert interval_assignment(5, seed=0).shape == (5,)

    def test_force_both_arms(self):
        for seed in range(20):
            assignment = interval_assignment(3, seed=seed, force_both_arms=True)
            assert assignment.any()
            assert not assignment.all()

    def test_force_both_arms_needs_two_intervals(self):
        with pytest.raises(ValueError):
            interval_assignment(1, force_both_arms=True)

    def test_no_force_allows_single_interval(self):
        assignment = interval_assignment(1, force_both_arms=False, seed=0)
        assert assignment.shape == (1,)

    def test_invalid_probability_raises(self):
        with pytest.raises(ValueError):
            interval_assignment(5, treatment_probability=2.0)

    def test_zero_intervals_raise(self):
        with pytest.raises(ValueError):
            interval_assignment(0)


class TestClusterAssignment:
    def test_units_in_same_cluster_share_assignment(self):
        ids = [0, 0, 1, 1, 2, 2]
        a = cluster_assignment(ids, 0.5, seed=0)
        treated = a.treated
        assert treated[0] == treated[1]
        assert treated[2] == treated[3]
        assert treated[4] == treated[5]

    def test_two_dimensional_ids_raise(self):
        with pytest.raises(ValueError):
            cluster_assignment(np.zeros((2, 2)), 0.5)

    def test_reproducible(self):
        ids = list(range(10)) * 3
        a = cluster_assignment(ids, 0.5, seed=4)
        b = cluster_assignment(ids, 0.5, seed=4)
        assert np.array_equal(a.treated, b.treated)

    def test_allocation_zero_treats_nothing(self):
        a = cluster_assignment([1, 2, 3], 0.0, seed=0)
        assert a.n_treated == 0
