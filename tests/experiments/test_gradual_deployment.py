"""Tests for the gradual-deployment harness (Section 5.1)."""

import pytest

from repro.core.designs import GradualDeploymentDesign
from repro.experiments.gradual_deployment import run_gradual_deployment
from repro.workload import WorkloadConfig


@pytest.fixture(scope="module")
def outcome():
    config = WorkloadConfig(sessions_at_peak=150, n_accounts=1500, seed=41)
    design = GradualDeploymentDesign(ramp=(0.0, 0.05, 0.5, 0.95, 1.0))
    return run_gradual_deployment(config=config, design=design, metric="throughput_mbps")


class TestGradualDeployment:
    def test_stage_estimates_present(self, outcome):
        assert set(outcome.ab_effects) == {0.05, 0.5, 0.95}
        assert set(outcome.spillovers) == {0.05, 0.5, 0.95}
        assert set(outcome.partial_effects) == {0.05, 0.5, 0.95, 1.0}
        assert outcome.tte is not None

    def test_spillover_grows_with_allocation(self, outcome):
        spill = {p: e.relative.estimate for p, e in outcome.spillovers.items()}
        assert spill[0.95] > spill[0.05]

    def test_full_deployment_tte_positive_for_throughput(self, outcome):
        assert outcome.tte.relative_percent > 0.0

    def test_interference_detected_with_a_powered_ramp(self):
        """A ramp that holds each end-stage for several days has enough power
        for the SUTVA checks to flag the (large) minimum-RTT spillover."""
        config = WorkloadConfig(sessions_at_peak=150, n_accounts=1500, seed=47)
        design = GradualDeploymentDesign(ramp=(0.0, 0.0, 0.0, 0.95, 0.95, 0.95))
        powered = run_gradual_deployment(
            config=config, design=design, metric="min_rtt_ms"
        )
        diagnostics = powered.diagnostics()
        assert diagnostics.interference_detected
        assert diagnostics.nonzero_spillovers  # capping empties the queue for everyone

    def test_unknown_metric_raises(self):
        with pytest.raises(KeyError):
            run_gradual_deployment(metric="nope")

    def test_bitrate_deployment_shows_consistent_ab_effects(self):
        """For the bitrate metric the effect is mostly direct (the cap), so the
        per-stage A/B estimates should all be strongly negative."""
        config = WorkloadConfig(sessions_at_peak=120, n_accounts=1200, seed=43)
        design = GradualDeploymentDesign(ramp=(0.0, 0.25, 0.75, 1.0))
        outcome = run_gradual_deployment(
            config=config, design=design, metric="video_bitrate_kbps"
        )
        for estimate in outcome.ab_effects.values():
            assert estimate.relative_percent < -20.0
        assert outcome.tte.relative_percent < -20.0
