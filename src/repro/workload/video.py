"""Video encoding ladder, adaptive bitrate selection, and bitrate capping.

Bitrate capping — the treatment of the paper's production experiment — is
modelled as removing the top rungs of the encoding ladder: treated
sessions may not stream above ``cap_kbps`` regardless of how much network
throughput is available.  The paper reports that capping reduced Netflix
traffic by roughly 25 % and the measured average video bitrate by roughly
33 %.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "BITRATE_LADDER_KBPS",
    "BitrateCapPolicy",
    "select_bitrate",
    "select_bitrate_array",
]

#: A representative premium-video encoding ladder (kb/s).
BITRATE_LADDER_KBPS: tuple[float, ...] = (
    235.0,
    375.0,
    560.0,
    750.0,
    1050.0,
    1400.0,
    1750.0,
    2350.0,
    3000.0,
    3600.0,
    4300.0,
    5100.0,
    5800.0,
    6500.0,
    7500.0,
)

#: Fraction of measured network throughput the ABR is willing to commit to
#: video (headroom for safety and for other device traffic).
ABR_SAFETY_FACTOR = 0.8


@dataclass(frozen=True)
class BitrateCapPolicy:
    """Bitrate capping treatment.

    Parameters
    ----------
    cap_kbps:
        Maximum bitrate a capped session may select.  ``None`` disables the
        cap (control behaviour).
    """

    cap_kbps: float | None = 3600.0

    def __post_init__(self) -> None:
        if self.cap_kbps is not None and self.cap_kbps <= 0:
            raise ValueError("cap_kbps must be positive (or None to disable)")

    def ladder(self, base_ladder: tuple[float, ...] = BITRATE_LADDER_KBPS) -> tuple[float, ...]:
        """The encoding ladder with the cap applied."""
        if self.cap_kbps is None:
            return base_ladder
        capped = tuple(rate for rate in base_ladder if rate <= self.cap_kbps)
        if not capped:
            # The cap is below the lowest rung: the lowest rung is still served.
            return (base_ladder[0],)
        return capped

    def apply(self, bitrate_kbps: float) -> float:
        """Clamp an already-selected bitrate to the cap."""
        if self.cap_kbps is None:
            return float(bitrate_kbps)
        return float(min(bitrate_kbps, self.cap_kbps))


def select_bitrate(
    throughput_mbps: float,
    ladder: tuple[float, ...] = BITRATE_LADDER_KBPS,
    safety_factor: float = ABR_SAFETY_FACTOR,
) -> float:
    """Throughput-based ABR: highest ladder rung sustainable at the estimate.

    Picks the largest encoding rate not exceeding ``safety_factor`` times
    the measured network throughput, falling back to the lowest rung when
    even that is too fast for the network.
    """
    if throughput_mbps < 0:
        raise ValueError("throughput must be non-negative")
    if not ladder:
        raise ValueError("ladder must not be empty")
    budget_kbps = throughput_mbps * 1000.0 * safety_factor
    feasible = [rate for rate in ladder if rate <= budget_kbps]
    if not feasible:
        return float(min(ladder))
    return float(max(feasible))


def select_bitrate_array(
    throughput_mbps: np.ndarray,
    ladder: tuple[float, ...] = BITRATE_LADDER_KBPS,
    safety_factor: float = ABR_SAFETY_FACTOR,
) -> np.ndarray:
    """Vectorized :func:`select_bitrate` over an array of throughputs."""
    throughput_mbps = np.asarray(throughput_mbps, dtype=float)
    if not ladder:
        raise ValueError("ladder must not be empty")
    rungs = np.sort(np.asarray(ladder, dtype=float))
    budget_kbps = throughput_mbps * 1000.0 * safety_factor
    indices = np.searchsorted(rungs, budget_kbps, side="right") - 1
    indices = np.clip(indices, 0, len(rungs) - 1)
    return rungs[indices]
