"""Observability: in-sim probes, run tracing, profiling and reporting.

Three tiers, each usable on its own (see ``docs/observability.md``):

* **In-sim probes** (:mod:`repro.obs.probe`) — sample queue depth,
  sojourn, per-flow cwnd/pacing and ECN/drop counters at a configurable
  simulation-time cadence.  Probes are driven purely by the event
  scheduler's clock, never schedule events of their own, and are
  provably non-perturbing: every golden-output test passes byte-identical
  with probes on.
* **Run tracing** (:mod:`repro.obs.trace`) — runner-level spans (task
  start/end, cache hit/miss, worker pid, wall duration) written as JSONL
  plus Chrome trace-event JSON, so any sweep or fleet run opens in
  Perfetto.  Wall-clock reads live *only* here, behind
  :func:`repro.obs.trace.walltime`; simulation results never absorb them.
* **Profiling + reporting** (:mod:`repro.obs.profile`,
  :mod:`repro.obs.report`) — cProfile hotspot tables per runner task and
  ``repro report RUNDIR`` rendering a traced run's progress, engine
  counters and hotspots.

:mod:`repro.obs.metrics` holds the engine-counter schema
(:class:`~repro.obs.metrics.EngineCounters`) both scheduler variants
report uniformly, and a small mergeable :class:`~repro.obs.metrics.MetricsRegistry`.
"""

from repro.obs.metrics import EngineCounters, MetricsRegistry
from repro.obs.probe import Probe, ProbeConfig, ProbeLog, ProbeRecord, TraceRecorder
from repro.obs.profile import format_hotspots, merge_profile_rows
from repro.obs.report import render_report
from repro.obs.trace import ProgressPrinter, RunTracer, TaskRun, walltime

__all__ = [
    "EngineCounters",
    "MetricsRegistry",
    "Probe",
    "ProbeConfig",
    "ProbeLog",
    "ProbeRecord",
    "TraceRecorder",
    "ProgressPrinter",
    "RunTracer",
    "TaskRun",
    "walltime",
    "format_hotspots",
    "merge_profile_rows",
    "render_report",
]
