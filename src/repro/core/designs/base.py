"""Common building blocks shared by all experiment designs.

A design answers two questions:

1. **Allocation** — for each (link, day) cell of the experiment, what
   fraction of sessions is assigned to treatment?  This is an
   :class:`AllocationPlan`, the object the workload/substrate consumes when
   generating or labelling traffic.

2. **Analysis** — which cells of the resulting data are compared to
   estimate which quantity?  Each comparison is a :class:`ComparisonSpec`:
   a named estimand (``"tte"``, ``"spillover"``, ``"ab_0.05"``, ...) with
   selectors for the sessions acting as treatment and control in that
   comparison.

:class:`ExperimentDesign` is the abstract interface implemented by the
concrete designs in this package.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from collections.abc import Mapping, Sequence

__all__ = ["CellSelector", "ComparisonSpec", "AllocationPlan", "ExperimentDesign"]


@dataclass(frozen=True)
class CellSelector:
    """Selects a subset of sessions by link, day and arm.

    ``None`` for a field means "any value".  ``treated`` refers to the
    session's assigned arm within its own (link, day) cell.
    """

    links: tuple[int, ...] | None = None
    days: tuple[int, ...] | None = None
    treated: bool | None = None

    def matches(self, link: int, day: int, treated: bool) -> bool:
        """True when a session with these attributes is selected."""
        if self.links is not None and link not in self.links:
            return False
        if self.days is not None and day not in self.days:
            return False
        if self.treated is not None and treated != self.treated:
            return False
        return True


@dataclass(frozen=True)
class ComparisonSpec:
    """One estimand and the two groups of sessions that estimate it."""

    estimand: str
    treatment_selector: CellSelector
    control_selector: CellSelector
    description: str = ""


class AllocationPlan:
    """Treatment allocation per (link, day) cell.

    Parameters
    ----------
    allocations:
        Mapping from ``(link, day)`` to the treatment allocation ``p`` used
        for sessions on that link during that day.
    default:
        Allocation used for any (link, day) not explicitly listed.
    """

    def __init__(
        self,
        allocations: Mapping[tuple[int, int], float] | None = None,
        default: float = 0.0,
    ):
        self._allocations: dict[tuple[int, int], float] = {}
        for key, p in (allocations or {}).items():
            self._set(key, p)
        if not 0.0 <= default <= 1.0:
            raise ValueError("default allocation must be in [0, 1]")
        self._default = float(default)

    def _set(self, key: tuple[int, int], p: float) -> None:
        link, day = int(key[0]), int(key[1])
        p = float(p)
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"allocation for {(link, day)} must be in [0, 1], got {p}")
        self._allocations[(link, day)] = p

    def allocation(self, link: int, day: int) -> float:
        """Treatment allocation for sessions on ``link`` during ``day``."""
        return self._allocations.get((int(link), int(day)), self._default)

    @property
    def cells(self) -> dict[tuple[int, int], float]:
        """All explicitly specified (link, day) -> allocation entries."""
        return dict(self._allocations)

    @property
    def links(self) -> list[int]:
        """Links explicitly mentioned by the plan."""
        return sorted({link for link, _ in self._allocations})

    @property
    def days(self) -> list[int]:
        """Days explicitly mentioned by the plan."""
        return sorted({day for _, day in self._allocations})

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AllocationPlan(cells={self._allocations}, default={self._default})"


class ExperimentDesign(abc.ABC):
    """Abstract base class of all experiment designs."""

    #: Short machine-readable name of the design.
    name: str = "design"

    @abc.abstractmethod
    def allocation_plan(self, links: Sequence[int], days: Sequence[int]) -> AllocationPlan:
        """Return the allocation plan over the given links and days."""

    @abc.abstractmethod
    def comparisons(self, links: Sequence[int], days: Sequence[int]) -> list[ComparisonSpec]:
        """Return the comparisons (estimands) the design supports."""

    def describe(self) -> str:
        """One-line human-readable description of the design."""
        return self.name
