"""Figure 10: TTE as estimated by the paired link, a switchback, and an event study.

Paper finding: the switchback's estimates track the paired-link TTE (its
confidence intervals cover it, though they are wider because it uses half
the data); the event study is reasonable for most metrics but biased for
some (throughput, cancelled starts, retransmitted bytes) because the
post-deployment period lands on the weekend.
"""

from benchmarks._helpers import EXPERIMENT_DAYS, run_once

from repro.experiments import compare_designs
from repro.reporting import format_table

METRICS = (
    "throughput_mbps",
    "min_rtt_ms",
    "play_delay_s",
    "video_bitrate_kbps",
    "rebuffer_rate",
    "retransmit_fraction",
)


def test_fig10_design_comparison(benchmark, paired_outcome):
    comparison = run_once(
        benchmark,
        compare_designs,
        paired_outcome.experiment_table,
        EXPERIMENT_DAYS,
        paired_outcome.estimates["tte"],
        baselines=paired_outcome.baselines,
        metrics=METRICS,
    )

    rows = comparison.rows(METRICS)
    print(
        "\n"
        + format_table(
            ["metric", "paired link", "switchback", "event study"],
            [
                [
                    row["metric"],
                    f"{row['paired_link']:+.1f}%",
                    f"{row['switchback']:+.1f}%",
                    f"{row['event_study']:+.1f}%",
                ]
                for row in rows
            ],
        )
    )

    # The switchback recovers the paired-link TTE for the key metrics.
    for metric in ("min_rtt_ms", "video_bitrate_kbps", "play_delay_s"):
        assert comparison.switchback_covers_paired_link(metric), metric

    # Its direction always matches.
    for metric in METRICS:
        switchback = comparison.switchback[metric].relative.estimate
        paired = comparison.paired_link[metric].relative.estimate
        assert (switchback > 0) == (paired > 0), metric

    # The switchback uses half the data, so its intervals are not tighter.
    for metric in METRICS:
        assert (
            comparison.switchback[metric].relative.width
            >= 0.8 * comparison.paired_link[metric].relative.width
        ), metric
