"""Shared fixtures for the figure-reproduction benchmarks.

Every benchmark regenerates one table or figure from the paper.  The
expensive inputs (the paired-link workload run) are produced once per
session and shared; each benchmark then times the analysis step that
produces its figure and asserts the qualitative shape the paper reports.

Run with:  pytest benchmarks/ --benchmark-only

Setting ``BENCH_JSON=/path/to/out.json`` additionally exports every
benchmark test's call duration to a JSON file when the session ends —
the raw material of the perf trajectory.  CI runs the suite with the
export enabled, uploads the file as an artifact and fails the build when
a test regresses more than 3x against the committed repo-root
``BENCH_baseline.json`` (see ``benchmarks/check_regression.py``).

Benchmarks that measure *absolute* engine throughput (the packet-engine
microbenchmarks) additionally record packets/sec and events/sec through
the ``throughput`` fixture; those land in the export's ``throughput``
section, from which ``check_regression.py`` prints a speedup/slowdown
delta table against the baseline (informational — wall-time is the
gate).

When the export is enabled, each benchmark's call phase also runs under
``tracemalloc`` and its peak traced allocation lands in the export's
``memory`` section (schema 3) — informational like throughput, never a
gate.  Tracing is gated on ``BENCH_JSON`` so plain benchmark runs pay no
tracemalloc overhead (and wall times in the export carry the overhead
uniformly, so deltas against the baseline stay comparable).
"""

import json
import os
import platform
import sys
import time
import tracemalloc
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.experiments import PairedLinkExperiment  # noqa: E402
from repro.workload import WorkloadConfig  # noqa: E402

#: Days of the main experiment (Wednesday through Sunday).
EXPERIMENT_DAYS = (0, 1, 2, 3, 4)


@pytest.fixture(scope="session")
def paired_experiment():
    """The paired-link experiment configuration used by all benchmarks."""
    config = WorkloadConfig(sessions_at_peak=300, n_accounts=4000, seed=7)
    return PairedLinkExperiment(config=config)


@pytest.fixture(scope="session")
def paired_outcome(paired_experiment):
    """One full run of the paired-link experiment, shared across benchmarks."""
    return paired_experiment.run()


def run_once(benchmark, fn, *args, **kwargs):
    """Run a benchmark exactly once (the workloads are too large to repeat)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


# -- timing export (the BENCH_*.json perf trajectory) --------------------------

#: Call durations per test nodeid, filled by the logreport hook.  Only
#: populated when this conftest is loaded, i.e. for benchmark items.
_TIMINGS: dict[str, float] = {}

#: Absolute-throughput metrics per test nodeid, filled by the
#: ``throughput`` fixture (packet-engine microbenchmarks only).
_THROUGHPUT: dict[str, dict[str, float]] = {}

#: Peak traced allocation (bytes) per test nodeid; only populated when
#: ``BENCH_JSON`` enables the export (tracemalloc is not free).
_MEMORY: dict[str, float] = {}


class ThroughputRecorder:
    """Records one benchmark's absolute engine throughput for the export."""

    def __init__(self, nodeid: str):
        self.nodeid = nodeid

    def record(self, *, packets: float, events: float, seconds: float) -> None:
        """Record absolute rates for this benchmark.

        ``packets`` counts (MSS-sized) segments sent, ``events`` the
        scheduler callbacks executed, over ``seconds`` of wall time.
        """
        self.record_rates(seconds=seconds, packets=packets, events=events)

    def record_rates(self, *, seconds: float, **counts: float) -> None:
        """Record arbitrary named counts as ``<name>_per_s`` rates.

        The generic form of :meth:`record`: fleet benchmarks report
        ``units``, the fluid microbenchmarks ``steps``, the packet-engine
        ones ``packets``/``events`` — ``check_regression.py`` renders
        whatever names appear in the export.
        """
        if seconds <= 0:
            raise ValueError("seconds must be positive")
        _THROUGHPUT[self.nodeid] = {
            f"{name}_per_s": count / seconds for name, count in sorted(counts.items())
        }


@pytest.fixture
def throughput(request):
    """Recorder benchmarks use to report absolute pkts/sec and events/sec."""
    return ThroughputRecorder(request.node.nodeid)


def pytest_runtest_logreport(report):
    """Record every benchmark test's call-phase wall time."""
    if report.when == "call" and report.passed:
        _TIMINGS[report.nodeid] = report.duration


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    """Measure each test's peak memory when the JSON export is enabled."""
    if not os.environ.get("BENCH_JSON") or tracemalloc.is_tracing():
        # Not exporting, or something outer already traces (nested
        # tracemalloc starts would reset its peak counter).
        yield
        return
    tracemalloc.start()
    try:
        yield
        _MEMORY[item.nodeid] = float(tracemalloc.get_traced_memory()[1])
    finally:
        tracemalloc.stop()


def pytest_sessionfinish(session):
    """Export the collected timings when ``BENCH_JSON`` names a file."""
    out = os.environ.get("BENCH_JSON")
    if not out or not _TIMINGS:
        return
    payload = {
        "schema": 3,
        "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "timings": dict(sorted(_TIMINGS.items())),
        "throughput": dict(sorted(_THROUGHPUT.items())),
        "memory": dict(sorted(_MEMORY.items())),
    }
    path = Path(out)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n")
