"""Process-parallel scenario runner with deterministic result caching.

Every sweep and replication in the repository — packet-level allocation
sweeps, fluid lab sweeps, paired-link workload weeks, multi-seed figure
replications — is a flat list of independent simulation arms.  This
package gives those arms a common shape and a common execution engine:

:class:`~repro.runner.spec.ScenarioSpec`
    A declarative, picklable description of one arm: a registered task
    name, its parameters, and the seed that makes it deterministic.

:class:`~repro.runner.executor.ParallelExecutor`
    Fans a list of specs out over a ``ProcessPoolExecutor``.  Because all
    randomness is derived from the per-spec seed, parallel results are
    bit-identical to serial ones.

:class:`~repro.runner.cache.ResultCache`
    A content-keyed on-disk cache: a spec's key hashes its task name,
    parameters, seed and the package version, so re-running a figure with
    unchanged parameters is instant while any parameter change misses.

The built-in tasks live in :mod:`repro.runner.tasks`; they are loaded
lazily the first time a spec is run so the simulators can themselves
import the runner without creating an import cycle.
"""

from repro.runner.cache import ResultCache, default_cache_dir
from repro.runner.executor import ParallelExecutor, run_specs
from repro.runner.spec import (
    ScenarioSpec,
    canonical,
    content_key,
    get_task,
    register_task,
    run_spec,
)

__all__ = [
    "ScenarioSpec",
    "ParallelExecutor",
    "ResultCache",
    "canonical",
    "content_key",
    "default_cache_dir",
    "get_task",
    "register_task",
    "run_spec",
    "run_specs",
]
