"""Tests for repro.core.estimators."""

import numpy as np
import pytest

from repro.core.estimators import (
    EstimateWithCI,
    cluster_robust_variance,
    difference_in_means,
    quantile_treatment_effect,
    relative_effect,
)


class TestEstimateWithCI:
    def test_significant_when_interval_excludes_zero(self):
        assert EstimateWithCI(1.0, 0.1, 0.8, 1.2).significant
        assert EstimateWithCI(-1.0, 0.1, -1.2, -0.8).significant

    def test_not_significant_when_interval_spans_zero(self):
        assert not EstimateWithCI(0.1, 0.2, -0.3, 0.5).significant

    def test_width(self):
        assert EstimateWithCI(0.0, 1.0, -1.0, 3.0).width == pytest.approx(4.0)

    def test_covers(self):
        e = EstimateWithCI(0.0, 1.0, -1.0, 1.0)
        assert e.covers(0.5)
        assert not e.covers(2.0)

    def test_scaled_positive(self):
        e = EstimateWithCI(2.0, 0.5, 1.0, 3.0).scaled(2.0)
        assert e.estimate == pytest.approx(4.0)
        assert (e.ci_low, e.ci_high) == (pytest.approx(2.0), pytest.approx(6.0))

    def test_scaled_negative_flips_interval(self):
        e = EstimateWithCI(2.0, 0.5, 1.0, 3.0).scaled(-1.0)
        assert e.ci_low == pytest.approx(-3.0)
        assert e.ci_high == pytest.approx(-1.0)
        assert e.ci_low <= e.ci_high


class TestDifferenceInMeans:
    def test_point_estimate(self):
        result = difference_in_means(np.array([2.0, 4.0]), np.array([1.0, 3.0]))
        assert result.effect.estimate == pytest.approx(1.0)
        assert result.treatment_mean == pytest.approx(3.0)
        assert result.control_mean == pytest.approx(2.0)

    def test_empty_group_raises(self):
        with pytest.raises(ValueError):
            difference_in_means(np.array([]), np.array([1.0]))

    def test_detects_large_difference(self):
        rng = np.random.default_rng(0)
        t = rng.normal(10.0, 1.0, 500)
        c = rng.normal(5.0, 1.0, 500)
        result = difference_in_means(t, c)
        assert result.effect.significant
        assert result.effect.covers(5.0)

    def test_null_effect_usually_not_significant(self):
        rng = np.random.default_rng(1)
        t = rng.normal(0.0, 1.0, 500)
        c = rng.normal(0.0, 1.0, 500)
        result = difference_in_means(t, c)
        assert result.effect.covers(0.0)

    def test_relative_effect_property(self):
        result = difference_in_means(np.array([2.0, 2.0]), np.array([1.0, 1.0]))
        assert result.relative_effect == pytest.approx(1.0)

    def test_relative_effect_zero_control_raises(self):
        result = difference_in_means(np.array([2.0, 2.0]), np.array([0.0, 0.0]))
        with pytest.raises(ZeroDivisionError):
            _ = result.relative_effect

    def test_clustered_wider_than_iid_with_correlated_clusters(self):
        rng = np.random.default_rng(2)
        n_clusters, per_cluster = 20, 50
        cluster_effect = rng.normal(0.0, 2.0, n_clusters)
        clusters = np.repeat(np.arange(n_clusters), per_cluster)
        outcomes = cluster_effect[clusters] + rng.normal(0.0, 0.5, n_clusters * per_cluster)
        iid = difference_in_means(outcomes, outcomes + 1.0)
        clustered = difference_in_means(
            outcomes,
            outcomes + 1.0,
            treatment_clusters=clusters,
            control_clusters=clusters,
        )
        assert clustered.effect.width > iid.effect.width

    def test_confidence_level_changes_width(self):
        rng = np.random.default_rng(3)
        t, c = rng.normal(1, 1, 100), rng.normal(0, 1, 100)
        wide = difference_in_means(t, c, confidence=0.99)
        narrow = difference_in_means(t, c, confidence=0.8)
        assert wide.effect.width > narrow.effect.width


class TestClusterRobustVariance:
    def test_matches_shape(self):
        outcomes = np.array([1.0, 2.0, 3.0, 4.0])
        clusters = np.array([0, 0, 1, 1])
        var, n = cluster_robust_variance(outcomes, clusters)
        assert n == 2
        assert var >= 0.0

    def test_single_cluster_returns_zero(self):
        var, n = cluster_robust_variance(np.array([1.0, 2.0]), np.array([0, 0]))
        assert n == 1
        assert var == 0.0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            cluster_robust_variance(np.array([1.0]), np.array([0, 1]))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            cluster_robust_variance(np.array([]), np.array([]))


class TestQuantileTreatmentEffect:
    def test_detects_tail_shift(self):
        rng = np.random.default_rng(4)
        c = rng.normal(0.0, 1.0, 2000)
        t = np.concatenate([rng.normal(0.0, 1.0, 1900), rng.normal(5.0, 1.0, 100)])
        qte = quantile_treatment_effect(t, c, quantile=0.99, seed=0, n_bootstrap=200)
        assert qte.estimate > 1.0

    def test_median_of_identical_distributions_near_zero(self):
        rng = np.random.default_rng(5)
        t = rng.normal(0.0, 1.0, 1000)
        c = rng.normal(0.0, 1.0, 1000)
        qte = quantile_treatment_effect(t, c, quantile=0.5, seed=0, n_bootstrap=200)
        assert qte.covers(0.0)

    def test_invalid_quantile_raises(self):
        with pytest.raises(ValueError):
            quantile_treatment_effect(np.array([1.0]), np.array([1.0]), quantile=1.5)

    def test_empty_group_raises(self):
        with pytest.raises(ValueError):
            quantile_treatment_effect(np.array([]), np.array([1.0]))


class TestRelativeEffect:
    def test_scaling(self):
        absolute = EstimateWithCI(2.0, 0.5, 1.0, 3.0)
        relative = relative_effect(absolute, baseline=4.0)
        assert relative.estimate == pytest.approx(0.5)
        assert relative.ci_high == pytest.approx(0.75)

    def test_zero_baseline_raises(self):
        with pytest.raises(ZeroDivisionError):
            relative_effect(EstimateWithCI(1.0, 0.1, 0.9, 1.1), baseline=0.0)
