"""Tests for the campaign file loader (YAML/JSON → frozen CampaignSpec)."""

import json

import pytest

from repro.campaign import CampaignError, load_campaign, parse_campaign

MINIMAL = {"stages": [{"figure": "topo_rtt"}]}


def _yaml_file(tmp_path, text, name="camp.yaml"):
    path = tmp_path / name
    path.write_text(text, encoding="utf-8")
    return path


class TestLoadCampaign:
    def test_yaml_round_trip(self, tmp_path):
        path = _yaml_file(
            tmp_path,
            """
            campaign: demo
            description: two stages
            analysis:
              confidence: 0.9
            defaults:
              quick: true
            stages:
              - figure: fig2a
                name: lab
                noise: 0.05
                seeds: [0, 1]
              - figure: topo_rtt
            """,
        )
        campaign = load_campaign(path)
        assert campaign.name == "demo"
        assert campaign.description == "two stages"
        assert campaign.analysis.confidence == 0.9
        assert [s.name for s in campaign.stages] == ["lab", "topo_rtt"]
        assert campaign.stages[0].knobs == {"noise": 0.05}
        assert campaign.stages[0].seeds == (0, 1)
        assert campaign.stages[1].knobs == {"quick": True}
        assert campaign.stages[1].seeds == ()

    def test_json_and_yaml_spellings_key_identically(self, tmp_path):
        doc = {
            "campaign": "same",
            "stages": [{"figure": "fig2a", "noise": 0.1, "seeds": [0]}],
        }
        ypath = _yaml_file(
            tmp_path,
            "campaign: same\nstages:\n  - figure: fig2a\n    noise: 0.1\n    seeds: [0]\n",
        )
        jpath = tmp_path / "camp.json"
        jpath.write_text(json.dumps(doc), encoding="utf-8")
        assert load_campaign(ypath).content_key() == load_campaign(jpath).content_key()

    def test_name_defaults_to_file_stem(self, tmp_path):
        path = _yaml_file(tmp_path, "stages:\n  - figure: topo_rtt\n", name="nightly.yml")
        assert load_campaign(path).name == "nightly"

    def test_missing_file(self, tmp_path):
        with pytest.raises(CampaignError, match="not found"):
            load_campaign(tmp_path / "nope.yaml")

    def test_unsupported_suffix(self, tmp_path):
        path = tmp_path / "camp.toml"
        path.write_text("x = 1\n", encoding="utf-8")
        with pytest.raises(CampaignError, match="unsupported campaign suffix"):
            load_campaign(path)

    def test_invalid_yaml(self, tmp_path):
        path = _yaml_file(tmp_path, "stages: [\n")
        with pytest.raises(CampaignError, match="invalid YAML"):
            load_campaign(path)

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "camp.json"
        path.write_text("{", encoding="utf-8")
        with pytest.raises(CampaignError, match="invalid JSON"):
            load_campaign(path)

    def test_errors_carry_the_path(self, tmp_path):
        path = _yaml_file(tmp_path, "stages:\n  - figure: nope\n")
        with pytest.raises(CampaignError, match=r"camp\.yaml.*unknown figure"):
            load_campaign(path)


class TestUnknownKeys:
    """Typos must fail the load at every nesting level."""

    def test_top_level(self):
        with pytest.raises(CampaignError, match=r"campaign: unknown key\(s\) \['stage'\]"):
            parse_campaign({"stage": []})

    def test_analysis(self):
        with pytest.raises(CampaignError, match=r"analysis: unknown key\(s\)"):
            parse_campaign({**MINIMAL, "analysis": {"confidenze": 0.9}})

    def test_defaults(self):
        with pytest.raises(CampaignError, match=r"defaults: unknown key\(s\)"):
            parse_campaign({**MINIMAL, "defaults": {"qwick": True}})

    def test_stage(self):
        with pytest.raises(CampaignError, match=r"stages\[0\]: unknown key\(s\)"):
            parse_campaign({"stages": [{"figure": "topo_rtt", "nois": 0.1}]})

    def test_sweep(self):
        with pytest.raises(CampaignError, match=r"sweep: unknown key\(s\)"):
            parse_campaign(
                {"stages": [{"figure": "topo_rtt", "sweep": {"speed": [1]}}]}
            )


class TestStructuralValidation:
    def test_document_must_be_mapping(self):
        with pytest.raises(CampaignError, match="must be a mapping"):
            parse_campaign([1, 2])

    @pytest.mark.parametrize("stages", [None, [], "fig2a"])
    def test_stages_must_be_nonempty_list(self, stages):
        with pytest.raises(CampaignError, match="non-empty list"):
            parse_campaign({"stages": stages})

    def test_unknown_figure_lists_choices(self):
        with pytest.raises(CampaignError, match="unknown figure 'figZ'.*fig2a"):
            parse_campaign({"stages": [{"figure": "figZ"}]})

    def test_bad_confidence_value(self):
        with pytest.raises(CampaignError, match="confidence"):
            parse_campaign({**MINIMAL, "analysis": {"confidence": "high"}})
        with pytest.raises(CampaignError, match="confidence"):
            parse_campaign({**MINIMAL, "analysis": {"confidence": 1.5}})

    def test_duplicate_stage_names(self):
        with pytest.raises(CampaignError, match="duplicate stage name"):
            parse_campaign(
                {"stages": [{"figure": "topo_rtt", "name": "s"},
                            {"figure": "topo_aqm", "name": "s"}]}
            )


class TestKnobs:
    def test_explicit_inapplicable_knob_is_an_error(self):
        with pytest.raises(CampaignError, match="does not apply"):
            parse_campaign({"stages": [{"figure": "topo_rtt", "noise": 0.1}]})
        with pytest.raises(CampaignError, match="does not apply"):
            parse_campaign({"stages": [{"figure": "fig2a", "quick": True}]})

    def test_inapplicable_default_knob_is_dropped(self):
        campaign = parse_campaign(
            {
                "defaults": {"quick": True, "noise": 0.2},
                "stages": [{"figure": "topo_rtt"}, {"figure": "fig2a"}],
            }
        )
        rtt, lab = campaign.stages
        assert rtt.knobs == {"quick": True}
        assert lab.knobs == {"noise": 0.2}

    def test_stage_knob_overrides_default(self):
        campaign = parse_campaign(
            {
                "defaults": {"noise": 0.2},
                "stages": [{"figure": "fig2a", "noise": 0.5}],
            }
        )
        assert campaign.stages[0].knobs == {"noise": 0.5}

    @pytest.mark.parametrize(
        "stage",
        [
            {"figure": "topo_rtt", "quick": "yes"},
            {"figure": "fig2a", "noise": "loud"},
            {"figure": "fig2a", "noise": -0.1},
            {"figure": "fig2a", "noise": True},
        ],
    )
    def test_bad_knob_values(self, stage):
        with pytest.raises(CampaignError):
            parse_campaign({"stages": [stage]})


class TestSeedGrids:
    def test_seeds_and_replications_conflict(self):
        with pytest.raises(CampaignError, match="not both"):
            parse_campaign(
                {"stages": [{"figure": "fig2a", "seeds": [0], "replications": 2}]}
            )

    def test_conflicting_defaults(self):
        with pytest.raises(CampaignError, match="in defaults, not both"):
            parse_campaign(
                {
                    "defaults": {"seeds": [0], "replications": 2},
                    "stages": [{"figure": "fig2a"}],
                }
            )

    def test_replications_expand_from_base_seed(self):
        campaign = parse_campaign(
            {"stages": [{"figure": "fig2a", "replications": 3, "base_seed": 10}]}
        )
        assert campaign.stages[0].seeds == (10, 11, 12)

    def test_default_grid_is_single_seed_zero(self):
        campaign = parse_campaign({"stages": [{"figure": "fig2a"}]})
        assert campaign.stages[0].seeds == (0,)

    def test_defaults_supply_the_grid_and_stage_overrides(self):
        campaign = parse_campaign(
            {
                "defaults": {"replications": 2},
                "stages": [{"figure": "fig2a"}, {"figure": "fig2b", "seeds": [7]}],
            }
        )
        assert campaign.stages[0].seeds == (0, 1)
        assert campaign.stages[1].seeds == (7,)

    def test_deterministic_figures_collapse_to_seed_free(self):
        campaign = parse_campaign(
            {
                "defaults": {"replications": 5},
                "stages": [{"figure": "topo_rtt"}],
            }
        )
        assert campaign.stages[0].seeds == ()
        assert len(campaign.stages[0].arms()) == 1

    @pytest.mark.parametrize("bad", [["a"], [True], 1])
    def test_bad_seed_values(self, bad):
        with pytest.raises(CampaignError):
            parse_campaign({"stages": [{"figure": "fig2a", "seeds": bad}]})

    def test_zero_replications_rejected(self):
        with pytest.raises(CampaignError, match=">= 1"):
            parse_campaign({"stages": [{"figure": "fig2a", "replications": 0}]})


class TestSweep:
    def test_cross_product_and_naming(self):
        campaign = parse_campaign(
            {
                "stages": [
                    {
                        "figure": "fig2a",
                        "name": "lab",
                        "seeds": [0],
                        "sweep": {"noise": [0.0, 0.1]},
                    }
                ]
            }
        )
        assert [s.name for s in campaign.stages] == ["lab[noise=0.0]", "lab[noise=0.1]"]
        assert campaign.stages[0].knobs == {"noise": 0.0}

    def test_bool_sweep_values_render_lowercase(self):
        campaign = parse_campaign(
            {"stages": [{"figure": "topo_rtt", "sweep": {"quick": [True, False]}}]}
        )
        assert [s.name for s in campaign.stages] == [
            "topo_rtt[quick=true]",
            "topo_rtt[quick=false]",
        ]

    def test_fixed_and_swept_knob_conflict(self):
        with pytest.raises(CampaignError, match="both fixed and swept"):
            parse_campaign(
                {
                    "stages": [
                        {"figure": "fig2a", "noise": 0.1, "sweep": {"noise": [0.2]}}
                    ]
                }
            )

    def test_inapplicable_swept_knob(self):
        with pytest.raises(CampaignError, match="does not apply"):
            parse_campaign(
                {"stages": [{"figure": "topo_rtt", "sweep": {"noise": [0.1]}}]}
            )

    def test_empty_sweep_values(self):
        with pytest.raises(CampaignError, match="empty value list"):
            parse_campaign({"stages": [{"figure": "topo_rtt", "sweep": {"quick": []}}]})


class TestDeterminism:
    def test_parsing_twice_yields_identical_arms(self):
        doc = {
            "campaign": "det",
            "defaults": {"quick": True},
            "stages": [
                {"figure": "fig2a", "noise": 0.05, "replications": 3},
                {"figure": "topo_rtt"},
                {"figure": "topo_churn", "seeds": [4, 2]},
            ],
        }
        first = parse_campaign(doc)
        second = parse_campaign(json.loads(json.dumps(doc)))
        assert first == second
        assert first.content_key() == second.content_key()
        assert [a.key for a in first.arms()] == [a.key for a in second.arms()]

    def test_explicit_default_knob_keys_like_omitted(self):
        # Inert-at-default: spelling ``quick: false`` (the task default)
        # must not perturb the arm content keys.
        bare = parse_campaign({"stages": [{"figure": "topo_rtt"}]})
        spelled = parse_campaign({"stages": [{"figure": "topo_rtt", "quick": False}]})
        assert [a.key for a in bare.arms()] == [a.key for a in spelled.arms()]
