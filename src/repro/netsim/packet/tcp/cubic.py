"""TCP Cubic congestion control (simplified).

Cubic grows the window as a cubic function of the time since the last loss
event:

.. math:: W(t) = C (t - K)^3 + W_{max}, \\qquad K = \\sqrt[3]{W_{max} \\beta / C}

where ``W_max`` is the window at the last loss, ``beta = 0.3`` is the
multiplicative-decrease fraction (window shrinks to 0.7 W_max) and
``C = 0.4`` is the standard aggressiveness constant.  Slow start behaves
like Reno.  TCP-friendliness (the Reno-emulation lower bound) is included
because it dominates at small windows.
"""

from __future__ import annotations

from repro.netsim.packet.packets import Packet
from repro.netsim.packet.tcp.base import TcpSender

__all__ = ["CubicSender"]


class CubicSender(TcpSender):
    """Cubic window growth with multiplicative decrease 0.7."""

    #: Cubic aggressiveness constant (packets / s^3).
    C = 0.4
    #: Multiplicative decrease: window shrinks to (1 - BETA) * W_max.
    BETA = 0.3
    #: Minimum congestion window, in packets.
    MIN_CWND = 2.0

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._w_max = self.cwnd
        self._epoch_start: float | None = None
        self._k = 0.0
        # Reno-emulation state for the TCP-friendly region.
        self._w_tcp = self.cwnd

    def _begin_epoch(self) -> None:
        self._epoch_start = self.scheduler.now
        self._w_tcp = self.cwnd
        if self.cwnd < self._w_max:
            self._k = ((self._w_max - self.cwnd) / self.C) ** (1.0 / 3.0)
        else:
            self._k = 0.0
            self._w_max = self.cwnd

    def on_ack(self, packet: Packet, rtt_sample: float) -> None:
        """Step the window toward the cubic target W(t) for one ack."""
        if self.in_slow_start:
            self.cwnd += 1.0
            return
        if self._epoch_start is None:
            self._begin_epoch()
        t = self.scheduler.now - (self._epoch_start or self.scheduler.now)
        target = self.C * (t - self._k) ** 3 + self._w_max
        # TCP-friendly region: emulate Reno's average growth rate.
        self._w_tcp += 3.0 * self.BETA / (2.0 - self.BETA) / max(self.cwnd, 1.0)
        target = max(target, self._w_tcp)
        if target > self.cwnd:
            # Spread the increase over the acks of one RTT.
            self.cwnd += (target - self.cwnd) / max(self.cwnd, 1.0)
        else:
            self.cwnd += 0.01 / max(self.cwnd, 1.0)

    def on_ack_batch(self, packet: Packet, rtt_sample: float, segments: int) -> None:
        """O(1) growth for a batch of ``segments`` acks.

        The cubic target W(t) depends only on the epoch clock, not on
        the ack count, so a batch evaluates it once and takes n steps of
        the same spread toward it — clamped at the target, exactly where
        n per-ack steps would converge.  The TCP-friendly floor advances
        its Reno-emulation window by n acks' worth in one update.
        """
        if self.in_slow_start:
            headroom = max(self.ssthresh - self.cwnd, 0.0)
            ss_acks = min(float(segments), headroom)
            self.cwnd += ss_acks
            segments -= int(ss_acks)
            if segments <= 0:
                return
        if self._epoch_start is None:
            self._begin_epoch()
        t = self.scheduler.now - (self._epoch_start or self.scheduler.now)
        target = self.C * (t - self._k) ** 3 + self._w_max
        self._w_tcp += segments * 3.0 * self.BETA / (2.0 - self.BETA) / max(self.cwnd, 1.0)
        target = max(target, self._w_tcp)
        if target > self.cwnd:
            self.cwnd = min(
                self.cwnd + segments * (target - self.cwnd) / max(self.cwnd, 1.0),
                target,
            )
        else:
            self.cwnd += segments * 0.01 / max(self.cwnd, 1.0)

    def on_loss(self, packet: Packet) -> None:
        """Multiplicative decrease by BETA and start a new cubic epoch."""
        self._w_max = self.cwnd
        self.cwnd = max(self.cwnd * (1.0 - self.BETA), self.MIN_CWND)
        self.ssthresh = self.cwnd
        self._epoch_start = None

    def on_l4s_mark(self, packet: Packet) -> None:
        """The proportional DCTCP cut, plus a cubic epoch reset.

        Without the reset the old trajectory's target would immediately
        re-inflate the window and neuter the mark.
        """
        self._w_max = self.cwnd
        super().on_l4s_mark(packet)
        self._epoch_start = None
