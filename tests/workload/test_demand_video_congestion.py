"""Tests for the demand curve, the video/ABR model and the congestion model."""

import numpy as np
import pytest

from repro.workload.congestion import CongestionModel
from repro.workload.demand import DEFAULT_HOURLY_SHAPE, DiurnalDemandModel
from repro.workload.video import (
    BITRATE_LADDER_KBPS,
    BitrateCapPolicy,
    select_bitrate,
    select_bitrate_array,
)


class TestDiurnalDemand:
    def test_shape_has_24_hours(self):
        assert len(DEFAULT_HOURLY_SHAPE) == 24

    def test_wrong_shape_length_raises(self):
        with pytest.raises(ValueError):
            DiurnalDemandModel(hourly_shape=(1.0, 2.0))

    def test_peak_is_in_the_evening(self):
        model = DiurnalDemandModel()
        peak_hour = max(range(24), key=lambda h: model.relative_demand(0, h))
        assert 18 <= peak_hour <= 22

    def test_overnight_demand_is_low(self):
        model = DiurnalDemandModel()
        assert model.relative_demand(0, 4) < 0.2 * model.peak_relative_demand()

    def test_weekday_weekend_classification(self):
        # Day 0 is a Wednesday (start_weekday=2): days 3 and 4 are the weekend.
        model = DiurnalDemandModel()
        assert [model.is_weekend(d) for d in range(5)] == [False, False, False, True, True]

    def test_weekend_demand_is_higher(self):
        model = DiurnalDemandModel()
        assert model.relative_demand(3, 14) > model.relative_demand(0, 14)

    def test_sessions_in_hour_deterministic_without_rng(self):
        model = DiurnalDemandModel()
        assert model.sessions_in_hour(0, 20, 100) == round(100 * model.relative_demand(0, 20))

    def test_sessions_in_hour_poisson_with_rng(self):
        model = DiurnalDemandModel()
        rng = np.random.default_rng(0)
        counts = [model.sessions_in_hour(0, 20, 100, rng) for _ in range(50)]
        assert np.mean(counts) == pytest.approx(100 * model.relative_demand(0, 20), rel=0.1)

    def test_invalid_hour_raises(self):
        with pytest.raises(ValueError):
            DiurnalDemandModel().relative_demand(0, 24)

    def test_negative_sessions_raise(self):
        with pytest.raises(ValueError):
            DiurnalDemandModel().sessions_in_hour(0, 0, -1)


class TestBitrateLadder:
    def test_ladder_is_sorted(self):
        assert list(BITRATE_LADDER_KBPS) == sorted(BITRATE_LADDER_KBPS)

    def test_select_bitrate_monotone_in_throughput(self):
        rates = [select_bitrate(t) for t in (0.5, 2.0, 5.0, 10.0, 50.0)]
        assert rates == sorted(rates)

    def test_select_bitrate_never_exceeds_budget_when_feasible(self):
        throughput = 5.0
        rate = select_bitrate(throughput)
        assert rate <= throughput * 1000 * 0.8

    def test_select_bitrate_falls_back_to_lowest_rung(self):
        assert select_bitrate(0.01) == min(BITRATE_LADDER_KBPS)

    def test_select_bitrate_negative_throughput_raises(self):
        with pytest.raises(ValueError):
            select_bitrate(-1.0)

    def test_array_version_matches_scalar(self):
        throughputs = np.array([0.5, 2.0, 5.0, 10.0, 50.0])
        array = select_bitrate_array(throughputs)
        scalar = np.array([select_bitrate(t) for t in throughputs])
        assert np.array_equal(array, scalar)

    def test_empty_ladder_raises(self):
        with pytest.raises(ValueError):
            select_bitrate(1.0, ladder=())


class TestBitrateCapPolicy:
    def test_cap_removes_top_rungs(self):
        ladder = BitrateCapPolicy(cap_kbps=3000).ladder()
        assert max(ladder) <= 3000

    def test_none_disables_cap(self):
        assert BitrateCapPolicy(cap_kbps=None).ladder() == BITRATE_LADDER_KBPS

    def test_cap_below_lowest_rung_keeps_lowest(self):
        ladder = BitrateCapPolicy(cap_kbps=100).ladder()
        assert ladder == (min(BITRATE_LADDER_KBPS),)

    def test_apply_clamps(self):
        policy = BitrateCapPolicy(cap_kbps=3000)
        assert policy.apply(5000) == 3000
        assert policy.apply(1000) == 1000

    def test_invalid_cap_raises(self):
        with pytest.raises(ValueError):
            BitrateCapPolicy(cap_kbps=0)


class TestCongestionModel:
    def test_uncongested_below_onset(self):
        model = CongestionModel(capacity_gbps=100, congestion_onset_utilization=0.9)
        state = model.state_for_load(80.0)
        assert not state.congested
        assert state.throughput_factor == 1.0
        assert state.queueing_delay_ms == 0.0
        assert state.loss_rate == 0.0

    def test_congested_above_onset(self):
        model = CongestionModel(capacity_gbps=100, congestion_onset_utilization=0.9)
        state = model.state_for_load(120.0)
        assert state.congested
        assert state.throughput_factor < 1.0
        assert state.queueing_delay_ms > 0.0
        assert state.loss_rate > 0.0

    def test_monotone_in_load(self):
        model = CongestionModel()
        loads = [95.0, 105.0, 120.0, 150.0]
        states = [model.state_for_load(load) for load in loads]
        factors = [s.throughput_factor for s in states]
        delays = [s.queueing_delay_ms for s in states]
        assert factors == sorted(factors, reverse=True)
        assert delays == sorted(delays)

    def test_delay_and_loss_bounded_by_maxima(self):
        model = CongestionModel(max_queueing_delay_ms=85, max_congestion_loss=0.003)
        state = model.state_for_load(1000.0)
        assert state.queueing_delay_ms <= 85.0
        assert state.loss_rate <= 0.003

    def test_negative_load_raises(self):
        with pytest.raises(ValueError):
            CongestionModel().state_for_load(-1.0)

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            CongestionModel(capacity_gbps=0)
        with pytest.raises(ValueError):
            CongestionModel(congestion_onset_utilization=1.5)
        with pytest.raises(ValueError):
            CongestionModel(throughput_degradation_exponent=0.5)
