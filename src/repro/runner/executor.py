"""Process-parallel execution of scenario specs.

:class:`ParallelExecutor` is deliberately small: resolve cache hits,
fan the misses out over a process pool (or run them inline for
``jobs=1``), store fresh results back into the cache, and return results
in spec order.  Because every spec carries its own seed, the results are
bit-identical regardless of ``jobs``.
"""

from __future__ import annotations

import os
from collections.abc import Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor
from typing import Any

from repro.runner.cache import ResultCache
from repro.runner.spec import ScenarioSpec, content_key, run_spec

__all__ = ["ParallelExecutor", "run_specs"]


def _execute(spec: ScenarioSpec) -> Any:
    # Module-level so worker processes can unpickle a reference to it.
    return run_spec(spec)


class ParallelExecutor:
    """Runs scenario specs serially or across worker processes.

    Parameters
    ----------
    jobs:
        Number of worker processes.  ``1`` (the default) runs every spec
        in the current process with no pool overhead; ``None`` or any
        value below 1 means "one per CPU".
    cache:
        Optional :class:`ResultCache`.  Hits skip execution entirely;
        fresh results are stored after execution.
    """

    def __init__(self, jobs: int | None = 1, cache: ResultCache | None = None):
        if jobs is None or jobs < 1:
            jobs = os.cpu_count() or 1
        self.jobs = int(jobs)
        self.cache = cache

    def run(self, spec: ScenarioSpec) -> Any:
        """Execute a single spec (through the cache if one is set)."""
        return self.map([spec])[0]

    def map(self, specs: Iterable[ScenarioSpec]) -> list[Any]:
        """Execute specs and return their results in input order."""
        specs = list(specs)
        results: list[Any] = [None] * len(specs)
        keys: dict[int, str] = {}
        pending: list[int] = []

        if self.cache is None:
            pending = list(range(len(specs)))
        else:
            for i, spec in enumerate(specs):
                key = content_key(spec)
                keys[i] = key
                hit, value = self.cache.get(key)
                if hit:
                    results[i] = value
                else:
                    pending.append(i)

        if pending:
            fresh = self._execute_pending([specs[i] for i in pending])
            for i, value in zip(pending, fresh):
                results[i] = value
                if self.cache is not None:
                    self.cache.put(keys[i], value)
        return results

    def _execute_pending(self, specs: Sequence[ScenarioSpec]) -> list[Any]:
        if self.jobs == 1 or len(specs) == 1:
            return [run_spec(spec) for spec in specs]
        workers = min(self.jobs, len(specs))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(_execute, specs))


def run_specs(
    specs: Iterable[ScenarioSpec],
    jobs: int | None = 1,
    cache: ResultCache | None = None,
) -> list[Any]:
    """Convenience wrapper: build an executor and map the specs."""
    return ParallelExecutor(jobs=jobs, cache=cache).map(specs)
