"""The fluid half of the packet/fluid hybrid: upstream congestion.

Each edge bottleneck is packet-simulated in isolation; everything above
it — the region aggregation link and the backbone — is approximated by
the steady-state fluid model, vectorized with numpy so coupling a fleet
of thousands of edges costs two water-fill passes, not a per-flow loop:

1. **Region pass.**  Every edge offers its full capacity as demand on
   its region's aggregation link; the link's capacity (a fraction
   ``region_oversubscription`` of the summed member capacities) is split
   by :func:`~repro.netsim.fluid.competition.weighted_water_fill` with
   per-edge weights equal to their total connection counts — TCP's
   per-connection fairness, the exact mechanism behind the paper's
   multiple-connections treatment, now acting *between* edges.
2. **Backbone pass.**  Region throughputs become demands on the
   backbone; a second water-fill splits it by aggregate region weight,
   and any squeeze is passed down to the region's edges proportionally.

The result per edge is an *effective capacity* (the upstream-limited
drain rate its packet simulation runs at), a small random-loss rate
standing in for drops at the congested upstream queue (computed from the
square-root loss kernel :func:`~repro.netsim.fluid.link.loss_probability`
at the edge's per-connection rate), and extra path delay (core
propagation plus a standing-queue term when the region link saturates).

This is deliberately a one-shot fixed point, not an iterated one: edge
demands are capacity-bounded constants (bulk senders always fill
whatever they are given), so the two passes already yield the fluid
equilibrium.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.netsim.fluid.competition import weighted_water_fill
from repro.netsim.fluid.link import loss_probability
from repro.netsim.fleet.spec import FleetSpec

__all__ = ["FleetCoupling", "couple_fleet"]

#: Upstream drops are early losses, not the edge queue's own tail drops;
#: cap the injected rate so shard TCP stacks stay in the recoverable
#: fast-retransmit regime.
MAX_BACKBONE_LOSS = 0.02

#: Fraction of the square-root-model loss attributed to the upstream
#: queue when it binds (the rest re-emerges at the shard's own queue,
#: which drains at the squeezed effective capacity).
BACKBONE_LOSS_SHARE = 0.5

#: MSS of the shard simulations; the loss kernel is evaluated at the
#: same segment size the packet engine uses.
SHARD_MSS_BYTES = 1500


@dataclass(frozen=True)
class FleetCoupling:
    """Per-edge upstream state computed by the fluid passes.

    Attributes
    ----------
    effective_capacity_mbps:
        Upstream-limited drain rate of each edge's bottleneck.
    backbone_loss_rate:
        Random early-loss rate injected on each edge's path, standing in
        for drops at the binding upstream queue (0 when unconstrained).
    extra_rtt_ms:
        Additional two-way delay of each edge's paths: core propagation
        plus the standing-queue term for saturated region links.
    region_utilization:
        Offered load over capacity per region link (> 1 means saturated).
    backbone_utilization:
        Offered load over capacity on the backbone.
    """

    effective_capacity_mbps: np.ndarray
    backbone_loss_rate: np.ndarray
    extra_rtt_ms: np.ndarray
    region_utilization: np.ndarray
    backbone_utilization: float

    @property
    def congested(self) -> bool:
        """Whether any upstream link actually squeezed an edge."""
        return bool((self.backbone_loss_rate > 0).any())


def couple_fleet(spec: FleetSpec, edge_weights: np.ndarray) -> FleetCoupling:
    """Run the two fluid passes for a fleet.

    Parameters
    ----------
    spec:
        The fleet configuration (geometry, capacities, oversubscription).
    edge_weights:
        Total competitive weight per edge: the summed connection counts
        of its units.  This is how the treatment couples across shards —
        treated edges carry more connections and win a bigger share of a
        congested aggregation link.
    """
    edge_weights = np.asarray(edge_weights, dtype=float)
    if edge_weights.shape != (spec.edges,):
        raise ValueError(f"edge_weights must have shape ({spec.edges},)")
    if (edge_weights <= 0).any():
        raise ValueError("every edge needs positive weight (at least one unit)")

    edge_capacity = np.full(spec.edges, spec.edge_capacity_mbps)
    regions = np.array([spec.region_of(e) for e in range(spec.edges)])

    # Region pass: water-fill each aggregation link over its member edges.
    region_limited = np.empty(spec.edges)
    region_capacity = np.empty(spec.regions)
    region_offered = np.empty(spec.regions)
    for r in range(spec.regions):
        members = regions == r
        capacity = spec.region_oversubscription * float(edge_capacity[members].sum())
        region_capacity[r] = capacity
        region_offered[r] = float(edge_capacity[members].sum())
        region_limited[members] = weighted_water_fill(
            capacity, edge_capacity[members], edge_weights[members]
        )

    # Backbone pass: water-fill the backbone over region throughputs,
    # then pass any squeeze down to the member edges proportionally.
    backbone_capacity = spec.backbone_oversubscription * float(region_capacity.sum())
    region_demand = np.array(
        [float(region_limited[regions == r].sum()) for r in range(spec.regions)]
    )
    region_weight = np.array(
        [float(edge_weights[regions == r].sum()) for r in range(spec.regions)]
    )
    region_granted = weighted_water_fill(backbone_capacity, region_demand, region_weight)
    with np.errstate(invalid="ignore"):
        region_scale = np.where(region_demand > 0, region_granted / region_demand, 1.0)
    effective = region_limited * region_scale[regions]

    # Upstream loss: the square-root model at each squeezed edge's mean
    # per-connection rate, over the full path RTT, half attributed to the
    # upstream queue and capped to stay in the recoverable regime.
    squeezed = effective < edge_capacity - 1e-9
    edge_rtt = np.array([spec.edge_rtt_ms(e) for e in range(spec.edges)])
    region_saturated = region_offered > region_capacity + 1e-9
    extra_rtt = spec.backbone_rtt_ms + np.where(
        region_saturated[regions], spec.backbone_queue_delay_ms, 0.0
    )
    per_connection = effective / edge_weights
    p_model = loss_probability(
        per_connection, rtt_ms=edge_rtt + extra_rtt, mtu_bytes=SHARD_MSS_BYTES
    )
    loss = np.where(
        squeezed, np.minimum(BACKBONE_LOSS_SHARE * p_model, MAX_BACKBONE_LOSS), 0.0
    )

    return FleetCoupling(
        effective_capacity_mbps=effective,
        backbone_loss_rate=loss,
        extra_rtt_ms=extra_rtt,
        region_utilization=region_offered / region_capacity,
        backbone_utilization=float(region_demand.sum()) / backbone_capacity,
    )
