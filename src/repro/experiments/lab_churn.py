"""Churn experiments: A/B bias under dynamic traffic and time-varying demand.

Two experiments put the dynamic-traffic subsystem to work on the paper's
questions:

* :func:`run_churn_experiment` — the connection-count A/B sweep (the
  paper's Figure 2a treatment) re-run while a Poisson stream of finite,
  heavy-tailed flows churns through the same bottleneck.  The zero-churn
  arm is *exactly* today's static experiment (same sweep, same specs, so
  it shares cache entries with ``topo_aqm``'s drop-tail sweep); the
  churny arms answer: does short-flow churn — traffic that grabs
  bandwidth during slow start and leaves — dilute or amplify the bias
  the paper measured against long-lived competitors only?  Flow
  completion times of the churning flows come back per intensity, an
  observable the static lab could not produce at all.

* :func:`run_switchback_ramp_experiment` — a time-based design under
  demand that actually moves.  Background churn ramps up across the
  experiment (each interval also ramps internally via
  :class:`~repro.netsim.traffic.demand.RampDemand`), the intervals are
  randomly assigned by the paper's
  :class:`~repro.core.designs.switchback.SwitchbackDesign`, and the
  switchback TTE estimate is compared against (a) the ground truth from
  all-treated/all-control counterfactual runs of every interval and (b)
  a before/after event study launched at the midpoint.  Under rising
  demand the event study conflates launch with load; the switchback's
  randomized intervals do not — Section 5's argument, reproduced on the
  packet simulator.

Both run every simulation arm through the
:class:`~repro.runner.executor.ParallelExecutor` (``jobs``/``cache``),
so results are deterministic for a fixed seed and bit-identical for any
worker count.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from collections.abc import Sequence

from repro.core.designs.switchback import SwitchbackDesign
from repro.experiments.lab_common import figure_cells_spec, LabFigure, packet_sweep_to_figure
from repro.runner.spec import ScenarioSpec
from repro.experiments.lab_topology import sweep_scale
from repro.netsim.packet.simulation import FlowConfig
from repro.netsim.packet.sweep import run_packet_sweep
from repro.netsim.traffic import ParetoSizes, PoissonArrivals, RampDemand, TrafficSource

__all__ = [
    "DEFAULT_CHURN_RATES",
    "ChurnStats",
    "ChurnBiasComparison",
    "run_churn_experiment",
    "churn_spec",
    "SwitchbackRampOutcome",
    "run_switchback_ramp_experiment",
]

#: Churn intensities (flow arrivals per second) swept by default; 0.0 is
#: the static reference that must reproduce today's result exactly.
DEFAULT_CHURN_RATES: tuple[float, ...] = (0.0, 2.0, 6.0)

#: Heavy-tailed size distribution of churning flows: Pareto(1.5) with a
#: 60 kB floor gives a 180 kB mean — mice with the occasional elephant.
CHURN_SIZES = ParetoSizes(min_bytes=60_000.0, alpha=1.5)

#: Churn sizes for the switchback-ramp scenario: still Pareto, but with
#: a finite-variance tail (alpha 2.5, ~100 kB mean).  The ramp's point
#: is the demand *trend*; with infinite-variance sizes a single elephant
#: flow can dominate one short interval's mean and drown the trend in
#: sampling noise at lab scale.
RAMP_SIZES = ParetoSizes(min_bytes=60_000.0, alpha=2.5)


def _churn_sources(rate_per_s: float) -> tuple[TrafficSource, ...] | None:
    if rate_per_s <= 0.0:
        # No sources at all (not an idle source): the sweep then builds
        # byte-identical specs to the static experiment, sharing its
        # cache entries.
        return None
    return (
        TrafficSource(
            arrivals=PoissonArrivals(rate_per_s),
            sizes=CHURN_SIZES,
            label="churn",
        ),
    )


@dataclass
class ChurnStats:
    """Lifecycle summary of the churning flows at one intensity (taken
    from the 50 %-allocation arm of the sweep).

    Beyond the mean, the FCT distribution's p50/p95/p99 are reported:
    with heavy-tailed sizes the mean is dominated by a few elephants
    while the percentiles expose what churn does to the typical and the
    tail latency — the ROADMAP's "FCT percentiles as figure cells"
    follow-up.  All are ``None`` when nothing completed (zero churn).
    """

    flows_started: int
    flows_completed: int
    mean_fct_s: float | None
    p50_fct_s: float | None = None
    p95_fct_s: float | None = None
    p99_fct_s: float | None = None


@dataclass
class ChurnBiasComparison:
    """The connection-count sweep at several churn intensities.

    ``figures[rate]`` is the :class:`LabFigure` with churn arriving at
    ``rate`` flows/s; :meth:`bias` reduces each to how far the naive A/B
    estimate sits from the true total treatment effect.  ``churn[rate]``
    summarizes the dynamic flows themselves (counts and mean FCT).
    """

    figures: dict[float, LabFigure]
    churn: dict[float, ChurnStats]
    allocation: float = 0.5

    def rates(self) -> tuple[float, ...]:
        """Churn intensities in sweep order."""
        return tuple(self.figures)

    def bias(self, rate: float, metric: str = "throughput_mbps") -> float:
        """Naive A/B estimate minus the TTE at :attr:`allocation` (per unit)."""
        figure = self.figures[rate]
        return figure.ab_estimate(metric, self.allocation) - figure.tte(metric)

    def summary_lines(self) -> list[str]:
        """Per-intensity figure summaries plus the bias/FCT comparison."""
        lines: list[str] = []
        for rate, figure in self.figures.items():
            lines.append(f"=== churn intensity: {rate:g} flows/s ===")
            lines.extend(figure.summary_lines())
        lines.append("")
        lines.append(
            f"A/B-vs-TTE bias at {self.allocation:.0%} allocation (throughput, Mb/s per unit):"
        )
        for rate in self.figures:
            lines.append(f"  churn {rate:>5g}/s: {self.bias(rate):+.2f}")
        lines.append("churning flows at the 50% allocation arm:")
        for rate, stats in self.churn.items():
            fct = "-" if stats.mean_fct_s is None else f"{stats.mean_fct_s:.3f}s"
            tail = "-"
            if stats.p50_fct_s is not None:
                tail = (
                    f"p50 {stats.p50_fct_s:.3f}s / p95 {stats.p95_fct_s:.3f}s "
                    f"/ p99 {stats.p99_fct_s:.3f}s"
                )
            lines.append(
                f"  churn {rate:>5g}/s: {stats.flows_started} started, "
                f"{stats.flows_completed} completed, mean FCT {fct}, {tail}"
            )
        return lines


def run_churn_experiment(
    churn_rates: Sequence[float] = DEFAULT_CHURN_RATES,
    treatment_connections: int = 2,
    control_connections: int = 1,
    quick: bool = False,
    jobs: int = 1,
    cache=None,
    seed: int = 0,
) -> ChurnBiasComparison:
    """The parallel-connections bias as a function of churn intensity.

    Each intensity re-runs the full allocation sweep with a Poisson
    stream of finite Pareto-sized flows sharing the bottleneck.  The
    churning flows are unmeasured (like real background traffic); the
    sweep measures the same long-lived applications as the static
    experiment, so the bias trajectory across intensities isolates what
    *churn itself* does to an A/B test.

    Parameters
    ----------
    churn_rates:
        Flow arrival rates (per second) to sweep; include 0.0 to anchor
        the comparison at today's static result (the zero-churn specs
        are identical to the static sweep's, cache entries included).
    treatment_connections, control_connections:
        Connections opened by treated / control applications (paper: 2 / 1).
    quick:
        Shrink the sweep (fewer units, shorter runs) for smoke tests.
    jobs, cache:
        Worker processes and optional result cache for the sweep arms.
    seed:
        Seed for the churn arrivals and flow sizes (inert at rate 0.0).
    """
    if not churn_rates:
        raise ValueError("at least one churn rate is required")
    if any(rate < 0 for rate in churn_rates):
        raise ValueError("churn rates must be non-negative")
    if len(set(churn_rates)) != len(churn_rates):
        raise ValueError("churn rates must be distinct")
    if treatment_connections < 1 or control_connections < 1:
        raise ValueError("connection counts must be at least 1")

    figures: dict[float, LabFigure] = {}
    churn_stats: dict[float, ChurnStats] = {}
    for rate in churn_rates:
        rate = float(rate)
        scale = sweep_scale(quick)
        n_units = scale.pop("n_units")
        sweep = run_packet_sweep(
            n_units,
            treatment_factory=lambda i: FlowConfig(
                i, cc="reno", connections=treatment_connections
            ),
            control_factory=lambda i: FlowConfig(
                i, cc="reno", connections=control_connections
            ),
            traffic_sources=_churn_sources(rate),
            seed=seed,
            jobs=jobs,
            cache=cache,
            **scale,
        )
        figures[rate] = packet_sweep_to_figure(
            sweep,
            name=f"topo_churn[{rate:g}/s]",
            description=(
                f"{n_units} applications using {treatment_connections} (treatment) "
                f"or {control_connections} (control) TCP Reno connections on a "
                f"shared drop-tail bottleneck with Pareto-sized flows churning "
                f"at {rate:g}/s"
            ),
        )
        midpoint = sweep.results[n_units // 2]
        started, completed = midpoint.dynamic_flow_counts()
        churn_stats[rate] = ChurnStats(
            flows_started=started,
            flows_completed=completed,
            mean_fct_s=midpoint.mean_dynamic_fct_s(),
            p50_fct_s=midpoint.dynamic_fct_percentile(50.0),
            p95_fct_s=midpoint.dynamic_fct_percentile(95.0),
            p99_fct_s=midpoint.dynamic_fct_percentile(99.0),
        )
    return ChurnBiasComparison(figures=figures, churn=churn_stats)


# -- switchback under a demand ramp --------------------------------------------


@dataclass
class SwitchbackRampOutcome:
    """A switchback vs an event study under ramping background demand.

    Attributes
    ----------
    n_intervals:
        Number of switchback intervals.
    treatment_intervals:
        Intervals randomly assigned to treatment (high allocation).
    demand_multipliers:
        Background-churn demand multiplier at each interval *boundary*
        (``n_intervals + 1`` values): interval ``i`` ramps from
        ``demand_multipliers[i]`` to ``demand_multipliers[i + 1]``.
    truth_tte:
        Ground-truth per-unit TTE: all-treated minus all-control
        counterfactual runs, averaged over every interval.
    switchback_estimate:
        Treated mean over treatment intervals minus control mean over
        control intervals (the design's comparison).
    event_study_estimate:
        Before/after estimate of a launch at the midpoint interval:
        all-treated mean of later intervals minus all-control mean of
        earlier ones — confounded by whatever demand did meanwhile.
    traffic_split:
        Allocation inside treatment intervals (control intervals run the
        mirror ``1 - traffic_split``).  1.0 is the pure switchback; 0.95
        is the paper's production split, where each interval mixes both
        arms and within-interval interference re-enters.
    within_interval_ab_estimate:
        Mean over all intervals of the *within-interval* treated-minus-
        control difference at the realized allocation — the naive
        estimator a production 95/5 deployment invites.  ``None`` for
        the pure switchback (pure intervals have no opposite arm).
    allocation_units:
        The realized ``(control-interval, treatment-interval)`` treated
        unit counts of a mixed split (always a strict minority/majority
        pair); ``None`` for the pure switchback.
    """

    n_intervals: int
    treatment_intervals: tuple[int, ...]
    demand_multipliers: tuple[float, ...]
    truth_tte: float
    switchback_estimate: float
    event_study_estimate: float
    traffic_split: float = 1.0
    within_interval_ab_estimate: float | None = None
    allocation_units: tuple[int, int] | None = None

    def switchback_error(self) -> float:
        """Absolute error of the switchback estimate vs the truth."""
        return abs(self.switchback_estimate - self.truth_tte)

    def event_study_error(self) -> float:
        """Absolute error of the event-study estimate vs the truth."""
        return abs(self.event_study_estimate - self.truth_tte)

    def within_interval_error(self) -> float | None:
        """Absolute error of the within-interval A/B estimate vs the truth."""
        if self.within_interval_ab_estimate is None:
            return None
        return abs(self.within_interval_ab_estimate - self.truth_tte)

    def summary_lines(self) -> list[str]:
        split = (
            "pure 100/0 intervals"
            if self.traffic_split >= 1.0
            else f"{self.traffic_split:.0%}/{1.0 - self.traffic_split:.0%} intervals"
        )
        lines = [
            "switchback vs event study under a background-demand ramp "
            f"({self.n_intervals} intervals, {split}, churn demand x"
            f"{self.demand_multipliers[0]:g} -> x{self.demand_multipliers[-1]:g})",
            f"  treatment intervals (randomized): {list(self.treatment_intervals)}",
            f"  ground-truth TTE:      {self.truth_tte:+.2f} Mb/s per unit",
            f"  switchback estimate:   {self.switchback_estimate:+.2f} Mb/s "
            f"(error {self.switchback_error():.2f})",
            f"  event-study estimate:  {self.event_study_estimate:+.2f} Mb/s "
            f"(error {self.event_study_error():.2f})",
        ]
        if self.within_interval_ab_estimate is not None:
            lines.append(
                f"  within-interval A/B:   {self.within_interval_ab_estimate:+.2f} "
                f"Mb/s (error {self.within_interval_error():.2f}) — the "
                "production-split estimator, biased by within-interval "
                "interference"
            )
        lines.append(
            "  the event study conflates the launch with the demand ramp; "
            "the randomized switchback does not"
        )
        return lines


def _ramp_scale(quick: bool) -> dict[str, object]:
    if quick:
        return dict(
            n_intervals=4,
            n_units=4,
            capacity_mbps=24.0,
            duration_s=5.0,
            warmup_s=1.5,
        )
    return dict(
        n_intervals=6,
        n_units=4,
        capacity_mbps=24.0,
        duration_s=8.0,
        warmup_s=2.0,
    )


def run_switchback_ramp_experiment(
    base_churn_per_s: float = 4.0,
    ramp_factor: float = 4.0,
    treatment_connections: int = 2,
    control_connections: int = 1,
    traffic_split: float = 1.0,
    quick: bool = False,
    jobs: int = 1,
    cache=None,
    seed: int = 0,
) -> SwitchbackRampOutcome:
    """Estimate a TTE by switchback while background churn ramps up.

    Each interval is one packet simulation of a switchback allocation —
    by default *pure* (treatment intervals treat every unit, control
    intervals none — 100/0, so the estimate isolates time confounding
    with no within-interval interference); a ``traffic_split`` below 1
    instead runs the paper's production-style mixed intervals
    (``traffic_split`` treated during treatment intervals, the mirror
    ``1 - traffic_split`` during control intervals), which re-admits
    within-interval interference and additionally reports the naive
    within-interval A/B estimate such a deployment invites.  Unmeasured
    churn arrives at a rate that ramps from ``base_churn_per_s`` to
    ``ramp_factor`` times that across the experiment (and linearly
    *within* each interval, via
    :class:`~repro.netsim.traffic.demand.RampDemand`, so interval
    boundaries genuinely straddle demand shifts).  Counterfactual
    all-treated / all-control runs of every interval provide the ground
    truth and the midpoint-launch event-study emulation.  Interval
    randomization is balanced per consecutive pair (a handful of
    intervals under a monotone ramp cannot afford a 3-1 draw) and the
    chosen days flow through :class:`SwitchbackDesign` as the paper's
    Section 5.3 emulation does.

    Parameters
    ----------
    base_churn_per_s:
        Churn arrival rate at the start of the experiment.
    ramp_factor:
        Demand multiplier reached by the final interval (>= 0).
    treatment_connections, control_connections:
        The connection-count treatment (paper: 2 / 1).
    traffic_split:
        Within-interval allocation, in (0.5, 1.0].  1.0 (default) keeps
        the pure switchback; e.g. 0.95 runs the production 95/5 variant.
        The unit count is scaled up if needed so the minority arm keeps
        at least one unit (0.95 needs 20 units), which makes production
        splits markedly more expensive than the pure default.
    quick:
        Fewer, shorter intervals for smoke tests.
    jobs, cache:
        Worker processes and optional result cache; all intervals' arms
        fan out through the same executor settings.
    seed:
        Seeds both the interval randomization (via
        :class:`SwitchbackDesign`) and the churn arrivals.
    """
    if base_churn_per_s <= 0:
        raise ValueError("base_churn_per_s must be positive")
    if ramp_factor < 0:
        raise ValueError("ramp_factor must be non-negative")
    if treatment_connections < 1 or control_connections < 1:
        raise ValueError("connection counts must be at least 1")
    if not 0.5 < traffic_split <= 1.0:
        raise ValueError("traffic_split must be in (0.5, 1.0]")

    scale = _ramp_scale(quick)
    n_intervals = scale.pop("n_intervals")
    n_units = scale.pop("n_units")
    duration_s = scale["duration_s"]

    if traffic_split < 1.0:
        # The minority arm needs at least one unit; scale the unit count
        # up until round(n * split) stays interior.  The lower clamp is a
        # strict majority, not 1: banker's rounding of e.g. 0.6 * 4 would
        # otherwise land on exactly n/2 and silently degenerate the split
        # into identical 50/50 treatment and control intervals.
        n_units = max(n_units, math.ceil(1.0 / (1.0 - traffic_split)))
        k_hi = min(
            max(round(n_units * traffic_split), n_units // 2 + 1), n_units - 1
        )
        k_lo = n_units - k_hi
        # The realized mixed arms plus the pure counterfactuals (ground
        # truth and event study always compare the pure allocations).
        allocations = tuple(sorted({0, k_lo, k_hi, n_units}))
    else:
        k_hi, k_lo = n_units, 0
        allocations = (0, n_units)

    # Balanced pair-wise randomization: with only a handful of intervals
    # a plain coin flip per interval frequently lands 3-1 or worse, and
    # an unbalanced switchback straddling a demand ramp re-imports the
    # very time confound it exists to remove.  Flipping one interval per
    # consecutive pair keeps the arms balanced *and* random — then the
    # paper's design object turns the chosen days into the plan.
    rng = random.Random(f"switchback-ramp:{seed}")
    chosen: list[int] = []
    for start in range(0, n_intervals, 2):
        pair = list(range(start, min(start + 2, n_intervals)))
        chosen.append(pair[rng.randrange(len(pair))])
    design = SwitchbackDesign(
        treatment_allocation=1.0,
        control_allocation=0.0,
        treatment_days=tuple(chosen),
    )
    treatment_intervals = design.treatment_days_for(range(n_intervals))
    treated_set = set(treatment_intervals)

    def multiplier_at(boundary: int) -> float:
        # Demand at interval boundary ``boundary`` (0 .. n_intervals):
        # interval i ramps from boundary i to boundary i+1, so the final
        # interval ends exactly at ``ramp_factor`` — no extrapolation,
        # and never negative for any ramp_factor >= 0.
        return 1.0 + (ramp_factor - 1.0) * boundary / n_intervals

    multipliers = tuple(multiplier_at(i) for i in range(n_intervals + 1))

    # One sweep per interval over the two pure allocations the analysis
    # needs: the all-control and all-treated arms serve as the realized
    # interval (whichever the design assigned), its counterfactual for
    # the ground truth, and the event-study emulation — all from the
    # same cached results.
    sweeps = []
    for i in range(n_intervals):
        demand = RampDemand(
            start_level=multiplier_at(i),
            end_level=multiplier_at(i + 1),
            t0=0.0,
            t1=duration_s,
        )
        source = TrafficSource(
            arrivals=PoissonArrivals(base_churn_per_s),
            sizes=RAMP_SIZES,
            demand=demand,
            label="ramp-churn",
        )
        sweeps.append(
            run_packet_sweep(
                n_units,
                treatment_factory=lambda u: FlowConfig(
                    u, cc="reno", connections=treatment_connections
                ),
                control_factory=lambda u: FlowConfig(
                    u, cc="reno", connections=control_connections
                ),
                allocations=allocations,
                traffic_sources=(source,),
                seed=seed * 1009 + i,
                jobs=jobs,
                cache=cache,
                **scale,
            )
        )

    # The design's comparison: the treated arm of treatment intervals vs
    # the control arm of control intervals — at the realized (possibly
    # mixed) allocations.
    switchback_treated = [
        sweeps[i].results[k_hi].group_mean_throughput(True)
        for i in range(n_intervals)
        if i in treated_set
    ]
    switchback_control = [
        sweeps[i].results[k_lo].group_mean_throughput(False)
        for i in range(n_intervals)
        if i not in treated_set
    ]
    switchback_estimate = (
        sum(switchback_treated) / len(switchback_treated)
        - sum(switchback_control) / len(switchback_control)
    )

    within_interval: float | None = None
    if traffic_split < 1.0:
        # The naive production estimator: treated minus control *within*
        # each realized mixed interval, averaged across intervals.
        per_interval = []
        for i in range(n_intervals):
            k = k_hi if i in treated_set else k_lo
            result = sweeps[i].results[k]
            per_interval.append(
                result.group_mean_throughput(True)
                - result.group_mean_throughput(False)
            )
        within_interval = sum(per_interval) / n_intervals

    truth_per_interval = [
        sweeps[i].results[n_units].group_mean_throughput(True)
        - sweeps[i].results[0].group_mean_throughput(False)
        for i in range(n_intervals)
    ]
    truth_tte = sum(truth_per_interval) / n_intervals

    midpoint = n_intervals // 2
    before = [
        sweeps[i].results[0].group_mean_throughput(False) for i in range(midpoint)
    ]
    after = [
        sweeps[i].results[n_units].group_mean_throughput(True)
        for i in range(midpoint, n_intervals)
    ]
    event_study_estimate = sum(after) / len(after) - sum(before) / len(before)

    return SwitchbackRampOutcome(
        n_intervals=n_intervals,
        treatment_intervals=treatment_intervals,
        demand_multipliers=multipliers,
        truth_tte=truth_tte,
        switchback_estimate=switchback_estimate,
        event_study_estimate=event_study_estimate,
        traffic_split=traffic_split,
        within_interval_ab_estimate=within_interval,
        allocation_units=None if traffic_split >= 1.0 else (k_lo, k_hi),
    )


def churn_spec(
    quick: bool = False, seed: int | None = 0, label: str | None = None
) -> ScenarioSpec:
    """Runner spec for one topo_churn replication (seeded arrivals).

    The campaign compiler's entry point: returns the content-keyed
    ``figure.cells`` spec whose execution reproduces
    :func:`run_churn_experiment`'s scalar cells at one seed.
    """
    return figure_cells_spec("topo_churn", quick=quick, seed=seed, label=label)
