"""Absolute-throughput microbenchmarks of the packet engine hot path.

Unlike the figure benchmarks (which time whole experiments), these drive
a single drop-tail bottleneck at saturation — 8 Reno connections filling
a 200 Mb/s link — and report the engine's *absolute* throughput in
segments/sec and scheduler events/sec via the ``throughput`` fixture, so
the perf trajectory (``BENCH_*.json``) records speedups, not just
regressions.  The same workload measured under each engine
configuration:

* the binary-heap scheduler (the default),
* the calendar-queue scheduler (order-identical, see
  ``docs/performance.md``),
* event batching (macro-packets), whose ≥2x speedup is the acceptance
  bar asserted by ``test_batching_speedup_is_at_least_2x``.

The workload matches the cost model in ``docs/performance.md``: at
saturation the unbatched engine spends ~2 scheduler events per segment
(one service completion, one ack delivery), so segments/sec is the
honest, config-independent unit to compare across engine variants.
"""

import time

from _helpers import run_once

from repro.netsim.packet.network import Network
from repro.netsim.packet.simulation import FlowConfig

#: Saturation workload: 4 applications x 2 Reno connections on one
#: 200 Mb/s, 20 ms bottleneck with a 1-BDP buffer — enough aggregate
#: window to keep the link busy from the first RTT on.
SATURATION = dict(capacity_mbps=200.0, base_rtt_ms=20.0, buffer_bdp=1.0)
N_APPS = 4
CONNECTIONS = 2
DURATION_S = 4.0
WARMUP_S = 1.0


def _build_network(**engine_kwargs):
    network = Network(**SATURATION, **engine_kwargs)
    for i in range(N_APPS):
        network.add_flow(FlowConfig(i, cc="reno", connections=CONNECTIONS))
    return network


def _timed_run(**engine_kwargs):
    """Run the saturation workload; return (network, result, wall seconds)."""
    network = _build_network(**engine_kwargs)
    start = time.perf_counter()
    result = network.run(duration_s=DURATION_S, warmup_s=WARMUP_S)
    wall = time.perf_counter() - start
    return network, result, wall


def _segments_sent(result):
    return sum(f.packets_sent for f in result.flows)


def _assert_saturated(result):
    # The engine variants must all actually fill the link; a variant
    # that "wins" by sending less traffic is not faster, it is wrong.
    assert result.total_throughput_mbps() >= 0.95 * SATURATION["capacity_mbps"]


def test_saturation_heap(benchmark, throughput):
    # Explicit "heap": the default is now "auto" (which would pick the
    # calendar queue for this geometry), but this benchmark pins the
    # binary-heap reference point.
    network, result, wall = run_once(benchmark, _timed_run, scheduler="heap")
    _assert_saturated(result)
    assert network.scheduler.kind == "heap"
    throughput.record(
        packets=_segments_sent(result),
        events=network.scheduler.events_processed,
        seconds=wall,
    )


def test_saturation_calendar(benchmark, throughput):
    network, result, wall = run_once(benchmark, _timed_run, scheduler="calendar")
    _assert_saturated(result)
    assert network.scheduler.kind == "calendar"
    throughput.record(
        packets=_segments_sent(result),
        events=network.scheduler.events_processed,
        seconds=wall,
    )


def test_saturation_batched(benchmark, throughput):
    network, result, wall = run_once(benchmark, _timed_run, event_batching=True)
    _assert_saturated(result)
    throughput.record(
        packets=_segments_sent(result),
        events=network.scheduler.events_processed,
        seconds=wall,
    )
    # The whole point of macro-packets: far fewer scheduler events than
    # segments (unbatched spends ~2 events per segment).
    assert network.scheduler.events_processed < _segments_sent(result)


def test_batching_speedup_is_at_least_2x():
    """The acceptance bar: batching buys >=2x segments/sec at saturation.

    Measured locally at ~3.9x with the default ``batch_segments=8``; the
    2x floor leaves room for CI jitter.  Best-of-two per variant damps
    one-off scheduler hiccups on shared runners.
    """

    def best_rate(**engine_kwargs):
        best = 0.0
        for _ in range(2):
            _, result, wall = _timed_run(**engine_kwargs)
            _assert_saturated(result)
            best = max(best, _segments_sent(result) / wall)
        return best

    unbatched = best_rate()
    batched = best_rate(event_batching=True)
    assert batched >= 2.0 * unbatched, (
        f"batching speedup {batched / unbatched:.2f}x below the 2x bar "
        f"({batched:,.0f} vs {unbatched:,.0f} segments/sec)"
    )


# -- pure scheduler churn (no network) ----------------------------------------

#: Events pushed through the bare schedulers in the churn benchmarks.
CHURN_EVENTS = 100_000


def _scheduler_churn(make_sched):
    """Steady-state churn: every event re-arms itself a short hop ahead.

    Mimics the engine's event population at saturation — a few hundred
    live events, all within one horizon — isolating raw scheduler
    overhead from the TCP/queue machinery.
    """
    sched = make_sched()
    remaining = [CHURN_EVENTS]

    def rearm():
        if remaining[0] > 0:
            remaining[0] -= 1
            sched.schedule_in(1e-3, rearm)

    for _ in range(500):
        sched.schedule_in(1e-4, rearm)
    sched.run(until=1e9)
    assert remaining[0] == 0
    return sched


def test_scheduler_churn_heap(benchmark, throughput):
    from repro.netsim.packet.engine import EventScheduler

    start = time.perf_counter()
    sched = run_once(benchmark, _scheduler_churn, EventScheduler)
    wall = time.perf_counter() - start
    throughput.record(
        packets=0, events=sched.events_processed, seconds=wall
    )


def test_scheduler_churn_calendar(benchmark, throughput):
    from repro.netsim.packet.engine import CalendarScheduler

    start = time.perf_counter()
    sched = run_once(
        benchmark, _scheduler_churn, lambda: CalendarScheduler(bucket_s=1e-3)
    )
    wall = time.perf_counter() - start
    throughput.record(
        packets=0, events=sched.events_processed, seconds=wall
    )
