"""Discrete-event scheduling engines.

Two interchangeable schedulers drive the packet simulator:

* :class:`EventScheduler` — a binary heap (the default).  Events are
  ``(time, sequence, callback)`` tuples; the sequence number breaks ties
  so that events scheduled earlier run earlier and comparison never
  falls through to the (non-comparable) callback.
* :class:`CalendarScheduler` — a calendar queue (Brown 1988): a ring of
  time buckets, each a small sorted list.  When the event horizon is
  short relative to the bucket width — as it is at steady state, where
  almost every pending event lies within one RTT — scheduling degrades
  from the heap's O(log n) comparisons to an O(1) bucket append, at the
  cost of a bucket scan when events are sparse.

Both schedulers deliver the *exact same event order* for the same calls
(time, then scheduling sequence); the property and fuzz tests in
``tests/netsim/test_scheduler_property.py`` pin this, which is what lets
the network builder switch between them without perturbing a single
simulation result.  :func:`make_scheduler` is the factory the builder
uses; ``"auto"`` picks the calendar queue when the expected event
spacing fits its geometry (see :meth:`CalendarScheduler.suits`).
"""

from __future__ import annotations

import heapq
import itertools
from bisect import insort
from collections.abc import Callable

__all__ = ["EventScheduler", "CalendarScheduler", "SCHEDULERS", "make_scheduler"]


class EventScheduler:
    """A simple discrete-event scheduler backed by a binary heap.

    Example
    -------
    >>> sched = EventScheduler()
    >>> fired = []
    >>> sched.schedule(1.0, lambda: fired.append("a"))
    >>> sched.schedule(0.5, lambda: fired.append("b"))
    >>> sched.run(until=2.0)
    >>> fired
    ['b', 'a']
    """

    #: Registry name used by :func:`make_scheduler`.
    kind = "heap"

    #: Cancelled-entry count above which :meth:`cancel` rebuilds the heap.
    _COMPACT_THRESHOLD = 64

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._counter = itertools.count()
        self._now = 0.0
        self._pending: set[int] = set()
        self._cancelled: set[int] = set()
        #: Lifetime count of callbacks executed (the events/sec numerator
        #: of the performance model; see ``docs/performance.md``).
        self.events_processed = 0
        #: Lifetime count of events ever inserted (processed + cancelled
        #: + still pending); part of the uniform counter schema both
        #: scheduler kinds report (:class:`repro.obs.metrics.EngineCounters`).
        self.events_scheduled = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def schedule(self, time: float, callback: Callable[[], None]) -> int:
        """Schedule ``callback`` to run at absolute ``time``.

        Returns an event id usable with :meth:`cancel`.  Scheduling in the
        past raises ``ValueError``.
        """
        if time < self._now:
            raise ValueError(
                f"cannot schedule an event at {time} before current time {self._now}"
            )
        event_id = next(self._counter)
        heapq.heappush(self._heap, (float(time), event_id, callback))
        self._pending.add(event_id)
        self.events_scheduled += 1
        return event_id

    def schedule_in(self, delay: float, callback: Callable[[], None]) -> int:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        return self.schedule(self._now + delay, callback)

    def cancel(self, event_id: int) -> None:
        """Cancel a previously scheduled event.

        Cancelling an id that is not pending (unknown, already run, or
        already cancelled) is a no-op.  Cancelled entries are dropped
        lazily at pop time; once they outnumber the live events the heap
        is compacted, so neither the heap nor the cancelled-id set grows
        without bound.
        """
        if event_id not in self._pending:
            return
        self._pending.discard(event_id)
        self._cancelled.add(event_id)
        if (
            len(self._cancelled) > self._COMPACT_THRESHOLD
            and len(self._cancelled) > len(self._pending)
        ):
            self._heap = [e for e in self._heap if e[1] not in self._cancelled]
            heapq.heapify(self._heap)
            self._cancelled.clear()

    def __len__(self) -> int:
        """Number of live (non-cancelled) pending events."""
        return len(self._pending)

    def run(self, until: float) -> None:
        """Run events in time order until the clock reaches ``until``."""
        heap = self._heap
        pending_discard = self._pending.discard
        cancelled = self._cancelled
        pop = heapq.heappop
        while heap and heap[0][0] <= until:
            time, event_id, callback = pop(heap)
            if event_id in cancelled:
                cancelled.discard(event_id)
                continue
            pending_discard(event_id)
            self._now = time
            self.events_processed += 1
            callback()
        self._now = max(self._now, until)

    def step(self) -> bool:
        """Run a single event.  Returns False when no events remain."""
        while self._heap:
            time, event_id, callback = heapq.heappop(self._heap)
            if event_id in self._cancelled:
                self._cancelled.discard(event_id)
                continue
            self._pending.discard(event_id)
            self._now = time
            self.events_processed += 1
            callback()
            return True
        return False


class CalendarScheduler:
    """A calendar-queue scheduler: a ring of ``buckets`` sorted lists.

    Events land in bucket ``int(time / bucket_s) % buckets``; each bucket
    is kept sorted by ``(time, sequence)``, so within a bucket — and
    therefore globally — events fire in exactly the order the heap
    scheduler would fire them.  The pop path walks the ring one *day*
    (bucket width) at a time from the current day; an event more than a
    full ring revolution (one *year*) ahead stays in its bucket until the
    walk reaches its year, and a fully empty revolution falls back to a
    direct scan for the earliest bucket head, so arbitrarily sparse
    futures (a traffic source's pre-generated arrivals, for example)
    remain correct — just not O(1).

    The sweet spot is the saturated steady state: nearly every pending
    event (service completions, ack deliveries, pacing timers) lies
    within one RTT, so with ``bucket_s`` near the per-event spacing each
    bucket holds O(1) entries and both insert and pop touch a handful of
    list elements instead of an O(log n) heap path.

    Parameters
    ----------
    bucket_s:
        Bucket (day) width in seconds.  Pick the expected spacing between
        events — the network builder uses the MSS serialization time of
        its bottleneck.
    buckets:
        Ring size.  ``bucket_s * buckets`` is the year length: the
        horizon within which an event is reachable without a year check.
    """

    kind = "calendar"

    #: Cancelled-entry count above which :meth:`cancel` rebuilds the ring.
    _COMPACT_THRESHOLD = 64

    #: Default ring size: large enough that one year covers several RTTs
    #: at MSS-sized ticks, small enough that an empty-ring scan is cheap.
    DEFAULT_BUCKETS = 1024

    def __init__(self, bucket_s: float, buckets: int = DEFAULT_BUCKETS) -> None:
        if bucket_s <= 0:
            raise ValueError("bucket_s must be positive")
        if buckets < 2:
            raise ValueError("buckets must be at least 2")
        self._bucket_s = float(bucket_s)
        self._n = int(buckets)
        self._buckets: list[list[tuple[float, int, Callable[[], None]]]] = [
            [] for _ in range(self._n)
        ]
        self._counter = itertools.count()
        self._now = 0.0
        self._day = 0  # ring cursor: no live event lies before this day
        self._pending: set[int] = set()
        self._cancelled: set[int] = set()
        self.events_processed = 0
        #: Same contract as :attr:`EventScheduler.events_scheduled`.
        self.events_scheduled = 0

    @classmethod
    def suits(cls, horizon_s: float, bucket_s: float) -> bool:
        """Whether the calendar geometry fits an event horizon.

        True when ``horizon_s`` (the span most pending events live in —
        one RTT plus worst-case queueing at steady state) fits inside one
        ring revolution of ``bucket_s``-wide buckets, so the pop path
        almost never needs a year check.  The network builder's
        ``scheduler="auto"`` policy calls this with its base RTT and the
        bottleneck's MSS serialization time.
        """
        if bucket_s <= 0 or horizon_s <= 0:
            return False
        return horizon_s / bucket_s <= cls.DEFAULT_BUCKETS

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def schedule(self, time: float, callback: Callable[[], None]) -> int:
        """Schedule ``callback`` at absolute ``time``; returns an event id."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule an event at {time} before current time {self._now}"
            )
        event_id = next(self._counter)
        time = float(time)
        bucket = self._buckets[int(time / self._bucket_s) % self._n]
        if bucket and bucket[-1][0] <= time:
            # Common case at steady state: append in order, no bisect.
            bucket.append((time, event_id, callback))
        else:
            insort(bucket, (time, event_id, callback))
        self._pending.add(event_id)
        self.events_scheduled += 1
        return event_id

    def schedule_in(self, delay: float, callback: Callable[[], None]) -> int:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        return self.schedule(self._now + delay, callback)

    def cancel(self, event_id: int) -> None:
        """Cancel a previously scheduled event (lazy, like the heap's)."""
        if event_id not in self._pending:
            return
        self._pending.discard(event_id)
        self._cancelled.add(event_id)
        if (
            len(self._cancelled) > self._COMPACT_THRESHOLD
            and len(self._cancelled) > len(self._pending)
        ):
            for i, bucket in enumerate(self._buckets):
                self._buckets[i] = [e for e in bucket if e[1] not in self._cancelled]
            self._cancelled.clear()

    def __len__(self) -> int:
        """Number of live (non-cancelled) pending events."""
        return len(self._pending)

    def _pop_next(self) -> tuple[float, int, Callable[[], None]] | None:
        """Remove and return the earliest live event, or None when empty.

        Walks the ring from the day cursor; a bucket's head belongs to
        the current day iff its own day index matches (computed with the
        *same* ``int(time / bucket_s)`` expression used at insert time,
        so float rounding cannot strand an event between two days).
        """
        width = self._bucket_s
        n = self._n
        buckets = self._buckets
        cancelled = self._cancelled
        while self._pending:
            day = self._day
            for _ in range(n):
                bucket = buckets[day % n]
                while bucket:
                    head = bucket[0]
                    if head[1] in cancelled:
                        cancelled.discard(head[1])
                        bucket.pop(0)
                        continue
                    if int(head[0] / width) <= day:
                        self._day = day
                        self._pending.discard(head[1])
                        return bucket.pop(0)
                    break  # head lies in a later year of this bucket
                day += 1
            # A full revolution found nothing this year: jump the cursor
            # straight to the day of the earliest bucket head (rare —
            # only when every pending event is more than a year away).
            heads = [b[0] for b in buckets if b]
            if not heads:
                break  # every remaining entry was cancelled
            earliest = min(heads)
            self._day = int(earliest[0] / width)
        return None

    def run(self, until: float) -> None:
        """Run events in time order until the clock reaches ``until``."""
        while True:
            entry = self._pop_next()
            if entry is None:
                break
            time, event_id, callback = entry
            if time > until:
                # Put it back (cheap: it is the minimum, so it re-sorts
                # to the front of its bucket) and stop.  The pop walked
                # the day cursor up to this event's day — rewind it to
                # the clock's day, because events scheduled later (at
                # times >= now but < this event) may land in the days in
                # between and must still be reachable in order.
                insort(self._buckets[int(time / self._bucket_s) % self._n], entry)
                self._pending.add(event_id)
                self._day = int(self._now / self._bucket_s)
                break
            self._now = time
            self.events_processed += 1
            callback()
        self._now = max(self._now, until)

    def step(self) -> bool:
        """Run a single event.  Returns False when no events remain."""
        entry = self._pop_next()
        if entry is None:
            return False
        self._now = entry[0]
        self.events_processed += 1
        entry[2]()
        return True


#: Scheduler implementations selectable by name in :func:`make_scheduler`.
SCHEDULERS: dict[str, type] = {
    EventScheduler.kind: EventScheduler,
    CalendarScheduler.kind: CalendarScheduler,
}


def make_scheduler(
    kind: str = "heap",
    *,
    horizon_s: float | None = None,
    bucket_s: float | None = None,
    buckets: int = CalendarScheduler.DEFAULT_BUCKETS,
) -> EventScheduler | CalendarScheduler:
    """Construct a scheduler by name: ``"heap"``, ``"calendar"`` or ``"auto"``.

    ``"auto"`` selects the calendar queue when both geometry hints are
    given and :meth:`CalendarScheduler.suits` accepts them — i.e. when
    the event horizon (``horizon_s``, typically one base RTT) is short
    relative to the expected event spacing (``bucket_s``, typically one
    MSS serialization time), as it is at steady state — and falls back
    to the heap otherwise.
    """
    if kind == "auto":
        if (
            bucket_s is not None
            and horizon_s is not None
            and CalendarScheduler.suits(horizon_s, bucket_s)
        ):
            kind = "calendar"
        else:
            kind = "heap"
    if kind == "heap":
        return EventScheduler()
    if kind == "calendar":
        if bucket_s is None:
            raise ValueError("the calendar scheduler needs a bucket_s width")
        return CalendarScheduler(bucket_s, buckets=buckets)
    raise ValueError(
        f"unknown scheduler {kind!r}; expected one of {sorted(SCHEDULERS)} or 'auto'"
    )
