"""Text rendering of figure/table data.

The benchmarks and examples print the same rows/series the paper's figures
report.  This module provides small, dependency-free formatters so every
harness renders consistently.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

__all__ = [
    "format_table",
    "format_percent",
    "format_estimate_row",
    "format_series",
]


def format_percent(value: float, decimals: int = 1) -> str:
    """Format a fractional value as a signed percentage string."""
    return f"{100.0 * value:+.{decimals}f}%"


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    min_width: int = 10,
) -> str:
    """Render a simple fixed-width text table."""
    if not headers:
        raise ValueError("headers must not be empty")
    widths = [max(min_width, len(str(h))) for h in headers]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError("every row must have the same number of cells as headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))
    lines = []
    lines.append("  ".join(str(h).rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(str(cell).rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_estimate_row(
    metric: str, estimates: Mapping[str, float], decimals: int = 1
) -> str:
    """Render one metric's estimates, e.g. for a Figure 5 style row."""
    parts = [f"{metric}:"]
    for name, value in estimates.items():
        parts.append(f"{name}={100.0 * value:+.{decimals}f}%")
    return " ".join(parts)


def format_series(series: Mapping[int, float], decimals: int = 3) -> str:
    """Render an hour-indexed series as ``hour:value`` pairs."""
    return " ".join(f"{int(k):02d}:{v:.{decimals}f}" for k, v in sorted(series.items()))
