"""Bandwidth-sharing and loss models for the fluid simulator.

The fluid model computes long-term average behaviour of long-lived flows
sharing one bottleneck.  It encodes three well-established empirical
results that the paper's lab experiments rest on:

1. **Per-connection fairness of loss-based TCP.**  ``n`` identical
   loss-based connections each receive ``C / n``; an application opening
   two connections receives twice the throughput of one opening a single
   connection (Balakrishnan et al. 1998, Briscoe 2007).

2. **Unpaced traffic outcompetes paced traffic.**  A paced Reno connection
   sharing a drop-tail bottleneck with unpaced Reno connections obtains a
   substantially lower share (Aggarwal et al. 2000, Wei et al. 2006); the
   paper's lab measures roughly 50 % lower throughput.

3. **BBR's aggregate share against loss-based traffic is roughly
   independent of flow counts.**  With a ~1 BDP buffer, the BBR aggregate
   claims a fixed fraction of the link when competing against Cubic,
   regardless of how many flows are on each side (Ware et al. 2019).

Retransmission rates come from the square-root TCP loss-throughput
relationship: a loss-based connection running at rate ``r`` over round-trip
time ``RTT`` with segment size ``S`` experiences a loss probability of
about ``1.5 (S / (RTT * r))^2``.  Pacing reduces the drop rate further by
removing burst losses.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.netsim.fluid.application import Application
from repro.netsim.fluid.link import BottleneckLink

__all__ = [
    "CompetitionModel",
    "allocate_throughput",
    "allocate_throughput_reference",
    "link_loss_rate",
    "link_loss_rate_reference",
    "weighted_water_fill",
    "weighted_water_fill_reference",
]


@dataclass(frozen=True)
class CompetitionModel:
    """Parameters of the fluid sharing and loss models.

    Attributes
    ----------
    paced_weight:
        Relative competitive weight of a paced loss-based connection against
        an unpaced one (0.5 reproduces the ~50 % lower throughput the paper
        measures).
    bbr_aggregate_share:
        Fraction of the link the BBR aggregate claims when at least one BBR
        flow competes with at least one loss-based flow (Ware et al. report
        ~0.35-0.45 for 1-BDP buffers).
    pacing_loss_floor:
        Fraction of the baseline loss rate that remains when all traffic is
        paced (burst losses eliminated, only congestive losses remain).
    cubic_weight:
        Relative competitive weight of a Cubic connection against Reno.
        Kept at 1.0: the paper's lab never mixes the two directly.
    """

    paced_weight: float = 0.5
    bbr_aggregate_share: float = 0.4
    pacing_loss_floor: float = 0.25
    cubic_weight: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.paced_weight <= 1.0:
            raise ValueError("paced_weight must be in (0, 1]")
        if not 0.0 < self.bbr_aggregate_share < 1.0:
            raise ValueError("bbr_aggregate_share must be in (0, 1)")
        if not 0.0 < self.pacing_loss_floor <= 1.0:
            raise ValueError("pacing_loss_floor must be in (0, 1]")
        if self.cubic_weight <= 0.0:
            raise ValueError("cubic_weight must be positive")

    def connection_weight(self, app: Application) -> float:
        """Competitive weight of one of the application's connections."""
        weight = 1.0
        if app.cc == "cubic":
            weight *= self.cubic_weight
        if app.paced and app.is_loss_based:
            weight *= self.paced_weight
        return weight


def _validate(applications: Sequence[Application]) -> None:
    """Shared argument validation for the allocation entry points."""
    if not applications:
        raise ValueError("at least one application is required")
    ids = [a.app_id for a in applications]
    if len(set(ids)) != len(ids):
        raise ValueError("application ids must be unique")


def _app_arrays(
    applications: Sequence[Application], model: CompetitionModel
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Columnar view of an application list: the fluid model's working set.

    Returns ``(connections, is_bbr, weights, paced)`` where ``weights`` is
    each application's total competitive weight (connections x
    per-connection weight) and BBR applications carry weight 0.
    """
    n = len(applications)
    connections = np.empty(n, dtype=float)
    is_bbr = np.empty(n, dtype=bool)
    paced = np.empty(n, dtype=bool)
    cubic = np.empty(n, dtype=bool)
    for i, app in enumerate(applications):
        connections[i] = app.connections
        is_bbr[i] = app.cc == "bbr"
        paced[i] = app.paced
        cubic[i] = app.cc == "cubic"
    per_connection = np.ones(n, dtype=float)
    per_connection[cubic] *= model.cubic_weight
    per_connection[paced & ~is_bbr] *= model.paced_weight
    weights = np.where(is_bbr, 0.0, connections * per_connection)
    return connections, is_bbr, weights, paced


def _allocate_arrays(
    capacity_mbps: float,
    connections: np.ndarray,
    is_bbr: np.ndarray,
    weights: np.ndarray,
    model: CompetitionModel,
) -> np.ndarray:
    """Vectorized aggregate split + weighted shares; one bottleneck link."""
    n_bbr = float(connections[is_bbr].sum())
    loss_weight = float(weights.sum())
    if n_bbr > 0 and loss_weight > 0:
        bbr_capacity = capacity_mbps * model.bbr_aggregate_share
        loss_capacity = capacity_mbps - bbr_capacity
    elif n_bbr > 0:
        bbr_capacity, loss_capacity = capacity_mbps, 0.0
    else:
        bbr_capacity, loss_capacity = 0.0, capacity_mbps
    bbr_share = connections * (bbr_capacity / n_bbr) if n_bbr else connections * 0.0
    loss_share = weights * (loss_capacity / loss_weight) if loss_weight else weights * 0.0
    return np.where(is_bbr, bbr_share, loss_share)


def allocate_throughput(
    link: BottleneckLink,
    applications: Sequence[Application],
    model: CompetitionModel | None = None,
) -> dict[int, float]:
    """Long-term average throughput (Mb/s) of each application.

    The allocation first splits capacity between the BBR aggregate and the
    loss-based aggregate (see :class:`CompetitionModel`), then divides each
    aggregate among its connections in proportion to their competitive
    weights, and finally sums an application's connections.

    The inner step is numpy-vectorized (no per-application Python loop);
    :func:`allocate_throughput_reference` keeps the scalar path, pinned
    equal to this one by tests and raced against it in ``benchmarks/``.
    """
    _validate(applications)
    model = model or CompetitionModel()
    connections, is_bbr, weights, _ = _app_arrays(applications, model)
    shares = _allocate_arrays(link.capacity_mbps, connections, is_bbr, weights, model)
    return {app.app_id: float(share) for app, share in zip(applications, shares)}


def allocate_throughput_reference(
    link: BottleneckLink,
    applications: Sequence[Application],
    model: CompetitionModel | None = None,
) -> dict[int, float]:
    """Scalar (per-application Python loop) reference for :func:`allocate_throughput`."""
    _validate(applications)
    model = model or CompetitionModel()

    n_bbr = sum(a.connections for a in applications if a.cc == "bbr")
    loss_weight = sum(
        a.connections * model.connection_weight(a)
        for a in applications
        if a.is_loss_based
    )
    capacity = link.capacity_mbps
    if n_bbr > 0 and loss_weight > 0:
        bbr_capacity = capacity * model.bbr_aggregate_share
        loss_capacity = capacity - bbr_capacity
    elif n_bbr > 0:
        bbr_capacity, loss_capacity = capacity, 0.0
    else:
        bbr_capacity, loss_capacity = 0.0, capacity

    throughput: dict[int, float] = {}
    for app in applications:
        if app.cc == "bbr":
            per_connection = bbr_capacity / n_bbr if n_bbr else 0.0
            throughput[app.app_id] = per_connection * app.connections
        else:
            weight = app.connections * model.connection_weight(app)
            share = weight / loss_weight if loss_weight else 0.0
            throughput[app.app_id] = loss_capacity * share
    return throughput


def link_loss_rate(
    link: BottleneckLink,
    applications: Sequence[Application],
    model: CompetitionModel | None = None,
) -> float:
    """Steady-state packet loss (retransmission) rate at the bottleneck.

    All flows cross the same drop-tail queue, so every application observes
    (approximately) the same loss rate — this is why the within-test
    retransmission comparison in the paper's lab A/B tests shows no
    difference between arms even when the total loss rate changes a lot
    with the treatment allocation.

    The rate is the TCP loss-throughput relationship evaluated at the mean
    per-connection rate of the loss-based aggregate (the shared kernel
    :meth:`BottleneckLink.loss_probability`), scaled down as the fraction
    of paced bytes grows (pacing removes burst drops).  When only BBR
    traffic is present, the loss rate is BBR's ~2x-BDP overshoot loss,
    which is small for a 1-BDP buffer.
    """
    _validate(applications)
    model = model or CompetitionModel()

    connections, is_bbr, weights, paced = _app_arrays(applications, model)
    shares = _allocate_arrays(link.capacity_mbps, connections, is_bbr, weights, model)
    loss_based = ~is_bbr
    if not loss_based.any():
        # BBR-only: losses come from BBR's periodic probing overshooting the
        # 1-BDP buffer; small and independent of the number of flows.
        return 0.001

    total_loss_connections = float(connections[loss_based].sum())
    total_loss_throughput = float(shares[loss_based].sum())
    per_connection_mbps = total_loss_throughput / total_loss_connections
    if per_connection_mbps <= 0:
        return 1.0

    p = link.loss_probability(per_connection_mbps)

    paced_bytes = float(shares[loss_based & paced].sum())
    paced_fraction = paced_bytes / total_loss_throughput if total_loss_throughput else 0.0
    burst_factor = model.pacing_loss_floor + (1.0 - model.pacing_loss_floor) * (
        1.0 - paced_fraction
    )
    return p * burst_factor


def link_loss_rate_reference(
    link: BottleneckLink,
    applications: Sequence[Application],
    model: CompetitionModel | None = None,
) -> float:
    """Scalar (per-application Python loop) reference for :func:`link_loss_rate`."""
    _validate(applications)
    model = model or CompetitionModel()

    throughput = allocate_throughput_reference(link, applications, model)
    loss_based = [a for a in applications if a.is_loss_based]
    if not loss_based:
        return 0.001

    total_loss_connections = sum(a.connections for a in loss_based)
    total_loss_throughput = sum(throughput[a.app_id] for a in loss_based)
    per_connection_mbps = total_loss_throughput / total_loss_connections
    if per_connection_mbps <= 0:
        return 1.0

    p = link.loss_probability(per_connection_mbps)

    paced_bytes = sum(throughput[a.app_id] for a in loss_based if a.paced)
    paced_fraction = paced_bytes / total_loss_throughput if total_loss_throughput else 0.0
    burst_factor = model.pacing_loss_floor + (1.0 - model.pacing_loss_floor) * (
        1.0 - paced_fraction
    )
    return p * burst_factor


def weighted_water_fill(
    capacity: float,
    demands: np.ndarray,
    weights: np.ndarray,
) -> np.ndarray:
    """Weighted max-min fair allocation of ``capacity`` among ``demands``.

    Entity ``i`` receives ``min(demand_i, level * weight_i)`` where the
    water level is set so allocations sum to ``capacity`` (or every demand
    is met).  This is the fluid step of the fleet hybrid: one call shares a
    region aggregation link among its member edges, a second shares the
    backbone among regions — each call is O(n log n) numpy with no Python
    loop.  :func:`weighted_water_fill_reference` is the scalar reference.
    """
    demands = np.asarray(demands, dtype=float)
    weights = np.asarray(weights, dtype=float)
    if demands.shape != weights.shape:
        raise ValueError("demands and weights must have the same shape")
    if (demands < 0).any() or (weights <= 0).any():
        raise ValueError("demands must be >= 0 and weights > 0")
    if capacity <= 0:
        return np.zeros_like(demands)
    total_demand = float(demands.sum())
    if total_demand <= capacity:
        return demands.copy()

    # Sort by saturation level demand/weight; walk the breakpoints to find
    # where the water level settles, all in prefix-sum form.
    ratio = demands / weights
    order = np.argsort(ratio, kind="stable")
    d_sorted = demands[order]
    w_sorted = weights[order]
    ratio_sorted = ratio[order]
    demand_before = np.concatenate([[0.0], np.cumsum(d_sorted)[:-1]])
    weight_after = weights.sum() - np.concatenate([[0.0], np.cumsum(w_sorted)[:-1]])
    # level_k: water level if exactly the first k entities saturate.
    with np.errstate(divide="ignore"):
        level_k = (capacity - demand_before) / weight_after
    # The first breakpoint whose level no longer saturates its own entity.
    unsaturated = level_k <= ratio_sorted
    k = int(np.argmax(unsaturated)) if unsaturated.any() else len(demands)
    level = level_k[k] if k < len(demands) else ratio_sorted[-1]
    return np.minimum(demands, level * weights)


def weighted_water_fill_reference(
    capacity: float,
    demands: Sequence[float],
    weights: Sequence[float],
) -> np.ndarray:
    """Iterative scalar water-filling, the reference for :func:`weighted_water_fill`."""
    demands = np.asarray(demands, dtype=float)
    weights = np.asarray(weights, dtype=float)
    if demands.shape != weights.shape:
        raise ValueError("demands and weights must have the same shape")
    if (demands < 0).any() or (weights <= 0).any():
        raise ValueError("demands must be >= 0 and weights > 0")
    allocation = np.zeros_like(demands)
    if capacity <= 0:
        return allocation
    remaining = float(capacity)
    active = [i for i in range(len(demands)) if demands[i] > 0]
    while active and remaining > 1e-12:
        active_weight = sum(float(weights[i]) for i in active)
        level = remaining / active_weight
        saturated = [i for i in active if demands[i] - allocation[i] <= level * weights[i]]
        if not saturated:
            for i in active:
                allocation[i] += level * weights[i]
            break
        for i in saturated:
            remaining -= float(demands[i] - allocation[i])
            allocation[i] = float(demands[i])
        active = [i for i in active if i not in saturated]
    return allocation
