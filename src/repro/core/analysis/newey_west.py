"""Newey-West heteroskedasticity-and-autocorrelation-consistent covariance.

The paper estimates confidence intervals for the hourly regression using
Newey-West robust standard errors with a lag of two hours (Appendix B).
Successive hours of traffic are autocorrelated — congestion in one hour
predicts congestion in the next — and hourly means have very different
variances at peak versus off-peak, so ordinary OLS standard errors would be
badly miscalibrated.

The estimator, for a regression with design matrix ``X`` (n x k), residuals
``e`` and maximum lag ``L``, is

.. math::

    \\hat{V} = (X'X)^{-1} \\hat{S} (X'X)^{-1}

    \\hat{S} = \\Gamma_0 + \\sum_{l=1}^{L} w_l (\\Gamma_l + \\Gamma_l')

    \\Gamma_l = \\sum_{t=l+1}^{n} e_t e_{t-l} x_t x_{t-l}'

with Bartlett kernel weights ``w_l = 1 - l / (L + 1)``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["newey_west_covariance", "bartlett_weights"]


def bartlett_weights(max_lag: int) -> np.ndarray:
    """Bartlett kernel weights ``1 - l/(L+1)`` for lags ``1..L``."""
    if max_lag < 0:
        raise ValueError("max_lag must be non-negative")
    if max_lag == 0:
        return np.empty(0, dtype=float)
    lags = np.arange(1, max_lag + 1, dtype=float)
    return 1.0 - lags / (max_lag + 1.0)


def newey_west_covariance(
    design: np.ndarray, residuals: np.ndarray, max_lag: int = 2
) -> np.ndarray:
    """Newey-West covariance matrix of OLS coefficient estimates.

    Parameters
    ----------
    design:
        The regression design matrix, shape ``(n, k)``.  Rows must be in
        time order for the lag structure to make sense.
    residuals:
        OLS residuals, shape ``(n,)``.
    max_lag:
        Maximum autocorrelation lag ``L`` (the paper uses 2 hours).

    Returns
    -------
    numpy.ndarray
        The ``(k, k)`` covariance matrix of the coefficients.
    """
    X = np.asarray(design, dtype=float)
    e = np.asarray(residuals, dtype=float)
    if X.ndim != 2:
        raise ValueError("design must be a 2-D matrix")
    if e.ndim != 1 or e.shape[0] != X.shape[0]:
        raise ValueError("residuals must be 1-D and match the design's row count")
    if max_lag < 0:
        raise ValueError("max_lag must be non-negative")
    n, k = X.shape
    if n <= k:
        raise ValueError("need more observations than parameters")

    xtx_inv = np.linalg.pinv(X.T @ X)

    # Lag-0 term (White / HC0 meat).
    xe = X * e[:, None]
    S = xe.T @ xe

    weights = bartlett_weights(min(max_lag, n - 1))
    for lag_index, w in enumerate(weights, start=1):
        gamma = xe[lag_index:].T @ xe[:-lag_index]
        S += w * (gamma + gamma.T)

    cov = xtx_inv @ S @ xtx_inv
    # Symmetrize to remove tiny floating-point asymmetries.
    return (cov + cov.T) / 2.0
