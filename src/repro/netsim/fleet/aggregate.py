"""Sufficient statistics crossing the shard boundary.

A shard simulation may hold thousands of per-flow results while it runs,
but the only thing it *returns* is a :class:`ShardStats`: per-cell exact
moments plus a bounded-size quantile sketch.  Cells are
``"{arm}:{metric}"`` pairs (plus the arm-agnostic FCT cell fed by
dynamic churn), so the merged fleet result is O(cells x sketch size) —
never O(units).  Merging is pairwise and non-mutating; the fleet engine
folds shards in edge order, which makes the merged result bit-identical
for any ``--jobs`` value.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.analysis import QuantileSketch, StreamingStats

__all__ = [
    "ARMS",
    "UNIT_METRICS",
    "FCT_CELL",
    "QUEUE_DEPTH_CELL",
    "CellStats",
    "ShardStats",
    "cell_key",
]

#: Experiment arms (cells are per arm for unit-level metrics).
ARMS: tuple[str, ...] = ("treated", "control")

#: Per-unit metrics collected from every shard's flow results.
UNIT_METRICS: tuple[str, ...] = ("throughput_mbps", "retransmit_fraction")

#: Cell holding dynamic-flow completion times.  Churn traffic is
#: unmeasured background load shared by both arms, so it gets one
#: arm-agnostic cell.
FCT_CELL = "fleet:fct_s"

#: Cell holding probed queue-depth samples (packets waiting at the edge
#: bottleneck, one observation per probe instant).  Only present when
#: the fleet spec enables probing (``probe_interval_s > 0``); bounded by
#: the sample cadence, so the O(cells) contract holds.
QUEUE_DEPTH_CELL = "fleet:queue_depth_pkts"


def cell_key(arm: str, metric: str) -> str:
    """Canonical cell name for an (arm, metric) pair."""
    return f"{arm}:{metric}"


@dataclass
class CellStats:
    """One cell's sufficient statistics: exact moments + quantile sketch."""

    stats: StreamingStats = field(default_factory=StreamingStats)
    sketch: QuantileSketch = field(default_factory=QuantileSketch)

    @classmethod
    def with_compression(cls, compression: int) -> "CellStats":
        """An empty cell whose sketch uses the given compression factor."""
        return cls(sketch=QuantileSketch(compression=compression))

    def add(self, value: float) -> None:
        """Fold one observation into both summaries."""
        self.stats.add(value)
        self.sketch.add(value)

    def merge(self, other: "CellStats") -> "CellStats":
        """Return a new cell combining both inputs (non-mutating)."""
        return CellStats(
            stats=self.stats.merge(other.stats),
            sketch=self.sketch.merge(other.sketch),
        )


@dataclass
class ShardStats:
    """Everything a shard returns: cells plus O(1) counters.

    ``merge`` is the only aggregation operation the fleet ever performs,
    so holding one ``ShardStats`` per in-flight shard plus one
    accumulator bounds the parent's aggregation memory.
    """

    cells: dict[str, CellStats] = field(default_factory=dict)
    units: int = 0
    shards: int = 1
    packets: int = 0
    drops: int = 0
    dynamic_flows_started: int = 0
    dynamic_flows_completed: int = 0
    #: Engine counters folded across shards (uniform for both scheduler
    #: kinds; see :class:`repro.obs.metrics.EngineCounters`).  Deduped
    #: shards contribute once per edge they stand for — the "as-if" cost
    #: of the fleet, not the cache-reduced cost actually paid.
    events_processed: int = 0
    pool_reused: int = 0
    #: Pairwise cell merges performed while folding (the streaming-
    #: aggregation work metric; 0 for a freshly reduced shard).
    sketch_merges: int = 0

    def cell(self, arm: str, metric: str) -> CellStats:
        """The cell for an (arm, metric) pair; raises KeyError if absent."""
        return self.cells[cell_key(arm, metric)]

    def merge(self, other: "ShardStats") -> "ShardStats":
        """Return a new ``ShardStats`` combining both inputs (non-mutating)."""
        merged_cells: dict[str, CellStats] = {}
        for key in sorted(set(self.cells) | set(other.cells)):
            if key in self.cells and key in other.cells:
                merged_cells[key] = self.cells[key].merge(other.cells[key])
            elif key in self.cells:
                merged_cells[key] = self.cells[key].merge(CellStats())
            else:
                merged_cells[key] = CellStats().merge(other.cells[key])
        return ShardStats(
            cells=merged_cells,
            units=self.units + other.units,
            shards=self.shards + other.shards,
            packets=self.packets + other.packets,
            drops=self.drops + other.drops,
            dynamic_flows_started=self.dynamic_flows_started
            + other.dynamic_flows_started,
            dynamic_flows_completed=self.dynamic_flows_completed
            + other.dynamic_flows_completed,
            events_processed=self.events_processed + other.events_processed,
            pool_reused=self.pool_reused + other.pool_reused,
            sketch_merges=self.sketch_merges + other.sketch_merges + len(merged_cells),
        )
