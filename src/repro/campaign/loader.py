"""Parse declarative campaign files (YAML/JSON) into frozen specs.

The on-disk format is a small, strict mapping::

    campaign: quick-smoke          # optional; defaults to the file stem
    description: one-line intent   # optional
    analysis:
      confidence: 0.95             # optional
    defaults:                      # applied to every stage; stage wins
      quick: true
      replications: 2
    stages:
      - figure: fig2a              # required; a sweepable figure name
        name: connections          # optional; defaults to the figure
        noise: 0.05                # lab figures only
        seeds: [0, 1, 2]           # or replications: N (+ base_seed: B)
      - figure: topo_churn
        sweep:                     # cross-product → one stage per combo
          quick: [true, false]

Unknown keys are rejected at every level — a typo must fail the load,
not silently drop a knob.  Inapplicable knobs are an error when set on a
stage but are dropped when they arrive via ``defaults`` (so one
``defaults: {quick: true}`` can cover a mixed lab/topology campaign).
Deterministic figures ignore seed settings entirely; their stages
compile to a single seed-free arm regardless of ``replications``.
"""

from __future__ import annotations

import json
from collections.abc import Mapping, Sequence
from pathlib import Path
from typing import Any

from repro.campaign.spec import (
    AnalysisSettings,
    CampaignSpec,
    StageSpec,
    figure_is_seeded,
    figure_knobs,
)

__all__ = ["CampaignError", "load_campaign", "parse_campaign"]

_TOP_KEYS = frozenset({"campaign", "description", "analysis", "defaults", "stages"})
_ANALYSIS_KEYS = frozenset({"confidence"})
_KNOB_KEYS = frozenset({"quick", "noise"})
_SEED_KEYS = frozenset({"seeds", "replications", "base_seed"})
_STAGE_KEYS = frozenset({"figure", "name", "sweep"}) | _KNOB_KEYS | _SEED_KEYS
_DEFAULT_KEYS = _KNOB_KEYS | _SEED_KEYS


class CampaignError(ValueError):
    """A campaign file is malformed or inconsistent."""


def load_campaign(path: str | Path) -> CampaignSpec:
    """Load and validate a campaign file (``.yaml``/``.yml`` or ``.json``).

    YAML support requires PyYAML; JSON campaigns always work.  The file
    stem names the campaign unless it sets ``campaign:`` itself.
    """
    path = Path(path)
    if not path.is_file():
        raise CampaignError(f"campaign file not found: {path}")
    text = path.read_text(encoding="utf-8")
    if path.suffix.lower() == ".json":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise CampaignError(f"{path}: invalid JSON: {exc}") from exc
    elif path.suffix.lower() in (".yaml", ".yml"):
        try:
            import yaml
        except ImportError as exc:  # pragma: no cover - PyYAML is baked in
            raise CampaignError(
                f"{path}: reading YAML campaigns requires PyYAML; "
                "install it or use a .json campaign file"
            ) from exc
        try:
            data = yaml.safe_load(text)
        except yaml.YAMLError as exc:
            raise CampaignError(f"{path}: invalid YAML: {exc}") from exc
    else:
        raise CampaignError(
            f"{path}: unsupported campaign suffix {path.suffix!r} "
            "(expected .yaml, .yml or .json)"
        )
    try:
        return parse_campaign(data, default_name=path.stem)
    except CampaignError as exc:
        raise CampaignError(f"{path}: {exc}") from None


def parse_campaign(data: Any, default_name: str = "campaign") -> CampaignSpec:
    """Validate an already-parsed campaign mapping into a :class:`CampaignSpec`."""
    if not isinstance(data, Mapping):
        raise CampaignError(
            f"campaign document must be a mapping, got {type(data).__name__}"
        )
    _reject_unknown(data, _TOP_KEYS, "campaign")
    name = _require_str(data.get("campaign", default_name), "campaign")
    description = _require_str(data.get("description", ""), "description")
    analysis = _parse_analysis(data.get("analysis", {}))
    defaults = _parse_defaults(data.get("defaults", {}))

    raw_stages = data.get("stages")
    if not isinstance(raw_stages, Sequence) or isinstance(raw_stages, (str, bytes)):
        raise CampaignError("'stages' must be a non-empty list of stage mappings")
    if not raw_stages:
        raise CampaignError("'stages' must be a non-empty list of stage mappings")

    stages: list[StageSpec] = []
    for index, raw in enumerate(raw_stages):
        stages.extend(_parse_stage(raw, index, defaults))
    try:
        return CampaignSpec(
            name=name, description=description, stages=tuple(stages), analysis=analysis
        )
    except ValueError as exc:
        raise CampaignError(str(exc)) from None


def _reject_unknown(mapping: Mapping[str, Any], allowed: frozenset[str], where: str) -> None:
    """Fail loudly on keys outside ``allowed`` (typos must not be inert)."""
    unknown = sorted(set(mapping) - allowed)
    if unknown:
        raise CampaignError(
            f"{where}: unknown key(s) {unknown}; allowed: {sorted(allowed)}"
        )


def _require_str(value: Any, where: str) -> str:
    """Type-check a string-valued field."""
    if not isinstance(value, str):
        raise CampaignError(f"{where}: expected a string, got {value!r}")
    return value


def _parse_analysis(raw: Any) -> AnalysisSettings:
    """Validate the ``analysis:`` section."""
    if not isinstance(raw, Mapping):
        raise CampaignError(f"analysis: expected a mapping, got {raw!r}")
    _reject_unknown(raw, _ANALYSIS_KEYS, "analysis")
    confidence = raw.get("confidence", 0.95)
    if isinstance(confidence, bool) or not isinstance(confidence, (int, float)):
        raise CampaignError(f"analysis.confidence: expected a number, got {confidence!r}")
    try:
        return AnalysisSettings(confidence=float(confidence))
    except ValueError as exc:
        raise CampaignError(str(exc)) from None


def _parse_defaults(raw: Any) -> dict[str, Any]:
    """Validate the ``defaults:`` section (values checked when applied)."""
    if not isinstance(raw, Mapping):
        raise CampaignError(f"defaults: expected a mapping, got {raw!r}")
    _reject_unknown(raw, _DEFAULT_KEYS, "defaults")
    return dict(raw)


def _parse_stage(raw: Any, index: int, defaults: Mapping[str, Any]) -> list[StageSpec]:
    """Expand one stage entry (including its ``sweep:``) into stage specs."""
    where = f"stages[{index}]"
    if not isinstance(raw, Mapping):
        raise CampaignError(f"{where}: expected a mapping, got {raw!r}")
    _reject_unknown(raw, _STAGE_KEYS, where)
    figure = raw.get("figure")
    if not isinstance(figure, str) or not figure:
        raise CampaignError(f"{where}: 'figure' is required and must be a string")
    from repro.runner.tasks import FIGURE_CELL_TASKS

    if figure not in FIGURE_CELL_TASKS:
        raise CampaignError(
            f"{where}: unknown figure {figure!r}; choose one of {list(FIGURE_CELL_TASKS)}"
        )
    where = f"stages[{index}] ({figure})"
    base_name = raw.get("name", figure)
    base_name = _require_str(base_name, f"{where}.name")

    allowed = figure_knobs(figure)
    knobs: dict[str, Any] = {}
    for knob in sorted(allowed & set(defaults)):
        knobs[knob] = _check_knob(knob, defaults[knob], f"defaults.{knob}")
    for knob in sorted(_KNOB_KEYS & set(raw)):
        if knob not in allowed:
            raise CampaignError(
                f"{where}: knob {knob!r} does not apply to figure {figure!r} "
                f"(allowed: {sorted(allowed)})"
            )
        knobs[knob] = _check_knob(knob, raw[knob], f"{where}.{knob}")

    seeds = _parse_seed_grid(raw, defaults, figure, where)

    sweep = raw.get("sweep", {})
    if not isinstance(sweep, Mapping):
        raise CampaignError(f"{where}.sweep: expected a mapping, got {sweep!r}")
    if not sweep:
        return [_make_stage(base_name, figure, knobs, seeds, where)]

    _reject_unknown(sweep, _KNOB_KEYS, f"{where}.sweep")
    for knob in sweep:
        if knob not in allowed:
            raise CampaignError(
                f"{where}.sweep: knob {knob!r} does not apply to figure {figure!r}"
            )
        if knob in raw:
            raise CampaignError(
                f"{where}: knob {knob!r} is both fixed and swept; pick one"
            )
    combos: list[dict[str, Any]] = [{}]
    for knob in sorted(sweep):
        values = sweep[knob]
        if not isinstance(values, Sequence) or isinstance(values, (str, bytes)):
            raise CampaignError(
                f"{where}.sweep.{knob}: expected a list of values, got {values!r}"
            )
        if not values:
            raise CampaignError(f"{where}.sweep.{knob}: empty value list")
        checked = [
            _check_knob(knob, value, f"{where}.sweep.{knob}") for value in values
        ]
        combos = [
            {**combo, knob: value} for combo in combos for value in checked
        ]
    stages = []
    for combo in combos:
        suffix = ",".join(f"{k}={_format_value(v)}" for k, v in sorted(combo.items()))
        stages.append(
            _make_stage(
                f"{base_name}[{suffix}]", figure, {**knobs, **combo}, seeds, where
            )
        )
    return stages


def _make_stage(
    name: str,
    figure: str,
    knobs: Mapping[str, Any],
    seeds: tuple[int, ...],
    where: str,
) -> StageSpec:
    """Construct a :class:`StageSpec`, mapping ValueError to CampaignError."""
    try:
        return StageSpec(name=name, figure=figure, knobs=dict(knobs), seeds=seeds)
    except ValueError as exc:
        raise CampaignError(f"{where}: {exc}") from None


def _parse_seed_grid(
    raw: Mapping[str, Any],
    defaults: Mapping[str, Any],
    figure: str,
    where: str,
) -> tuple[int, ...]:
    """Resolve ``seeds`` / ``replications`` + ``base_seed`` into a grid.

    Stage-level settings override ``defaults``.  Deterministic figures
    collapse to the empty grid (one seed-free arm) no matter what the
    file says — replications of a pure function are a single cache entry.
    """
    if not figure_is_seeded(figure):
        return ()
    if "seeds" in raw and "replications" in raw:
        raise CampaignError(f"{where}: give either 'seeds' or 'replications', not both")
    source: Mapping[str, Any] = raw if ("seeds" in raw or "replications" in raw) else defaults
    seeds = source.get("seeds")
    replications = source.get("replications")
    base_seed = raw.get("base_seed", defaults.get("base_seed", 0))
    base_seed = _check_int(base_seed, f"{where}.base_seed")
    if seeds is not None and replications is not None:
        raise CampaignError(
            f"{where}: give either 'seeds' or 'replications' in defaults, not both"
        )
    if seeds is not None:
        if not isinstance(seeds, Sequence) or isinstance(seeds, (str, bytes)):
            raise CampaignError(f"{where}.seeds: expected a list of ints, got {seeds!r}")
        return tuple(_check_int(s, f"{where}.seeds") for s in seeds)
    if replications is not None:
        count = _check_int(replications, f"{where}.replications")
        if count < 1:
            raise CampaignError(f"{where}.replications: must be >= 1, got {count}")
        return tuple(range(base_seed, base_seed + count))
    return (base_seed,)


def _check_knob(knob: str, value: Any, where: str) -> Any:
    """Type-check one knob value (``quick``: bool, ``noise``: number)."""
    if knob == "quick":
        if not isinstance(value, bool):
            raise CampaignError(f"{where}: expected a bool, got {value!r}")
        return value
    if knob == "noise":
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise CampaignError(f"{where}: expected a number, got {value!r}")
        if value < 0:
            raise CampaignError(f"{where}: noise must be >= 0, got {value!r}")
        return float(value)
    raise CampaignError(f"{where}: unknown knob {knob!r}")  # pragma: no cover


def _check_int(value: Any, where: str) -> int:
    """Type-check an integer field (bools are not ints here)."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise CampaignError(f"{where}: expected an integer, got {value!r}")
    return value


def _format_value(value: Any) -> str:
    """Render a swept knob value for a stage-name suffix."""
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)
