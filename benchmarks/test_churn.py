"""Wall-time of the packet sweep under heavy flow churn vs the static baseline.

Dynamic traffic is the first feature that changes the *number of
senders* over a run: every spawned flow adds scheduler events, sender
state and queue traffic, and completed flows must retire cheaply rather
than linger.  Benchmarking the identical quick-mode sweep with and
without a high-rate churn source keeps that overhead visible in the perf
trajectory, separately from the per-discipline costs tracked by
``test_queue_disciplines.py`` and ``test_fq_codel.py``.

Quick-mode sizing matches the topology experiments' quick scale so the
pair stays cheap enough to ride along in tier-1 runs.
"""

from _helpers import run_once

from repro.netsim.packet.simulation import FlowConfig
from repro.netsim.packet.sweep import run_packet_sweep
from repro.netsim.traffic import ParetoSizes, PoissonArrivals, TrafficSource

#: Quick-mode sweep sizing, matching the topology experiments' quick scale.
QUICK_KWARGS = dict(
    allocations=(0, 2, 4),
    capacity_mbps=24.0,
    duration_s=6.0,
    warmup_s=2.0,
)

#: High-churn source: ~10 Pareto-sized flows per second through the
#: bottleneck (about 60 spawns and retirements per 6-second arm).
HIGH_CHURN = TrafficSource(
    arrivals=PoissonArrivals(10.0),
    sizes=ParetoSizes(min_bytes=60_000.0, alpha=1.5),
    label="churn",
)


def _sweep(traffic_sources):
    return run_packet_sweep(
        4,
        treatment_factory=lambda i: FlowConfig(i, cc="reno", connections=2),
        control_factory=lambda i: FlowConfig(i, cc="reno", connections=1),
        traffic_sources=traffic_sources,
        seed=0,
        **QUICK_KWARGS,
    )


def test_static_baseline_sweep_quick(benchmark):
    sweep = run_once(benchmark, _sweep, None)
    assert sorted(sweep.results) == [0, 2, 4]
    assert all(not r.traffic for r in sweep.results.values())


def test_high_churn_sweep_quick(benchmark):
    sweep = run_once(benchmark, _sweep, (HIGH_CHURN,))
    assert sorted(sweep.results) == [0, 2, 4]
    for result in sweep.results.values():
        started, completed = result.dynamic_flow_counts()
        assert started > 20  # the churn really ran ...
        assert completed > 0.5 * started  # ... and flows really retired
