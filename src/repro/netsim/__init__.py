"""Network simulation substrates.

Two simulators back the lab experiments of Section 3:

``repro.netsim.fluid``
    A fluid (steady-state) bottleneck-sharing model.  Each application's
    long-term throughput share is computed from well-established fairness
    results (Reno's per-connection fairness, paced-vs-unpaced competition,
    BBR's aggregate share against loss-based traffic), and retransmission
    rates follow the TCP loss-throughput relationship.  This is the fast
    substrate used by the figure-reproduction benchmarks.

``repro.netsim.packet``
    A packet-level discrete-event simulator with a drop-tail bottleneck
    queue and simplified Reno, Cubic and BBR senders (optionally paced).
    It reproduces the same sharing behaviour from first principles and is
    used for validation and ablation benchmarks.

``repro.netsim.traffic``
    The dynamic-traffic subsystem layered on the packet simulator:
    finite transfers (flow-completion times), arrival processes
    (Poisson, on/off bursts, traces) with heavy-tailed size samplers,
    and time-varying demand profiles that modulate churn intensity.
"""

from repro.netsim.fluid import (
    Application,
    BottleneckLink,
    LabSweepResult,
    run_lab_experiment,
    run_lab_sweep,
)

__all__ = [
    "Application",
    "BottleneckLink",
    "LabSweepResult",
    "run_lab_experiment",
    "run_lab_sweep",
]
