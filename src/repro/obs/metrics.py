"""Engine counters and a small mergeable metrics registry.

:class:`EngineCounters` is the uniform counter schema every packet
simulation reports (satellite of the observability layer): both
scheduler variants — heap and calendar — fill the *same* fields, so
dashboards and reports never branch on the engine kind.

:class:`MetricsRegistry` is the accumulation side: a flat name → number
mapping with ``inc``/``set_gauge``/``merge``, used by the CLI to total
engine counters across fleets and by the run report to render them.
Deterministic by construction — it holds only what callers put in and
renders in sorted name order.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["EngineCounters", "MetricsRegistry"]


@dataclass(frozen=True)
class EngineCounters:
    """Counters of one packet-engine run, identical for both schedulers.

    Attributes
    ----------
    scheduler:
        Engine kind that ran: ``"heap"`` or ``"calendar"``.
    events_processed:
        Scheduler callbacks executed (the events/sec numerator of the
        performance model, see ``docs/performance.md``).
    events_scheduled:
        Events ever inserted into the scheduler (processed + cancelled +
        still pending at the horizon).
    pool_acquired:
        Packets handed out by the :class:`~repro.netsim.packet.packets.PacketPool`.
    pool_reused:
        Of those, how many reused a retired slot instead of allocating.
    random_losses:
        Packets lost on impaired path segments (not queue drops).
    """

    scheduler: str
    events_processed: int
    events_scheduled: int
    pool_acquired: int
    pool_reused: int
    random_losses: int = 0

    def as_dict(self) -> dict[str, float]:
        """The counters as a flat mapping (scheduler kind excluded)."""
        return {
            "events_processed": float(self.events_processed),
            "events_scheduled": float(self.events_scheduled),
            "pool_acquired": float(self.pool_acquired),
            "pool_reused": float(self.pool_reused),
            "random_losses": float(self.random_losses),
        }


class MetricsRegistry:
    """A flat, mergeable name → value store for run-level counters."""

    def __init__(self) -> None:
        self._values: dict[str, float] = {}

    def inc(self, name: str, amount: float = 1.0) -> None:
        """Add ``amount`` to a counter (creating it at 0)."""
        self._values[name] = self._values.get(name, 0.0) + float(amount)

    def set_gauge(self, name: str, value: float) -> None:
        """Set a gauge to an absolute value (last write wins)."""
        self._values[name] = float(value)

    def get(self, name: str, default: float = 0.0) -> float:
        """Current value of a counter/gauge."""
        return self._values.get(name, default)

    def merge(self, other: MetricsRegistry | dict[str, float]) -> None:
        """Fold another registry (or mapping) in by summation."""
        values = other._values if isinstance(other, MetricsRegistry) else other
        for name in sorted(values):
            self.inc(name, values[name])

    def as_dict(self) -> dict[str, float]:
        """All values, sorted by name."""
        return {name: self._values[name] for name in sorted(self._values)}

    def __len__(self) -> int:
        """Number of distinct metric names."""
        return len(self._values)
