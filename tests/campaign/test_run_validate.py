"""End-to-end tests: run a small campaign, persist it, validate it.

One campaign is executed once per module (session-scoped fixture) and
every mutilation test works on its own copy of the run directory, so the
suite pays for the simulations a single time.
"""

import json
import shutil

import pytest

from repro.campaign import (
    MANIFEST_NAME,
    RESULTS_NAME,
    parse_campaign,
    run_campaign,
    validate_run,
    write_run_dir,
)
from repro.runner import ResultCache

CAMPAIGN_DOC = {
    "campaign": "e2e",
    "description": "end-to-end campaign test",
    "stages": [
        {"figure": "fig2a", "name": "lab", "noise": 0.02, "replications": 2},
        {"figure": "topo_rtt", "quick": True},
    ],
}


@pytest.fixture(scope="session")
def campaign():
    return parse_campaign(CAMPAIGN_DOC)


@pytest.fixture(scope="session")
def result(campaign):
    return run_campaign(campaign, jobs=1)


@pytest.fixture(scope="session")
def rundir(tmp_path_factory, campaign, result):
    path = tmp_path_factory.mktemp("campaign-run")
    write_run_dir(path, result)
    return path


@pytest.fixture
def broken(rundir, tmp_path):
    """A throwaway copy of the good run directory, free to mutilate."""
    copy = tmp_path / "run"
    shutil.copytree(rundir, copy)
    return copy


def _edit_json(path, mutate):
    data = json.loads(path.read_text(encoding="utf-8"))
    mutate(data)
    path.write_text(json.dumps(data), encoding="utf-8")


class TestRunCampaign:
    def test_arm_results_line_up_with_the_spec(self, campaign, result):
        assert [(a.stage, a.seed) for a in result.arms] == [
            ("lab", 0),
            ("lab", 1),
            ("topo_rtt", None),
        ]
        assert result.unique_arms == 3
        assert all(a.cells for a in result.arms)
        assert result.stage_arms("lab") == result.arms[:2]

    def test_parallel_run_is_bit_identical(self, campaign, result):
        parallel = run_campaign(campaign, jobs=2)
        assert parallel.arms == result.arms

    def test_cache_round_trip_hits_every_arm(self, campaign, result, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cold = run_campaign(campaign, jobs=1, cache=cache)
        assert (cold.cache_hits, cold.cache_misses) == (0, 3)
        warm = run_campaign(campaign, jobs=2, cache=cache)
        assert (warm.cache_hits, warm.cache_misses) == (3, 0)
        assert warm.arms == result.arms == cold.arms

    def test_shared_arms_dedupe_across_stages(self, campaign):
        doubled = parse_campaign(
            {
                "campaign": "dup",
                "stages": [
                    {"figure": "topo_rtt", "name": "a", "quick": True},
                    {"figure": "topo_rtt", "name": "b", "quick": True},
                ],
            }
        )
        result = run_campaign(doubled, jobs=1)
        assert len(result.arms) == 2
        assert result.unique_arms == 1
        assert result.arms[0].cells == result.arms[1].cells

    def test_summary_lines_shape(self, result):
        lines = result.summary_lines()
        assert lines[0] == "campaign e2e: end-to-end campaign test"
        assert lines[1] == "stages: 2, arms: 3, unique: 3"
        assert "lab (figure fig2a, seeds 0,1)" in lines
        assert "topo_rtt (figure topo_rtt, deterministic)" in lines
        assert any("±" in line for line in lines)  # replicated stage gets a CI


class TestRunDir:
    def test_artifacts_exist_and_pin_provenance(self, rundir, campaign):
        from repro import __version__

        manifest = json.loads((rundir / MANIFEST_NAME).read_text(encoding="utf-8"))
        assert manifest["schema"] == 1
        assert manifest["package"] == "repro"
        assert manifest["version"] == __version__
        assert manifest["campaign"]["key"] == campaign.content_key()
        assert [a["stage"] for a in manifest["arms"]] == ["lab", "lab", "topo_rtt"]
        assert all(len(a["key"]) == 64 for a in manifest["arms"])

        results = json.loads((rundir / RESULTS_NAME).read_text(encoding="utf-8"))
        assert results["campaign_key"] == campaign.content_key()
        assert set(results["cells"]) == {a["key"] for a in manifest["arms"]}

    def test_write_is_deterministic(self, rundir, result, tmp_path):
        again = write_run_dir(tmp_path / "again", result)
        for name in (MANIFEST_NAME, RESULTS_NAME):
            assert (again / name).read_bytes() == (rundir / name).read_bytes()


class TestValidateRun:
    def test_good_run_validates(self, rundir, campaign):
        report = validate_run(rundir, campaign=campaign)
        assert report.ok
        assert (report.stages, report.arms, report.unique_arms) == (2, 3, 3)
        [line] = report.summary_lines()
        assert line.endswith(": OK (2 stages, 3 arms, 3 unique)")

    def test_not_a_directory(self, tmp_path):
        report = validate_run(tmp_path / "nope")
        assert not report.ok
        assert "not a directory" in report.problems[0]

    def test_missing_manifest(self, broken):
        (broken / MANIFEST_NAME).unlink()
        report = validate_run(broken)
        assert report.problems == (f"missing artifact: {MANIFEST_NAME}",)

    def test_missing_arm_result(self, broken):
        def drop_one(data):
            key = sorted(data["cells"])[0]
            del data["cells"][key]

        _edit_json(broken / RESULTS_NAME, drop_one)
        report = validate_run(broken)
        assert any("missing arm result" in p for p in report.problems)

    def test_unreferenced_result(self, broken):
        _edit_json(
            broken / RESULTS_NAME,
            lambda data: data["cells"].update({"f" * 64: {"cell": 1.0}}),
        )
        report = validate_run(broken)
        assert any("unreferenced result" in p for p in report.problems)

    def test_version_drift_reported_once(self, broken):
        _edit_json(
            broken / MANIFEST_NAME, lambda data: data.update(version="0.0.1")
        )
        report = validate_run(broken)
        drift = [p for p in report.problems if "version drift" in p]
        assert len(drift) == 1
        # Drift suppresses per-arm key recomputation — no mismatch spam.
        assert not any("key mismatch" in p for p in report.problems)

    def test_tampered_arm_seed_is_caught(self, broken):
        def reseed(data):
            data["arms"][0]["seed"] = 99

        _edit_json(broken / MANIFEST_NAME, reseed)
        report = validate_run(broken)
        assert any("arm key mismatch" in p for p in report.problems)
        assert any("seed mismatch in stage 'lab'" in p for p in report.problems)

    def test_duplicate_arm_is_caught(self, broken):
        _edit_json(
            broken / MANIFEST_NAME,
            lambda data: data["arms"].append(dict(data["arms"][0])),
        )
        report = validate_run(broken)
        assert any(p.startswith("duplicate arm") for p in report.problems)

    def test_campaign_mismatch(self, broken):
        other = parse_campaign({"campaign": "other", "stages": [{"figure": "topo_rtt"}]})
        report = validate_run(broken, campaign=other)
        assert any("campaign mismatch" in p for p in report.problems)

    def test_non_finite_cell_is_caught(self, broken):
        def poison(data):
            key = sorted(data["cells"])[0]
            cell = sorted(data["cells"][key])[0]
            data["cells"][key][cell] = 1e999  # serializes as Infinity

        _edit_json(broken / RESULTS_NAME, poison)
        report = validate_run(broken)
        assert any("non-finite cell" in p for p in report.problems)

    def test_cell_set_mismatch_within_stage(self, broken):
        manifest = json.loads((broken / MANIFEST_NAME).read_text(encoding="utf-8"))
        lab_keys = [a["key"] for a in manifest["arms"] if a["stage"] == "lab"]

        def unbalance(data):
            data["cells"][lab_keys[0]]["extra_cell"] = 1.0

        _edit_json(broken / RESULTS_NAME, unbalance)
        report = validate_run(broken)
        assert any("cell-set mismatch" in p for p in report.problems)

    def test_stage_key_tamper_is_caught(self, broken):
        def rename(data):
            data["campaign"]["stages"][0]["name"] = "renamed"

        _edit_json(broken / MANIFEST_NAME, rename)
        report = validate_run(broken)
        assert any("campaign key mismatch" in p for p in report.problems)

    def test_corrupt_meta_counters(self, broken):
        (broken / "meta.json").write_text(
            json.dumps({"tasks": -1}), encoding="utf-8"
        )
        report = validate_run(broken)
        assert any("meta.json" in p for p in report.problems)
