"""Diagnostic rendering for the lint engine.

One diagnostic per line in ``path:line:col: CODE message`` form (the
shape editors and CI annotations parse), followed by a one-line summary.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.devtools.lint.base import Diagnostic, rule_table

__all__ = ["render_diagnostics", "render_summary", "render_rule_table"]


def render_diagnostics(diagnostics: Sequence[Diagnostic]) -> str:
    """All diagnostics, one ``path:line:col: CODE message`` line each."""
    return "\n".join(d.render() for d in diagnostics)


def render_summary(diagnostics: Sequence[Diagnostic], files_checked: int) -> str:
    """One-line outcome: violation and file counts, or a clean bill."""
    if not diagnostics:
        return f"checked {files_checked} file(s): no invariant violations"
    files_flagged = len({d.path for d in diagnostics})
    return (
        f"found {len(diagnostics)} violation(s) in {files_flagged} file(s) "
        f"({files_checked} checked)"
    )


def render_rule_table() -> str:
    """The registered rules as ``CODE  summary`` lines (``--list-rules``)."""
    rows = rule_table()
    width = max(len(code) for code, _ in rows)
    return "\n".join(f"{code:<{width}}  {summary}" for code, summary in rows)
