"""Bottleneck queue disciplines.

The congestion point of the lab testbed: a queue draining at the link
rate, with a finite buffer.  :class:`QueueDiscipline` owns the service
machinery shared by every discipline — the event-driven drain loop, the
occupancy/served/dropped counters and the departure/drop callbacks — and
leaves two decisions to subclasses:

* *admission* (:meth:`QueueDiscipline._admit`): whether an arriving
  packet enters the buffer (drop-tail's full-buffer check, RED's
  probabilistic early drop);
* *dequeue* (:meth:`QueueDiscipline._next_packet`): which waiting packet
  enters service next (CoDel drops stale packets here, after measuring
  their sojourn time; FQ-CoDel additionally picks the packet by deficit
  round-robin over per-flow sub-queues);
* *storage* (:meth:`QueueDiscipline._enqueue_packet`): where an admitted
  packet waits (one FIFO by default, per-flow sub-queues for FQ-CoDel).

AQM disciplines support ECN: when the decision to drop falls on a packet
whose flow negotiated ECN (``Packet.ecn_capable``), the queue CE-marks the
packet (:meth:`QueueDiscipline._mark`) and lets it through instead; the
sender reacts to the echoed mark with a window reduction but no
retransmission.  Hard buffer-overflow drops are never converted to marks.

Beyond the drop-replacement marks, the AQMs offer *shallow* L4S-style
marking knobs that signal congestion well before the drop law would:
RED's ``mark_threshold`` CE-marks ECN arrivals once the averaged queue
crosses a (typically low) occupancy fraction, and CoDel/FQ-CoDel's
``ce_threshold_s`` CE-marks ECN packets whose sojourn exceeds a shallow
delay threshold (Linux's ``ce_threshold``), independent of the dropping
state machine.  :class:`DualPI2Queue` is the full RFC 9332 treatment: a
dual-queue coupled AQM whose low-latency queue step-marks L4S traffic at
a sub-millisecond threshold while a PI2 controller drops (or
classically marks) in the classic queue, the two coupled by the square
law so both traffic classes converge on the same per-flow rate.

Disciplines are registered by name in :data:`QUEUE_DISCIPLINES` so
scenario specs can select them with a plain string; :func:`make_queue`
is the corresponding factory.
"""

from __future__ import annotations

import math
import random
from collections import deque
from collections.abc import Callable

from repro.netsim.packet.engine import EventScheduler
from repro.netsim.packet.packets import Packet

__all__ = [
    "QueueDiscipline",
    "DropTailQueue",
    "REDQueue",
    "CoDelQueue",
    "FqCoDelQueue",
    "DualPI2Queue",
    "QUEUE_DISCIPLINES",
    "make_queue",
]


class QueueDiscipline:
    """Base class for bottleneck queues served at a fixed rate.

    Parameters
    ----------
    scheduler:
        The event scheduler driving the simulation.
    rate_bps:
        Drain (link) rate in bits per second.
    buffer_bytes:
        Maximum number of bytes the queue can hold (excluding the packet
        currently being transmitted).  Every discipline enforces this as
        a hard limit; AQM disciplines drop earlier.
    on_departure:
        Callback invoked as ``on_departure(packet, departure_time)`` when a
        packet finishes transmission.
    on_drop:
        Callback invoked as ``on_drop(packet, drop_time)`` when a packet is
        dropped (on arrival, or — for CoDel — at dequeue).
    """

    #: Registry name; subclasses override.
    name = "base"

    #: Whether the discipline's constructor takes a ``seed`` for an internal
    #: RNG.  The network builder forwards its seed to such disciplines.
    uses_seed = False

    #: Whether the discipline's constructor takes a ``flow_key`` classifier
    #: (FQ-CoDel).  The network builder forwards a per-application
    #: classifier to such disciplines so sub-queues isolate experimental
    #: units rather than individual connections.
    uses_flow_key = False

    def __init__(
        self,
        scheduler: EventScheduler,
        rate_bps: float,
        buffer_bytes: float,
        on_departure: Callable[[Packet, float], None],
        on_drop: Callable[[Packet, float], None],
    ):
        if rate_bps <= 0:
            raise ValueError("rate_bps must be positive")
        if buffer_bytes < 0:
            raise ValueError("buffer_bytes must be non-negative")
        self._scheduler = scheduler
        self._rate_bps = float(rate_bps)
        self._buffer_bytes = float(buffer_bytes)
        self._on_departure = on_departure
        self._on_drop = on_drop

        #: Waiting packets, each paired with its arrival time.
        self._queue: deque[tuple[Packet, float]] = deque()
        self._queued_bytes = 0.0
        self._busy = False
        self._service_finish_time = 0.0

        #: Total packets offered to the queue (served + dropped + waiting).
        self.packets_offered = 0
        #: Total packets that entered service.
        self.packets_served = 0
        #: Total packets dropped.
        self.packets_dropped = 0
        #: Total packets CE-marked instead of dropped (ECN).
        self.packets_marked = 0
        #: Total bytes that entered service.
        self.bytes_served = 0.0
        #: Maximum queue occupancy observed, in bytes.
        self.max_occupancy_bytes = 0.0

    # -- state ---------------------------------------------------------------

    @property
    def occupancy_bytes(self) -> float:
        """Bytes currently waiting in the buffer (excludes packet in service)."""
        return self._queued_bytes

    @property
    def occupancy_packets(self) -> int:
        """Packets currently waiting in the buffer."""
        return len(self._queue)

    @property
    def buffer_bytes(self) -> float:
        """Hard buffer limit in bytes."""
        return self._buffer_bytes

    @property
    def rate_bps(self) -> float:
        """Drain rate in bits per second."""
        return self._rate_bps

    def queueing_delay(self) -> float:
        """Expected waiting time for a packet arriving now, in seconds.

        Covers the backlogged bytes *and* the residual service time of the
        packet currently on the wire, so an arrival during a transmission
        is not underestimated by up to one serialization time.
        """
        backlog = self._queued_bytes * 8.0 / self._rate_bps
        residual = 0.0
        if self._busy:
            residual = max(self._service_finish_time - self._scheduler.now, 0.0)
        return backlog + residual

    def transmission_time(self, packet: Packet) -> float:
        """Serialization time of one packet at the link rate, in seconds."""
        return packet.size_bytes * 8.0 / self._rate_bps

    def probe_snapshot(self) -> dict[str, float]:
        """Read-only telemetry snapshot for :class:`repro.obs.probe.Probe`.

        Built from the public surface only (properties work for every
        discipline, including FQ-CoDel's per-flow storage); reading it
        never mutates queue state, so probing cannot perturb a run.
        """
        return {
            "occupancy_bytes": float(self.occupancy_bytes),
            "occupancy_packets": float(self.occupancy_packets),
            "sojourn_s": float(self.queueing_delay()),
            "packets_dropped": float(self.packets_dropped),
            "packets_marked": float(self.packets_marked),
            "bytes_served": float(self.bytes_served),
        }

    # -- discipline hooks ------------------------------------------------------

    def _on_arrival(self, packet: Packet, now: float) -> None:
        """Observe an arrival before the admission decision (RED's EWMA)."""

    def _became_idle(self, now: float) -> None:
        """Observe the queue going idle (empty and nothing in service)."""

    def _admit(self, packet: Packet, now: float) -> bool:
        """Decide whether an arriving packet may enter the buffer."""
        raise NotImplementedError

    def _enqueue_packet(self, packet: Packet, now: float) -> None:
        """Store an admitted packet until service (one FIFO by default)."""
        self._queue.append((packet, now))
        self._queued_bytes += packet.size_bytes

    def _next_packet(self) -> Packet | None:
        """Pop the next packet to serve (FIFO); AQM may drop stale ones here."""
        if not self._queue:
            return None
        packet, _ = self._queue.popleft()
        self._queued_bytes -= packet.size_bytes
        return packet

    # -- operations -----------------------------------------------------------

    def enqueue(self, packet: Packet) -> bool:
        """Offer a packet to the queue.  Returns True if accepted, False if dropped."""
        now = self._scheduler.now
        self.packets_offered += 1
        self._on_arrival(packet, now)
        if self._busy:
            if not self._admit(packet, now):
                self._drop(packet, now)
                return False
            self._enqueue_packet(packet, now)
            self.max_occupancy_bytes = max(self.max_occupancy_bytes, self._queued_bytes)
        else:
            self._start_service(packet)
        return True

    def _drop(self, packet: Packet, time: float) -> None:
        self.packets_dropped += 1
        self._on_drop(packet, time)

    def _mark(self, packet: Packet, time: float) -> None:
        """CE-mark an ECN-capable packet the AQM decided to punish."""
        packet.ce_marked = True
        self.packets_marked += 1

    def _mark_or_refuse(self, packet: Packet, now: float) -> bool:
        """AQM admission verdict for a packet the discipline wants to drop.

        ECN-capable packets are CE-marked and admitted (True); others are
        refused (False) and the caller drops them.
        """
        if packet.ecn_capable:
            self._mark(packet, now)
            return True
        return False

    def _start_service(self, packet: Packet) -> None:
        self._busy = True
        self.packets_served += 1
        self.bytes_served += packet.size_bytes
        finish = self._scheduler.now + self.transmission_time(packet)
        self._service_finish_time = finish
        self._scheduler.schedule(finish, lambda p=packet: self._finish_service(p))

    def _finish_service(self, packet: Packet) -> None:
        self._on_departure(packet, self._scheduler.now)
        next_packet = self._next_packet()
        if next_packet is not None:
            self._start_service(next_packet)
        else:
            self._busy = False
            self._became_idle(self._scheduler.now)


class DropTailQueue(QueueDiscipline):
    """FIFO queue that drops arrivals once the buffer is full (the default)."""

    name = "droptail"

    def _admit(self, packet: Packet, now: float) -> bool:
        return self._queued_bytes + packet.size_bytes <= self._buffer_bytes


class REDQueue(QueueDiscipline):
    """Random Early Detection (Floyd & Jacobson 1993), simplified.

    Keeps an exponentially weighted moving average of the queue occupancy
    and drops arrivals probabilistically once the average crosses
    ``min_threshold``: the drop probability rises linearly from 0 to
    ``max_drop_probability`` at ``max_threshold`` (with the classic
    ``1/(1 - count·p)`` spreading term), and is 1 above ``max_threshold``.
    The hard ``buffer_bytes`` limit still applies.  All randomness comes
    from ``seed``, so a RED simulation is a pure function of its inputs.

    Idle periods decay the average (the paper's idle-time correction): on
    the first arrival after the queue drained, the EWMA is aged as if the
    packets the link *could* have served while idle had all sampled an
    empty queue.  Without this the average stays stale-high across idle
    gaps and RED over-drops the first packets of the next burst.

    ECN-capable arrivals the early-drop logic selects are CE-marked and
    admitted instead of dropped; buffer-overflow drops are never marked.

    An optional *shallow marking* threshold (``mark_threshold``) gives
    ECN traffic an earlier, L4S-style signal: once the averaged queue
    reaches that occupancy fraction — typically well below
    ``min_threshold`` — every ECN-capable arrival is CE-marked and
    admitted, and the drop lottery is reserved for non-ECN traffic.  The
    signal is a step in the average, not a probability ramp, which is
    what a fraction-based (DCTCP) sender response expects.

    Parameters
    ----------
    min_threshold, max_threshold:
        EWMA occupancy thresholds as fractions of ``buffer_bytes``.
    max_drop_probability:
        Drop probability when the average reaches ``max_threshold``.
    weight:
        EWMA weight for each arrival's occupancy sample.
    mark_threshold:
        Shallow-marking threshold as a fraction of ``buffer_bytes``:
        ECN-capable arrivals are CE-marked whenever the averaged queue is
        at or above it.  ``None`` (default) disables shallow marking.
    seed:
        Seed of the private drop-decision RNG.
    """

    name = "red"
    uses_seed = True

    def __init__(
        self,
        scheduler: EventScheduler,
        rate_bps: float,
        buffer_bytes: float,
        on_departure: Callable[[Packet, float], None],
        on_drop: Callable[[Packet, float], None],
        min_threshold: float = 0.25,
        max_threshold: float = 0.75,
        max_drop_probability: float = 0.1,
        weight: float = 0.02,
        mark_threshold: float | None = None,
        seed: int = 0,
    ):
        super().__init__(scheduler, rate_bps, buffer_bytes, on_departure, on_drop)
        if not 0.0 <= min_threshold < max_threshold <= 1.0:
            raise ValueError("need 0 <= min_threshold < max_threshold <= 1")
        if not 0.0 < max_drop_probability <= 1.0:
            raise ValueError("max_drop_probability must be in (0, 1]")
        if not 0.0 < weight <= 1.0:
            raise ValueError("weight must be in (0, 1]")
        if mark_threshold is not None and not 0.0 < mark_threshold <= 1.0:
            raise ValueError("mark_threshold must be in (0, 1]")
        self._min_bytes = min_threshold * self._buffer_bytes
        self._max_bytes = max_threshold * self._buffer_bytes
        self._mark_bytes = (
            None if mark_threshold is None else mark_threshold * self._buffer_bytes
        )
        self._max_p = float(max_drop_probability)
        self._weight = float(weight)
        self._rng = random.Random(seed)
        self._avg_bytes = 0.0
        self._count = -1  # arrivals since the last drop (classic RED spreading)
        self._idle_since: float | None = 0.0  # the queue starts empty and idle

    def _became_idle(self, now: float) -> None:
        self._idle_since = now

    def _on_arrival(self, packet: Packet, now: float) -> None:
        if self._idle_since is not None:
            # Floyd & Jacobson idle-time correction: age the average by the
            # number of (this-sized) packets the link could have served
            # while the queue sat empty, each sampling occupancy zero.
            idle_s = now - self._idle_since
            if idle_s > 0.0:
                could_have_served = idle_s / self.transmission_time(packet)
                self._avg_bytes *= (1.0 - self._weight) ** could_have_served
            self._idle_since = None
        self._avg_bytes += self._weight * (self._queued_bytes - self._avg_bytes)

    def _admit(self, packet: Packet, now: float) -> bool:
        if self._queued_bytes + packet.size_bytes > self._buffer_bytes:
            self._count = 0
            return False
        if (
            self._mark_bytes is not None
            and packet.ecn_capable
            and self._avg_bytes >= self._mark_bytes
        ):
            # Shallow step marking: the early signal replaces the drop
            # lottery for this packet (one punishment per arrival).
            self._mark(packet, now)
            return True
        if self._avg_bytes < self._min_bytes:
            self._count = -1
            return True
        if self._avg_bytes >= self._max_bytes:
            self._count = 0
            return self._mark_or_refuse(packet, now)
        self._count += 1
        p_b = self._max_p * (self._avg_bytes - self._min_bytes) / (
            self._max_bytes - self._min_bytes
        )
        p_a = p_b / max(1.0 - self._count * p_b, 1e-9)
        if self._rng.random() < p_a:
            self._count = 0
            return self._mark_or_refuse(packet, now)
        return True


class _CoDelControl:
    """CoDel's drop-decision state machine (RFC 8289), shared machinery.

    One instance controls one FIFO: :class:`CoDelQueue` owns a single
    instance, :class:`FqCoDelQueue` one per sub-queue.  The caller feeds
    it each dequeued packet's sojourn time and the backlog remaining
    behind it; ``should_drop`` answers whether that packet is punished
    (dropped, or CE-marked when the flow negotiated ECN).
    """

    __slots__ = (
        "target_s",
        "interval_s",
        "min_backlog_bytes",
        "first_above_time",
        "dropping",
        "drop_next",
        "count",
    )

    def __init__(self, target_s: float, interval_s: float, min_backlog_bytes: float):
        self.target_s = float(target_s)
        self.interval_s = float(interval_s)
        self.min_backlog_bytes = float(min_backlog_bytes)
        self.first_above_time = 0.0
        self.dropping = False
        self.drop_next = 0.0
        self.count = 0

    def _control_law(self, t: float) -> float:
        return t + self.interval_s / math.sqrt(self.count)

    def _ok_to_drop(self, sojourn_s: float, now: float, backlog_bytes: float) -> bool:
        if sojourn_s < self.target_s or backlog_bytes <= self.min_backlog_bytes:
            self.first_above_time = 0.0
            return False
        if self.first_above_time == 0.0:
            self.first_above_time = now + self.interval_s
            return False
        return now >= self.first_above_time

    def should_drop(self, sojourn_s: float, now: float, backlog_bytes: float) -> bool:
        """CoDel's control law: whether to drop the packet dequeued now."""
        ok = self._ok_to_drop(sojourn_s, now, backlog_bytes)
        if self.dropping:
            if not ok:
                self.dropping = False
                return False
            if now >= self.drop_next:
                self.count += 1
                self.drop_next = self._control_law(self.drop_next)
                return True
            return False
        if ok:
            self.dropping = True
            # Re-entering a recent dropping episode resumes at a higher
            # drop frequency instead of restarting from one.
            if now - self.drop_next < self.interval_s:
                self.count = max(self.count - 2, 1)
            else:
                self.count = 1
            self.drop_next = self._control_law(now)
            return True
        return False


class CoDelQueue(QueueDiscipline):
    """Controlled Delay AQM (Nichols & Jacobson, RFC 8289), simplified.

    Measures each packet's sojourn time at dequeue.  Once the sojourn has
    stayed above ``target_delay_s`` for a full ``interval_s`` the queue
    enters the dropping state and drops packets at increasing frequency
    (``interval / sqrt(count)``) until the delay falls back below target.
    ECN-capable packets selected by the control law are CE-marked and
    served instead of dropped.  Arrivals are only refused by the hard
    ``buffer_bytes`` limit.

    An optional shallow marking threshold (``ce_threshold_s``, modelled
    on Linux CoDel's ``ce_threshold``) CE-marks ECN-capable packets whose
    sojourn exceeds it, independently of the dropping state machine — an
    L4S-style early signal at a delay well below ``target_delay_s``'s
    dropping point.

    Parameters
    ----------
    target_delay_s:
        Acceptable standing queue delay (default 5 ms).
    interval_s:
        Sliding window over which the delay must persist (default 100 ms).
    min_backlog_bytes:
        Never drop while the backlog is at or below this (one MTU).
    ce_threshold_s:
        Shallow marking threshold: ECN-capable packets whose sojourn
        exceeds this are CE-marked at dequeue even while the drop law is
        quiet.  ``None`` (default) disables shallow marking.
    """

    name = "codel"

    def __init__(
        self,
        scheduler: EventScheduler,
        rate_bps: float,
        buffer_bytes: float,
        on_departure: Callable[[Packet, float], None],
        on_drop: Callable[[Packet, float], None],
        target_delay_s: float = 0.005,
        interval_s: float = 0.1,
        min_backlog_bytes: float = 1500.0,
        ce_threshold_s: float | None = None,
    ):
        super().__init__(scheduler, rate_bps, buffer_bytes, on_departure, on_drop)
        if target_delay_s <= 0 or interval_s <= 0:
            raise ValueError("target_delay_s and interval_s must be positive")
        if ce_threshold_s is not None and ce_threshold_s <= 0:
            raise ValueError("ce_threshold_s must be positive")
        self._codel = _CoDelControl(target_delay_s, interval_s, min_backlog_bytes)
        self._ce_threshold_s = ce_threshold_s

    def _admit(self, packet: Packet, now: float) -> bool:
        return self._queued_bytes + packet.size_bytes <= self._buffer_bytes

    def _next_packet(self) -> Packet | None:
        now = self._scheduler.now
        while self._queue:
            packet, arrival = self._queue.popleft()
            self._queued_bytes -= packet.size_bytes
            sojourn = now - arrival
            if self._codel.should_drop(sojourn, now, self._queued_bytes):
                if packet.ecn_capable:
                    self._mark(packet, now)
                    return packet
                self._drop(packet, now)
                continue
            if (
                self._ce_threshold_s is not None
                and packet.ecn_capable
                and sojourn > self._ce_threshold_s
            ):
                self._mark(packet, now)
            return packet
        return None


class FqCoDelQueue(QueueDiscipline):
    """Per-flow fair queueing with CoDel on every sub-queue (RFC 8290 style).

    Each flow gets its own FIFO sub-queue; sub-queues are served by
    deficit round-robin (one ``quantum_bytes`` of credit per round) and
    each runs its own :class:`_CoDelControl` on the sojourn times of its
    packets.  A backlogged flow therefore cannot inflate another flow's
    delay or claim more than its round-robin share — the per-flow
    isolation the paper predicts would *eliminate* the connection-count
    A/B bias when sub-queues coincide with experimental units.

    The flow classifier is pluggable (``flow_key``): standalone queues
    default to one sub-queue per ``Packet.flow_id`` (per connection);
    the :class:`~repro.netsim.packet.network.Network` builder supplies a
    per-application classifier instead, so every experimental unit gets
    exactly one sub-queue regardless of how many connections it opens
    (per-user fair queueing, the paper's falsifiable prediction).

    When an arrival would overflow the hard ``buffer_bytes`` limit, the
    queue drops from the head of the *fattest* sub-queue (RFC 8290
    §4.1.3) until the arrival fits — so a flow overrunning its share
    fills the buffer at its own expense, never at its neighbours'.

    Per RFC 8290 §4.1, sub-queues live on two lists: a sub-queue created
    by an arriving packet joins the *new* list, which is served strictly
    before the *old* list — a freshly started flow's first packets skip
    ahead of established backlogs.  The priority is bounded to one
    quantum: as soon as a new sub-queue exhausts its deficit (or drains
    empty) it moves to the tail of the old list, so a torrent of packets
    on a "new" flow cannot starve the old flows (the starvation
    regression test pins this).  An old sub-queue found empty at its
    service turn is retired.

    Parameters
    ----------
    target_delay_s, interval_s, min_backlog_bytes:
        Per-sub-queue CoDel parameters (see :class:`CoDelQueue`); the
        backlog floor applies to the packet's own sub-queue.
    quantum_bytes:
        Deficit round-robin credit granted per round (default one MTU).
    ce_threshold_s:
        Shallow marking threshold (see :class:`CoDelQueue`), applied to
        every sub-queue's sojourn times.  ``None`` disables it.
    flow_key:
        Classifier mapping a packet to its sub-queue key; defaults to
        ``Packet.flow_id``.
    """

    name = "fq_codel"
    uses_flow_key = True

    def __init__(
        self,
        scheduler: EventScheduler,
        rate_bps: float,
        buffer_bytes: float,
        on_departure: Callable[[Packet, float], None],
        on_drop: Callable[[Packet, float], None],
        target_delay_s: float = 0.005,
        interval_s: float = 0.1,
        min_backlog_bytes: float = 1500.0,
        quantum_bytes: float = 1500.0,
        ce_threshold_s: float | None = None,
        flow_key: Callable[[Packet], int] | None = None,
    ):
        super().__init__(scheduler, rate_bps, buffer_bytes, on_departure, on_drop)
        if target_delay_s <= 0 or interval_s <= 0:
            raise ValueError("target_delay_s and interval_s must be positive")
        if quantum_bytes <= 0:
            raise ValueError("quantum_bytes must be positive")
        if ce_threshold_s is not None and ce_threshold_s <= 0:
            raise ValueError("ce_threshold_s must be positive")
        self._target_s = float(target_delay_s)
        self._interval_s = float(interval_s)
        self._min_backlog_bytes = float(min_backlog_bytes)
        self._quantum = float(quantum_bytes)
        self._ce_threshold_s = ce_threshold_s
        self._flow_key = flow_key if flow_key is not None else self._default_flow_key
        #: Waiting packets per sub-queue key, each with its arrival time.
        self._subqueues: dict[int, deque[tuple[Packet, float]]] = {}
        #: Bytes waiting per sub-queue key.
        self._sub_bytes: dict[int, float] = {}
        #: Deficit round-robin credit per active sub-queue key.
        self._deficits: dict[int, float] = {}
        #: Sub-queues awaiting their one priority round (RFC 8290 new list).
        self._new_flows: deque[int] = deque()
        #: Established sub-queues in round-robin order (RFC 8290 old list).
        self._old_flows: deque[int] = deque()
        #: CoDel state per sub-queue key (persists across idle periods).
        self._codel: dict[int, _CoDelControl] = {}

    @staticmethod
    def _default_flow_key(packet: Packet) -> int:
        return packet.flow_id

    @property
    def occupancy_packets(self) -> int:
        """Packets currently waiting across all sub-queues."""
        return sum(len(sub) for sub in self._subqueues.values())

    def _admit(self, packet: Packet, now: float) -> bool:
        if packet.size_bytes > self._buffer_bytes:
            return False  # can never fit; don't evict anyone else's backlog
        # On overflow, make room by dropping from the head of the fattest
        # sub-queue (RFC 8290): the overrunning flow pays for the burst.
        while self._queued_bytes + packet.size_bytes > self._buffer_bytes:
            victim_key = max(
                self._sub_bytes, key=self._sub_bytes.__getitem__, default=None
            )
            if victim_key is None or not self._subqueues[victim_key]:
                return False  # nothing to evict (oversized arrival)
            victim, _ = self._subqueues[victim_key].popleft()
            self._sub_bytes[victim_key] -= victim.size_bytes
            self._queued_bytes -= victim.size_bytes
            self._drop(victim, now)
        return True

    def _enqueue_packet(self, packet: Packet, now: float) -> None:
        key = self._flow_key(packet)
        sub = self._subqueues.get(key)
        if sub is None:
            # A sub-queue born from an arrival enters the *new* list: it
            # gets one deficit round of strict priority over old flows.
            sub = self._subqueues[key] = deque()
            self._sub_bytes[key] = 0.0
            self._deficits[key] = self._quantum
            self._new_flows.append(key)
            if key not in self._codel:
                self._codel[key] = _CoDelControl(
                    self._target_s, self._interval_s, self._min_backlog_bytes
                )
        sub.append((packet, now))
        self._sub_bytes[key] += packet.size_bytes
        self._queued_bytes += packet.size_bytes

    def _retire(self, key: int, now: float) -> None:
        """Drop a drained sub-queue's bookkeeping.

        CoDel state is kept only while it still carries information — an
        open dropping episode, a pending first-above window, or a recent
        ``drop_next`` the resume rule would consult.  Cold state is
        evicted: a returning flow would restart its episode from scratch
        anyway (``should_drop`` resets ``count`` once ``drop_next`` is
        more than an interval old), and under flow churn every spawned
        flow is a brand-new key, so retaining cold state forever would
        grow the dict by one dead entry per churned flow.
        """
        del self._subqueues[key]
        del self._sub_bytes[key]
        del self._deficits[key]
        codel = self._codel[key]
        if (
            not codel.dropping
            and codel.first_above_time == 0.0
            and now - codel.drop_next >= codel.interval_s
        ):
            del self._codel[key]

    def _next_packet(self) -> Packet | None:
        now = self._scheduler.now
        while self._new_flows or self._old_flows:
            from_new = bool(self._new_flows)
            flows = self._new_flows if from_new else self._old_flows
            key = flows[0]
            sub = self._subqueues[key]
            if not sub:
                flows.popleft()
                if from_new:
                    # An emptied new sub-queue joins the old list instead
                    # of retiring (RFC 8290 §4.1.2): if its flow keeps
                    # sending it must queue behind the old flows rather
                    # than re-enter the priority list every packet.
                    self._old_flows.append(key)
                else:
                    self._retire(key, now)
                continue
            if self._deficits[key] < sub[0][0].size_bytes:
                # Deficit exhausted: refill one quantum and demote to the
                # tail of the old list — a new flow's priority lasts at
                # most one quantum, which is what prevents starvation.
                self._deficits[key] += self._quantum
                flows.popleft()
                self._old_flows.append(key)
                continue
            packet, arrival = sub.popleft()
            self._sub_bytes[key] -= packet.size_bytes
            self._queued_bytes -= packet.size_bytes
            self._deficits[key] -= packet.size_bytes
            sojourn = now - arrival
            if self._codel[key].should_drop(sojourn, now, self._sub_bytes[key]):
                if packet.ecn_capable:
                    self._mark(packet, now)
                    return packet
                self._drop(packet, now)
                continue
            if (
                self._ce_threshold_s is not None
                and packet.ecn_capable
                and sojourn > self._ce_threshold_s
            ):
                self._mark(packet, now)
            return packet
        return None


class DualPI2Queue(QueueDiscipline):
    """Dual-queue coupled AQM for L4S (RFC 9332 style, simplified).

    Two FIFOs share one drain rate:

    * the *L queue* holds L4S packets (``Packet.l4s``, the model's stand-
      in for the ECT(1) codepoint) and signals congestion by CE-marking
      only — a *step* mark once a packet's sojourn reaches the shallow
      ``step_threshold_s``, plus probabilistic marks coupled to classic-
      queue pressure;
    * the *classic queue* holds everything else and runs a PI2
      controller: a Proportional-Integral law updates a base probability
      ``p`` every ``t_update_s`` from the queue's head sojourn time, and
      packets are dropped at dequeue with probability ``p**2`` (CE-marked
      instead when the flow negotiated classic ECN — same squared law).

    The square is the RFC 9332 *coupling law*: the L queue marks with
    probability ``coupling * p`` while the classic queue drops with
    ``p**2``, so a window-halving classic flow (rate ∝ 1/sqrt(p_C)) and a
    fraction-responding L4S flow (rate ∝ 1/p_L) converge on the same
    per-flow rate — signal-based fairness, where FQ-CoDel's is
    scheduling-based.

    Scheduling between the queues is credit-based weighted round robin:
    the L queue has near-priority, but while both queues are backlogged
    the classic queue is guaranteed a ``classic_share_min`` fraction of
    the link, so unresponsive L traffic cannot starve it.  The hard
    ``buffer_bytes`` limit is shared and overflow drops are never marked.
    RFC 9332's overload machinery (dropping from the L queue when ``p``
    saturates) is not modelled: the hard limit bounds the damage and lab
    flows are responsive.

    All randomness (the drop/mark lotteries) comes from ``seed``, so a
    DualPI2 simulation is a pure function of its inputs.

    Parameters
    ----------
    target_delay_s:
        Classic-queue delay the PI controller steers toward (default
        15 ms, the RFC's reference).
    t_update_s:
        Period of the PI probability update (default 16 ms).  Updates are
        applied lazily (catching up on arrivals/dequeues), which is
        equivalent for the event-driven queue and keeps the scheduler
        free of timer events.
    alpha, beta:
        PI integral / proportional gains: each update adds
        ``alpha * (qdelay - target) + beta * (qdelay - prev_qdelay)`` to
        the base probability, delays in seconds.  The defaults are
        RFC 9332 Appendix A's recommendation for a 16 ms update period
        (``alpha = 0.1 * t_update / rtt_max**2``, ``beta =
        0.3 / rtt_max`` at ``rtt_max`` = 100 ms).
    coupling:
        Coupling factor ``k``: L-queue mark probability is
        ``min(coupling * p, 1)`` (default 2, the RFC's recommendation).
    step_threshold_s:
        Sojourn threshold of the L queue's step marking (default 1 ms).
    classic_share_min:
        Link share guaranteed to the classic queue while both queues are
        backlogged (default 5 %).
    seed:
        Seed of the private drop/mark-decision RNG.
    """

    name = "dualpi2"
    uses_seed = True

    def __init__(
        self,
        scheduler: EventScheduler,
        rate_bps: float,
        buffer_bytes: float,
        on_departure: Callable[[Packet, float], None],
        on_drop: Callable[[Packet, float], None],
        target_delay_s: float = 0.015,
        t_update_s: float = 0.016,
        alpha: float = 0.16,
        beta: float = 3.2,
        coupling: float = 2.0,
        step_threshold_s: float = 0.001,
        classic_share_min: float = 0.05,
        seed: int = 0,
    ):
        super().__init__(scheduler, rate_bps, buffer_bytes, on_departure, on_drop)
        if target_delay_s <= 0 or t_update_s <= 0:
            raise ValueError("target_delay_s and t_update_s must be positive")
        if alpha < 0 or beta < 0:
            raise ValueError("alpha and beta must be non-negative")
        if coupling <= 0:
            raise ValueError("coupling must be positive")
        if step_threshold_s <= 0:
            raise ValueError("step_threshold_s must be positive")
        if not 0.0 < classic_share_min < 1.0:
            raise ValueError("classic_share_min must be in (0, 1)")
        self._target_s = float(target_delay_s)
        self._t_update = float(t_update_s)
        self._alpha = float(alpha)
        self._beta = float(beta)
        self._coupling = float(coupling)
        self._step_s = float(step_threshold_s)
        self._c_share = float(classic_share_min)
        self._rng = random.Random(seed)

        #: Waiting packets per traffic class, each with its arrival time.
        self._l_queue: deque[tuple[Packet, float]] = deque()
        self._c_queue: deque[tuple[Packet, float]] = deque()
        self._l_bytes = 0.0
        self._c_bytes = 0.0

        # PI2 controller state.
        self._base_p = 0.0
        self._prev_qdelay = 0.0
        self._last_update = 0.0

        # WRR credit: serve L while >= 0 (and L is backlogged); only
        # biased while both queues compete, so it cannot drift unbounded.
        self._wrr_credit = 0.0

        #: CE marks issued by the L queue (step + coupled lottery).
        self.packets_marked_l = 0
        #: CE marks issued by the classic queue (squared law, ECN flows).
        self.packets_marked_c = 0

    # -- controller ------------------------------------------------------------

    @property
    def base_probability(self) -> float:
        """The PI controller's current base probability ``p``."""
        return self._base_p

    def classic_drop_probability(self) -> float:
        """Drop (or classic-mark) probability of the classic queue: ``p**2``."""
        return min(self._base_p * self._base_p, 1.0)

    def l4s_mark_probability(self) -> float:
        """Coupled mark probability of the L queue: ``min(k * p, 1)``."""
        return min(self._coupling * self._base_p, 1.0)

    def _classic_qdelay(self, now: float) -> float:
        """Sojourn time of the classic queue's head packet (0 when empty).

        Head sojourn — not backlog over rate — so the controller sees the
        delay the WRR scheduler actually imposes while the L queue is
        taking its share.
        """
        if not self._c_queue:
            return 0.0
        return now - self._c_queue[0][1]

    def _maybe_update(self, now: float) -> None:
        """Catch the PI controller up to ``now`` in ``t_update`` steps."""
        steps = int((now - self._last_update) / self._t_update)
        if steps <= 0:
            return
        qdelay = self._classic_qdelay(now)
        for _ in range(steps):
            self._base_p += self._alpha * (qdelay - self._target_s)
            self._base_p += self._beta * (qdelay - self._prev_qdelay)
            self._base_p = min(max(self._base_p, 0.0), 1.0)
            self._prev_qdelay = qdelay
        self._last_update += steps * self._t_update

    # -- discipline hooks ------------------------------------------------------

    @property
    def occupancy_packets(self) -> int:
        """Packets currently waiting across both queues."""
        return len(self._l_queue) + len(self._c_queue)

    def _on_arrival(self, packet: Packet, now: float) -> None:
        self._maybe_update(now)

    def _admit(self, packet: Packet, now: float) -> bool:
        return self._queued_bytes + packet.size_bytes <= self._buffer_bytes

    def _enqueue_packet(self, packet: Packet, now: float) -> None:
        if packet.l4s and packet.ecn_capable:
            self._l_queue.append((packet, now))
            self._l_bytes += packet.size_bytes
        else:
            self._c_queue.append((packet, now))
            self._c_bytes += packet.size_bytes
        self._queued_bytes += packet.size_bytes

    def _next_packet(self) -> Packet | None:
        now = self._scheduler.now
        self._maybe_update(now)
        while self._l_queue or self._c_queue:
            serve_l = bool(self._l_queue) and (
                not self._c_queue or self._wrr_credit >= 0.0
            )
            if serve_l:
                packet, arrival = self._l_queue.popleft()
                self._l_bytes -= packet.size_bytes
                self._queued_bytes -= packet.size_bytes
                if self._c_queue:
                    self._wrr_credit -= self._c_share * packet.size_bytes
                if (now - arrival) >= self._step_s or (
                    self._base_p > 0.0
                    and self._rng.random() < self.l4s_mark_probability()
                ):
                    self._mark(packet, now)
                    self.packets_marked_l += 1
                return packet
            packet, arrival = self._c_queue.popleft()
            self._c_bytes -= packet.size_bytes
            self._queued_bytes -= packet.size_bytes
            p_c = self.classic_drop_probability()
            if p_c > 0.0 and self._rng.random() < p_c:
                if not packet.ecn_capable:
                    self._drop(packet, now)
                    continue
                self._mark(packet, now)
                self.packets_marked_c += 1
            if self._l_queue:
                # Credit only packets that actually transmit: a dequeue-
                # dropped classic packet must not buy the L queue service
                # time, or the classic_share_min guarantee would erode by
                # the classic drop rate.
                self._wrr_credit += (1.0 - self._c_share) * packet.size_bytes
            return packet
        return None


#: Queue disciplines selectable by name in scenario specs.
QUEUE_DISCIPLINES: dict[str, type[QueueDiscipline]] = {
    DropTailQueue.name: DropTailQueue,
    REDQueue.name: REDQueue,
    CoDelQueue.name: CoDelQueue,
    FqCoDelQueue.name: FqCoDelQueue,
    DualPI2Queue.name: DualPI2Queue,
}


def make_queue(
    discipline: str,
    scheduler: EventScheduler,
    rate_bps: float,
    buffer_bytes: float,
    on_departure: Callable[[Packet, float], None],
    on_drop: Callable[[Packet, float], None],
    **params: float,
) -> QueueDiscipline:
    """Construct a queue discipline by registry name.

    ``params`` are forwarded to the discipline's constructor (thresholds,
    target delay, seed, ...); passing a parameter the discipline does not
    accept raises ``TypeError``.
    """
    try:
        cls = QUEUE_DISCIPLINES[discipline]
    except KeyError:
        raise ValueError(
            f"unknown queue discipline {discipline!r}; "
            f"expected one of {sorted(QUEUE_DISCIPLINES)}"
        ) from None
    return cls(scheduler, rate_bps, buffer_bytes, on_departure, on_drop, **params)
