"""Figure 9: retransmitted-byte fraction, peak vs off-peak hours.

Paper finding: capping *increases* the retransmitted-byte percentage
off-peak (the denominator — bytes sent — shrinks more than the numerator)
and *decreases* it during congested peak hours, netting out to a modest
overall increase.
"""

from benchmarks._helpers import run_once


def test_fig9_retransmit_split(benchmark, paired_outcome):
    split = run_once(benchmark, paired_outcome.figure9_retransmit_split)

    print(
        f"\npeak: {100 * split['peak']:+.1f}%   "
        f"off-peak: {100 * split['off_peak']:+.1f}%   "
        f"overall TTE: {100 * split['overall']:+.1f}%"
    )

    assert split["off_peak"] > 0.0
    assert split["peak"] < 0.0
    assert split["overall"] > split["peak"]
    assert split["overall"] < split["off_peak"]
