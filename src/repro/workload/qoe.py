"""Per-session QoE and network outcome model.

Given the congestion state of the link-hour a session lands in, whether the
session itself is bitrate-capped, and per-link / per-account heterogeneity,
this module generates the ten outcome metrics reported in the paper's
Figure 5.  All generation is vectorized over the sessions of one
(link, day, hour) cell.

The model encodes the causal structure the paper identifies:

* Congestion is a property of the *link-hour*, driven by total offered
  load — so capped and uncapped sessions sharing a link see nearly the same
  congestion (small within-link differences only), while links with
  different treated fractions see very different congestion.
* The cap directly lowers the session's own video bitrate, bytes sent and
  (slightly) its measured throughput, independent of other traffic.
* Rebuffers and stability depend on how close the selected bitrate is to
  the achievable throughput ("pressure"), so capped sessions rebuffer less
  even under identical congestion.
* Observed minimum RTT is the standing-queue delay attenuated by a
  sampling-relief term that grows with how much the session sends: large
  (uncapped) sessions take more RTT samples and are more likely to catch a
  momentarily empty queue, so *within a link* capped sessions report a
  slightly higher minimum RTT — reproducing the paper's wrong-signed naive
  A/B estimate for that metric.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workload.congestion import LinkHourState
from repro.workload.video import (
    BITRATE_LADDER_KBPS,
    BitrateCapPolicy,
    select_bitrate_array,
)

__all__ = ["LinkEffects", "SessionOutcomeModel"]


@dataclass(frozen=True)
class LinkEffects:
    """Persistent per-link differences unrelated to the treatment.

    These reproduce the pre-existing differences the paper measured in its
    baseline week: link 1 served slightly different content and had about
    20 % more sessions with rebuffers, 5 % more bytes, 2 % higher stability
    and 0.1 % lower perceptual quality than link 2.
    """

    rebuffer_multiplier: float = 1.0
    bytes_multiplier: float = 1.0
    stability_offset: float = 0.0
    quality_offset: float = 0.0


@dataclass(frozen=True)
class SessionOutcomeModel:
    """Parameters of the per-session outcome generator.

    The defaults are calibrated so the paired-link experiment reproduces
    the qualitative pattern of the paper's Figure 5: naive A/B estimates
    that are near zero or wrong-signed for throughput, minimum RTT and play
    delay, alongside large genuine total treatment effects and positive
    spillovers.
    """

    #: Median uncongested per-session (access-limited) throughput, Mb/s.
    access_throughput_median_mbps: float = 8.0
    #: Log-normal sigma of access throughput across sessions.
    access_throughput_sigma: float = 0.45
    #: Multiplier on measured throughput for capped sessions: capped clients
    #: request smaller chunks, so their throughput samples sit slightly
    #: lower even on an uncongested path.
    capped_measurement_factor: float = 0.97
    #: Median base (propagation) RTT, milliseconds.
    base_rtt_median_ms: float = 18.0
    #: Log-normal sigma of base RTT across accounts.
    base_rtt_sigma: float = 0.30
    #: Fraction of the standing-queue delay that an uncapped session's
    #: minimum-RTT measurement escapes (more samples -> better minimum).
    rtt_sampling_relief_uncapped: float = 0.18
    #: Same for capped sessions (fewer samples -> worse minimum).
    rtt_sampling_relief_capped: float = 0.06
    #: Startup buffer that must be downloaded before playback, megabytes.
    startup_buffer_mb: float = 5.0
    #: Fixed component of start play delay (licensing, manifest, DRM), seconds.
    play_delay_floor_s: float = 0.7
    #: Mean viewing duration, hours.
    viewing_hours_mean: float = 1.0
    #: Non-congestive (transmission) loss floor.
    base_loss_rate: float = 0.002
    #: Per-session retransmitted bytes independent of volume (startup burst
    #: and tail losses), megabytes.
    fixed_retransmit_mb: float = 3.5
    #: Baseline rebuffer events per viewing hour on an uncongested link.
    base_rebuffer_rate: float = 0.08
    #: Baseline probability that a start is cancelled.
    base_cancel_probability: float = 0.04
    #: Additional cancel probability per second of play delay above one second.
    cancel_per_delay_second: float = 0.012
    #: Weekend multiplier on cancelled starts (more casual browsing).
    weekend_cancel_multiplier: float = 1.25
    #: Perceptual-quality saturation constant (kb/s).
    quality_scale_kbps: float = 900.0
    #: Relative measurement noise applied to continuous metrics.
    noise_sigma: float = 0.05
    #: Encoding ladder.
    ladder: tuple[float, ...] = BITRATE_LADDER_KBPS

    # -- generation -------------------------------------------------------------

    def generate(
        self,
        capped: np.ndarray,
        state: LinkHourState,
        link_effects: LinkEffects,
        cap_policy: BitrateCapPolicy,
        account_throughput_factor: np.ndarray,
        account_rtt_factor: np.ndarray,
        weekend: bool,
        rng: np.random.Generator,
        cell_shock: float = 1.0,
    ) -> dict[str, np.ndarray]:
        """Generate outcome arrays for the sessions of one link-hour cell.

        Parameters
        ----------
        capped:
            Boolean array marking which sessions are bitrate-capped.
        state:
            The link-hour's congestion state.
        link_effects:
            Persistent per-link differences.
        cap_policy:
            The cap applied to treated sessions.
        account_throughput_factor, account_rtt_factor:
            Per-session multiplicative account effects (arrays aligned with
            ``capped``), modelling that sessions of the same account share
            an access network.
        weekend:
            Whether the cell falls on a weekend day.
        rng:
            Random generator.
        cell_shock:
            Multiplicative shock shared by *every* session in this link-hour
            cell (transit weather, routing changes, content mix).  Shared
            shocks are why the paper's hourly aggregation — which treats
            sessions within an hour as perfectly correlated — produces much
            wider confidence intervals than the account-level analysis.
        """
        capped = np.asarray(capped, dtype=bool)
        n = capped.shape[0]
        if n == 0:
            return {}
        account_throughput_factor = np.asarray(account_throughput_factor, dtype=float)
        account_rtt_factor = np.asarray(account_rtt_factor, dtype=float)
        if account_throughput_factor.shape[0] != n or account_rtt_factor.shape[0] != n:
            raise ValueError("account effect arrays must match the number of sessions")

        def noise() -> np.ndarray:
            return np.exp(rng.normal(0.0, self.noise_sigma, size=n))

        # --- throughput ------------------------------------------------------
        access = (
            self.access_throughput_median_mbps
            * np.exp(rng.normal(0.0, self.access_throughput_sigma, size=n))
            * account_throughput_factor
            * float(cell_shock)
        )
        network_throughput = access * state.throughput_factor
        measurement_factor = np.where(capped, self.capped_measurement_factor, 1.0)
        throughput_mbps = network_throughput * measurement_factor * noise()

        # --- video bitrate -----------------------------------------------------
        uncapped_bitrate = select_bitrate_array(throughput_mbps, self.ladder)
        capped_ladder = cap_policy.ladder(self.ladder)
        capped_bitrate = select_bitrate_array(throughput_mbps, capped_ladder)
        video_bitrate_kbps = np.where(capped, capped_bitrate, uncapped_bitrate)

        # --- minimum RTT --------------------------------------------------------
        base_rtt = (
            self.base_rtt_median_ms
            * np.exp(rng.normal(0.0, self.base_rtt_sigma, size=n))
            * account_rtt_factor
        )
        relief = np.where(
            capped, self.rtt_sampling_relief_capped, self.rtt_sampling_relief_uncapped
        )
        min_rtt_ms = base_rtt + state.queueing_delay_ms * (1.0 - relief) * noise()

        # --- start play delay ----------------------------------------------------
        startup_bits = self.startup_buffer_mb * 8e6
        transfer_s = startup_bits / np.maximum(network_throughput * 1e6, 1e5)
        rtt_penalty_s = 6.0 * (base_rtt + state.queueing_delay_ms) / 1000.0
        play_delay_s = (self.play_delay_floor_s + transfer_s + rtt_penalty_s) * noise()

        # --- bytes sent -------------------------------------------------------------
        viewing_hours = np.clip(
            rng.exponential(self.viewing_hours_mean, size=n), 0.05, 6.0
        )
        bytes_sent_gb = (
            video_bitrate_kbps * 1000.0 * viewing_hours * 3600.0 / 8.0 / 1e9
        ) * link_effects.bytes_multiplier * noise()

        # --- retransmissions -----------------------------------------------------------
        loss_rate = self.base_loss_rate + state.loss_rate
        sent_bytes = np.maximum(bytes_sent_gb * 1e9, 1e6)
        fixed_retx = self.fixed_retransmit_mb * 1e6
        retransmit_fraction = np.clip(
            (loss_rate * sent_bytes + fixed_retx) / sent_bytes * noise(), 0.0, 1.0
        )

        # --- rebuffers --------------------------------------------------------------------
        pressure = video_bitrate_kbps / np.maximum(network_throughput * 1000.0, 1.0)
        rebuffer_rate = (
            self.base_rebuffer_rate
            * link_effects.rebuffer_multiplier
            * (0.7 + 1.2 * np.clip(pressure, 0.0, 2.0) ** 2)
            * (1.0 + 25.0 * state.loss_rate)
            * noise()
        )

        # --- cancelled starts ---------------------------------------------------------
        cancel_probability = (
            self.base_cancel_probability
            + self.cancel_per_delay_second * np.maximum(play_delay_s - 1.0, 0.0)
        )
        if weekend:
            cancel_probability = cancel_probability * self.weekend_cancel_multiplier
        cancelled_start = (rng.random(n) < np.clip(cancel_probability, 0.0, 0.9)).astype(
            float
        )

        # --- perceptual quality and stability ----------------------------------------------------
        perceptual_quality = np.clip(
            100.0 * (1.0 - np.exp(-video_bitrate_kbps / self.quality_scale_kbps))
            + link_effects.quality_offset
            + rng.normal(0.0, 0.5, size=n),
            0.0,
            100.0,
        )
        switches = 2.0 + 15.0 * np.clip(pressure - 0.5, 0.0, 2.0) * (
            1.0 + 5.0 * state.loss_rate
        )
        stability = np.clip(
            100.0 - switches + link_effects.stability_offset + rng.normal(0.0, 1.0, size=n),
            0.0,
            100.0,
        )

        return {
            "throughput_mbps": throughput_mbps,
            "min_rtt_ms": min_rtt_ms,
            "play_delay_s": play_delay_s,
            "video_bitrate_kbps": video_bitrate_kbps,
            "retransmit_fraction": retransmit_fraction,
            "rebuffer_rate": rebuffer_rate,
            "cancelled_start": cancelled_start,
            "perceptual_quality": perceptual_quality,
            "stability": stability,
            "bytes_sent_gb": bytes_sent_gb,
        }
