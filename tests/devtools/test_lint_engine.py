"""Engine-level tests: discovery, module scoping, suppressions, ordering."""

import textwrap

import pytest

from repro.devtools.lint import lint_paths
from repro.devtools.lint.walker import collect_files, load_file, module_name_for

RANDOM_SNIPPET = """
import random

def jitter():
    return random.random()
"""


def write(path, code):
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(code))
    return path


class TestWalker:
    def test_collect_files_expands_directories(self, tmp_path):
        write(tmp_path / "pkg" / "a.py", "x = 1\n")
        write(tmp_path / "pkg" / "sub" / "b.py", "y = 2\n")
        write(tmp_path / "pkg" / "__pycache__" / "c.py", "z = 3\n")
        write(tmp_path / "pkg" / "notes.txt", "not python\n")
        files = collect_files([tmp_path])
        names = [f.name for f in files]
        assert names == ["a.py", "b.py"]

    def test_collect_files_missing_path_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            collect_files([tmp_path / "missing"])

    def test_collect_files_non_python_file_raises(self, tmp_path):
        stray = write(tmp_path / "notes.txt", "text")
        with pytest.raises(FileNotFoundError):
            collect_files([stray])

    def test_module_name_from_package_chain(self, tmp_path):
        write(tmp_path / "pkg" / "__init__.py", "")
        write(tmp_path / "pkg" / "sub" / "__init__.py", "")
        mod = write(tmp_path / "pkg" / "sub" / "mod.py", "x = 1\n")
        assert module_name_for(mod) == "pkg.sub.mod"
        assert module_name_for(tmp_path / "pkg" / "sub" / "__init__.py") == "pkg.sub"

    def test_module_name_outside_package_is_none(self, tmp_path):
        mod = write(tmp_path / "standalone.py", "x = 1\n")
        assert module_name_for(mod) is None

    def test_load_file_parses_suppressions(self, tmp_path):
        mod = write(
            tmp_path / "mod.py",
            """
            x = 1  # repro-lint: disable=DET001, KEY001
            # repro-lint: disable=*
            y = 2
            """,
        )
        ctx = load_file(mod)
        assert ctx.is_suppressed("DET001", 2)
        assert ctx.is_suppressed("KEY001", 2)
        assert not ctx.is_suppressed("API001", 2)
        # The standalone comment covers itself and the following line.
        assert ctx.is_suppressed("API001", 4)


class TestScoping:
    def test_unpackaged_file_gets_all_rules(self, tmp_path):
        bad = write(tmp_path / "fixture.py", RANDOM_SNIPPET)
        assert [d.code for d in lint_paths([bad])] == ["DET001"]

    def test_determinism_rules_scope_to_simulation_layers(self, tmp_path):
        # The same snippet inside a package named repro.reporting (outside
        # every DET scope) is ignored; inside repro.netsim it fires.
        write(tmp_path / "repro" / "__init__.py", "")
        write(tmp_path / "repro" / "reporting" / "__init__.py", "")
        write(tmp_path / "repro" / "netsim" / "__init__.py", "")
        out_of_scope = write(tmp_path / "repro" / "reporting" / "fmt.py", RANDOM_SNIPPET)
        in_scope = write(tmp_path / "repro" / "netsim" / "sim.py", RANDOM_SNIPPET)
        assert lint_paths([out_of_scope], select=["DET001"]) == []
        assert [d.code for d in lint_paths([in_scope], select=["DET001"])] == ["DET001"]

    def test_diagnostics_sorted_by_position(self, tmp_path):
        bad = write(
            tmp_path / "fixture.py",
            """
            import random
            import time

            def stamp():
                return time.time()

            def jitter():
                return random.random()
            """,
        )
        diags = lint_paths([bad])
        assert [d.line for d in diags] == sorted(d.line for d in diags)
        assert [d.code for d in diags] == ["DET002", "DET001"]


class TestParseErrors:
    def test_syntax_error_becomes_parse_diagnostic(self, tmp_path):
        bad = write(tmp_path / "broken.py", "def broken(:\n")
        diags = lint_paths([bad])
        assert [d.code for d in diags] == ["PARSE"]
        assert diags[0].line >= 1

    def test_parse_diagnostic_does_not_stop_other_files(self, tmp_path):
        write(tmp_path / "broken.py", "def broken(:\n")
        write(tmp_path / "fixture.py", RANDOM_SNIPPET)
        codes = {d.code for d in lint_paths([tmp_path])}
        assert codes == {"PARSE", "DET001"}


class TestSelect:
    def test_select_restricts_rules(self, tmp_path):
        bad = write(
            tmp_path / "fixture.py",
            """
            import time

            def stamp(scheduler):
                for x in set(scheduler):
                    yield x, time.time()
            """,
        )
        assert {d.code for d in lint_paths([bad])} == {"DET002", "DET003"}
        assert {d.code for d in lint_paths([bad], select=["DET003"])} == {"DET003"}
