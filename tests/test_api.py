"""Tests for the `repro.api` facade — the package's compatibility surface."""

import pytest

from repro import api


class TestSurface:
    def test_every_exported_name_resolves(self):
        for name in api.__all__:
            assert getattr(api, name) is not None

    def test_all_is_sorted_and_duplicate_free(self):
        assert list(api.__all__) == sorted(set(api.__all__))

    def test_facade_names_are_the_canonical_objects(self):
        from repro.campaign import CampaignSpec, load_campaign, run_campaign
        from repro.runner import ResultCache, ScenarioSpec, content_key

        assert api.CampaignSpec is CampaignSpec
        assert api.load_campaign is load_campaign
        assert api.run_campaign is run_campaign
        assert api.ResultCache is ResultCache
        assert api.ScenarioSpec is ScenarioSpec
        assert api.content_key is content_key


class TestHelpers:
    def test_list_figures_matches_the_task_registry(self):
        from repro.runner.tasks import FIGURE_CELL_TASKS

        assert api.list_figures() == tuple(FIGURE_CELL_TASKS)
        assert "fig2a" in api.list_figures()
        assert "fleet" in api.list_figures()

    def test_figure_spec_builds_a_keyable_arm(self):
        spec = api.figure_spec("topo_rtt", quick=True)
        assert isinstance(spec, api.ScenarioSpec)
        assert spec.params == {"figure": "topo_rtt", "quick": True}
        assert len(api.content_key(spec)) == 64

    def test_figure_spec_unknown_figure(self):
        with pytest.raises(KeyError, match="unknown figure 'figZ'"):
            api.figure_spec("figZ")


class TestEndToEnd:
    def test_parse_run_validate_through_the_facade(self, tmp_path):
        campaign = api.parse_campaign(
            {"campaign": "api-e2e", "stages": [{"figure": "topo_rtt", "quick": True}]}
        )
        cache = api.ResultCache(tmp_path / "cache")
        result = api.run_campaign(campaign, jobs=2, cache=cache, rundir=tmp_path / "RUN")
        assert result.unique_arms == 1
        assert result.cache_misses == 1
        report = api.validate_run(tmp_path / "RUN", campaign=campaign)
        assert report.ok
