"""Discrete-event scheduling engine.

A minimal, dependency-free event scheduler built on a binary heap.  Events
are ``(time, sequence, callback)`` tuples; the sequence number breaks ties
so that events scheduled earlier run earlier and comparison never falls
through to the (non-comparable) callback.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable

__all__ = ["EventScheduler"]


class EventScheduler:
    """A simple discrete-event scheduler.

    Example
    -------
    >>> sched = EventScheduler()
    >>> fired = []
    >>> sched.schedule(1.0, lambda: fired.append("a"))
    >>> sched.schedule(0.5, lambda: fired.append("b"))
    >>> sched.run(until=2.0)
    >>> fired
    ['b', 'a']
    """

    #: Cancelled-entry count above which :meth:`cancel` rebuilds the heap.
    _COMPACT_THRESHOLD = 64

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._counter = itertools.count()
        self._now = 0.0
        self._pending: set[int] = set()
        self._cancelled: set[int] = set()

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def schedule(self, time: float, callback: Callable[[], None]) -> int:
        """Schedule ``callback`` to run at absolute ``time``.

        Returns an event id usable with :meth:`cancel`.  Scheduling in the
        past raises ``ValueError``.
        """
        if time < self._now:
            raise ValueError(
                f"cannot schedule an event at {time} before current time {self._now}"
            )
        event_id = next(self._counter)
        heapq.heappush(self._heap, (float(time), event_id, callback))
        self._pending.add(event_id)
        return event_id

    def schedule_in(self, delay: float, callback: Callable[[], None]) -> int:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        return self.schedule(self._now + delay, callback)

    def cancel(self, event_id: int) -> None:
        """Cancel a previously scheduled event.

        Cancelling an id that is not pending (unknown, already run, or
        already cancelled) is a no-op.  Cancelled entries are dropped
        lazily at pop time; once they outnumber the live events the heap
        is compacted, so neither the heap nor the cancelled-id set grows
        without bound.
        """
        if event_id not in self._pending:
            return
        self._pending.discard(event_id)
        self._cancelled.add(event_id)
        if (
            len(self._cancelled) > self._COMPACT_THRESHOLD
            and len(self._cancelled) > len(self._pending)
        ):
            self._heap = [e for e in self._heap if e[1] not in self._cancelled]
            heapq.heapify(self._heap)
            self._cancelled.clear()

    def __len__(self) -> int:
        """Number of live (non-cancelled) pending events."""
        return len(self._pending)

    def run(self, until: float) -> None:
        """Run events in time order until the clock reaches ``until``."""
        while self._heap and self._heap[0][0] <= until:
            time, event_id, callback = heapq.heappop(self._heap)
            if event_id in self._cancelled:
                self._cancelled.discard(event_id)
                continue
            self._pending.discard(event_id)
            self._now = time
            callback()
        self._now = max(self._now, until)

    def step(self) -> bool:
        """Run a single event.  Returns False when no events remain."""
        while self._heap:
            time, event_id, callback = heapq.heappop(self._heap)
            if event_id in self._cancelled:
                self._cancelled.discard(event_id)
                continue
            self._pending.discard(event_id)
            self._now = time
            callback()
            return True
        return False
