"""Figure 3 — lab experiment comparing congestion control algorithms.

Ten long-lived connections share a 10 Gb/s bottleneck; some fraction run
BBR (treatment) and the rest Cubic (control).  The paper's striking result
reproduced here: at a 10 % allocation, *either* algorithm looks like a
huge throughput improvement over the other, even though a full deployment
of either yields identical per-flow throughput (TTE = 0).  The asymmetric
competition between BBR and loss-based traffic makes whichever algorithm
is in the minority look good.
"""

from __future__ import annotations

from repro.experiments.lab_common import figure_cells_spec, LabFigure, sweep_to_figure
from repro.runner.spec import ScenarioSpec
from repro.netsim.fluid.application import Application
from repro.netsim.fluid.competition import CompetitionModel
from repro.netsim.fluid.lab import run_lab_sweep
from repro.netsim.fluid.link import BottleneckLink

__all__ = ["run_cc_experiment", "cc_spec"]


def run_cc_experiment(
    n_units: int = 10,
    treatment_cc: str = "bbr",
    control_cc: str = "cubic",
    link: BottleneckLink | None = None,
    model: CompetitionModel | None = None,
    noise: float = 0.0,
    seed: int | None = 0,
    jobs: int = 1,
    cache=None,
) -> LabFigure:
    """Run the congestion-control lab sweep and return the figure data.

    Parameters
    ----------
    treatment_cc, control_cc:
        Algorithms used by treated / control connections (paper: BBR vs
        Cubic).  Swapping them answers "what if we were deploying Cubic
        into a BBR world" — both directions show a large, misleading A/B
        improvement.
    """
    sweep = run_lab_sweep(
        n_units,
        treatment_factory=lambda i: Application(i, cc=treatment_cc),
        control_factory=lambda i: Application(i, cc=control_cc),
        link=link,
        model=model,
        noise=noise,
        seed=seed,
        jobs=jobs,
        cache=cache,
    )
    return sweep_to_figure(
        sweep,
        name="fig3_congestion_control",
        description=(
            f"{n_units} long-lived connections, {treatment_cc} (treatment) vs "
            f"{control_cc} (control), sharing a bottleneck"
        ),
    )


def cc_spec(
    noise: float = 0.0, seed: int | None = 0, label: str | None = None
) -> ScenarioSpec:
    """Runner spec for one Figure 3 (Cubic vs BBR) replication.

    The campaign compiler's entry point: returns the content-keyed
    ``figure.cells`` spec whose execution reproduces
    :func:`run_cc_experiment`'s scalar cells at one seed.
    """
    return figure_cells_spec("fig3", noise=noise, seed=seed, label=label)
