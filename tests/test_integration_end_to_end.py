"""End-to-end integration test: the whole pipeline in one small run.

Exercises the public API exactly the way the quickstart example does:
lab sweeps feeding the causal estimands, the paired-link workload feeding
the regression pipeline, the design emulations, and the interference
diagnostics — all on a deliberately small configuration so the test stays
fast.
"""

import pytest

from repro.core.analysis import detect_interference
from repro.core.designs import GradualDeploymentDesign, PairedLinkDesign
from repro.core.experiment import ExperimentResult, evaluate_design
from repro.core.units import SESSION_METRICS
from repro.experiments import (
    PairedLinkExperiment,
    compare_designs,
    run_connections_experiment,
)
from repro.workload import PairedLinkWorkload, WorkloadConfig


@pytest.fixture(scope="module")
def small_outcome():
    config = WorkloadConfig(sessions_at_peak=120, n_accounts=1500, seed=23)
    return PairedLinkExperiment(config=config).run()


class TestEndToEnd:
    def test_lab_and_production_pipelines_compose(self, small_outcome):
        lab = run_connections_experiment()
        assert lab.tte("throughput_mbps") == pytest.approx(0.0, abs=1e-6)

        rows = small_outcome.figure5_rows()
        assert len(rows) == len(SESSION_METRICS)

        comparison = compare_designs(
            small_outcome.experiment_table,
            (0, 1, 2, 3, 4),
            small_outcome.estimates["tte"],
            baselines=small_outcome.baselines,
            metrics=("throughput_mbps", "min_rtt_ms"),
        )
        assert len(comparison.rows(["throughput_mbps", "min_rtt_ms"])) == 2

    def test_interference_diagnostics_fire_on_the_paired_link_data(self, small_outcome):
        estimates = small_outcome.estimates
        diagnostics = detect_interference(
            ate_by_allocation={
                0.05: estimates["ab_0.05"]["min_rtt_ms"].relative,
                0.95: estimates["ab_0.95"]["min_rtt_ms"].relative,
            },
            spillover_by_allocation={0.95: estimates["spillover"]["min_rtt_ms"].relative},
        )
        assert diagnostics.interference_detected

    def test_gradual_deployment_design_runs_on_workload(self):
        config = WorkloadConfig(sessions_at_peak=80, n_accounts=800, seed=31)
        workload = PairedLinkWorkload(config)
        design = GradualDeploymentDesign(ramp=(0.0, 0.5, 1.0))
        days = (0, 1, 2)
        plan = design.allocation_plan(config.links, days)
        table = workload.generate(plan, days)
        result = ExperimentResult(design, table, config.links, days)
        estimates = evaluate_design(result, metrics=("video_bitrate_kbps",))
        assert "tte" in estimates
        assert estimates["tte"]["video_bitrate_kbps"].relative_percent < -20.0

    def test_paired_link_design_against_custom_links(self):
        config = WorkloadConfig(sessions_at_peak=80, n_accounts=800, seed=37)
        workload = PairedLinkWorkload(config)
        design = PairedLinkDesign(high_allocation=0.9, low_allocation=0.1)
        days = (0, 1)
        table = workload.generate(design.allocation_plan(config.links, days), days)
        result = ExperimentResult(design, table, config.links, days)
        estimates = evaluate_design(result, metrics=("video_bitrate_kbps",))
        assert set(estimates) == {"tte", "spillover", "ab_0.9", "ab_0.1"}
