"""Tests for repro.core.units: units, sessions and outcome tables."""

import numpy as np
import pytest

from repro.core.units import SESSION_METRICS, OutcomeTable, Session, Unit


def make_session(i=0, **overrides):
    defaults = dict(
        session_id=i,
        account_id=i % 3,
        day=0,
        hour=12,
        link=1,
        treated=bool(i % 2),
        throughput_mbps=10.0 + i,
        min_rtt_ms=20.0,
        play_delay_s=2.0,
        video_bitrate_kbps=3000.0,
        retransmit_fraction=0.01,
        rebuffer_rate=0.1,
        cancelled_start=0.0,
        perceptual_quality=95.0,
        stability=98.0,
        bytes_sent_gb=1.5,
    )
    defaults.update(overrides)
    return Session(**defaults)


class TestUnit:
    def test_defaults(self):
        unit = Unit(unit_id=7)
        assert unit.unit_id == 7
        assert unit.account_id == 0
        assert unit.attributes == {}

    def test_with_attributes_merges(self):
        unit = Unit(1, 2, {"isp": "x"})
        extended = unit.with_attributes(link=1)
        assert extended.attributes == {"isp": "x", "link": 1}

    def test_with_attributes_does_not_mutate_original(self):
        unit = Unit(1, 2, {"isp": "x"})
        unit.with_attributes(link=1)
        assert "link" not in unit.attributes

    def test_units_with_same_fields_are_equal(self):
        assert Unit(1) == Unit(1)
        assert Unit(1) != Unit(2)


class TestSession:
    def test_metric_accessor(self):
        s = make_session(throughput_mbps=42.0)
        assert s.metric("throughput_mbps") == 42.0

    def test_metric_unknown_raises(self):
        with pytest.raises(KeyError):
            make_session().metric("nope")

    def test_as_dict_contains_all_metrics(self):
        d = make_session().as_dict()
        for name in SESSION_METRICS:
            assert name in d

    def test_session_metrics_count(self):
        assert len(SESSION_METRICS) == 10


class TestOutcomeTableConstruction:
    def test_empty_columns_raises(self):
        with pytest.raises(ValueError):
            OutcomeTable({})

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            OutcomeTable({"a": [1.0, 2.0], "b": [1.0]})

    def test_two_dimensional_column_raises(self):
        with pytest.raises(ValueError):
            OutcomeTable({"a": np.ones((2, 2))})

    def test_from_sessions(self):
        table = OutcomeTable.from_sessions([make_session(i) for i in range(5)])
        assert len(table) == 5
        assert "throughput_mbps" in table
        assert "treated" in table

    def test_from_sessions_empty_raises(self):
        with pytest.raises(ValueError):
            OutcomeTable.from_sessions([])

    def test_from_records(self):
        table = OutcomeTable.from_records([{"x": 1.0, "y": 2.0}, {"x": 3.0, "y": 4.0}])
        assert len(table) == 2
        assert list(table["x"]) == [1.0, 3.0]

    def test_from_records_empty_raises(self):
        with pytest.raises(ValueError):
            OutcomeTable.from_records([])


class TestOutcomeTableAccess:
    @pytest.fixture
    def table(self):
        return OutcomeTable(
            {
                "link": [1, 1, 2, 2],
                "treated": [0, 1, 0, 1],
                "value": [10.0, 20.0, 30.0, 40.0],
            }
        )

    def test_len(self, table):
        assert len(table) == 4

    def test_contains(self, table):
        assert "link" in table
        assert "missing" not in table

    def test_column_names(self, table):
        assert set(table.column_names) == {"link", "treated", "value"}

    def test_missing_column_raises(self, table):
        with pytest.raises(KeyError):
            table.column("nope")

    def test_getitem(self, table):
        assert list(table["value"]) == [10.0, 20.0, 30.0, 40.0]

    def test_iteration_yields_column_names(self, table):
        assert set(iter(table)) == {"link", "treated", "value"}


class TestOutcomeTableTransforms:
    @pytest.fixture
    def table(self):
        return OutcomeTable(
            {
                "link": [1, 1, 2, 2],
                "treated": [0, 1, 0, 1],
                "value": [10.0, 20.0, 30.0, 40.0],
            }
        )

    def test_select(self, table):
        subset = table.select(np.array([True, False, True, False]))
        assert len(subset) == 2
        assert list(subset["value"]) == [10.0, 30.0]

    def test_select_wrong_length_raises(self, table):
        with pytest.raises(ValueError):
            table.select(np.array([True]))

    def test_where_single_condition(self, table):
        assert len(table.where(link=1)) == 2

    def test_where_multiple_conditions(self, table):
        subset = table.where(link=2, treated=1)
        assert len(subset) == 1
        assert subset["value"][0] == 40.0

    def test_with_column_adds(self, table):
        extended = table.with_column("extra", [1.0, 2.0, 3.0, 4.0])
        assert "extra" in extended
        assert "extra" not in table

    def test_with_column_wrong_length_raises(self, table):
        with pytest.raises(ValueError):
            table.with_column("extra", [1.0])

    def test_concat(self, table):
        combined = table.concat(table)
        assert len(combined) == 8

    def test_concat_mismatched_columns_raises(self, table):
        other = OutcomeTable({"value": [1.0]})
        with pytest.raises(ValueError):
            table.concat(other)


class TestOutcomeTableSummaries:
    @pytest.fixture
    def table(self):
        return OutcomeTable(
            {
                "group": [0, 0, 1, 1],
                "value": [1.0, 3.0, 5.0, 7.0],
            }
        )

    def test_mean(self, table):
        assert table.mean("value") == pytest.approx(4.0)

    def test_mean_empty_raises(self, table):
        empty = table.select(np.zeros(4, dtype=bool))
        with pytest.raises(ValueError):
            empty.mean("value")

    def test_groupby_mean(self, table):
        means = table.groupby_mean("group", "value")
        assert means[0.0] == pytest.approx(2.0)
        assert means[1.0] == pytest.approx(6.0)

    def test_to_records_roundtrip(self, table):
        records = table.to_records()
        rebuilt = OutcomeTable.from_records(records)
        assert rebuilt.mean("value") == table.mean("value")
