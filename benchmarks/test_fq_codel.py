"""Wall-time of the packet sweep under FQ-CoDel vs drop-tail.

FQ-CoDel is the most expensive discipline in the registry: every dequeue
walks the DRR round, maintains per-flow deficits and runs a per-sub-queue
CoDel control law, and every overflow scans for the fattest sub-queue.
Benchmarking the same quick-mode sweep under both disciplines keeps that
overhead visible in the perf trajectory, separately from the shared
service-loop cost tracked by ``test_queue_disciplines.py``.

Quick-mode sizing matches the topology experiments' quick scale so the
pair stays cheap enough to ride along in tier-1 runs.
"""

from _helpers import run_once

from repro.netsim.packet.simulation import FlowConfig
from repro.netsim.packet.sweep import run_packet_sweep

#: Quick-mode sweep sizing, matching the topology experiments' quick scale.
QUICK_KWARGS = dict(
    allocations=(0, 2, 4),
    capacity_mbps=24.0,
    duration_s=6.0,
    warmup_s=2.0,
)


def _sweep(queue_discipline):
    return run_packet_sweep(
        4,
        treatment_factory=lambda i: FlowConfig(i, cc="reno", connections=2),
        control_factory=lambda i: FlowConfig(i, cc="reno", connections=1),
        queue_discipline=queue_discipline,
        **QUICK_KWARGS,
    )


def test_droptail_reference_sweep_quick(benchmark):
    sweep = run_once(benchmark, _sweep, "droptail")
    assert sorted(sweep.results) == [0, 2, 4]
    # Drop-tail rewards the extra connection at the 50% allocation.
    assert sweep.ab_estimate("throughput_mbps", 0.5) > 1.0


def test_fq_codel_sweep_quick(benchmark):
    sweep = run_once(benchmark, _sweep, "fq_codel")
    assert sorted(sweep.results) == [0, 2, 4]
    # Per-unit fair queueing: the extra connection buys (almost) nothing.
    assert abs(sweep.ab_estimate("throughput_mbps", 0.5)) < 0.5
