"""The naive A/B test design.

Every session, on every link and every day, is independently assigned to
treatment with the same probability ``allocation``.  The only estimand the
design supports is the within-experiment average treatment effect
``tau(allocation)``, which "naive" practice then interprets as if it were
the total treatment effect — the interpretation the paper shows to be
biased under congestion interference.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.designs.base import (
    AllocationPlan,
    CellSelector,
    ComparisonSpec,
    ExperimentDesign,
)

__all__ = ["ABTestDesign"]


class ABTestDesign(ExperimentDesign):
    """A classic A/B test at a single allocation.

    Parameters
    ----------
    allocation:
        Fraction of sessions assigned to treatment (e.g. 0.05 for a 5 %
        test).
    """

    name = "ab_test"

    def __init__(self, allocation: float):
        if not 0.0 <= allocation <= 1.0:
            raise ValueError("allocation must be in [0, 1]")
        self.allocation = float(allocation)

    def allocation_plan(
        self, links: Sequence[int], days: Sequence[int]
    ) -> AllocationPlan:
        cells = {
            (link, day): self.allocation for link in links for day in days
        }
        return AllocationPlan(cells, default=self.allocation)

    def comparisons(
        self, links: Sequence[int], days: Sequence[int]
    ) -> list[ComparisonSpec]:
        links_t = tuple(int(link) for link in links)
        days_t = tuple(int(day) for day in days)
        return [
            ComparisonSpec(
                estimand=f"ab_{self.allocation:g}",
                treatment_selector=CellSelector(links_t, days_t, treated=True),
                control_selector=CellSelector(links_t, days_t, treated=False),
                description=(
                    f"Naive A/B comparison at allocation p={self.allocation:g}: "
                    "treated vs control sessions sharing the same links."
                ),
            )
        ]

    def describe(self) -> str:
        return f"Naive A/B test at allocation p={self.allocation:g}"
