"""Wall-time of the packet sweep under DualPI2 vs classic-ECN CoDel.

DualPI2 adds per-dequeue work the other AQMs do not have: the lazy PI2
catch-up loop, the WRR credit bookkeeping and two mark/drop lotteries.
Benchmarking the same quick-mode sweep under the full L4S stack (DualPI2
bottleneck, paced DCTCP senders) next to the classic-ECN CoDel arm keeps
that overhead visible in the perf trajectory, separately from the
FQ-CoDel DRR cost tracked by ``test_fq_codel.py``.

Quick-mode sizing matches the topology experiments' quick scale so the
pair stays cheap enough to ride along in tier-1 runs.
"""

from _helpers import run_once

from repro.netsim.packet.simulation import FlowConfig
from repro.netsim.packet.sweep import run_packet_sweep

#: Quick-mode sweep sizing, matching the topology experiments' quick scale.
QUICK_KWARGS = dict(
    allocations=(0, 2, 4),
    capacity_mbps=24.0,
    duration_s=6.0,
    warmup_s=2.0,
)


def _sweep(queue_discipline, ecn, paced, seed=None):
    return run_packet_sweep(
        4,
        treatment_factory=lambda i: FlowConfig(
            i, cc="reno", connections=2, ecn=ecn, paced=paced
        ),
        control_factory=lambda i: FlowConfig(
            i, cc="reno", connections=1, ecn=ecn, paced=paced
        ),
        queue_discipline=queue_discipline,
        seed=seed,
        **QUICK_KWARGS,
    )


def test_codel_classic_ecn_sweep_quick(benchmark):
    sweep = run_once(benchmark, _sweep, "codel", "classic", False)
    assert sorted(sweep.results) == [0, 2, 4]
    # Classic ECN keeps the connection-count reward fully intact.
    assert sweep.ab_estimate("throughput_mbps", 0.5) > 1.0


def test_dualpi2_l4s_sweep_quick(benchmark):
    sweep = run_once(benchmark, _sweep, "dualpi2", "l4s", True, seed=0)
    assert sorted(sweep.results) == [0, 2, 4]
    # The L4S stack trims but does not collapse the reward: marks are
    # per-connection signals, so the second connection still pays off.
    assert sweep.ab_estimate("throughput_mbps", 0.5) > 1.0
    # Marks, not losses: the L queue never AQM-drops.
    mixed = sweep.results[2]
    assert sum(mixed.queue_marks.values()) > 0
