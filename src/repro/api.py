"""Stable Python API facade for driving reproductions programmatically.

Everything a script needs to load, run and validate campaigns without
reaching into submodules::

    from repro import api

    campaign = api.load_campaign("examples/campaign_quick.yaml")
    result = api.run_campaign(campaign, jobs=4, cache=api.ResultCache())
    report = api.validate_run("RUN")

The facade re-exports the frozen spec types (:class:`CampaignSpec`,
:class:`StageSpec`, :class:`ScenarioSpec`, ...) and the runner
primitives they lower onto, plus :func:`list_figures` for discovering
the sweepable figure names.  Import from here rather than from the
implementation modules: these names are the package's compatibility
surface.
"""

from __future__ import annotations

from repro.campaign.loader import CampaignError, load_campaign, parse_campaign
from repro.campaign.run import (
    ArmResult,
    CampaignResult,
    confidence_half_width,
    run_campaign,
    write_run_dir,
)
from repro.campaign.spec import (
    AnalysisSettings,
    CampaignArm,
    CampaignSpec,
    StageSpec,
    figure_is_seeded,
    figure_knobs,
)
from repro.campaign.validate import ValidationReport, validate_run
from repro.runner.cache import ResultCache, default_cache_dir
from repro.runner.executor import ParallelExecutor
from repro.runner.spec import ScenarioSpec, canonical, content_key

__all__ = [
    "AnalysisSettings",
    "ArmResult",
    "CampaignArm",
    "CampaignError",
    "CampaignResult",
    "CampaignSpec",
    "ParallelExecutor",
    "ResultCache",
    "ScenarioSpec",
    "StageSpec",
    "ValidationReport",
    "canonical",
    "confidence_half_width",
    "content_key",
    "default_cache_dir",
    "figure_is_seeded",
    "figure_knobs",
    "figure_spec",
    "list_figures",
    "load_campaign",
    "parse_campaign",
    "run_campaign",
    "validate_run",
    "write_run_dir",
]


def list_figures() -> tuple[str, ...]:
    """The sweepable figure names campaigns and ``repro sweep`` accept."""
    from repro.runner.tasks import FIGURE_CELL_TASKS

    return tuple(FIGURE_CELL_TASKS)


def figure_spec(figure: str, **knobs: object) -> ScenarioSpec:
    """One content-keyed ``figure.cells`` arm for ``figure``.

    Thin wrapper over the per-figure entry points in
    :data:`repro.experiments.FIGURE_SPECS`; accepts that figure's knobs
    (``noise=`` for lab figures, ``quick=`` for the rest, ``seed=`` for
    seeded figures).
    """
    from repro.experiments import FIGURE_SPECS

    try:
        entry = FIGURE_SPECS[figure]
    except KeyError:
        raise KeyError(
            f"unknown figure {figure!r}; choose one of {list_figures()}"
        ) from None
    return entry(**knobs)
