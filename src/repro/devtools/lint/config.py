"""Lint configuration: rule scopes and the content-key task baseline.

Two pieces of repo-specific policy live here rather than in the rules
themselves:

* ``RULE_SCOPES`` — which parts of the ``repro`` package each rule
  patrols.  Determinism rules cover the simulation and runner layers
  (randomness in reporting code is harmless); the content-key and API
  rules cover the whole package.

* ``TASK_PARAM_BASELINE`` — the recorded required parameters of every
  registered runner task.  The content-key contract (KEY002) is that a
  task's spec surface only grows by *inert-at-default* fields: a new
  parameter must carry a default, so existing specs — and therefore
  existing cache keys — are unaffected.  A parameter without a default
  is only legal if it is recorded here, which makes widening a task's
  required surface an explicit, reviewed act.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

__all__ = ["LintConfig", "DEFAULT_CONFIG", "RULE_SCOPES", "TASK_PARAM_BASELINE"]

#: Module-prefix scopes per rule code (``None`` would mean "everywhere").
RULE_SCOPES: dict[str, tuple[str, ...]] = {
    # Unseeded randomness: anywhere a simulation result could absorb it.
    "DET001": (
        "repro.netsim",
        "repro.core",
        "repro.runner",
        "repro.workload",
        "repro.obs",
        "repro.campaign",
    ),
    # Wall-clock reads: simulation, runner and experiment layers must be
    # pure functions of their specs.  The observability layer is in scope
    # too — its single sanctioned clock read (``repro.obs.trace.walltime``)
    # carries an explicit suppression.
    "DET002": (
        "repro.netsim",
        "repro.core",
        "repro.runner",
        "repro.workload",
        "repro.experiments",
        "repro.obs",
        "repro.campaign",
    ),
    # Unordered iteration: same blast radius as DET002.
    "DET003": (
        "repro.netsim",
        "repro.core",
        "repro.runner",
        "repro.workload",
        "repro.experiments",
        "repro.obs",
        "repro.campaign",
    ),
    # Content-key hygiene and API hygiene patrol the whole package.
    "KEY001": ("repro",),
    "KEY002": ("repro",),
    "API001": ("repro",),
}

#: Required (default-less) parameters recorded per registered task.
#: KEY002 flags any default-less parameter not listed here.
TASK_PARAM_BASELINE: dict[str, frozenset[str]] = {
    "debug.echo": frozenset(),
    "netsim.packet_arm": frozenset(
        {"flows", "capacity_mbps", "base_rtt_ms", "buffer_bdp", "duration_s", "warmup_s"}
    ),
    "fleet.shard_arm": frozenset(
        {
            "treated_mask",
            "treatment_connections",
            "control_connections",
            "capacity_mbps",
            "rtt_ms",
            "loss_rate",
            "buffer_bdp",
            "duration_s",
            "warmup_s",
        }
    ),
    "netsim.fluid_arm": frozenset({"applications"}),
    "workload.baseline_table": frozenset({"config", "days"}),
    "workload.experiment_table": frozenset({"config", "design", "days"}),
    "workload.aa_table": frozenset({"config", "days"}),
    "experiments.switchback_emulation": frozenset({"table", "days", "metrics"}),
    "experiments.event_study_emulation": frozenset({"table", "days", "metrics"}),
    "figure.cells": frozenset({"figure"}),
}


@dataclass(frozen=True)
class LintConfig:
    """Tunable policy for one lint run.

    Attributes
    ----------
    rule_scopes:
        Maps rule code to the dotted module prefixes it applies to.
        Rules missing from the mapping apply everywhere.
    task_param_baseline:
        Recorded required parameters per registered task (KEY002).
        Tasks missing from the mapping allow no default-less parameters
        beyond ``seed``.
    """

    rule_scopes: Mapping[str, tuple[str, ...]] = field(
        default_factory=lambda: dict(RULE_SCOPES)
    )
    task_param_baseline: Mapping[str, frozenset[str]] = field(
        default_factory=lambda: dict(TASK_PARAM_BASELINE)
    )


#: The configuration ``repro lint`` runs with.
DEFAULT_CONFIG = LintConfig()
