"""TCP Reno (NewReno-style) congestion control.

Slow start doubles the window every round trip (one packet per ack);
congestion avoidance adds one packet per round trip (``1/cwnd`` per ack);
a loss halves the window and sets the slow-start threshold to the new
window (fast-recovery style, no timeout modelling).
"""

from __future__ import annotations

from repro.netsim.packet.packets import Packet
from repro.netsim.packet.tcp.base import TcpSender

__all__ = ["RenoSender"]


class RenoSender(TcpSender):
    """Additive-increase / multiplicative-decrease (factor 0.5) sender."""

    #: Multiplicative decrease factor applied on loss.
    BETA = 0.5
    #: Minimum congestion window, in packets.
    MIN_CWND = 2.0

    def on_ack(self, packet: Packet, rtt_sample: float) -> None:
        """AIMD growth: +1 per ack in slow start, +1/cwnd afterwards."""
        if self.in_slow_start:
            self.cwnd += 1.0
        else:
            self.cwnd += 1.0 / max(self.cwnd, 1.0)

    def on_ack_batch(self, packet: Packet, rtt_sample: float, segments: int) -> None:
        """O(1) growth for a batch of ``segments`` acks.

        Slow start adds one packet per ack; congestion avoidance adds
        ``n/cwnd`` in a single step (the first-order form of n repeated
        ``1/cwnd`` increments — the higher-order correction is O(n²/cwnd³)
        and far below the batching tolerance).  A batch straddling the
        slow-start exit splits at the threshold.
        """
        if self.in_slow_start:
            headroom = max(self.ssthresh - self.cwnd, 0.0)
            ss_acks = min(float(segments), headroom)
            self.cwnd += ss_acks
            segments -= int(ss_acks)
            if segments <= 0:
                return
        self.cwnd += segments / max(self.cwnd, 1.0)

    def on_loss(self, packet: Packet) -> None:
        """Multiplicative decrease: halve the window (floor MIN_CWND)."""
        self.ssthresh = max(self.cwnd * self.BETA, self.MIN_CWND)
        self.cwnd = self.ssthresh
