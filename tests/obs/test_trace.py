"""Tests for run tracing, profiling and the traced executor."""

import io
import json

from repro.obs import (
    ProgressPrinter,
    RunTracer,
    TaskRun,
    format_hotspots,
    merge_profile_rows,
)
from repro.obs.profile import run_profiled
from repro.obs.trace import observe_spec
from repro.runner import ParallelExecutor, ResultCache, ScenarioSpec


def _echo_specs(n):
    return [
        ScenarioSpec(task="debug.echo", params={"index": i}, seed=i) for i in range(n)
    ]


def _read_jsonl(path):
    return [json.loads(line) for line in path.read_text().splitlines()]


class TestRunTracer:
    def test_artifacts_written(self, tmp_path):
        rundir = tmp_path / "run"
        tracer = RunTracer(rundir, command="repro sweep fig2a")
        tracer.cache_event(hit=False, label="arm0")
        tracer.cache_event(hit=True, label="arm0")
        tracer.task(
            TaskRun(task="packet_arm", label="arm0", started=tracer.started,
                    wall_s=0.25, pid=123)
        )
        tracer.add_counters({"events_processed": 10})
        tracer.add_counters({"events_processed": 5, "pool_reused": 3})
        summary = tracer.finish({"figure": "fig2a"})

        events = _read_jsonl(rundir / "trace.jsonl")
        assert [e["event"] for e in events] == [
            "run_start", "cache", "cache", "task", "run_end",
        ]
        assert events[0]["command"] == "repro sweep fig2a"
        assert events[3]["pid"] == 123

        assert summary["tasks"] == 1
        assert summary["cache_hits"] == 1
        assert summary["cache_misses"] == 1
        assert summary["workers"] == [123]
        assert summary["counters"] == {"events_processed": 15.0, "pool_reused": 3.0}
        assert summary["figure"] == "fig2a"
        assert json.loads((rundir / "meta.json").read_text()) == summary

    def test_chrome_trace_is_perfetto_loadable_shape(self, tmp_path):
        tracer = RunTracer(tmp_path / "run")
        tracer.task(
            TaskRun(task="packet_arm", label="arm0", started=tracer.started + 0.1,
                    wall_s=0.5, pid=42)
        )
        tracer.finish()
        trace = json.loads((tmp_path / "run" / "trace.json").read_text())
        assert trace["displayTimeUnit"] == "ms"
        (event,) = trace["traceEvents"]
        assert event["ph"] == "X"
        assert event["pid"] == 42
        assert event["dur"] == 0.5 * 1e6
        assert event["ts"] >= 0.0

    def test_no_profile_json_without_profiling(self, tmp_path):
        tracer = RunTracer(tmp_path / "run")
        tracer.finish()
        assert not (tmp_path / "run" / "profile.json").exists()

    def test_profile_json_with_rows(self, tmp_path):
        tracer = RunTracer(tmp_path / "run")
        tracer.task(
            TaskRun(task="t", label="t", started=tracer.started, wall_s=0.1,
                    pid=1, profile_rows=(("mod.py:1(f)", 2, 0.5, 0.7),))
        )
        tracer.finish()
        payload = json.loads((tmp_path / "run" / "profile.json").read_text())
        assert payload["tasks_profiled"] == 1
        assert payload["rows"] == [["mod.py:1(f)", 2, 0.5, 0.7]]


class TestProfiling:
    def test_run_profiled_returns_result_and_rows(self):
        result, rows = run_profiled(lambda: sorted(range(1000)))
        assert result[:3] == [0, 1, 2]
        assert rows
        assert all(len(row) == 4 for row in rows)

    def test_merge_sums_per_label(self):
        merged = merge_profile_rows(
            [
                [("f", 1, 0.5, 1.0), ("g", 2, 0.25, 0.25)],
                [("f", 3, 0.5, 1.0)],
            ]
        )
        as_map = {label: (n, tot, cum) for label, n, tot, cum in merged}
        assert as_map["f"] == (4, 1.0, 2.0)
        assert as_map["g"] == (2, 0.25, 0.25)
        # Sorted hottest-first by tottime.
        assert merged[0][0] == "f"

    def test_format_hotspots_table(self):
        table = format_hotspots([("pkg/mod.py:10(run)", 5, 1.25, 2.5)])
        assert "tottime" in table.splitlines()[0]
        assert "pkg/mod.py:10(run)" in table
        assert "1.250" in table

    def test_format_hotspots_respects_top(self):
        rows = [(f"f{i}", 1, 1.0 - i * 0.01, 1.0) for i in range(30)]
        table = format_hotspots(rows, top=5)
        assert len(table.splitlines()) == 6  # header + 5 rows


class TestObserveSpec:
    def test_wraps_result_and_timing(self):
        run = observe_spec(ScenarioSpec(task="debug.echo", params={"x": 1}, seed=7))
        assert run.task == "debug.echo"
        assert run.result["x"] == 1
        assert run.wall_s >= 0.0
        assert run.pid > 0
        assert run.profile_rows == ()

    def test_profile_flag_collects_rows(self):
        run = observe_spec(
            ScenarioSpec(task="debug.echo", params={"x": 1}), profile=True
        )
        assert run.profile_rows


class TestTracedExecutor:
    def test_traced_map_matches_plain_map(self, tmp_path):
        specs = _echo_specs(4)
        plain = ParallelExecutor(jobs=1).map(specs)
        traced = ParallelExecutor(
            jobs=1, tracer=RunTracer(tmp_path / "t1")
        ).map(specs)
        assert plain == traced

    def test_jobs_1_vs_4_identical_with_tracing_and_profile(self, tmp_path):
        specs = _echo_specs(6)
        serial = ParallelExecutor(
            jobs=1, tracer=RunTracer(tmp_path / "s"), profile=True
        ).map(specs)
        parallel = ParallelExecutor(
            jobs=4, tracer=RunTracer(tmp_path / "p"), profile=True
        ).map(specs)
        assert serial == parallel

    def test_tracer_records_every_task_span(self, tmp_path):
        tracer = RunTracer(tmp_path / "run")
        ParallelExecutor(jobs=2, tracer=tracer).map(_echo_specs(5))
        assert len(tracer.tasks) == 5
        assert {run.task for run in tracer.tasks} == {"debug.echo"}

    def test_cache_events_recorded(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        specs = _echo_specs(3)
        tracer = RunTracer(tmp_path / "first")
        ParallelExecutor(jobs=1, cache=cache, tracer=tracer).map(specs)
        assert (tracer.cache_hits, tracer.cache_misses) == (0, 3)

        tracer = RunTracer(tmp_path / "second")
        ParallelExecutor(jobs=1, cache=cache, tracer=tracer).map(specs)
        assert (tracer.cache_hits, tracer.cache_misses) == (3, 0)

    def test_on_task_done_progress_callback(self, tmp_path):
        seen = []
        ParallelExecutor(
            jobs=1, on_task_done=lambda done, total, run: seen.append((done, total))
        ).map(_echo_specs(3))
        assert seen == [(1, 3), (2, 3), (3, 3)]

    def test_untraced_executor_unchanged(self):
        # No tracer, no profile, no callback: the plain path runs.
        assert ParallelExecutor(jobs=2)._observing() is False


class TestProgressPrinter:
    def test_prints_rate_line_and_final_newline(self):
        stream = io.StringIO()
        progress = ProgressPrinter(label="shards", stream=stream)
        progress(1, 2)
        progress(2, 2)
        output = stream.getvalue()
        assert "shards: 1/2" in output
        assert output.endswith("\n")
        assert "\r" in output

    def test_resets_between_batches(self):
        stream = io.StringIO()
        progress = ProgressPrinter(stream=stream)
        progress(1, 1)
        progress(1, 1)  # done went backwards-or-equal: a new batch began
        assert stream.getvalue().count("1/1") == 2
