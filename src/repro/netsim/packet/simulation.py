"""Single-bottleneck packet-level simulation harness.

Builds the lab topology — ``n`` applications, each with one or more TCP
connections, all crossing one drop-tail bottleneck — runs it for a fixed
duration, and reports per-application throughput and retransmission
fraction measured after a warm-up period.

The topology mirrors the paper's testbed: the only congestion point is the
bottleneck queue; propagation delay is symmetric; receivers acknowledge
every packet immediately.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.netsim.packet.engine import EventScheduler
from repro.netsim.packet.packets import Packet
from repro.netsim.packet.queue import DropTailQueue
from repro.netsim.packet.tcp import make_sender
from repro.netsim.packet.tcp.base import TcpSender

__all__ = ["FlowConfig", "FlowResult", "PacketSimResult", "simulate"]


@dataclass(frozen=True)
class FlowConfig:
    """Configuration of one application in a packet-level simulation.

    Parameters
    ----------
    flow_id:
        Identifier of the application.
    cc:
        Congestion control algorithm: ``"reno"``, ``"cubic"`` or ``"bbr"``.
    connections:
        Number of parallel TCP connections the application opens.
    paced:
        Whether the application's loss-based connections pace their packets
        (BBR always paces).
    treated:
        Arm label carried through to the results; does not change behaviour.
    """

    flow_id: int
    cc: str = "reno"
    connections: int = 1
    paced: bool = False
    treated: bool = False

    def __post_init__(self) -> None:
        if self.connections < 1:
            raise ValueError("connections must be at least 1")


@dataclass
class FlowResult:
    """Measured outcomes of one application."""

    flow_id: int
    treated: bool
    throughput_mbps: float
    retransmit_fraction: float
    packets_sent: int
    packets_lost: int


@dataclass
class PacketSimResult:
    """Results of a packet-level simulation run."""

    flows: list[FlowResult]
    duration_s: float
    capacity_mbps: float
    total_drops: int
    max_queue_occupancy_bytes: float

    def flow(self, flow_id: int) -> FlowResult:
        """Result of the application with the given id."""
        for f in self.flows:
            if f.flow_id == flow_id:
                return f
        raise KeyError(f"no flow with id {flow_id}")

    def group_mean_throughput(self, treated: bool) -> float:
        """Mean application throughput (Mb/s) of one arm."""
        values = [f.throughput_mbps for f in self.flows if f.treated == treated]
        if not values:
            raise ValueError("no flows in the requested arm")
        return sum(values) / len(values)

    def group_mean_retransmit(self, treated: bool) -> float:
        """Mean retransmit fraction of one arm."""
        values = [f.retransmit_fraction for f in self.flows if f.treated == treated]
        if not values:
            raise ValueError("no flows in the requested arm")
        return sum(values) / len(values)

    def total_throughput_mbps(self) -> float:
        """Aggregate throughput of all applications."""
        return sum(f.throughput_mbps for f in self.flows)


def simulate(
    flows: Sequence[FlowConfig],
    capacity_mbps: float = 100.0,
    base_rtt_ms: float = 20.0,
    buffer_bdp: float = 1.0,
    mss_bytes: int = 1500,
    duration_s: float = 10.0,
    warmup_s: float = 2.0,
) -> PacketSimResult:
    """Run a packet-level simulation of flows sharing one bottleneck.

    Parameters
    ----------
    flows:
        Application configurations.
    capacity_mbps:
        Bottleneck capacity in megabits per second.  The default is scaled
        down from the paper's 10 Gb/s so simulations complete quickly; the
        sharing behaviour under study is rate-independent.
    base_rtt_ms:
        Two-way propagation delay in milliseconds.
    buffer_bdp:
        Bottleneck buffer in bandwidth-delay products (paper: 1 BDP).
    mss_bytes:
        Segment size.
    duration_s:
        Total simulated time.
    warmup_s:
        Time excluded from measurements while flows ramp up.
    """
    if not flows:
        raise ValueError("at least one flow is required")
    if duration_s <= warmup_s:
        raise ValueError("duration_s must exceed warmup_s")
    ids = [f.flow_id for f in flows]
    if len(set(ids)) != len(ids):
        raise ValueError("flow ids must be unique")

    scheduler = EventScheduler()
    rate_bps = capacity_mbps * 1e6
    base_rtt_s = base_rtt_ms / 1000.0
    bdp_bytes = rate_bps / 8.0 * base_rtt_s
    buffer_bytes = max(buffer_bdp * bdp_bytes, 2 * mss_bytes)

    senders: dict[int, TcpSender] = {}
    connection_owner: dict[int, int] = {}

    def on_departure(packet: Packet, departure_time: float) -> None:
        sender = senders[packet.flow_id]
        ack_time = departure_time + base_rtt_s

        def deliver_ack(sender=sender, packet=packet, ack_time=ack_time) -> None:
            rtt_sample = ack_time - packet.send_time
            sender.handle_ack(packet, rtt_sample)

        scheduler.schedule(ack_time, deliver_ack)

    def on_drop(packet: Packet, drop_time: float) -> None:
        sender = senders[packet.flow_id]
        notify_time = drop_time + base_rtt_s

        def deliver_loss(sender=sender, packet=packet) -> None:
            sender.handle_loss(packet)

        scheduler.schedule(notify_time, deliver_loss)

    queue = DropTailQueue(scheduler, rate_bps, buffer_bytes, on_departure, on_drop)

    connection_id = 0
    for config in flows:
        for _ in range(config.connections):
            sender = make_sender(
                config.cc,
                connection_id,
                scheduler,
                queue.enqueue,
                mss_bytes=mss_bytes,
                base_rtt_s=base_rtt_s,
                paced=config.paced,
            )
            senders[connection_id] = sender
            connection_owner[connection_id] = config.flow_id
            connection_id += 1

    # Stagger starts slightly to avoid perfectly synchronized slow starts.
    for i, sender in enumerate(senders.values()):
        scheduler.schedule(i * base_rtt_s / max(len(senders), 1), sender.start)

    def begin_measurements() -> None:
        for sender in senders.values():
            sender.begin_measurement()

    scheduler.schedule(warmup_s, begin_measurements)
    scheduler.run(until=duration_s)

    results: list[FlowResult] = []
    for config in flows:
        own_senders = [
            senders[cid] for cid, owner in connection_owner.items() if owner == config.flow_id
        ]
        throughput = sum(s.goodput_mbps(duration_s) for s in own_senders)
        sent = sum(s.bytes_sent - s._bytes_sent_at_start for s in own_senders)
        retx = sum(s.bytes_retransmitted - s._bytes_retx_at_start for s in own_senders)
        retransmit_fraction = retx / sent if sent > 0 else 0.0
        results.append(
            FlowResult(
                flow_id=config.flow_id,
                treated=config.treated,
                throughput_mbps=throughput,
                retransmit_fraction=retransmit_fraction,
                packets_sent=sum(s.packets_sent for s in own_senders),
                packets_lost=sum(s.packets_lost for s in own_senders),
            )
        )

    return PacketSimResult(
        flows=results,
        duration_s=duration_s,
        capacity_mbps=capacity_mbps,
        total_drops=queue.packets_dropped,
        max_queue_occupancy_bytes=queue.max_occupancy_bytes,
    )
