"""Tests for the benchmark-tracking gate (BENCH_*.json trajectory).

The CI bench job exports per-test wall times to JSON and fails the build
on a >3x regression against the committed ``BENCH_baseline.json``; these
tests pin the comparison logic and the committed baseline's shape.
"""

import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE = REPO_ROOT / "BENCH_baseline.json"


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_regression", REPO_ROOT / "benchmarks" / "check_regression.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


checker = _load_checker()


class TestCompare:
    def test_within_threshold_passes(self):
        rows = checker.compare({"t": 1.0}, {"t": 0.9})
        assert len(rows) == 1
        assert not rows[0]["regressed"]
        assert rows[0]["ratio"] == pytest.approx(1.0 / 0.9)

    def test_beyond_threshold_fails(self):
        (row,) = checker.compare({"t": 3.1}, {"t": 1.0})
        assert row["regressed"]
        assert row["ratio"] == pytest.approx(3.1)

    def test_noise_floor_shields_fast_tests(self):
        # 10x slower but still sub-half-second: CI jitter, not a signal.
        (row,) = checker.compare({"t": 0.4}, {"t": 0.04})
        assert not row["regressed"]

    def test_one_sided_tests_never_fail_the_gate(self):
        rows = checker.compare({"new": 9.0}, {"old": 1.0})
        assert {row["nodeid"] for row in rows} == {"new", "old"}
        assert not any(row["regressed"] for row in rows)

    def test_custom_threshold(self):
        (row,) = checker.compare({"t": 1.6}, {"t": 1.0}, threshold=1.5)
        assert row["regressed"]

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            checker.compare({}, {}, threshold=1.0)
        with pytest.raises(ValueError):
            checker.compare({}, {}, min_seconds=-1.0)


class TestCli:
    def _write(self, path, timings):
        path.write_text(json.dumps({"schema": 1, "timings": timings}))
        return path

    def test_green_run_exits_zero(self, tmp_path, capsys):
        current = self._write(tmp_path / "current.json", {"t": 1.0})
        baseline = self._write(tmp_path / "baseline.json", {"t": 0.8})
        assert checker.main([str(current), "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "no regression" in out

    def test_regression_exits_nonzero_and_names_the_test(self, tmp_path, capsys):
        current = self._write(tmp_path / "current.json", {"slow": 6.0, "ok": 1.0})
        baseline = self._write(tmp_path / "baseline.json", {"slow": 1.0, "ok": 1.0})
        assert checker.main([str(current), "--baseline", str(baseline)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out
        assert "slow" in out

    def test_missing_baseline_is_not_an_error(self, tmp_path, capsys):
        # First run on a branch that predates the baseline: report, pass.
        current = self._write(tmp_path / "current.json", {"t": 1.0})
        missing = tmp_path / "nope.json"
        assert checker.main([str(current), "--baseline", str(missing)]) == 0
        assert "nothing to compare" in capsys.readouterr().out


class TestThroughputDelta:
    CURRENT = {"bench::fast": {"packets_per_s": 200.0, "events_per_s": 100.0}}
    BASE = {"bench::fast": {"packets_per_s": 100.0, "events_per_s": 100.0}}

    def test_speedup_is_current_over_baseline(self):
        rows = checker.throughput_delta(self.CURRENT, self.BASE)
        by_metric = {row["metric"]: row for row in rows}
        assert by_metric["packets_per_s"]["speedup"] == pytest.approx(2.0)
        assert by_metric["events_per_s"]["speedup"] == pytest.approx(1.0)

    def test_one_sided_rows_have_no_speedup(self):
        rows = checker.throughput_delta(self.CURRENT, {})
        assert all(row["speedup"] is None for row in rows)
        assert all(row["baseline"] is None for row in rows)

    def test_formatting_mentions_the_rates(self):
        out = checker.format_throughput_rows(
            checker.throughput_delta(self.CURRENT, self.BASE)
        )
        assert "2.00x" in out
        assert "bench::fast" in out

    def test_schema1_exports_have_empty_throughput(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text(json.dumps({"schema": 1, "timings": {"t": 1.0}}))
        assert checker.load_throughput(path) == {}

    def test_github_summary_includes_both_tables(self, tmp_path, monkeypatch):
        out = tmp_path / "summary.md"
        monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(out))
        timing_rows = checker.compare({"t": 1.0}, {"t": 0.9})
        throughput_rows = checker.throughput_delta(self.CURRENT, self.BASE)
        checker.write_github_summary(timing_rows, throughput_rows)
        text = out.read_text()
        assert "Benchmark timings vs baseline" in text
        assert "Engine throughput vs baseline" in text


class TestMemoryDelta:
    def test_ratio_is_current_over_baseline(self):
        (row,) = checker.memory_delta({"b": 2e6}, {"b": 1e6})
        assert row["ratio"] == pytest.approx(2.0)

    def test_one_sided_rows_have_no_ratio(self):
        rows = checker.memory_delta({"new": 1e6}, {"old": 2e6})
        assert all(row["ratio"] is None for row in rows)

    def test_schema2_exports_have_empty_memory(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text(json.dumps({"schema": 2, "timings": {"t": 1.0}}))
        assert checker.load_memory(path) == {}

    def test_formatting_renders_megabytes(self):
        out = checker.format_memory_rows(checker.memory_delta({"b": 2e6}, {"b": 1e6}))
        assert "2.0MB" in out
        assert "2.00x" in out

    def test_github_summary_includes_memory_table(self, tmp_path, monkeypatch):
        out = tmp_path / "summary.md"
        monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(out))
        timing_rows = checker.compare({"t": 1.0}, {"t": 0.9})
        memory_rows = checker.memory_delta({"b": 2e6}, {"b": 1e6})
        checker.write_github_summary(timing_rows, [], memory_rows)
        assert "Peak memory vs baseline" in out.read_text()


class TestCommittedBaseline:
    def test_baseline_exists_with_expected_schema(self):
        payload = json.loads(BASELINE.read_text())
        assert payload["schema"] == 3
        assert payload["timings"]
        for nodeid, seconds in payload["timings"].items():
            assert nodeid.startswith("benchmarks/")
            assert "::" in nodeid
            assert seconds > 0.0

    def test_baseline_covers_the_l4s_benchmarks(self):
        payload = json.loads(BASELINE.read_text())
        assert any("test_l4s.py" in nodeid for nodeid in payload["timings"])

    def test_baseline_records_engine_throughput(self):
        payload = json.loads(BASELINE.read_text())
        throughput = payload["throughput"]
        assert any("test_engine_throughput.py" in nodeid for nodeid in throughput)
        # The engine microbenchmarks report the canonical pair; other
        # suites record their own rates (units_per_s, steps_per_s, ...)
        # via record_rates — every entry must carry at least one rate.
        for nodeid, metrics in throughput.items():
            assert metrics and all(name.endswith("_per_s") for name in metrics)
            if "test_engine_throughput.py" in nodeid:
                assert set(metrics) >= {"packets_per_s", "events_per_s"}
        assert any("units_per_s" in metrics for metrics in throughput.values())

    def test_baseline_records_peak_memory(self):
        payload = json.loads(BASELINE.read_text())
        memory = payload["memory"]
        assert memory
        # tracemalloc peaks are bytes; every benchmark allocates *something*.
        assert all(peak > 0.0 for peak in memory.values())
        assert set(memory) == set(payload["timings"])

    def test_baseline_loads_through_the_checker(self):
        timings = checker.load_timings(BASELINE)
        rows = checker.compare(timings, timings)
        assert rows and all(row["ratio"] == pytest.approx(1.0) for row in rows)
        assert not any(row["regressed"] for row in rows)
        throughput = checker.load_throughput(BASELINE)
        delta = checker.throughput_delta(throughput, throughput)
        assert delta
        assert all(
            row["speedup"] == pytest.approx(1.0)
            for row in delta
            if row["current"]  # churn benchmarks record 0 packets/s
        )
