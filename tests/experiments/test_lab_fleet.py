"""Tests for the fleet experiment: bias vs assignment cluster size."""

import pytest

from repro.experiments.lab_fleet import (
    DEFAULT_FLEET,
    QUICK_FLEET,
    run_fleet_experiment,
)


@pytest.fixture(scope="module")
def comparison():
    # A reduced fleet shaped like the real one (oversubscribed regions,
    # uncongested backbone) but small enough for the test suite.
    return run_fleet_experiment(units=400, edges=8, quick=True, seed=1)


class TestFleetExperiment:
    def test_all_granularities_reported(self, comparison):
        assert comparison.granularities() == ("unit", "edge", "region")
        for granularity in comparison.granularities():
            outcome = comparison.outcomes[granularity]
            assert outcome.result.stats.units == 400
            assert outcome.result.stats.shards == 8

    def test_cluster_sizes_are_monotone(self, comparison):
        sizes = [
            comparison.outcomes[g].cluster_size for g in comparison.granularities()
        ]
        assert sizes == sorted(sizes)
        assert sizes[0] == 1

    def test_true_tte_is_negligible(self, comparison):
        # The paper's central point at fleet scale: when *everyone* opens
        # more connections, nobody gains — the counterfactual fleets
        # split the same capacities the same way.
        assert abs(comparison.truth_tte) < 0.03

    def test_bias_shrinks_as_clusters_grow(self, comparison):
        unit = comparison.bias("unit")
        edge = comparison.bias("edge")
        region = comparison.bias("region")
        # Unit-level assignment puts both arms on every shared bottleneck
        # (maximum interference); edge-level leaves only the region-link
        # water-fill coupling; region-level only the uncongested backbone.
        assert unit > edge + 0.05
        assert edge > abs(region) + 0.05
        assert abs(region) < 0.03

    def test_unit_bias_is_the_paper_headline(self, comparison):
        # A/B at unit granularity reports a solid per-unit win for a
        # treatment whose true fleet-wide effect is ~zero.
        assert comparison.outcomes["unit"].ab_estimate() > 0.1

    def test_summary_lines_mention_the_moving_parts(self, comparison):
        text = "\n".join(comparison.summary_lines())
        assert "400 units on 8 edge bottlenecks" in text
        assert "ground-truth TTE" in text
        for granularity in ("unit", "edge", "region"):
            assert granularity in text
        assert "distinct shard simulations" in text

    def test_dedupe_keeps_fleet_cost_below_shard_count(self, comparison):
        # 5 fleets x 8 edges = 40 shard specs; the congested default
        # consumes seeds so dedupe cannot collapse within a fleet, but
        # the count must never exceed the spec total.
        assert comparison.unique_sims <= 40


class TestFleetExperimentValidation:
    def test_rejects_empty_or_unknown_granularities(self):
        with pytest.raises(ValueError):
            run_fleet_experiment(units=40, edges=4, granularities=())
        with pytest.raises(ValueError):
            run_fleet_experiment(units=40, edges=4, granularities=("galaxy",))
        with pytest.raises(ValueError):
            run_fleet_experiment(units=40, edges=4, granularities=("unit", "unit"))

    def test_scale_presets_meet_the_ci_contract(self):
        # The CI smoke run must simulate >= 10,000 units across >= 100
        # edge shards even in --quick mode.
        assert QUICK_FLEET.units >= 10_000
        assert QUICK_FLEET.edges >= 100
        assert DEFAULT_FLEET.units > QUICK_FLEET.units
        assert DEFAULT_FLEET.edges > QUICK_FLEET.edges

    def test_single_granularity_runs_standalone(self):
        comparison = run_fleet_experiment(
            units=60, edges=6, granularities=("edge",), quick=True, seed=2
        )
        assert comparison.granularities() == ("edge",)
        assert "edge" in comparison.outcomes
