"""Tests for the parking-lot and fair-queueing topology experiments.

These pin the paper's two sharpest topology predictions:

* per-flow (per-unit) fair queueing eliminates the connection-count A/B
  bias, while drop-tail on the identical workload reproduces it;
* a multi-bottleneck parking lot with unmeasured cross traffic amplifies
  the bias relative to a single bottleneck, and spillover reaches
  control units that share no queue with the treatment.
"""

import pytest

from repro.experiments.lab_parking_lot import (
    ParkingLotComparison,
    run_fq_experiment,
    run_parking_lot_experiment,
)


@pytest.fixture(scope="module")
def fq_comparison():
    return run_fq_experiment(quick=True)


@pytest.fixture(scope="module")
def parking_comparison():
    return run_parking_lot_experiment(quick=True)


class TestFqExperiment:
    def test_compares_droptail_against_fq_codel(self, fq_comparison):
        assert set(fq_comparison.figures) == {"droptail", "fq_codel"}

    def test_droptail_reproduces_clear_bias(self, fq_comparison):
        assert fq_comparison.bias("droptail") > 1.0

    def test_fq_codel_bias_is_approximately_zero(self, fq_comparison):
        # The paper's falsifiable prediction: per-unit fair queueing makes
        # the extra connection worthless, so the A/B bias collapses.
        assert abs(fq_comparison.bias("fq_codel")) < 0.5
        assert abs(fq_comparison.bias("fq_codel")) < 0.15 * fq_comparison.bias(
            "droptail"
        )

    def test_fq_codel_ab_estimate_itself_is_small(self, fq_comparison):
        figure = fq_comparison.figures["fq_codel"]
        baseline = figure.throughput_curve.mu_control(0.0)
        assert abs(figure.ab_estimate("throughput_mbps", 0.5)) < 0.1 * baseline

    def test_tte_near_zero_under_both_disciplines(self, fq_comparison):
        for figure in fq_comparison.figures.values():
            baseline = figure.throughput_curve.mu_control(0.0)
            assert abs(figure.tte("throughput_mbps")) / baseline < 0.2

    def test_figures_carry_the_topo_fq_name(self, fq_comparison):
        for figure in fq_comparison.figures.values():
            assert figure.name.startswith("topo_fq[")

    def test_summary_lines_cover_both_disciplines(self, fq_comparison):
        text = "\n".join(fq_comparison.summary_lines())
        assert "droptail" in text
        assert "fq_codel" in text
        assert "bias" in text.lower()


class TestParkingLotExperiment:
    def test_compares_single_against_parking(self, parking_comparison):
        assert set(parking_comparison.figures) == {"single", "parking"}

    def test_parking_lot_amplifies_the_bias(self, parking_comparison):
        single = parking_comparison.bias("single")
        parking = parking_comparison.bias("parking")
        assert single > 0.5  # the familiar single-bottleneck bias ...
        assert parking > single + 0.5  # ... clearly amplified by the chain

    def test_cross_segment_spillover_is_nonzero(self, parking_comparison):
        # Treating one unit shifts the outcomes of control units whose
        # spans share no queue with it: interference propagated along the
        # chain, invisible to any per-queue audit.
        assert abs(parking_comparison.remote_spillover_mbps) > 0.5

    def test_summary_lines_cover_topologies_and_spillover(self, parking_comparison):
        text = "\n".join(parking_comparison.summary_lines())
        assert "single" in text
        assert "parking" in text
        assert "cross-segment spillover" in text

    def test_comparison_is_plain_dataclass(self, parking_comparison):
        rebuilt = ParkingLotComparison(
            figures=dict(parking_comparison.figures),
            n_segments=parking_comparison.n_segments,
            remote_spillover_mbps=parking_comparison.remote_spillover_mbps,
        )
        assert rebuilt.bias("parking") == parking_comparison.bias("parking")

    def test_too_few_segments_raise(self):
        with pytest.raises(ValueError):
            run_parking_lot_experiment(n_segments=2, quick=True)
        # 3 segments leave no pair of disjoint 2-segment spans, so the
        # cross-segment spillover would be unmeasurable.
        with pytest.raises(ValueError):
            run_parking_lot_experiment(n_segments=3, quick=True)

    def test_invalid_connection_counts_raise(self):
        with pytest.raises(ValueError):
            run_parking_lot_experiment(treatment_connections=0, quick=True)
        with pytest.raises(ValueError):
            run_parking_lot_experiment(cross_traffic_per_segment=-1, quick=True)
