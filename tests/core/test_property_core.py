"""Property-based tests (hypothesis) for core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.assignment import bernoulli_assignment, fixed_fraction_assignment
from repro.core.estimands import PotentialOutcomeCurve
from repro.core.estimators import difference_in_means, relative_effect
from repro.core.units import OutcomeTable

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestAssignmentProperties:
    @given(
        n=st.integers(min_value=0, max_value=500),
        p=st.floats(min_value=0.0, max_value=1.0),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_bernoulli_counts_partition_units(self, n, p, seed):
        a = bernoulli_assignment(n, p, seed=seed)
        assert a.n_treated + a.n_control == n
        assert 0.0 <= a.realized_allocation <= 1.0

    @given(
        n=st.integers(min_value=1, max_value=500),
        p=st.floats(min_value=0.0, max_value=1.0),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_fixed_fraction_is_exact(self, n, p, seed):
        a = fixed_fraction_assignment(n, p, seed=seed)
        assert a.n_treated == int(round(p * n))

    @given(
        n=st.integers(min_value=1, max_value=200),
        p=st.floats(min_value=0.0, max_value=1.0),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_inversion_swaps_counts(self, n, p, seed):
        a = bernoulli_assignment(n, p, seed=seed)
        inv = a.inverted()
        assert inv.n_treated == a.n_control
        assert inv.n_control == a.n_treated


class TestCurveProperties:
    @given(
        mu_t1=st.floats(min_value=-100, max_value=100, allow_nan=False),
        mu_c0=st.floats(min_value=-100, max_value=100, allow_nan=False),
        mu_t_mid=st.floats(min_value=-100, max_value=100, allow_nan=False),
        mu_c_mid=st.floats(min_value=-100, max_value=100, allow_nan=False),
    )
    @settings(max_examples=100, deadline=None)
    def test_identities_between_estimands(self, mu_t1, mu_c0, mu_t_mid, mu_c_mid):
        curve = PotentialOutcomeCurve(
            "m",
            {0.5: mu_t_mid, 1.0: mu_t1},
            {0.0: mu_c0, 0.5: mu_c_mid},
        )
        p = 0.5
        tolerance = 1e-9 + 1e-9 * max(abs(mu_t1), abs(mu_c0), abs(mu_t_mid), abs(mu_c_mid))
        # tau(p) = rho(p) - s(p) by definition.
        assert abs(
            curve.ate(p) - (curve.partial_effect(p) - curve.spillover(p))
        ) <= tolerance
        # TTE = mu_T(1) - mu_C(0).
        assert abs(curve.tte() - (mu_t1 - mu_c0)) <= tolerance
        # Bias identity.
        assert abs(curve.ab_test_bias(p) - (curve.ate(p) - curve.tte())) <= tolerance


class TestEstimatorProperties:
    @given(
        data=st.lists(finite_floats, min_size=2, max_size=50),
        shift=st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_difference_in_means_is_shift_equivariant(self, data, shift):
        control = np.array(data)
        treatment = control + shift
        result = difference_in_means(treatment, control)
        assert abs(result.effect.estimate - shift) < 1e-6 * max(1.0, abs(shift))

    @given(
        estimate=finite_floats,
        baseline=st.floats(min_value=0.1, max_value=1e5, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_relative_effect_scales_linearly(self, estimate, baseline):
        from repro.core.estimators import EstimateWithCI

        absolute = EstimateWithCI(estimate, 1.0, estimate - 2.0, estimate + 2.0)
        relative = relative_effect(absolute, baseline)
        assert abs(relative.estimate * baseline - estimate) < 1e-6 * max(
            1.0, abs(estimate)
        )
        assert relative.ci_low <= relative.ci_high


class TestOutcomeTableProperties:
    @given(
        values=st.lists(finite_floats, min_size=1, max_size=100),
        mask_seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=60, deadline=None)
    def test_select_then_concat_preserves_rows(self, values, mask_seed):
        table = OutcomeTable({"value": values})
        rng = np.random.default_rng(mask_seed)
        mask = rng.random(len(values)) < 0.5
        kept = table.select(mask)
        dropped = table.select(~mask)
        assert len(kept) + len(dropped) == len(table)
        if len(kept) and len(dropped):
            combined = kept.concat(dropped)
            assert sorted(combined["value"]) == sorted(table["value"])

    @given(values=st.lists(finite_floats, min_size=1, max_size=100))
    @settings(max_examples=60, deadline=None)
    def test_mean_is_within_range(self, values):
        table = OutcomeTable({"value": values})
        slack = 1e-9 + 1e-12 * max(abs(v) for v in values)
        assert min(values) - slack <= table.mean("value") <= max(values) + slack
