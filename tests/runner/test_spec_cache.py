"""Tests for scenario specs, the task registry and the result cache."""

import dataclasses

import numpy as np
import pytest

from repro.runner import (
    ResultCache,
    ScenarioSpec,
    canonical,
    content_key,
    default_cache_dir,
    register_task,
    run_spec,
)

_CALLS = []


@register_task("test.add")
def _add(a, b, seed=None):
    _CALLS.append((a, b, seed))
    return a + b + (seed or 0)


@dataclasses.dataclass(frozen=True)
class _Params:
    name: str
    value: float


class TestSpecAndRegistry:
    def test_run_spec_invokes_registered_task(self):
        spec = ScenarioSpec(task="test.add", params={"a": 1, "b": 2}, seed=10)
        assert run_spec(spec) == 13
        assert _CALLS[-1] == (1, 2, 10)

    def test_spec_run_method(self):
        assert ScenarioSpec(task="test.add", params={"a": 1, "b": 1}).run() == 2

    def test_unknown_task_raises(self):
        with pytest.raises(KeyError, match="unknown runner task"):
            run_spec(ScenarioSpec(task="test.nope"))

    def test_duplicate_registration_raises(self):
        with pytest.raises(ValueError):
            register_task("test.add")(lambda seed=None: None)

    def test_builtin_tasks_are_registered(self):
        assert run_spec(
            ScenarioSpec(task="debug.echo", params={"x": 1}, seed=5)
        ) == {"seed": 5, "x": 1}


class TestContentKey:
    def test_key_is_stable(self):
        spec = ScenarioSpec(task="t", params={"a": 1, "b": (1, 2)}, seed=3)
        assert content_key(spec) == content_key(spec)

    def test_key_ignores_label(self):
        a = ScenarioSpec(task="t", params={"a": 1}, label="one")
        b = ScenarioSpec(task="t", params={"a": 1}, label="two")
        assert content_key(a) == content_key(b)

    def test_key_changes_with_params_seed_and_task(self):
        base = ScenarioSpec(task="t", params={"a": 1}, seed=0)
        assert content_key(base) != content_key(
            ScenarioSpec(task="t", params={"a": 2}, seed=0)
        )
        assert content_key(base) != content_key(
            ScenarioSpec(task="t", params={"a": 1}, seed=1)
        )
        assert content_key(base) != content_key(
            ScenarioSpec(task="u", params={"a": 1}, seed=0)
        )

    def test_key_ignores_mapping_order(self):
        a = ScenarioSpec(task="t", params={"a": 1, "b": 2})
        b = ScenarioSpec(task="t", params={"b": 2, "a": 1})
        assert content_key(a) == content_key(b)

    def test_key_handles_dataclasses_and_arrays(self):
        spec = ScenarioSpec(
            task="t",
            params={
                "config": _Params("x", 1.5),
                "values": np.arange(4.0),
                "flags": {"on": True},
            },
        )
        key = content_key(spec)
        assert len(key) == 64
        changed = ScenarioSpec(
            task="t",
            params={
                "config": _Params("x", 2.5),
                "values": np.arange(4.0),
                "flags": {"on": True},
            },
        )
        assert key != content_key(changed)

    def test_key_distinguishes_array_contents(self):
        a = ScenarioSpec(task="t", params={"v": np.array([1.0, 2.0])})
        b = ScenarioSpec(task="t", params={"v": np.array([1.0, 3.0])})
        assert content_key(a) != content_key(b)

    def test_uncanonicalizable_param_raises(self):
        with pytest.raises(TypeError):
            content_key(ScenarioSpec(task="t", params={"fn": lambda: None}))


class TestCanonicalOrdering:
    """The sort key behind sets/mappings must never fall back to str()."""

    def test_set_ordering_is_insertion_independent(self):
        members = [("a", 1), ("b", 2), ("c", 3)]
        forward = canonical(set(members))
        backward = canonical(set(reversed(members)))
        assert forward == backward

    def test_set_of_mappings_keys_identically_across_orders(self):
        a = ScenarioSpec(task="t", params={"s": frozenset([("x", 1), ("y", 2)])})
        b = ScenarioSpec(task="t", params={"s": frozenset([("y", 2), ("x", 1)])})
        assert content_key(a) == content_key(b)

    def test_unserializable_set_member_raises_not_stringifies(self):
        # Before the fix the sort key fell back to ``default=str``: two
        # distinct unkeyable members could stringify identically and the
        # canonical ordering silently depended on insertion order.  Now
        # the member itself raises.
        with pytest.raises(TypeError):
            content_key(
                ScenarioSpec(task="t", params={"s": frozenset([object()])})
            )

    def test_unserializable_mapping_key_raises(self):
        with pytest.raises(TypeError):
            canonical({object(): 1})

    def test_canonical_is_public(self):
        # The campaign layer keys whole campaigns through this function;
        # it is part of the runner's public surface (API001 otherwise
        # flags cross-module use of a private helper).
        assert canonical({"b": 1, "a": 2}) == canonical({"a": 2, "b": 1})


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "a" * 64
        assert cache.get(key) == (False, None)
        cache.put(key, {"value": 3})
        hit, value = cache.get(key)
        assert hit and value == {"value": 3}
        assert key in cache
        assert len(cache) == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "b" * 64
        cache.path_for(key).write_bytes(b"not a pickle")
        hit, value = cache.get(key)
        assert not hit and value is None

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("c" * 64, 1)
        cache.put("d" * 64, 2)
        assert cache.clear() == 2
        assert len(cache) == 0

    def test_invalid_key_rejected(self, tmp_path):
        cache = ResultCache(tmp_path)
        with pytest.raises(ValueError):
            cache.path_for("../escape")

    def test_default_cache_dir_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "override"))
        assert default_cache_dir() == tmp_path / "override"
