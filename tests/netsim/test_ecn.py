"""End-to-end ECN semantics on the packet simulator.

The contract under test: CE marks replace AQM drops for ECN flows, the
sender's window responds to echoed marks, and — the new observable for
the bias analysis — marks move throughput *without* moving the
retransmit counters.
"""

import pytest

from repro.netsim.packet.network import Network
from repro.netsim.packet.simulation import FlowConfig, simulate


def _codel_run(flows, **kwargs):
    defaults = dict(
        capacity_mbps=20.0,
        duration_s=6.0,
        warmup_s=2.0,
        queue_discipline="codel",
        # A deep buffer so the hard limit never fires: every AQM decision
        # is a CoDel decision, which marks ECN flows instead of dropping.
        buffer_bdp=20.0,
    )
    defaults.update(kwargs)
    return simulate(flows, **defaults)


class TestMarksAreNotRetransmits:
    def test_ecn_flow_is_marked_but_never_retransmits(self):
        result = _codel_run([FlowConfig(0, ecn=True), FlowConfig(1, ecn=True)])
        assert result.total_marks() > 0
        for flow in result.flows:
            assert flow.packets_marked > 0
            assert flow.packets_lost == 0
            assert flow.retransmit_fraction == 0.0

    def test_non_ecn_flow_on_same_queue_still_drops(self):
        result = _codel_run([FlowConfig(0, ecn=True), FlowConfig(1)])
        ecn_flow, plain_flow = result.flow(0), result.flow(1)
        assert ecn_flow.packets_marked > 0
        assert ecn_flow.packets_lost == 0
        assert plain_flow.packets_marked == 0
        assert plain_flow.packets_lost > 0
        assert plain_flow.retransmit_fraction > 0.0

    def test_queue_marks_reported_per_queue(self):
        result = _codel_run([FlowConfig(0, ecn=True), FlowConfig(1, ecn=True)])
        assert set(result.queue_marks) == {"bottleneck"}
        assert result.queue_marks["bottleneck"] == result.total_marks()


class TestMarksControlThroughput:
    def test_ecn_flow_shares_fairly_with_loss_based_peer(self):
        # If the sender ignored marks, the never-dropped ECN flow would
        # overrun its loss-backed peer; reacting to marks keeps the split
        # near 50/50.
        result = _codel_run([FlowConfig(0, ecn=True), FlowConfig(1)])
        total = result.total_throughput_mbps()
        assert result.flow(0).throughput_mbps / total < 0.65

    def test_solo_ecn_flow_runs_lossless_at_capacity(self):
        result = _codel_run([FlowConfig(0, ecn=True)], capacity_mbps=10.0)
        flow = result.flow(0)
        assert flow.packets_marked > 0
        assert flow.packets_lost == 0
        assert flow.throughput_mbps > 8.5  # > 85% of the link, no losses

    def test_ecn_keeps_queue_shorter_than_ignoring_marks_would(self):
        # BBR ignores marks; Reno reacts.  Same ECN negotiation, same
        # queue: the reacting sender holds a smaller standing queue.
        def mean_srtt(cc):
            network = Network(capacity_mbps=20.0, queue_discipline="codel")
            network.add_flow(FlowConfig(0, cc=cc, ecn=True))
            network.run(duration_s=6.0, warmup_s=2.0)
            (sender,) = network._senders.values()
            return sender.srtt

        assert mean_srtt("reno") <= mean_srtt("bbr") * 1.05

    def test_bbr_ignores_marks(self):
        result = _codel_run([FlowConfig(0, cc="bbr", ecn=True)], capacity_mbps=10.0)
        flow = result.flow(0)
        # Marks are observed (counted) but do not curb BBR's rate model.
        assert flow.throughput_mbps > 8.5


class TestEcnUnderFqCodel:
    def test_fq_codel_marks_ecn_units(self):
        flows = [FlowConfig(i, ecn=True) for i in range(3)]
        result = simulate(
            flows,
            capacity_mbps=20.0,
            duration_s=6.0,
            warmup_s=2.0,
            queue_discipline="fq_codel",
            buffer_bdp=20.0,
        )
        assert result.total_marks() > 0
        for flow in result.flows:
            assert flow.packets_lost == 0
            assert flow.retransmit_fraction == 0.0

    def test_mixed_ecn_and_plain_units_coexist(self):
        flows = [FlowConfig(0, ecn=True), FlowConfig(1), FlowConfig(2, ecn=True)]
        result = simulate(
            flows,
            capacity_mbps=20.0,
            duration_s=6.0,
            warmup_s=2.0,
            queue_discipline="fq_codel",
            buffer_bdp=20.0,
        )
        shares = [f.throughput_mbps for f in result.flows]
        # Per-unit DRR still splits capacity evenly regardless of ECN.
        assert max(shares) < 1.3 * min(shares)


class TestEcnDeterminism:
    def test_ecn_runs_reproducible(self):
        def run():
            return _codel_run([FlowConfig(0, ecn=True), FlowConfig(1)])

        assert run() == run()

    def test_ecn_config_validates_like_any_flow(self):
        with pytest.raises(ValueError):
            FlowConfig(0, ecn=True, connections=0)
