"""Mergeable streaming summaries for fleet-scale aggregation.

Fleet runs (:mod:`repro.netsim.fleet`) simulate tens of thousands to
millions of units, but every shard returns only *sufficient statistics*:
exact first/second moments (:class:`StreamingStats`) and an approximate
quantile summary (:class:`QuantileSketch`).  Both are mergeable, so the
parent process folds shard results pairwise and peak memory is bounded by
``cells x sketch size`` — never by unit count.

The quantile sketch is a t-digest-style centroid summary (Dunning &
Ertl's "merging digest" variant).  Cluster boundaries follow the ``k1``
scale function, so cluster sizes shrink like ``sqrt(q (1 - q))`` and the
tails stay near-exact — the regime that matters for p95/p99 FCT and
throughput percentiles on heavy-tailed traffic.  The compressed sketch
holds between ``compression / 2`` and ``compression`` centroids
regardless of how many values were added.

Determinism contract
--------------------
Compression is a pure function of the *sorted* multiset of centroids, so

* ``a.merge(b)`` and ``b.merge(a)`` are bit-identical (commutativity is
  exact), and
* a fixed merge order (the fleet layer always folds shards in index
  order) yields bit-identical results for any ``--jobs`` value.

Merging is only *approximately* associative: regrouping shards changes
which centroids coalesce, moving quantile estimates by at most the
documented accuracy bound (see ``tests/core/test_sketch.py``).
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping, Sequence

__all__ = [
    "StreamingStats",
    "QuantileSketch",
]

# Values buffered before an automatic compression pass.  Purely a speed
# knob: the final state depends only on insertion order, and the fleet
# layer always finalizes (compresses) before shipping a sketch across
# the shard boundary.
_BUFFER_FACTOR = 5


class StreamingStats:
    """Exact mergeable moments: count, sum, sum of squares, min, max.

    Unlike the sketch, merging is exact (up to float addition order, which
    the fleet layer fixes by always folding in shard-index order).
    """

    __slots__ = ("count", "total", "total_sq", "minimum", "maximum")

    def __init__(self) -> None:
        """Start an empty accumulator."""
        self.count = 0
        self.total = 0.0
        self.total_sq = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, value: float) -> None:
        """Fold one observation into the accumulator."""
        value = float(value)
        self.count += 1
        self.total += value
        self.total_sq += value * value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def extend(self, values: Iterable[float]) -> None:
        """Fold a batch of observations."""
        for value in values:
            self.add(value)

    def merge(self, other: "StreamingStats") -> "StreamingStats":
        """Return a new accumulator combining ``self`` and ``other``."""
        merged = StreamingStats()
        merged.count = self.count + other.count
        merged.total = self.total + other.total
        merged.total_sq = self.total_sq + other.total_sq
        merged.minimum = min(self.minimum, other.minimum)
        merged.maximum = max(self.maximum, other.maximum)
        return merged

    @property
    def mean(self) -> float:
        """Arithmetic mean, ``nan`` when empty."""
        if self.count == 0:
            return math.nan
        return self.total / self.count

    @property
    def variance(self) -> float:
        """Population variance, ``nan`` when empty (clipped at zero)."""
        if self.count == 0:
            return math.nan
        mean = self.total / self.count
        return max(0.0, self.total_sq / self.count - mean * mean)

    def __len__(self) -> int:
        """Number of observations folded in."""
        return self.count

    def __eq__(self, other: object) -> bool:
        """Bitwise state equality (used by determinism tests)."""
        if not isinstance(other, StreamingStats):
            return NotImplemented
        return (
            self.count == other.count
            and self.total == other.total
            and self.total_sq == other.total_sq
            and self.minimum == other.minimum
            and self.maximum == other.maximum
        )

    def __repr__(self) -> str:
        """Debug representation with count and mean."""
        return f"StreamingStats(count={self.count}, mean={self.mean:.6g})"

    def to_dict(self) -> dict[str, float]:
        """Serialize to a JSON-compatible mapping."""
        return {
            "count": self.count,
            "total": self.total,
            "total_sq": self.total_sq,
            "minimum": self.minimum,
            "maximum": self.maximum,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, float]) -> "StreamingStats":
        """Rebuild an accumulator from :meth:`to_dict` output."""
        stats = cls()
        stats.count = int(payload["count"])
        stats.total = float(payload["total"])
        stats.total_sq = float(payload["total_sq"])
        stats.minimum = float(payload["minimum"])
        stats.maximum = float(payload["maximum"])
        return stats


class QuantileSketch:
    """T-digest-style mergeable quantile sketch with deterministic compression.

    Parameters
    ----------
    compression:
        Accuracy/size trade-off.  The compressed sketch holds at most a few
        multiples of ``compression`` centroids regardless of how many values
        were added; larger values give tighter quantile estimates.  The
        default (100) keeps rank error well under 0.01 in the body and much
        smaller in the tails (pinned by the Pareto accuracy tests).
    """

    __slots__ = ("compression", "_means", "_weights", "_buffer", "_stats")

    def __init__(self, compression: int = 100) -> None:
        """Create an empty sketch with the given compression factor."""
        if compression < 10:
            raise ValueError(f"compression must be >= 10, got {compression}")
        self.compression = int(compression)
        self._means: list[float] = []
        self._weights: list[float] = []
        self._buffer: list[float] = []
        self._stats = StreamingStats()

    # -- ingestion -----------------------------------------------------

    def add(self, value: float) -> None:
        """Fold one observation into the sketch."""
        value = float(value)
        if math.isnan(value):
            raise ValueError("cannot add NaN to a QuantileSketch")
        self._stats.add(value)
        self._buffer.append(value)
        if len(self._buffer) >= _BUFFER_FACTOR * self.compression:
            self._compress()

    def extend(self, values: Iterable[float]) -> None:
        """Fold a batch of observations."""
        for value in values:
            self.add(value)

    # -- merging -------------------------------------------------------

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Return a new sketch summarizing the union of both inputs.

        Exactly commutative (the combined centroids are sorted before
        compression); approximately associative.  The result uses the
        larger of the two compression factors.
        """
        merged = QuantileSketch(compression=max(self.compression, other.compression))
        merged._stats = self._stats.merge(other._stats)
        points = (
            list(zip(self._means, self._weights))
            + [(v, 1.0) for v in self._buffer]
            + list(zip(other._means, other._weights))
            + [(v, 1.0) for v in other._buffer]
        )
        merged._set_compressed(points)
        return merged

    # -- queries -------------------------------------------------------

    @property
    def count(self) -> int:
        """Number of observations folded in."""
        return self._stats.count

    @property
    def minimum(self) -> float:
        """Exact minimum of all observations (``inf`` when empty)."""
        return self._stats.minimum

    @property
    def maximum(self) -> float:
        """Exact maximum of all observations (``-inf`` when empty)."""
        return self._stats.maximum

    @property
    def mean(self) -> float:
        """Exact mean of all observations (``nan`` when empty)."""
        return self._stats.mean

    def __len__(self) -> int:
        """Number of centroids currently held (after compressing)."""
        self._compress()
        return len(self._means)

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``0 <= q <= 1``), ``nan`` when empty.

        Uses the standard t-digest interpolation: centroid mass is centred
        at its cumulative-weight midpoint with piecewise-linear
        interpolation between neighbours, clamped to the exact min/max.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        self._compress()
        if not self._means:
            return math.nan
        if len(self._means) == 1:
            return self._means[0]
        total = sum(self._weights)
        target = q * total
        # Midpoint positions of each centroid along the cumulative axis.
        cumulative = 0.0
        midpoints: list[float] = []
        for weight in self._weights:
            midpoints.append(cumulative + weight / 2.0)
            cumulative += weight
        if target <= midpoints[0]:
            # Interpolate between the exact minimum and the first centroid.
            first_half = midpoints[0]
            frac = target / first_half if first_half > 0 else 0.0
            return self.minimum + frac * (self._means[0] - self.minimum)
        if target >= midpoints[-1]:
            last_half = total - midpoints[-1]
            frac = (target - midpoints[-1]) / last_half if last_half > 0 else 1.0
            return self._means[-1] + frac * (self.maximum - self._means[-1])
        for i in range(len(midpoints) - 1):
            left, right = midpoints[i], midpoints[i + 1]
            if left <= target <= right:
                span = right - left
                frac = (target - left) / span if span > 0 else 0.0
                return self._means[i] + frac * (self._means[i + 1] - self._means[i])
        return self._means[-1]

    def quantiles(self, qs: Sequence[float]) -> list[float]:
        """Estimate several quantiles in one pass."""
        return [self.quantile(q) for q in qs]

    # -- serialization -------------------------------------------------

    def to_dict(self) -> dict[str, object]:
        """Serialize to a JSON-compatible mapping (used at the shard boundary)."""
        self._compress()
        return {
            "compression": self.compression,
            "means": list(self._means),
            "weights": list(self._weights),
            "stats": self._stats.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "QuantileSketch":
        """Rebuild a sketch from :meth:`to_dict` output."""
        sketch = cls(compression=int(payload["compression"]))  # type: ignore[arg-type]
        sketch._means = [float(m) for m in payload["means"]]  # type: ignore[union-attr]
        sketch._weights = [float(w) for w in payload["weights"]]  # type: ignore[union-attr]
        sketch._stats = StreamingStats.from_dict(payload["stats"])  # type: ignore[arg-type]
        return sketch

    def __eq__(self, other: object) -> bool:
        """Bitwise state equality after compressing both sides."""
        if not isinstance(other, QuantileSketch):
            return NotImplemented
        self._compress()
        other._compress()
        return (
            self.compression == other.compression
            and self._means == other._means
            and self._weights == other._weights
            and self._stats == other._stats
        )

    def __repr__(self) -> str:
        """Debug representation with count and centroid count."""
        self._compress()
        return (
            f"QuantileSketch(compression={self.compression}, "
            f"count={self.count}, centroids={len(self._means)})"
        )

    # -- internals -----------------------------------------------------

    def _compress(self) -> None:
        """Fold the buffer into the centroid list (idempotent when empty)."""
        if not self._buffer:
            return
        points = list(zip(self._means, self._weights))
        points.extend((v, 1.0) for v in self._buffer)
        self._set_compressed(points)

    def _set_compressed(self, points: list[tuple[float, float]]) -> None:
        """Replace state with the deterministic compression of ``points``.

        The input is sorted by ``(mean, weight)`` first, so the result is a
        pure function of the multiset of centroids — the source of the
        exact-commutativity guarantee.
        """
        self._buffer = []
        if not points:
            self._means = []
            self._weights = []
            return
        points.sort()
        total = 0.0
        for _, weight in points:
            total += weight
        means: list[float] = []
        weights: list[float] = []
        cur_mean, cur_weight = points[0]
        weight_before = 0.0
        weight_limit = total * self._k_inverse(self._k_scale(0.0) + 1.0)
        for mean, weight in points[1:]:
            if weight_before + cur_weight + weight <= weight_limit:
                combined = cur_weight + weight
                cur_mean = (cur_mean * cur_weight + mean * weight) / combined
                cur_weight = combined
            else:
                means.append(cur_mean)
                weights.append(cur_weight)
                weight_before += cur_weight
                weight_limit = total * self._k_inverse(
                    self._k_scale(weight_before / total) + 1.0
                )
                cur_mean, cur_weight = mean, weight
        means.append(cur_mean)
        weights.append(cur_weight)
        self._means = means
        self._weights = weights

    def _k_scale(self, q: float) -> float:
        """The k1 scale function: cluster sizes shrink like sqrt(q(1-q)).

        Each cluster spans at most one k-unit and k ranges over
        ``compression / 2`` units total, so a single compression pass emits
        ~``compression / 2`` centroids; repeated passes over already-heavy
        (unsplittable) centroids can close clusters early, but the count
        stays below ``compression`` — the hard size bound behind the
        O(cells) memory contract.
        """
        clamped = min(1.0, max(0.0, q))
        return self.compression / (2.0 * math.pi) * math.asin(2.0 * clamped - 1.0)

    def _k_inverse(self, k: float) -> float:
        """Inverse of :meth:`_k_scale`, clamped to [0, 1]."""
        x = 2.0 * math.pi * k / self.compression
        if x <= -math.pi / 2.0:
            return 0.0
        if x >= math.pi / 2.0:
            return 1.0
        return (math.sin(x) + 1.0) / 2.0
