"""Packet representation for the packet-level simulator."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Packet", "PacketPool"]


@dataclass
class Packet:
    """A data packet in flight.

    Attributes
    ----------
    flow_id:
        Identifier of the sending flow.
    sequence:
        Sequence number of the packet within its flow (counts packets, not
        bytes).
    size_bytes:
        Packet size in bytes (MTU-sized for bulk transfers; ``segments``
        times the MSS for a macro-packet).
    send_time:
        Simulation time at which the sender transmitted the packet.
    is_retransmission:
        True when the packet retransmits previously lost data.
    ecn_capable:
        True when the sending flow negotiated ECN: AQM queues may CE-mark
        this packet instead of dropping it.
    l4s:
        True when the sending flow negotiated the L4S service (the ECT(1)
        codepoint of RFC 9331): a dual-queue AQM classifies the packet
        into its low-latency queue and marks it at a shallow threshold.
        Implies ``ecn_capable``.
    ce_marked:
        Congestion Experienced: set by a queue that would otherwise have
        dropped the packet (classic ECN) or whose marking law selected it
        (L4S); echoed back to the sender with the ack.
    segments:
        Number of MSS-sized segments this packet stands for.  1 for a
        normal packet; greater than 1 for a *macro-packet* built by a
        sender running with event batching, where one simulated packet
        (one enqueue, one service completion, one ack or loss event)
        carries a burst of k segments.  Per-segment counters scale by
        this value; ``size_bytes`` is ``segments * mss``.
    """

    flow_id: int
    sequence: int
    size_bytes: int
    send_time: float
    is_retransmission: bool = False
    ecn_capable: bool = False
    l4s: bool = False
    ce_marked: bool = False
    segments: int = 1


class PacketPool:
    """A freelist of :class:`Packet` objects.

    The hot path creates one ``Packet`` per send and drops it one RTT
    later when the ack (or loss notification) is consumed — perfect
    churn for a freelist.  :meth:`acquire` reuses a retired instance
    when one is available, overwriting *every* field, so a pooled packet
    is indistinguishable from a freshly constructed one and results stay
    bit-identical.  :meth:`release` is only safe on packets that have
    left the simulation for good; the network calls it after the ack or
    loss handler ran (each packet terminates in exactly one of the two).
    """

    def __init__(self) -> None:
        self._free: list[Packet] = []
        #: Lifetime counters, exposed for tests and the performance docs.
        self.acquired = 0
        self.reused = 0

    def acquire(
        self,
        flow_id: int,
        sequence: int,
        size_bytes: int,
        send_time: float,
        is_retransmission: bool = False,
        ecn_capable: bool = False,
        l4s: bool = False,
        segments: int = 1,
    ) -> Packet:
        """Return a packet with the given fields, reusing a retired slot."""
        self.acquired += 1
        if self._free:
            self.reused += 1
            packet = self._free.pop()
            packet.flow_id = flow_id
            packet.sequence = sequence
            packet.size_bytes = size_bytes
            packet.send_time = send_time
            packet.is_retransmission = is_retransmission
            packet.ecn_capable = ecn_capable
            packet.l4s = l4s
            packet.ce_marked = False
            packet.segments = segments
            return packet
        return Packet(
            flow_id=flow_id,
            sequence=sequence,
            size_bytes=size_bytes,
            send_time=send_time,
            is_retransmission=is_retransmission,
            ecn_capable=ecn_capable,
            l4s=l4s,
            segments=segments,
        )

    def release(self, packet: Packet) -> None:
        """Retire ``packet`` to the freelist for later reuse."""
        self._free.append(packet)

    def __len__(self) -> int:
        """Number of retired packets currently available for reuse."""
        return len(self._free)
