"""Evaluate alternate experiment designs (Section 5).

Uses one paired-link run as ground truth, then emulates what an
experimenter would have measured with

* a switchback experiment (alternating 95 %-capped and 5 %-capped days),
* an event study (deploying 95 % capping mid-week),

and calibrates both against an A/A week.  Finishes with a power
calculation for sizing a future switchback.

Run with:  python examples/switchback_vs_event_study.py
"""

import numpy as np

from repro.core.analysis import aggregate_hourly, required_sample_size
from repro.experiments import PairedLinkExperiment, compare_designs, run_aa_calibration
from repro.reporting import format_table
from repro.workload import WorkloadConfig

METRICS = (
    "throughput_mbps",
    "min_rtt_ms",
    "play_delay_s",
    "video_bitrate_kbps",
    "retransmit_fraction",
)


def main() -> None:
    config = WorkloadConfig(sessions_at_peak=250, seed=19)
    outcome = PairedLinkExperiment(config=config).run()
    days = (0, 1, 2, 3, 4)

    comparison = compare_designs(
        outcome.experiment_table,
        days,
        outcome.estimates["tte"],
        baselines=outcome.baselines,
        metrics=METRICS,
    )

    print("Figure 10: TTE estimated by each design (percent of global control)")
    rows = []
    for row in comparison.rows(METRICS):
        rows.append(
            [
                row["metric"],
                f"{row['paired_link']:+.1f}%",
                f"{row['switchback']:+.1f}%",
                f"{row['event_study']:+.1f}%",
            ]
        )
    print(format_table(["metric", "paired link", "switchback", "event study"], rows))
    print()

    covered = [m for m in METRICS if comparison.switchback_covers_paired_link(m)]
    print(f"Switchback CI covers the paired-link TTE for: {', '.join(covered)}")
    print()

    print("A/A calibration (no capping anywhere; any 'effect' is a false positive)")
    rows = []
    splits = (("switchback split", (0, 2, 4)), ("event-study split", (2, 3, 4)))
    for label, treatment_days in splits:
        estimates = run_aa_calibration(
            outcome.aa_table, days, treatment_days=treatment_days, metrics=METRICS
        )
        false_positives = [m for m, e in estimates.items() if e.relative.significant]
        rows.append([label, len(false_positives), ", ".join(false_positives) or "-"])
    print(format_table(["day split", "# false positives", "metrics"], rows))
    print()

    # Power calculation: how many switchback days would we need to detect the
    # throughput TTE we just measured, treating each day as one observation?
    tte = outcome.estimates["tte"]["throughput_mbps"].absolute.estimate
    hourly = aggregate_hourly(
        outcome.experiment_table.where(link=2, treated=0), "throughput_mbps"
    )
    daily_std = float(np.std([hourly.value[hourly.time_index // 24 == d].mean() for d in days]))
    days_needed = 2 * required_sample_size(abs(tte), max(daily_std, 1e-6), power=0.8)
    print(
        f"Power check: detecting a {tte:+.2f} Mb/s TTE with day-level noise "
        f"{daily_std:.2f} Mb/s needs roughly {days_needed} switchback days."
    )


if __name__ == "__main__":
    main()
