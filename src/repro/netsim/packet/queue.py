"""Drop-tail bottleneck queue.

The congestion point of the lab testbed: a FIFO queue draining at the link
rate, with a finite buffer.  Packets arriving to a full buffer are dropped.
The queue reports each packet's departure (delivery toward the receiver)
and each drop to callbacks supplied by the simulation, and keeps counters
used by the result metrics.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable

from repro.netsim.packet.engine import EventScheduler
from repro.netsim.packet.packets import Packet

__all__ = ["DropTailQueue"]


class DropTailQueue:
    """A FIFO drop-tail queue served at a fixed rate.

    Parameters
    ----------
    scheduler:
        The event scheduler driving the simulation.
    rate_bps:
        Drain (link) rate in bits per second.
    buffer_bytes:
        Maximum number of bytes the queue can hold (excluding the packet
        currently being transmitted).
    on_departure:
        Callback invoked as ``on_departure(packet, departure_time)`` when a
        packet finishes transmission.
    on_drop:
        Callback invoked as ``on_drop(packet, drop_time)`` when a packet is
        dropped on arrival.
    """

    def __init__(
        self,
        scheduler: EventScheduler,
        rate_bps: float,
        buffer_bytes: float,
        on_departure: Callable[[Packet, float], None],
        on_drop: Callable[[Packet, float], None],
    ):
        if rate_bps <= 0:
            raise ValueError("rate_bps must be positive")
        if buffer_bytes < 0:
            raise ValueError("buffer_bytes must be non-negative")
        self._scheduler = scheduler
        self._rate_bps = float(rate_bps)
        self._buffer_bytes = float(buffer_bytes)
        self._on_departure = on_departure
        self._on_drop = on_drop

        self._queue: deque[Packet] = deque()
        self._queued_bytes = 0.0
        self._busy = False

        #: Total packets that entered service.
        self.packets_served = 0
        #: Total packets dropped at the tail.
        self.packets_dropped = 0
        #: Total bytes that entered service.
        self.bytes_served = 0.0
        #: Maximum queue occupancy observed, in bytes.
        self.max_occupancy_bytes = 0.0

    # -- state ---------------------------------------------------------------

    @property
    def occupancy_bytes(self) -> float:
        """Bytes currently waiting in the buffer (excludes packet in service)."""
        return self._queued_bytes

    @property
    def rate_bps(self) -> float:
        """Drain rate in bits per second."""
        return self._rate_bps

    def queueing_delay(self) -> float:
        """Expected waiting time for a packet arriving now, in seconds."""
        return self._queued_bytes * 8.0 / self._rate_bps

    def transmission_time(self, packet: Packet) -> float:
        """Serialization time of one packet at the link rate, in seconds."""
        return packet.size_bytes * 8.0 / self._rate_bps

    # -- operations -----------------------------------------------------------

    def enqueue(self, packet: Packet) -> bool:
        """Offer a packet to the queue.  Returns True if accepted, False if dropped."""
        now = self._scheduler.now
        if self._busy and self._queued_bytes + packet.size_bytes > self._buffer_bytes:
            self.packets_dropped += 1
            self._on_drop(packet, now)
            return False
        if self._busy:
            self._queue.append(packet)
            self._queued_bytes += packet.size_bytes
            self.max_occupancy_bytes = max(self.max_occupancy_bytes, self._queued_bytes)
        else:
            self._start_service(packet)
        return True

    def _start_service(self, packet: Packet) -> None:
        self._busy = True
        self.packets_served += 1
        self.bytes_served += packet.size_bytes
        finish = self._scheduler.now + self.transmission_time(packet)
        self._scheduler.schedule(finish, lambda p=packet: self._finish_service(p))

    def _finish_service(self, packet: Packet) -> None:
        self._on_departure(packet, self._scheduler.now)
        if self._queue:
            next_packet = self._queue.popleft()
            self._queued_bytes -= next_packet.size_bytes
            self._start_service(next_packet)
        else:
            self._busy = False
