"""Sender-lifecycle edge cases for finite transfers.

The dynamic-traffic subsystem makes the set of active flows a simulation
variable; these tests pin the corners of that lifecycle: zero-byte
transfers, completion racing in-flight retransmissions, dynamic ECN
senders arriving while an AQM is actively marking, and the RED
idle-decay interaction when the last flow departs and leaves the queue
empty.
"""

import pytest

from repro.netsim.packet.network import Network, PathConfig
from repro.netsim.packet.packets import Packet
from repro.netsim.packet.simulation import FlowConfig, simulate
from repro.netsim.traffic import (
    FixedSizes,
    TraceArrivals,
    TrafficSource,
)


class TestFiniteTransfers:
    def test_finite_flow_completes_with_fct(self):
        result = simulate(
            [FlowConfig(0), FlowConfig(1, transfer_bytes=300_000)],
            capacity_mbps=20.0,
            duration_s=8.0,
            warmup_s=2.0,
        )
        finite = result.flow(1)
        assert finite.completed is True
        assert finite.fct_s > 0.0
        # The unlimited application is untouched by FCT accounting.
        unlimited = result.flow(0)
        assert unlimited.completed is None
        assert unlimited.fct_s is None

    def test_incomplete_transfer_reports_not_completed(self):
        result = simulate(
            [FlowConfig(0, transfer_bytes=1e12)],
            capacity_mbps=10.0,
            duration_s=3.0,
            warmup_s=1.0,
        )
        assert result.flow(0).completed is False
        assert result.flow(0).fct_s is None

    def test_multi_connection_app_completes_when_last_connection_does(self):
        network = Network(capacity_mbps=20.0)
        network.add_flow(FlowConfig(0, connections=2, transfer_bytes=150_000))
        result = network.run(duration_s=8.0, warmup_s=2.0)
        senders = list(network._senders.values())
        assert all(s.completed for s in senders)
        expected = max(s.completion_time for s in senders) - min(
            s.start_time for s in senders
        )
        assert result.flow(0).fct_s == expected

    def test_completed_flow_frees_capacity_for_the_rest(self):
        # Once the finite flow retires mid-run, the survivor reclaims the
        # bottleneck: its throughput beats a run where the competitor
        # stays for the whole simulation.
        shared_forever = simulate(
            [FlowConfig(0), FlowConfig(1)],
            capacity_mbps=20.0, duration_s=10.0, warmup_s=2.0,
        )
        competitor_leaves = simulate(
            [FlowConfig(0), FlowConfig(1, transfer_bytes=400_000)],
            capacity_mbps=20.0, duration_s=10.0, warmup_s=2.0,
        )
        assert competitor_leaves.flow(1).completed is True
        assert (
            competitor_leaves.flow(0).throughput_mbps
            > 1.2 * shared_forever.flow(0).throughput_mbps
        )

    def test_invalid_transfer_bytes_rejected(self):
        with pytest.raises(ValueError):
            FlowConfig(0, transfer_bytes=-1.0)


class TestZeroByteTransfer:
    def test_completes_instantly_without_sending(self):
        result = simulate(
            [FlowConfig(0), FlowConfig(1, transfer_bytes=0)],
            capacity_mbps=10.0,
            duration_s=3.0,
            warmup_s=1.0,
        )
        zero = result.flow(1)
        assert zero.completed is True
        assert zero.fct_s == 0.0
        assert zero.packets_sent == 0
        assert zero.throughput_mbps == 0.0

    def test_zero_byte_dynamic_flows_count_as_completed(self):
        source = TrafficSource(
            arrivals=TraceArrivals((1.0, 2.0)), sizes=FixedSizes(0.0), label="z"
        )
        result = simulate(
            [FlowConfig(0)],
            capacity_mbps=10.0,
            duration_s=4.0,
            warmup_s=1.0,
            traffic_sources=[source],
        )
        stats = result.traffic["z"]
        assert stats.flows_started == 2
        assert stats.flows_completed == 2
        assert stats.completion_times_s == (0.0, 0.0)
        assert stats.bytes_acked == 0


class TestCompletionUnderRetransmission:
    def _lossy_network(self):
        network = Network(capacity_mbps=20.0, seed=4)
        network.add_flow(FlowConfig(0))  # keeps the simulation measurable
        network.add_flow(
            FlowConfig(1, transfer_bytes=150_000, path=PathConfig(loss_rate=0.1))
        )
        return network, network._senders[1]

    def test_transfer_completes_despite_losses(self):
        network, sender = self._lossy_network()
        snapshot = {}
        sender.on_complete = lambda s: snapshot.update(
            packets_sent=s.packets_sent, inflight=s.inflight
        )
        result = network.run(duration_s=10.0, warmup_s=2.0)
        assert sender.completed
        assert sender.packets_retransmitted > 0  # losses really happened
        # Completion is the moment the last needed chunk is acked, so
        # nothing of the transfer can still be in flight ...
        assert snapshot["inflight"] == 0
        # ... and the sender never transmits again afterwards.
        assert sender.packets_sent == snapshot["packets_sent"]
        assert result.flow(1).completed is True

    def test_stale_feedback_after_completion_is_ignored(self):
        network, sender = self._lossy_network()
        network.run(duration_s=10.0, warmup_s=2.0)
        assert sender.completed
        before = (
            sender.packets_sent,
            sender.packets_lost,
            sender.packets_acked,
            sender._pending_retransmissions,
        )
        stale = Packet(flow_id=1, sequence=99_999, size_bytes=1500, send_time=0.0)
        sender.handle_loss(stale)
        sender.handle_ack(stale, rtt_sample=0.02)
        after = (
            sender.packets_sent,
            sender.packets_lost,
            sender.packets_acked,
            sender._pending_retransmissions,
        )
        assert after == before


class TestDynamicEcnArrival:
    def test_sender_spawning_under_active_marking_gets_marked_not_dropped(self):
        # Saturate a CoDel bottleneck with ECN flows so CE-marking is in
        # full swing (marks pending in flight), then spawn dynamic ECN
        # senders into it: they must pick up marks, react without
        # retransmitting, and still complete their transfers.
        network = Network(capacity_mbps=12.0, queue_discipline="codel")
        for i in range(3):
            network.add_flow(FlowConfig(i, ecn=True))
        network.add_traffic_source(
            TrafficSource(
                arrivals=TraceArrivals((3.0, 3.5, 4.0)),
                sizes=FixedSizes(120_000.0),
                ecn=True,
                label="ecn-churn",
            )
        )
        result = network.run(duration_s=12.0, warmup_s=2.0)
        assert result.total_marks() > 0  # the AQM was marking
        dynamic = network._dynamic_senders[0]
        assert len(dynamic) == 3
        assert all(s.completed for s in dynamic)
        assert sum(s.packets_marked for s in dynamic) > 0
        # ECN semantics survive the dynamic arrival: every retransmission
        # traces back to a real drop (the hard buffer limit still drops),
        # never to a CE mark — marked packets were delivered and acked.
        assert all(s.packets_retransmitted == s.packets_lost for s in dynamic)
        assert all(s.packets_acked == 80 for s in dynamic)  # full transfer


class TestCeMarkOnCompletingAck:
    def test_mark_on_final_ack_is_counted_before_completion_exit(self):
        # Regression: the completion early-return must not skip the CE
        # accounting, or the sender tally stops reconciling with the
        # queues' whenever a finite ECN flow's last ack carries a mark.
        from repro.netsim.packet.engine import EventScheduler
        from repro.netsim.packet.tcp.reno import RenoSender

        sender = RenoSender(
            0, EventScheduler(), lambda p: None, transfer_bytes=4500, ecn=True
        )
        sender.start()
        for seq in range(3):
            packet = Packet(
                flow_id=0, sequence=seq, size_bytes=1500, send_time=0.0,
                ecn_capable=True, ce_marked=(seq == 2),
            )
            sender.handle_ack(packet, 0.02)
        assert sender.completed
        assert sender.packets_marked == 1


class TestRedIdleAfterLastDeparture:
    def test_last_flow_departure_triggers_idle_decay(self):
        # A finite measured flow congests a RED bottleneck, completes and
        # leaves the queue idle; a dynamic flow arrives seconds later.
        # The Floyd & Jacobson idle correction must have decayed the
        # stale EWMA by then, so the newcomer's opening burst is admitted.
        network = Network(capacity_mbps=10.0, queue_discipline="red", seed=0)
        network.add_flow(FlowConfig(0, transfer_bytes=600_000))
        network.add_traffic_source(
            TrafficSource(
                arrivals=TraceArrivals((8.0,)),
                sizes=FixedSizes(200_000.0),
                label="late",
            )
        )
        queue = network.queues["bottleneck"]
        probes = {}

        def probe(name):
            probes[name] = (queue._idle_since, queue._avg_bytes)

        network.scheduler.schedule(7.9, lambda: probe("before_late_arrival"))
        result = network.run(duration_s=14.0, warmup_s=1.0)

        assert result.flow(0).completed is True
        assert result.flow(0).fct_s < 7.0  # it really finished early
        idle_since, stale_avg = probes["before_late_arrival"]
        assert idle_since is not None  # the queue saw the departure ...
        assert idle_since > result.flow(0).fct_s * 0.5
        assert stale_avg > 0.0  # ... with EWMA still carrying the burst
        # The late flow completed: its first packets were not eaten by a
        # stale-high RED average (the pre-fix behaviour dropped them).
        late = result.traffic["late"]
        assert late.flows_completed == 1
