"""Core causal-inference framework for network experiments.

This subpackage implements the statistical machinery from Section 2 and
Appendix B of the paper:

* units and outcome tables (:mod:`repro.core.units`)
* randomized treatment assignment (:mod:`repro.core.assignment`)
* estimands: ``tau(p)``, TTE, spillover, partial effects
  (:mod:`repro.core.estimands`)
* estimators: difference in means, quantile treatment effects
  (:mod:`repro.core.estimators`)
* experiment designs (:mod:`repro.core.designs`)
* the regression-based analysis pipeline (:mod:`repro.core.analysis`)
"""

from repro.core.units import OutcomeTable, Session, Unit
from repro.core.assignment import (
    Assignment,
    bernoulli_assignment,
    fixed_fraction_assignment,
)
from repro.core.estimands import EstimandSet, PotentialOutcomeCurve
from repro.core.estimators import (
    DifferenceInMeans,
    EstimateWithCI,
    difference_in_means,
    quantile_treatment_effect,
)

__all__ = [
    "OutcomeTable",
    "Session",
    "Unit",
    "Assignment",
    "bernoulli_assignment",
    "fixed_fraction_assignment",
    "EstimandSet",
    "PotentialOutcomeCurve",
    "DifferenceInMeans",
    "EstimateWithCI",
    "difference_in_means",
    "quantile_treatment_effect",
]
