"""Tests for the composable network layer (paths, per-flow RTT, loss,
cross traffic, parking-lot topologies)."""

import pytest

from repro.netsim.packet.network import (
    DEFAULT_QUEUE,
    Network,
    PathConfig,
    QueueConfig,
    parking_lot_path,
    parking_lot_queues,
)
from repro.netsim.packet.simulation import FlowConfig, simulate


class TestPathConfig:
    def test_defaults(self):
        path = PathConfig()
        assert path.rtt_ms is None
        assert path.loss_rate == 0.0
        assert path.queues == (DEFAULT_QUEUE,)

    def test_invalid_loss_rate_raises(self):
        with pytest.raises(ValueError):
            PathConfig(loss_rate=1.0)
        with pytest.raises(ValueError):
            PathConfig(loss_rate=-0.1)

    def test_invalid_rtt_raises(self):
        with pytest.raises(ValueError):
            PathConfig(rtt_ms=0.0)

    def test_empty_queue_sequence_raises(self):
        with pytest.raises(ValueError):
            PathConfig(queues=())

    def test_duplicate_queue_in_path_raises(self):
        # Routing is by queue name; a repeated name would loop forever.
        with pytest.raises(ValueError, match="distinct"):
            PathConfig(queues=("bottleneck", "access", "bottleneck"))


class TestPerFlowRtt:
    def test_short_rtt_flow_wins_under_droptail(self):
        # Classic Reno RTT unfairness: throughput ~ 1/RTT on a shared
        # drop-tail bottleneck.
        result = simulate(
            [FlowConfig(0, rtt_ms=10.0), FlowConfig(1, rtt_ms=80.0)],
            capacity_mbps=20.0,
            duration_s=8.0,
            warmup_s=2.0,
        )
        short, long_ = result.flow(0), result.flow(1)
        assert short.throughput_mbps > 2.0 * long_.throughput_mbps

    def test_flow_rtt_overrides_path_rtt(self):
        override = simulate(
            [FlowConfig(0, rtt_ms=10.0, path=PathConfig(rtt_ms=80.0))],
            capacity_mbps=10.0, duration_s=4.0, warmup_s=1.0,
        )
        direct = simulate(
            [FlowConfig(0, rtt_ms=10.0)],
            capacity_mbps=10.0, duration_s=4.0, warmup_s=1.0,
        )
        assert override == direct

    def test_path_rtt_used_when_flow_rtt_unset(self):
        via_path = simulate(
            [FlowConfig(0, path=PathConfig(rtt_ms=40.0))],
            capacity_mbps=10.0, duration_s=4.0, warmup_s=1.0,
        )
        via_flow = simulate(
            [FlowConfig(0, rtt_ms=40.0)],
            capacity_mbps=10.0, duration_s=4.0, warmup_s=1.0,
        )
        assert via_path == via_flow

    def test_invalid_flow_rtt_raises(self):
        with pytest.raises(ValueError):
            FlowConfig(0, rtt_ms=-1.0)


class TestRandomLoss:
    def test_loss_segment_decouples_loss_from_congestion(self):
        # Plenty of capacity: the queue never drops, yet the impaired flow
        # still loses packets and underperforms its clean peer.
        result = simulate(
            [FlowConfig(0, path=PathConfig(loss_rate=0.02)), FlowConfig(1)],
            capacity_mbps=50.0,
            duration_s=6.0,
            warmup_s=2.0,
            seed=3,
        )
        impaired, clean = result.flow(0), result.flow(1)
        assert impaired.packets_lost > 0
        assert impaired.throughput_mbps < clean.throughput_mbps
        # Random losses are counted in total_drops but not queue drops.
        assert result.total_drops > result.queue_drops[DEFAULT_QUEUE]

    def test_loss_runs_deterministic_given_seed(self):
        def run(seed):
            return simulate(
                [FlowConfig(0, path=PathConfig(loss_rate=0.05))],
                capacity_mbps=20.0, duration_s=5.0, warmup_s=1.0, seed=seed,
            )

        assert run(9) == run(9)
        assert run(9) != run(10)


class TestMultiQueuePaths:
    def test_series_path_limited_by_slowest_queue(self):
        network = Network(capacity_mbps=50.0, base_rtt_ms=20.0)
        network.add_queue("access", capacity_mbps=10.0, buffer_bdp=1.0)
        network.add_flow(FlowConfig(0, path=PathConfig(queues=("access", DEFAULT_QUEUE))))
        network.add_flow(FlowConfig(1))
        result = network.run(duration_s=6.0, warmup_s=2.0)
        constrained, free = result.flow(0), result.flow(1)
        assert constrained.throughput_mbps < 11.0  # capped by the access link
        assert free.throughput_mbps > 30.0
        assert set(result.queue_drops) == {"access", DEFAULT_QUEUE}

    def test_unknown_queue_in_path_raises(self):
        network = Network()
        with pytest.raises(KeyError, match="unknown queue"):
            network.add_flow(FlowConfig(0, path=PathConfig(queues=("nope",))))

    def test_duplicate_queue_name_raises(self):
        network = Network()
        with pytest.raises(ValueError, match="already exists"):
            network.add_queue(DEFAULT_QUEUE, capacity_mbps=5.0, buffer_bdp=1.0)

    def test_buffer_spec_exactly_one_of(self):
        network = Network()
        with pytest.raises(ValueError):
            network.add_queue("q1", capacity_mbps=5.0)
        with pytest.raises(ValueError):
            network.add_queue("q2", capacity_mbps=5.0, buffer_bytes=1000.0, buffer_bdp=1.0)


class TestCrossTraffic:
    def test_cross_traffic_excluded_from_results_but_competes(self):
        # A lone measured flow against heavy cross traffic: the result
        # reports one flow, yet its throughput is a fraction of the link.
        solo = simulate(
            [FlowConfig(0)], capacity_mbps=20.0, duration_s=6.0, warmup_s=2.0
        )
        crowded = simulate(
            [FlowConfig(0)],
            capacity_mbps=20.0,
            duration_s=6.0,
            warmup_s=2.0,
            cross_traffic=[FlowConfig(100 + i) for i in range(3)],
        )
        assert [f.flow_id for f in crowded.flows] == [0]
        assert crowded.flow(0).throughput_mbps < 0.5 * solo.flow(0).throughput_mbps

    def test_cross_traffic_drops_appear_in_queue_counters(self):
        result = simulate(
            [FlowConfig(0)],
            capacity_mbps=20.0,
            duration_s=6.0,
            warmup_s=2.0,
            cross_traffic=[FlowConfig(100 + i) for i in range(3)],
        )
        # The queue saw much more traffic than the one measured flow sent.
        assert result.queue_drops[DEFAULT_QUEUE] > result.flow(0).packets_lost

    def test_cross_traffic_id_collision_raises(self):
        with pytest.raises(ValueError, match="unique"):
            simulate(
                [FlowConfig(0)],
                duration_s=2.0,
                warmup_s=1.0,
                cross_traffic=[FlowConfig(0)],
            )

    def test_cross_traffic_alone_is_rejected(self):
        network = Network()
        network.add_cross_traffic(FlowConfig(7))
        with pytest.raises(ValueError, match="at least one flow"):
            network.run(duration_s=2.0, warmup_s=1.0)


class TestQueueConfig:
    def test_add_queue_config_round_trip(self):
        network = Network(capacity_mbps=50.0)
        queue = network.add_queue_config(
            QueueConfig(name="access", capacity_mbps=10.0, buffer_bytes=30_000.0)
        )
        assert network.queues["access"] is queue
        assert queue.buffer_bytes == 30_000.0

    def test_defaults_to_one_bdp_buffer(self):
        network = Network(capacity_mbps=50.0, base_rtt_ms=20.0)
        queue = network.add_queue_config(QueueConfig(name="q", capacity_mbps=10.0))
        assert queue.buffer_bytes == pytest.approx(10e6 / 8.0 * 0.02)

    def test_params_reach_the_discipline(self):
        network = Network()
        queue = network.add_queue_config(
            QueueConfig(
                name="aqm",
                capacity_mbps=10.0,
                discipline="codel",
                params={"target_delay_s": 0.02},
            )
        )
        assert queue._codel.target_s == 0.02

    def test_invalid_configs_raise(self):
        with pytest.raises(ValueError):
            QueueConfig(name="q", capacity_mbps=0.0)
        with pytest.raises(ValueError):
            QueueConfig(name="q", capacity_mbps=1.0, buffer_bytes=1.0, buffer_bdp=1.0)


class TestParkingLotBuilders:
    def test_queues_named_in_sequence(self):
        queues = parking_lot_queues(3, 20.0)
        assert [q.name for q in queues] == ["seg0", "seg1", "seg2"]
        assert all(q.capacity_mbps == 20.0 for q in queues)

    def test_path_spans_consecutive_segments(self):
        assert parking_lot_path(1, 4).queues == ("seg1", "seg2")
        assert parking_lot_path(0, 4, span=3).queues == ("seg0", "seg1", "seg2")

    def test_path_start_clamped_to_chain(self):
        assert parking_lot_path(5, 4).queues == ("seg2", "seg3")

    def test_single_segment_path_for_cross_traffic(self):
        assert parking_lot_path(2, 4, span=1).queues == ("seg2",)

    def test_invalid_arguments_raise(self):
        with pytest.raises(ValueError):
            parking_lot_queues(1, 20.0)
        with pytest.raises(ValueError):
            parking_lot_path(0, 4, span=0)
        with pytest.raises(ValueError):
            parking_lot_path(0, 4, span=5)
        with pytest.raises(ValueError):
            parking_lot_path(-1, 4)

    def test_parking_lot_simulation_runs_end_to_end(self):
        result = simulate(
            [
                FlowConfig(i, path=parking_lot_path(i % 3, 4))
                for i in range(4)
            ],
            capacity_mbps=20.0,
            duration_s=6.0,
            warmup_s=2.0,
            extra_queues=parking_lot_queues(4, 20.0),
            cross_traffic=[
                FlowConfig(100 + s, path=parking_lot_path(s, 4, span=1))
                for s in range(4)
            ],
        )
        assert len(result.flows) == 4
        assert {f"seg{i}" for i in range(4)} <= set(result.queue_drops)
        assert result.total_throughput_mbps() > 0.0


class TestFqCodelThroughNetwork:
    def test_subqueues_keyed_by_application_not_connection(self):
        # Per-unit fair queueing: a 2-connection app and a 1-connection
        # app get (approximately) the same share, unlike under drop-tail.
        def shares(discipline):
            result = simulate(
                [FlowConfig(0, connections=2), FlowConfig(1, connections=1)],
                capacity_mbps=20.0,
                duration_s=8.0,
                warmup_s=2.0,
                queue_discipline=discipline,
            )
            return result.flow(0).throughput_mbps, result.flow(1).throughput_mbps

        fq_two, fq_one = shares("fq_codel")
        dt_two, dt_one = shares("droptail")
        assert fq_two / fq_one < 1.2  # near-equal under per-unit FQ
        assert dt_two / dt_one > 1.5  # connection count pays under FIFO


class TestNetworkValidation:
    def test_duplicate_flow_id_raises(self):
        network = Network()
        network.add_flow(FlowConfig(0))
        with pytest.raises(ValueError, match="already attached"):
            network.add_flow(FlowConfig(0))

    def test_run_without_flows_raises(self):
        with pytest.raises(ValueError, match="at least one flow"):
            Network().run(duration_s=2.0, warmup_s=1.0)

    def test_warmup_must_precede_duration(self):
        network = Network()
        network.add_flow(FlowConfig(0))
        with pytest.raises(ValueError, match="duration_s"):
            network.run(duration_s=1.0, warmup_s=1.0)

    def test_invalid_network_parameters_raise(self):
        with pytest.raises(ValueError):
            Network(capacity_mbps=0.0)
        with pytest.raises(ValueError):
            Network(base_rtt_ms=0.0)


class TestAqmEndToEnd:
    def test_codel_keeps_rtts_lower_than_droptail(self):
        # AQM's point: a short standing queue.  Mean measured RTT inflation
        # under CoDel must be below drop-tail's (1-BDP buffer doubles RTT).
        def mean_srtt(discipline):
            network = Network(
                capacity_mbps=20.0, base_rtt_ms=20.0, queue_discipline=discipline
            )
            for i in range(4):
                network.add_flow(FlowConfig(i))
            network.run(duration_s=8.0, warmup_s=2.0)
            senders = network._senders.values()
            return sum(s.srtt for s in senders) / len(senders)

        assert mean_srtt("codel") < mean_srtt("droptail")

    def test_red_discipline_runs_through_simulate(self):
        result = simulate(
            [FlowConfig(i) for i in range(3)],
            capacity_mbps=20.0,
            duration_s=6.0,
            warmup_s=2.0,
            queue_discipline="red",
            seed=2,
        )
        assert result.total_drops > 0
        assert result.total_throughput_mbps() > 15.0

    def test_simulate_seed_reaches_red_queue(self):
        # The network builder forwards its seed to seed-consuming
        # disciplines, so different seeds must perturb RED's drops.
        def run(seed):
            return simulate(
                [FlowConfig(i) for i in range(3)],
                capacity_mbps=20.0, duration_s=6.0, warmup_s=2.0,
                queue_discipline="red", seed=seed,
            )

        assert run(2) == run(2)
        assert run(2) != run(3)

    def test_explicit_queue_params_seed_wins(self):
        # A seed pinned in queue_params overrides the network-level seed.
        def run(sim_seed):
            return simulate(
                [FlowConfig(i) for i in range(3)],
                capacity_mbps=20.0, duration_s=6.0, warmup_s=2.0,
                queue_discipline="red", queue_params={"seed": 5}, seed=sim_seed,
            )

        assert run(1) == run(2)


class TestHeterogeneousParkingLot:
    """Per-segment capacities: the binding bottleneck can migrate."""

    def test_capacities_build_per_segment_queues(self):
        queues = parking_lot_queues(3, capacities=(10.0, 20.0, 30.0))
        assert [q.name for q in queues] == ["seg0", "seg1", "seg2"]
        assert [q.capacity_mbps for q in queues] == [10.0, 20.0, 30.0]

    def test_uniform_capacities_match_scalar_form(self):
        assert parking_lot_queues(3, 20.0) == parking_lot_queues(
            3, capacities=(20.0, 20.0, 20.0)
        )

    def test_exactly_one_capacity_spelling_required(self):
        with pytest.raises(ValueError, match="exactly one"):
            parking_lot_queues(2)
        with pytest.raises(ValueError, match="exactly one"):
            parking_lot_queues(2, 10.0, capacities=(10.0, 10.0))

    def test_capacity_list_validated(self):
        with pytest.raises(ValueError, match="one value per segment"):
            parking_lot_queues(3, capacities=(10.0, 10.0))
        with pytest.raises(ValueError, match="positive"):
            parking_lot_queues(2, capacities=(10.0, -1.0))

    def _chain_run(self, capacities):
        # A flow spanning the whole chain congests exactly one segment:
        # the narrowest.  Ack-clocked packets arrive at the wider
        # segments already paced to the binding rate, so no other queue
        # ever builds a backlog.
        n = len(capacities)
        return simulate(
            [FlowConfig(0, connections=2, path=parking_lot_path(0, n, span=n))],
            capacity_mbps=50.0,
            duration_s=6.0,
            warmup_s=2.0,
            extra_queues=parking_lot_queues(n, capacities=capacities),
        )

    def test_binding_bottleneck_follows_the_narrow_segment(self):
        # Skewing the capacity allocation moves the congestion: the
        # narrow segment collects every drop, and flipping the skew
        # migrates the binding bottleneck to the other end of the chain.
        lopsided_first = self._chain_run((8.0, 30.0, 30.0))
        lopsided_last = self._chain_run((30.0, 30.0, 8.0))
        assert lopsided_first.queue_drops["seg0"] > 0
        assert lopsided_first.queue_drops["seg1"] == 0
        assert lopsided_first.queue_drops["seg2"] == 0
        assert lopsided_last.queue_drops["seg2"] > 0
        assert lopsided_last.queue_drops["seg0"] == 0
        assert lopsided_last.queue_drops["seg1"] == 0
        # Throughput is pinned by the 8 Mb/s binding segment either way.
        assert lopsided_first.flow(0).throughput_mbps < 9.0
        assert lopsided_last.flow(0).throughput_mbps < 9.0

    def test_binding_bottleneck_migrates_with_traffic_allocation(self):
        # Same heterogeneous chain, different *traffic* allocation: load
        # piled onto the roomy segment eventually makes it the binding
        # one, even though the narrow segment has less capacity.
        def run(extra_connections_on_seg1):
            flows = [
                FlowConfig(0, path=parking_lot_path(0, 2, span=2)),
                FlowConfig(1, path=parking_lot_path(0, 2, span=1)),
                FlowConfig(
                    2,
                    connections=8 if extra_connections_on_seg1 else 1,
                    path=parking_lot_path(1, 2, span=1),
                ),
            ]
            return simulate(
                flows,
                capacity_mbps=50.0,
                duration_s=6.0,
                warmup_s=2.0,
                extra_queues=parking_lot_queues(2, capacities=(10.0, 25.0)),
            )

        balanced = run(False)
        shifted = run(True)

        def drop_share_seg1(result):
            total = result.queue_drops["seg0"] + result.queue_drops["seg1"]
            return result.queue_drops["seg1"] / max(total, 1)

        # Lightly loaded, the narrow seg0 binds; piling connections onto
        # seg1 migrates the drop concentration to the roomy segment.
        assert drop_share_seg1(balanced) < 0.5
        assert drop_share_seg1(shifted) > drop_share_seg1(balanced) + 0.2
