"""Shared machinery for the lab-experiment figures (Figures 2 and 3).

The paper's lab figures all have the same structure: the x-axis sweeps the
A/B-test allocation (how many of the ten units are treated), and for every
allocation the figure shows the treated and control groups' mean throughput
and retransmission rate.  :class:`LabFigure` packages those rows together
with the derived estimands (naive A/B estimates at each allocation, TTE,
spillover) so benchmarks and examples can print them directly.

This module also hosts the figure taxonomy shared by the sweep CLI and
the campaign compiler (which figures consume which knobs, which consume
the seed) and :func:`figure_cells_spec`, the single constructor every
experiment module's spec-producing entry point delegates to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.estimands import PotentialOutcomeCurve
from repro.netsim.fluid.lab import LAB_METRICS, LabSweepResult
from repro.runner.spec import ScenarioSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.netsim.packet.sweep import PacketSweepResult

__all__ = [
    "LabFigureRow",
    "LabFigure",
    "sweep_to_figure",
    "packet_sweep_to_figure",
    "figure_cells_spec",
    "LAB_CELL_FIGURES",
    "PAIRED_CELL_FIGURES",
    "TOPOLOGY_CELL_FIGURES",
    "FLEET_CELL_FIGURES",
    "DETERMINISTIC_FIGURES",
]

#: Fluid-lab figures: consume ``noise`` (and the seed that draws it).
LAB_CELL_FIGURES: tuple[str, ...] = ("fig2a", "fig2b", "fig3")

#: Paired-link workload figures: consume ``quick`` and the workload seed.
PAIRED_CELL_FIGURES: tuple[str, ...] = (
    "baseline",
    "fig5",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
)

#: Packet-level topology figures: consume ``quick``.
TOPOLOGY_CELL_FIGURES: tuple[str, ...] = (
    "topo_rtt",
    "topo_aqm",
    "topo_parking",
    "topo_fq",
    "topo_churn",
    "topo_l4s",
)

#: The sharded fleet experiment: consumes ``quick`` and the fleet seed.
FLEET_CELL_FIGURES: tuple[str, ...] = ("fleet",)

#: Figures whose cells are a pure function of their knobs — no seed
#: consumer anywhere, so replications collapse to one seed-free arm.
#: (topo_churn draws arrivals and flow sizes from the seed; the other
#: topology figures are deterministic packet sims.)
DETERMINISTIC_FIGURES: tuple[str, ...] = (
    "topo_rtt",
    "topo_aqm",
    "topo_parking",
    "topo_fq",
    "topo_l4s",
)


def figure_cells_spec(
    figure: str,
    quick: bool = False,
    noise: float = 0.0,
    seed: int | None = 0,
    label: str | None = None,
) -> ScenarioSpec:
    """A content-keyed :class:`ScenarioSpec` for one ``figure.cells`` arm.

    Applies the inert-knob rule so equal computations share a content
    key: lab figures carry only ``noise`` (they ignore ``quick``), every
    other figure carries only ``quick`` (they ignore ``noise``), and
    deterministic figures are normalized to ``seed=None`` so replications
    cannot split the cache.  Defaults match the ``figure.cells`` task
    defaults, so a knob left at its default keys identically to one
    never passed at all.
    """
    from repro.runner.tasks import FIGURE_CELL_TASKS

    if figure not in FIGURE_CELL_TASKS:
        raise KeyError(
            f"unknown figure {figure!r}; choose one of {FIGURE_CELL_TASKS}"
        )
    params: dict[str, object] = {"figure": figure}
    if figure in LAB_CELL_FIGURES:
        params["noise"] = float(noise)
    else:
        params["quick"] = bool(quick)
    deterministic = figure in DETERMINISTIC_FIGURES
    arm_seed = None if deterministic else (None if seed is None else int(seed))
    if label is None:
        label = f"{figure}[deterministic]" if deterministic else f"{figure}[seed={arm_seed}]"
    return ScenarioSpec(task="figure.cells", params=params, seed=arm_seed, label=label)


@dataclass(frozen=True)
class LabFigureRow:
    """One x-axis point of a lab figure: an A/B test at one allocation."""

    n_treated: int
    n_control: int
    allocation: float
    treatment_throughput_mbps: float | None
    control_throughput_mbps: float | None
    treatment_retransmit: float | None
    control_retransmit: float | None

    @property
    def ab_throughput_effect(self) -> float | None:
        """Naive A/B throughput estimate at this allocation, Mb/s."""
        if self.treatment_throughput_mbps is None or self.control_throughput_mbps is None:
            return None
        return self.treatment_throughput_mbps - self.control_throughput_mbps

    @property
    def ab_retransmit_effect(self) -> float | None:
        """Naive A/B retransmission estimate at this allocation."""
        if self.treatment_retransmit is None or self.control_retransmit is None:
            return None
        return self.treatment_retransmit - self.control_retransmit


@dataclass
class LabFigure:
    """All rows of a lab figure plus the derived causal quantities."""

    name: str
    description: str
    rows: list[LabFigureRow]
    throughput_curve: PotentialOutcomeCurve
    retransmit_curve: PotentialOutcomeCurve

    def tte(self, metric: str) -> float:
        """Total treatment effect for ``throughput_mbps`` or ``retransmit_fraction``."""
        return self._curve(metric).tte()

    def spillover(self, metric: str, allocation: float) -> float:
        """Spillover on control units at the given allocation."""
        return self._curve(metric).spillover(allocation)

    def ab_estimate(self, metric: str, allocation: float) -> float:
        """Naive A/B estimate at the given allocation."""
        return self._curve(metric).ate(allocation)

    def _curve(self, metric: str) -> PotentialOutcomeCurve:
        if metric == "throughput_mbps":
            return self.throughput_curve
        if metric == "retransmit_fraction":
            return self.retransmit_curve
        raise KeyError(f"unknown lab metric {metric!r}; expected one of {LAB_METRICS}")

    def summary_lines(self) -> list[str]:
        """Human-readable summary, one line per allocation plus estimands."""
        lines = [f"{self.name}: {self.description}"]
        header = (
            f"{'treated':>8} {'T thr (Mb/s)':>14} {'C thr (Mb/s)':>14} "
            f"{'T retx':>10} {'C retx':>10}"
        )
        lines.append(header)
        for row in self.rows:
            t = row.treatment_throughput_mbps
            c = row.control_throughput_mbps
            t_thr = "-" if t is None else f"{t:.0f}"
            c_thr = "-" if c is None else f"{c:.0f}"
            t_rtx = "-" if row.treatment_retransmit is None else f"{row.treatment_retransmit:.4f}"
            c_rtx = "-" if row.control_retransmit is None else f"{row.control_retransmit:.4f}"
            lines.append(
                f"{row.n_treated:>8} {t_thr:>14} {c_thr:>14} {t_rtx:>10} {c_rtx:>10}"
            )
        lines.append(
            f"TTE throughput = {self.tte('throughput_mbps'):+.1f} Mb/s, "
            f"TTE retransmit = {self.tte('retransmit_fraction'):+.5f}"
        )
        return lines


def sweep_to_figure(sweep: LabSweepResult, name: str, description: str) -> LabFigure:
    """Convert a lab allocation sweep into the figure representation."""
    rows: list[LabFigureRow] = []
    for k in sorted(sweep.results):
        result = sweep.results[k]
        n = sweep.n_units
        rows.append(
            LabFigureRow(
                n_treated=k,
                n_control=n - k,
                allocation=k / n,
                treatment_throughput_mbps=(
                    result.group_mean("throughput_mbps", True) if k > 0 else None
                ),
                control_throughput_mbps=(
                    result.group_mean("throughput_mbps", False) if k < n else None
                ),
                treatment_retransmit=(
                    result.group_mean("retransmit_fraction", True) if k > 0 else None
                ),
                control_retransmit=(
                    result.group_mean("retransmit_fraction", False) if k < n else None
                ),
            )
        )
    return LabFigure(
        name=name,
        description=description,
        rows=rows,
        throughput_curve=sweep.curve("throughput_mbps"),
        retransmit_curve=sweep.curve("retransmit_fraction"),
    )


def packet_sweep_to_figure(
    sweep: PacketSweepResult, name: str, description: str
) -> LabFigure:
    """Convert a packet-level allocation sweep into the figure representation.

    The packet and fluid sweeps expose the same potential-outcome curve
    interface, so the resulting :class:`LabFigure` is interchangeable with
    the fluid-model figures downstream (summary lines, TTE, spillover).
    """
    rows: list[LabFigureRow] = []
    for k in sorted(sweep.results):
        result = sweep.results[k]
        n = sweep.n_units
        rows.append(
            LabFigureRow(
                n_treated=k,
                n_control=n - k,
                allocation=k / n,
                treatment_throughput_mbps=(
                    result.group_mean_throughput(True) if k > 0 else None
                ),
                control_throughput_mbps=(
                    result.group_mean_throughput(False) if k < n else None
                ),
                treatment_retransmit=(
                    result.group_mean_retransmit(True) if k > 0 else None
                ),
                control_retransmit=(
                    result.group_mean_retransmit(False) if k < n else None
                ),
            )
        )
    return LabFigure(
        name=name,
        description=description,
        rows=rows,
        throughput_curve=sweep.curve("throughput_mbps"),
        retransmit_curve=sweep.curve("retransmit_fraction"),
    )
