"""Tests for the benchmark-tracking gate (BENCH_*.json trajectory).

The CI bench job exports per-test wall times to JSON and fails the build
on a >3x regression against the committed ``BENCH_baseline.json``; these
tests pin the comparison logic and the committed baseline's shape.
"""

import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE = REPO_ROOT / "BENCH_baseline.json"


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_regression", REPO_ROOT / "benchmarks" / "check_regression.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


checker = _load_checker()


class TestCompare:
    def test_within_threshold_passes(self):
        rows = checker.compare({"t": 1.0}, {"t": 0.9})
        assert len(rows) == 1
        assert not rows[0]["regressed"]
        assert rows[0]["ratio"] == pytest.approx(1.0 / 0.9)

    def test_beyond_threshold_fails(self):
        (row,) = checker.compare({"t": 3.1}, {"t": 1.0})
        assert row["regressed"]
        assert row["ratio"] == pytest.approx(3.1)

    def test_noise_floor_shields_fast_tests(self):
        # 10x slower but still sub-half-second: CI jitter, not a signal.
        (row,) = checker.compare({"t": 0.4}, {"t": 0.04})
        assert not row["regressed"]

    def test_one_sided_tests_never_fail_the_gate(self):
        rows = checker.compare({"new": 9.0}, {"old": 1.0})
        assert {row["nodeid"] for row in rows} == {"new", "old"}
        assert not any(row["regressed"] for row in rows)

    def test_custom_threshold(self):
        (row,) = checker.compare({"t": 1.6}, {"t": 1.0}, threshold=1.5)
        assert row["regressed"]

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            checker.compare({}, {}, threshold=1.0)
        with pytest.raises(ValueError):
            checker.compare({}, {}, min_seconds=-1.0)


class TestCli:
    def _write(self, path, timings):
        path.write_text(json.dumps({"schema": 1, "timings": timings}))
        return path

    def test_green_run_exits_zero(self, tmp_path, capsys):
        current = self._write(tmp_path / "current.json", {"t": 1.0})
        baseline = self._write(tmp_path / "baseline.json", {"t": 0.8})
        assert checker.main([str(current), "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "no regression" in out

    def test_regression_exits_nonzero_and_names_the_test(self, tmp_path, capsys):
        current = self._write(tmp_path / "current.json", {"slow": 6.0, "ok": 1.0})
        baseline = self._write(tmp_path / "baseline.json", {"slow": 1.0, "ok": 1.0})
        assert checker.main([str(current), "--baseline", str(baseline)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out
        assert "slow" in out

    def test_missing_baseline_is_not_an_error(self, tmp_path, capsys):
        # First run on a branch that predates the baseline: report, pass.
        current = self._write(tmp_path / "current.json", {"t": 1.0})
        missing = tmp_path / "nope.json"
        assert checker.main([str(current), "--baseline", str(missing)]) == 0
        assert "nothing to compare" in capsys.readouterr().out


class TestCommittedBaseline:
    def test_baseline_exists_with_expected_schema(self):
        payload = json.loads(BASELINE.read_text())
        assert payload["schema"] == 1
        assert payload["timings"]
        for nodeid, seconds in payload["timings"].items():
            assert nodeid.startswith("benchmarks/")
            assert "::" in nodeid
            assert seconds > 0.0

    def test_baseline_covers_the_l4s_benchmarks(self):
        payload = json.loads(BASELINE.read_text())
        assert any("test_l4s.py" in nodeid for nodeid in payload["timings"])

    def test_baseline_loads_through_the_checker(self):
        timings = checker.load_timings(BASELINE)
        rows = checker.compare(timings, timings)
        assert rows and all(row["ratio"] == pytest.approx(1.0) for row in rows)
        assert not any(row["regressed"] for row in rows)
