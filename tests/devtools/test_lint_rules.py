"""Per-rule fixture tests: each rule fires on the bad form, stays silent
on the good form, and honours inline suppressions."""

import textwrap

import pytest

from repro.devtools.lint import lint_paths


def lint_snippet(tmp_path, code, select=None, name="snippet.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(code))
    return lint_paths([path], select=select)


def codes(diagnostics):
    return [d.code for d in diagnostics]


class TestDet001UnseededRandomness:
    def test_module_level_random_call_fires(self, tmp_path):
        diags = lint_snippet(
            tmp_path,
            """
            import random

            def jitter():
                return random.random()
            """,
            select=["DET001"],
        )
        assert codes(diags) == ["DET001"]
        assert diags[0].line == 5

    def test_np_random_global_fires(self, tmp_path):
        diags = lint_snippet(
            tmp_path,
            """
            import numpy as np

            def draw():
                return np.random.rand(3)
            """,
            select=["DET001"],
        )
        assert codes(diags) == ["DET001"]
        assert "numpy.random.rand" in diags[0].message

    def test_from_import_alias_fires(self, tmp_path):
        diags = lint_snippet(
            tmp_path,
            """
            from random import randint

            def roll():
                return randint(1, 6)
            """,
            select=["DET001"],
        )
        assert codes(diags) == ["DET001"]

    def test_unseeded_default_rng_fires(self, tmp_path):
        diags = lint_snippet(
            tmp_path,
            """
            import numpy as np

            def draw():
                return np.random.default_rng().random()
            """,
            select=["DET001"],
        )
        assert codes(diags) == ["DET001"]
        assert "without a seed" in diags[0].message

    def test_seeded_generators_are_clean(self, tmp_path):
        diags = lint_snippet(
            tmp_path,
            """
            import random

            import numpy as np

            def draw(seed):
                rng = np.random.default_rng(seed)
                local = random.Random(seed)
                return rng.random() + local.random()
            """,
            select=["DET001"],
        )
        assert diags == []

    def test_instance_named_random_is_clean(self, tmp_path):
        # No ``import random``: a parameter named random is someone's rng.
        diags = lint_snippet(
            tmp_path,
            """
            def draw(random):
                return random.random()
            """,
            select=["DET001"],
        )
        assert diags == []

    def test_suppression_honoured(self, tmp_path):
        diags = lint_snippet(
            tmp_path,
            """
            import random

            def jitter():
                return random.random()  # repro-lint: disable=DET001
            """,
            select=["DET001"],
        )
        assert diags == []


class TestDet002WallClock:
    def test_time_time_fires(self, tmp_path):
        diags = lint_snippet(
            tmp_path,
            """
            import time

            def stamp():
                return time.time()
            """,
            select=["DET002"],
        )
        assert codes(diags) == ["DET002"]
        assert diags[0].line == 5

    def test_datetime_now_fires(self, tmp_path):
        diags = lint_snippet(
            tmp_path,
            """
            from datetime import datetime

            def stamp():
                return datetime.now()
            """,
            select=["DET002"],
        )
        assert codes(diags) == ["DET002"]

    def test_from_import_time_fires(self, tmp_path):
        diags = lint_snippet(
            tmp_path,
            """
            from time import perf_counter

            def stamp():
                return perf_counter()
            """,
            select=["DET002"],
        )
        assert codes(diags) == ["DET002"]

    def test_simulated_clock_is_clean(self, tmp_path):
        diags = lint_snippet(
            tmp_path,
            """
            def advance(scheduler):
                return scheduler.now() + 1.0
            """,
            select=["DET002"],
        )
        assert diags == []

    def test_suppression_honoured(self, tmp_path):
        diags = lint_snippet(
            tmp_path,
            """
            import time

            def stamp():
                # benchmark harness timing, not simulated time
                # repro-lint: disable=DET002
                return time.time()
            """,
            select=["DET002"],
        )
        assert diags == []


class TestDet003UnorderedIteration:
    def test_for_over_set_literal_fires(self, tmp_path):
        diags = lint_snippet(
            tmp_path,
            """
            def schedule(events):
                out = []
                for e in {1, 2, 3}:
                    out.append(e)
                return out
            """,
            select=["DET003"],
        )
        assert codes(diags) == ["DET003"]
        assert diags[0].line == 4

    def test_for_over_set_call_fires(self, tmp_path):
        diags = lint_snippet(
            tmp_path,
            """
            def assemble(units):
                for u in set(units):
                    yield u
            """,
            select=["DET003"],
        )
        assert codes(diags) == ["DET003"]

    def test_list_of_set_bound_name_fires(self, tmp_path):
        diags = lint_snippet(
            tmp_path,
            """
            def assemble(units):
                pending = set(units)
                return list(pending)
            """,
            select=["DET003"],
        )
        assert codes(diags) == ["DET003"]

    def test_comprehension_over_keys_fires(self, tmp_path):
        diags = lint_snippet(
            tmp_path,
            """
            def assemble(cells):
                return [cells[k] for k in cells.keys()]
            """,
            select=["DET003"],
        )
        assert codes(diags) == ["DET003"]

    def test_set_union_fires(self, tmp_path):
        diags = lint_snippet(
            tmp_path,
            """
            def merge(a, b):
                for key in set(a) | set(b):
                    yield key
            """,
            select=["DET003"],
        )
        assert codes(diags) == ["DET003"]

    def test_sorted_set_is_clean(self, tmp_path):
        diags = lint_snippet(
            tmp_path,
            """
            def merge(a, b):
                for key in sorted(set(a) | set(b)):
                    yield key
            """,
            select=["DET003"],
        )
        assert diags == []

    def test_membership_test_is_clean(self, tmp_path):
        diags = lint_snippet(
            tmp_path,
            """
            def filter_units(units, treated):
                treated_set = set(treated)
                return [u for u in units if u in treated_set]
            """,
            select=["DET003"],
        )
        assert diags == []

    def test_dict_direct_iteration_is_clean(self, tmp_path):
        # Plain ``for k in d`` follows insertion order deliberately.
        diags = lint_snippet(
            tmp_path,
            """
            def assemble(cells):
                return [cells[k] for k in cells]
            """,
            select=["DET003"],
        )
        assert diags == []

    def test_rebound_name_is_clean(self, tmp_path):
        # A name reassigned to an ordered value is no longer set-like.
        diags = lint_snippet(
            tmp_path,
            """
            def assemble(units):
                pending = set(units)
                pending = sorted(pending)
                return list(pending)
            """,
            select=["DET003"],
        )
        assert diags == []

    def test_suppression_honoured(self, tmp_path):
        diags = lint_snippet(
            tmp_path,
            """
            def assemble(units):
                for u in set(units):  # repro-lint: disable=DET003
                    yield u
            """,
            select=["DET003"],
        )
        assert diags == []


class TestKey001FrozenSpec:
    def test_unfrozen_spec_fires(self, tmp_path):
        diags = lint_snippet(
            tmp_path,
            """
            from dataclasses import dataclass

            @dataclass
            class SweepSpec:
                n_units: int = 4
            """,
            select=["KEY001"],
        )
        assert codes(diags) == ["KEY001"]
        assert "SweepSpec" in diags[0].message

    def test_frozen_false_fires(self, tmp_path):
        diags = lint_snippet(
            tmp_path,
            """
            from dataclasses import dataclass

            @dataclass(frozen=False)
            class LabConfig:
                n_units: int = 4
            """,
            select=["KEY001"],
        )
        assert codes(diags) == ["KEY001"]

    def test_mutable_default_factory_fires(self, tmp_path):
        diags = lint_snippet(
            tmp_path,
            """
            from dataclasses import dataclass, field

            @dataclass(frozen=True)
            class SweepConfig:
                knobs: dict = field(default_factory=dict)
            """,
            select=["KEY001"],
        )
        assert codes(diags) == ["KEY001"]
        assert "mutable" in diags[0].message

    def test_mutable_literal_default_fires(self, tmp_path):
        diags = lint_snippet(
            tmp_path,
            """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class SweepConfig:
                knobs: list = []
            """,
            select=["KEY001"],
        )
        assert codes(diags) == ["KEY001"]

    def test_frozen_immutable_spec_is_clean(self, tmp_path):
        diags = lint_snippet(
            tmp_path,
            """
            from dataclasses import dataclass, field

            @dataclass(frozen=True)
            class SweepSpec:
                n_units: int = 4
                allocations: tuple = field(default_factory=tuple)
            """,
            select=["KEY001"],
        )
        assert diags == []

    def test_non_spec_dataclass_is_ignored(self, tmp_path):
        diags = lint_snippet(
            tmp_path,
            """
            from dataclasses import dataclass, field

            @dataclass
            class ResultAccumulator:
                cells: dict = field(default_factory=dict)
            """,
            select=["KEY001"],
        )
        assert diags == []

    def test_suppression_honoured(self, tmp_path):
        diags = lint_snippet(
            tmp_path,
            """
            from dataclasses import dataclass, field

            @dataclass(frozen=True)
            class SweepSpec:
                knobs: dict = field(default_factory=dict)  # repro-lint: disable=KEY001
            """,
            select=["KEY001"],
        )
        assert diags == []


class TestKey002InertDefault:
    def test_defaultless_new_parameter_fires(self, tmp_path):
        diags = lint_snippet(
            tmp_path,
            """
            from repro.runner.spec import register_task

            @register_task("demo.task")
            def demo(flows, new_knob, seed=None):
                return (flows, new_knob, seed)
            """,
            select=["KEY002"],
        )
        # Neither parameter is in the (empty) baseline for demo.task.
        assert codes(diags) == ["KEY002", "KEY002"]
        assert "inert at their default" in diags[0].message

    def test_missing_seed_fires(self, tmp_path):
        diags = lint_snippet(
            tmp_path,
            """
            from repro.runner.spec import register_task

            @register_task("demo.no_seed")
            def demo(flows=()):
                return flows
            """,
            select=["KEY002"],
        )
        assert codes(diags) == ["KEY002"]
        assert "seed" in diags[0].message

    def test_defaulted_knobs_are_clean(self, tmp_path):
        diags = lint_snippet(
            tmp_path,
            """
            from repro.runner.spec import register_task

            @register_task("demo.task")
            def demo(flows=(), new_knob=False, seed=None):
                return (flows, new_knob, seed)
            """,
            select=["KEY002"],
        )
        assert diags == []

    def test_baseline_parameters_are_clean(self, tmp_path):
        # netsim.packet_arm's recorded baseline allows its original
        # required parameters to stay default-less.
        diags = lint_snippet(
            tmp_path,
            """
            from repro.runner.spec import register_task

            @register_task("netsim.packet_arm")
            def packet_arm(flows, capacity_mbps, base_rtt_ms, buffer_bdp,
                           duration_s, warmup_s, seed=None):
                return None
            """,
            select=["KEY002"],
        )
        assert diags == []

    def test_undecorated_function_is_ignored(self, tmp_path):
        diags = lint_snippet(
            tmp_path,
            """
            def helper(required_everywhere):
                return required_everywhere
            """,
            select=["KEY002"],
        )
        assert diags == []

    def test_suppression_honoured(self, tmp_path):
        diags = lint_snippet(
            tmp_path,
            """
            from repro.runner.spec import register_task

            @register_task("demo.task")  # repro-lint: disable=KEY002
            def demo(flows, seed=None):
                return flows
            """,
            select=["KEY002"],
        )
        # The decorator line anchors the seed check; the parameter check
        # anchors at the parameter itself, so suppress both lines.
        assert all(d.line != 4 for d in diags)

    def test_parameter_suppression_line(self, tmp_path):
        diags = lint_snippet(
            tmp_path,
            """
            from repro.runner.spec import register_task

            @register_task("demo.task")
            def demo(
                flows,  # repro-lint: disable=KEY002
                seed=None,
            ):
                return flows
            """,
            select=["KEY002"],
        )
        assert diags == []


class TestApi001PrivateAccess:
    def test_private_import_fires(self, tmp_path):
        diags = lint_snippet(
            tmp_path,
            """
            from repro.experiments.lab_topology import _sweep_scale
            """,
            select=["API001"],
        )
        assert codes(diags) == ["API001"]
        assert "_sweep_scale" in diags[0].message

    def test_relative_private_import_fires(self, tmp_path):
        diags = lint_snippet(
            tmp_path,
            """
            from ._helpers import _inner
            """,
            select=["API001"],
        )
        assert codes(diags) == ["API001"]

    def test_foreign_private_attribute_read_fires(self, tmp_path):
        diags = lint_snippet(
            tmp_path,
            """
            def peek(scheduler):
                return scheduler._heap[0]
            """,
            select=["API001"],
        )
        assert codes(diags) == ["API001"]
        assert "_heap" in diags[0].message

    def test_self_access_is_clean(self, tmp_path):
        diags = lint_snippet(
            tmp_path,
            """
            class Engine:
                def __init__(self):
                    self._heap = []

                def peek(self):
                    return self._heap[0]
            """,
            select=["API001"],
        )
        assert diags == []

    def test_same_module_peer_access_is_clean(self, tmp_path):
        # merge(self, other) reading other's privates is conventional
        # when the module owns the attribute.
        diags = lint_snippet(
            tmp_path,
            """
            class Stats:
                def __init__(self):
                    self._cells = {}

                def merge(self, other):
                    merged = Stats()
                    merged._cells = {**self._cells, **other._cells}
                    return merged
            """,
            select=["API001"],
        )
        assert diags == []

    def test_dunder_access_is_clean(self, tmp_path):
        diags = lint_snippet(
            tmp_path,
            """
            def name_of(obj):
                return type(obj).__name__
            """,
            select=["API001"],
        )
        assert diags == []

    def test_public_import_is_clean(self, tmp_path):
        diags = lint_snippet(
            tmp_path,
            """
            from repro.experiments.lab_topology import sweep_scale
            """,
            select=["API001"],
        )
        assert diags == []

    def test_suppression_honoured(self, tmp_path):
        diags = lint_snippet(
            tmp_path,
            """
            def peek(scheduler):
                return scheduler._heap[0]  # repro-lint: disable=API001
            """,
            select=["API001"],
        )
        assert diags == []


class TestRuleMetadata:
    def test_every_rule_has_code_summary_and_scope(self):
        from repro.devtools.lint import RULES

        assert set(RULES) == {"DET001", "DET002", "DET003", "KEY001", "KEY002", "API001"}
        for cls in RULES.values():
            assert cls.code and cls.summary
            assert cls.scopes, f"{cls.code} should be explicitly scoped"

    def test_unknown_select_raises(self, tmp_path):
        (tmp_path / "empty.py").write_text("")
        with pytest.raises(KeyError):
            lint_paths([tmp_path], select=["NOPE001"])
