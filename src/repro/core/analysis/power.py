"""Power calculations for experiment sizing.

Section 5.2 of the paper notes that the allocation size of a switchback (or
any other design) "should be large enough to give statistically significant
results, and can be determined by a power calculation".  This module
provides the standard two-sample normal-approximation power machinery:

* :func:`required_sample_size` — units per arm needed to detect a given
  effect with a given power.
* :func:`minimum_detectable_effect` — the smallest effect detectable with a
  given sample size and power.
* :func:`switchback_intervals_needed` — the same calculation expressed in
  switchback intervals, where each interval contributes a single effective
  observation (the paper's worst-case within-interval correlation
  assumption).
"""

from __future__ import annotations

import math

from scipy import stats

__all__ = [
    "required_sample_size",
    "minimum_detectable_effect",
    "switchback_intervals_needed",
]


def _z(alpha_or_power: float) -> float:
    return float(stats.norm.ppf(alpha_or_power))


def required_sample_size(
    effect_size: float,
    std_dev: float,
    power: float = 0.8,
    significance: float = 0.05,
    two_sided: bool = True,
) -> int:
    """Units per arm required to detect ``effect_size`` (absolute units).

    Uses the classical normal-approximation formula

    .. math:: n = 2 (z_{1-\\alpha/2} + z_{power})^2 \\sigma^2 / \\Delta^2
    """
    if effect_size == 0:
        raise ValueError("effect_size must be non-zero")
    if std_dev <= 0:
        raise ValueError("std_dev must be positive")
    if not 0.0 < power < 1.0:
        raise ValueError("power must be in (0, 1)")
    if not 0.0 < significance < 1.0:
        raise ValueError("significance must be in (0, 1)")
    alpha = significance / 2.0 if two_sided else significance
    z_alpha = _z(1.0 - alpha)
    z_beta = _z(power)
    n = 2.0 * (z_alpha + z_beta) ** 2 * (std_dev / effect_size) ** 2
    return int(math.ceil(n))


def minimum_detectable_effect(
    n_per_arm: int,
    std_dev: float,
    power: float = 0.8,
    significance: float = 0.05,
    two_sided: bool = True,
) -> float:
    """Smallest absolute effect detectable with ``n_per_arm`` units per arm."""
    if n_per_arm <= 0:
        raise ValueError("n_per_arm must be positive")
    if std_dev <= 0:
        raise ValueError("std_dev must be positive")
    alpha = significance / 2.0 if two_sided else significance
    z_alpha = _z(1.0 - alpha)
    z_beta = _z(power)
    return float((z_alpha + z_beta) * std_dev * math.sqrt(2.0 / n_per_arm))


def switchback_intervals_needed(
    effect_size: float,
    interval_std_dev: float,
    power: float = 0.8,
    significance: float = 0.05,
) -> int:
    """Total switchback intervals required to detect ``effect_size``.

    Under the paper's conservative analysis each interval is one effective
    observation, so the calculation is the two-sample formula applied to
    interval means, and the result is the total number of intervals (half
    of which are treatment intervals in expectation).
    """
    per_arm = required_sample_size(
        effect_size, interval_std_dev, power=power, significance=significance
    )
    return 2 * per_arm
