"""Property-based tests for the workload substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload.congestion import CongestionModel
from repro.workload.demand import DiurnalDemandModel
from repro.workload.video import BITRATE_LADDER_KBPS, BitrateCapPolicy, select_bitrate


class TestCongestionProperties:
    @given(
        load=st.floats(min_value=0.0, max_value=1000.0),
        onset=st.floats(min_value=0.5, max_value=1.0),
        exponent=st.floats(min_value=1.0, max_value=4.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_state_fields_are_bounded(self, load, onset, exponent):
        model = CongestionModel(
            congestion_onset_utilization=onset,
            throughput_degradation_exponent=exponent,
        )
        state = model.state_for_load(load)
        assert 0.0 < state.throughput_factor <= 1.0
        assert 0.0 <= state.queueing_delay_ms <= model.max_queueing_delay_ms
        assert 0.0 <= state.loss_rate <= model.max_congestion_loss
        assert state.congested == (load / model.capacity_gbps > onset)

    @given(
        load_a=st.floats(min_value=0.0, max_value=500.0),
        load_b=st.floats(min_value=0.0, max_value=500.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_more_load_never_improves_conditions(self, load_a, load_b):
        model = CongestionModel()
        low, high = sorted((load_a, load_b))
        s_low, s_high = model.state_for_load(low), model.state_for_load(high)
        assert s_high.throughput_factor <= s_low.throughput_factor + 1e-12
        assert s_high.queueing_delay_ms >= s_low.queueing_delay_ms - 1e-12
        assert s_high.loss_rate >= s_low.loss_rate - 1e-12


class TestDemandProperties:
    @given(day=st.integers(min_value=0, max_value=30), hour=st.integers(min_value=0, max_value=23))
    @settings(max_examples=100, deadline=None)
    def test_relative_demand_positive_and_bounded(self, day, hour):
        model = DiurnalDemandModel()
        demand = model.relative_demand(day, hour)
        assert demand >= 0.0
        ceiling = (
            model.peak_relative_demand() * model.weekend_factor * model.weekend_daytime_boost
        )
        assert demand <= ceiling

    @given(day=st.integers(min_value=0, max_value=30))
    @settings(max_examples=60, deadline=None)
    def test_weekday_cycle_has_period_seven(self, day):
        model = DiurnalDemandModel()
        assert model.weekday_of(day) == model.weekday_of(day + 7)
        assert model.is_weekend(day) == model.is_weekend(day + 7)


class TestVideoProperties:
    @given(throughput=st.floats(min_value=0.0, max_value=1000.0))
    @settings(max_examples=100, deadline=None)
    def test_selected_bitrate_is_a_ladder_rung(self, throughput):
        assert select_bitrate(throughput) in BITRATE_LADDER_KBPS

    @given(
        throughput=st.floats(min_value=0.0, max_value=1000.0),
        cap=st.floats(min_value=200.0, max_value=10000.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_capping_never_increases_bitrate(self, throughput, cap):
        policy = BitrateCapPolicy(cap_kbps=cap)
        capped_rate = select_bitrate(throughput, policy.ladder())
        uncapped_rate = select_bitrate(throughput)
        assert capped_rate <= uncapped_rate

    @given(cap=st.floats(min_value=1.0, max_value=20000.0))
    @settings(max_examples=60, deadline=None)
    def test_capped_ladder_is_never_empty(self, cap):
        assert len(BitrateCapPolicy(cap_kbps=cap).ladder()) >= 1
