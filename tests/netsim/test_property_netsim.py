"""Property-based tests for the fluid simulator's sharing invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim.fluid import Application, BottleneckLink, allocate_throughput, link_loss_rate
from repro.netsim.fluid.competition import CompetitionModel

cc_strategy = st.sampled_from(["reno", "cubic", "bbr"])


def application_strategy(app_id):
    return st.builds(
        Application,
        app_id=st.just(app_id),
        cc=cc_strategy,
        connections=st.integers(min_value=1, max_value=4),
        paced=st.booleans(),
    )


def applications_strategy(min_size=1, max_size=12):
    return st.integers(min_value=min_size, max_value=max_size).flatmap(
        lambda n: st.tuples(*[application_strategy(i) for i in range(n)])
    )


class TestFluidInvariants:
    @given(apps=applications_strategy())
    @settings(max_examples=100, deadline=None)
    def test_work_conservation(self, apps):
        """The link is always fully utilised by long-lived flows."""
        link = BottleneckLink()
        shares = allocate_throughput(link, list(apps))
        assert sum(shares.values()) == pytest.approx(link.capacity_mbps, rel=1e-9)

    @given(apps=applications_strategy())
    @settings(max_examples=100, deadline=None)
    def test_non_negative_shares(self, apps):
        shares = allocate_throughput(BottleneckLink(), list(apps))
        assert all(v >= 0 for v in shares.values())

    @given(apps=applications_strategy())
    @settings(max_examples=100, deadline=None)
    def test_loss_rate_is_a_probability(self, apps):
        loss = link_loss_rate(BottleneckLink(), list(apps))
        assert 0.0 <= loss <= 1.0

    @given(
        apps=applications_strategy(),
        capacity=st.floats(min_value=0.1, max_value=100.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_shares_scale_with_capacity(self, apps, capacity):
        """Doubling link capacity doubles every application's share."""
        base = BottleneckLink(capacity_gbps=capacity)
        double = BottleneckLink(capacity_gbps=2 * capacity)
        shares_base = allocate_throughput(base, list(apps))
        shares_double = allocate_throughput(double, list(apps))
        for app_id, value in shares_base.items():
            assert shares_double[app_id] == pytest.approx(2 * value, rel=1e-9)

    @given(
        n=st.integers(min_value=2, max_value=10),
        connections=st.integers(min_value=1, max_value=4),
        cc=cc_strategy,
        paced=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_identical_applications_get_identical_shares(self, n, connections, cc, paced):
        apps = [Application(i, cc=cc, connections=connections, paced=paced) for i in range(n)]
        shares = allocate_throughput(BottleneckLink(), apps)
        values = np.array(list(shares.values()))
        assert np.allclose(values, values[0])

    @given(
        n=st.integers(min_value=2, max_value=8),
        extra_connections=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=60, deadline=None)
    def test_more_connections_never_hurt_an_application(self, n, extra_connections):
        """Within loss-based traffic, adding connections weakly increases share."""
        base_apps = [Application(i, cc="reno") for i in range(n)]
        upgraded = [Application(0, cc="reno", connections=1 + extra_connections)] + [
            Application(i, cc="reno") for i in range(1, n)
        ]
        link = BottleneckLink()
        base_share = allocate_throughput(link, base_apps)[0]
        upgraded_share = allocate_throughput(link, upgraded)[0]
        assert upgraded_share >= base_share - 1e-9

    @given(share=st.floats(min_value=0.05, max_value=0.95))
    @settings(max_examples=40, deadline=None)
    def test_bbr_aggregate_share_parameter_is_respected(self, share):
        model = CompetitionModel(bbr_aggregate_share=share)
        apps = [Application(0, cc="bbr"), Application(1, cc="cubic")]
        shares = allocate_throughput(BottleneckLink(), apps, model)
        assert shares[0] == pytest.approx(share * 10000.0)
