"""Wall-time of the packet sweep under drop-tail vs CoDel.

CoDel does strictly more per-packet work than drop-tail (sojourn
bookkeeping and the control-law state machine at every dequeue), so this
pair of quick-mode benchmarks keeps the overhead of the queue-discipline
abstraction visible in the perf trajectory: if the refactored
:class:`~repro.netsim.packet.queue.QueueDiscipline` hot path regresses,
both timings move together; if CoDel's drop logic regresses, only the
second does.

Quick-mode sizing (4 units, 3 allocations, 6 s arms) keeps the pair
under a few seconds total so it can ride along in tier-1 runs.
"""

from _helpers import run_once

from repro.netsim.packet.simulation import FlowConfig
from repro.netsim.packet.sweep import run_packet_sweep

#: Quick-mode sweep sizing, matching the topology experiments' quick scale.
QUICK_KWARGS = dict(
    allocations=(0, 2, 4),
    capacity_mbps=24.0,
    duration_s=6.0,
    warmup_s=2.0,
)


def _sweep(queue_discipline):
    return run_packet_sweep(
        4,
        treatment_factory=lambda i: FlowConfig(i, cc="reno", connections=2),
        control_factory=lambda i: FlowConfig(i, cc="reno", connections=1),
        queue_discipline=queue_discipline,
        **QUICK_KWARGS,
    )


def test_droptail_sweep_quick(benchmark):
    sweep = run_once(benchmark, _sweep, "droptail")
    assert sorted(sweep.results) == [0, 2, 4]
    assert sweep.results[0].total_drops > 0


def test_codel_sweep_quick(benchmark):
    sweep = run_once(benchmark, _sweep, "codel")
    assert sorted(sweep.results) == [0, 2, 4]
    # CoDel still sees drops (its dequeue drops plus the hard limit), and
    # the sharing story is unchanged: treated apps out-earn control at 50%.
    assert sweep.results[0].total_drops > 0
    ab = sweep.ab_estimate("throughput_mbps", 0.5)
    assert ab > 0.0
