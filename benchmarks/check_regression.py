"""Benchmark regression gate: compare a timing export against a baseline.

Usage::

    BENCH_JSON=bench-timings.json python -m pytest benchmarks -q
    python benchmarks/check_regression.py bench-timings.json

Reads the JSON written by the ``BENCH_JSON`` hook in
``benchmarks/conftest.py`` and compares each test's wall time against the
committed repo-root ``BENCH_baseline.json``.  A test fails the gate when
it is more than ``--threshold`` (default 3x) slower than its baseline
*and* slower than the absolute noise floor (``--min-seconds``, default
0.5 s) — sub-second tests jitter far more than 3x on shared CI runners
without telling us anything about the code.

Tests present on only one side are reported but never fail the gate:
new benchmarks have no baseline yet, and removed ones have no current
timing.  Exit status is 1 when any regression is found, 0 otherwise.

Exports carrying a ``throughput`` section (the packet-engine
microbenchmarks' absolute pkts/sec and events/sec) additionally get a
speedup/slowdown delta table against the baseline's throughput —
informational only, so deliberate engine speedups show up in the CI
job summary without inventing a second gate.  When
``GITHUB_STEP_SUMMARY`` points at a file (as it does in GitHub
Actions), both tables are appended to it as markdown.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

#: Fail when current > threshold * baseline ...
DEFAULT_THRESHOLD = 3.0
#: ... but only for tests slower than this (seconds): below it, runner
#: jitter dwarfs any real signal.
DEFAULT_MIN_SECONDS = 0.5

#: The committed perf trajectory this gate compares against.
DEFAULT_BASELINE = Path(__file__).resolve().parent.parent / "BENCH_baseline.json"


def load_timings(path: Path) -> dict[str, float]:
    """Read a timing export, returning ``{nodeid: seconds}``."""
    payload = json.loads(Path(path).read_text())
    timings = payload.get("timings", payload)
    return {str(k): float(v) for k, v in timings.items()}


def load_throughput(path: Path) -> dict[str, dict[str, float]]:
    """Read an export's throughput section: ``{nodeid: {metric: rate}}``.

    Empty for schema-1 exports (written before throughput recording
    existed), so old baselines keep working.
    """
    payload = json.loads(Path(path).read_text())
    section = payload.get("throughput", {}) if isinstance(payload, dict) else {}
    return {
        str(k): {str(m): float(v) for m, v in metrics.items()}
        for k, metrics in section.items()
    }


def load_memory(path: Path) -> dict[str, float]:
    """Read an export's memory section: ``{nodeid: peak bytes}``.

    Empty for schema-1/2 exports (written before peak-memory recording
    existed), so old baselines keep working.
    """
    payload = json.loads(Path(path).read_text())
    section = payload.get("memory", {}) if isinstance(payload, dict) else {}
    return {str(k): float(v) for k, v in section.items()}


def memory_delta(
    current: dict[str, float], baseline: dict[str, float]
) -> list[dict]:
    """One row per nodeid in either side's memory section.

    ``ratio`` is current/baseline — above 1 means the benchmark's peak
    traced allocation grew.  Informational only, like throughput: memory
    shifts are worth seeing in the job summary, not worth a second gate.
    """
    rows = []
    for nodeid in sorted(set(current) | set(baseline)):
        cur = current.get(nodeid)
        base = baseline.get(nodeid)
        ratio = None
        if cur is not None and base is not None and base > 0.0:
            ratio = cur / base
        rows.append(
            {"nodeid": nodeid, "current": cur, "baseline": base, "ratio": ratio}
        )
    return rows


def _format_bytes(value: float | None) -> str:
    if value is None:
        return "-"
    return f"{value / 1e6:,.1f}MB"


def format_memory_rows(rows: list[dict]) -> str:
    """Human-readable peak-memory delta table (lower is better)."""
    lines = [f"{'current':>10}  {'baseline':>10}  {'ratio':>7}  benchmark"]
    for row in rows:
        ratio = "-" if row["ratio"] is None else f"{row['ratio']:.2f}x"
        lines.append(
            f"{_format_bytes(row['current']):>10}  "
            f"{_format_bytes(row['baseline']):>10}  {ratio:>7}  {row['nodeid']}"
        )
    return "\n".join(lines)


def throughput_delta(
    current: dict[str, dict[str, float]],
    baseline: dict[str, dict[str, float]],
) -> list[dict]:
    """One row per (nodeid, metric) in either side's throughput section.

    ``speedup`` is current/baseline — above 1 is faster (throughput is a
    higher-is-better rate, the opposite sense of the timing table).
    """
    rows = []
    for nodeid in sorted(set(current) | set(baseline)):
        metrics = sorted(set(current.get(nodeid, {})) | set(baseline.get(nodeid, {})))
        for metric in metrics:
            cur = current.get(nodeid, {}).get(metric)
            base = baseline.get(nodeid, {}).get(metric)
            speedup = None
            if cur is not None and base is not None and base > 0.0:
                speedup = cur / base
            rows.append(
                {
                    "nodeid": nodeid,
                    "metric": metric,
                    "current": cur,
                    "baseline": base,
                    "speedup": speedup,
                }
            )
    return rows


def format_throughput_rows(rows: list[dict]) -> str:
    """Human-readable throughput delta table (higher is better)."""
    lines = [
        f"{'current':>14}  {'baseline':>14}  {'speedup':>8}  benchmark [metric]"
    ]
    for row in rows:
        cur = "-" if row["current"] is None else f"{row['current']:,.0f}/s"
        base = "-" if row["baseline"] is None else f"{row['baseline']:,.0f}/s"
        speedup = "-" if row["speedup"] is None else f"{row['speedup']:.2f}x"
        metric = row["metric"].removesuffix("_per_s")
        lines.append(
            f"{cur:>14}  {base:>14}  {speedup:>8}  {row['nodeid']} [{metric}]"
        )
    return "\n".join(lines)


def write_github_summary(
    rows: list[dict],
    throughput_rows: list[dict],
    memory_rows: list[dict] | None = None,
) -> None:
    """Append markdown tables to ``$GITHUB_STEP_SUMMARY`` when it is set."""
    out = os.environ.get("GITHUB_STEP_SUMMARY")
    if not out:
        return
    lines = ["## Benchmark timings vs baseline", ""]
    lines += ["| status | current | baseline | ratio | test |", "|---|---|---|---|---|"]
    for row in rows:
        if row["regressed"]:
            status = "**REGRESSED**"
        elif row["current"] is None:
            status = "removed"
        elif row["baseline"] is None:
            status = "new"
        else:
            status = "ok"
        cur = "-" if row["current"] is None else f"{row['current']:.3f}s"
        base = "-" if row["baseline"] is None else f"{row['baseline']:.3f}s"
        ratio = "-" if row["ratio"] is None else f"{row['ratio']:.2f}x"
        lines.append(f"| {status} | {cur} | {base} | {ratio} | `{row['nodeid']}` |")
    if throughput_rows:
        lines += [
            "",
            "## Engine throughput vs baseline (higher is better)",
            "",
            "| current | baseline | speedup | benchmark [metric] |",
            "|---|---|---|---|",
        ]
        for row in throughput_rows:
            cur = "-" if row["current"] is None else f"{row['current']:,.0f}/s"
            base = "-" if row["baseline"] is None else f"{row['baseline']:,.0f}/s"
            speedup = "-" if row["speedup"] is None else f"{row['speedup']:.2f}x"
            metric = row["metric"].removesuffix("_per_s")
            lines.append(
                f"| {cur} | {base} | {speedup} | `{row['nodeid']}` [{metric}] |"
            )
    if memory_rows:
        lines += [
            "",
            "## Peak memory vs baseline (lower is better)",
            "",
            "| current | baseline | ratio | benchmark |",
            "|---|---|---|---|",
        ]
        for row in memory_rows:
            ratio = "-" if row["ratio"] is None else f"{row['ratio']:.2f}x"
            lines.append(
                f"| {_format_bytes(row['current'])} | "
                f"{_format_bytes(row['baseline'])} | {ratio} | `{row['nodeid']}` |"
            )
    with open(out, "a", encoding="utf-8") as fh:
        fh.write("\n".join(lines) + "\n")


def compare(
    current: dict[str, float],
    baseline: dict[str, float],
    threshold: float = DEFAULT_THRESHOLD,
    min_seconds: float = DEFAULT_MIN_SECONDS,
) -> list[dict]:
    """Compare two timing maps; return one row per test in either.

    Each row has ``nodeid``, ``current``, ``baseline`` (either may be
    ``None`` for one-sided tests), ``ratio`` (``None`` when one-sided)
    and ``regressed`` (True only for two-sided rows breaching both the
    ratio threshold and the absolute floor).
    """
    if threshold <= 1.0:
        raise ValueError("threshold must be above 1")
    if min_seconds < 0.0:
        raise ValueError("min_seconds must be non-negative")
    rows = []
    for nodeid in sorted(set(current) | set(baseline)):
        cur = current.get(nodeid)
        base = baseline.get(nodeid)
        ratio = None
        regressed = False
        if cur is not None and base is not None and base > 0.0:
            ratio = cur / base
            regressed = ratio > threshold and cur > min_seconds
        rows.append(
            {
                "nodeid": nodeid,
                "current": cur,
                "baseline": base,
                "ratio": ratio,
                "regressed": regressed,
            }
        )
    return rows


def format_rows(rows: list[dict]) -> str:
    """Human-readable comparison table."""
    lines = [f"{'status':>10}  {'current':>9}  {'baseline':>9}  {'ratio':>7}  test"]
    for row in rows:
        if row["regressed"]:
            status = "REGRESSED"
        elif row["current"] is None:
            status = "removed"
        elif row["baseline"] is None:
            status = "new"
        else:
            status = "ok"
        cur = "-" if row["current"] is None else f"{row['current']:.3f}s"
        base = "-" if row["baseline"] is None else f"{row['baseline']:.3f}s"
        ratio = "-" if row["ratio"] is None else f"{row['ratio']:.2f}x"
        lines.append(f"{status:>10}  {cur:>9}  {base:>9}  {ratio:>7}  {row['nodeid']}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", type=Path, help="timing export to check")
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
        help=f"baseline to compare against (default: {DEFAULT_BASELINE.name})",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help=f"failing slowdown ratio (default: {DEFAULT_THRESHOLD}x)",
    )
    parser.add_argument(
        "--min-seconds",
        type=float,
        default=DEFAULT_MIN_SECONDS,
        help=f"absolute noise floor in seconds (default: {DEFAULT_MIN_SECONDS})",
    )
    args = parser.parse_args(argv)

    if not args.baseline.exists():
        print(f"no baseline at {args.baseline}; nothing to compare against")
        return 0
    rows = compare(
        load_timings(args.current),
        load_timings(args.baseline),
        threshold=args.threshold,
        min_seconds=args.min_seconds,
    )
    print(format_rows(rows))
    throughput_rows = throughput_delta(
        load_throughput(args.current), load_throughput(args.baseline)
    )
    if throughput_rows:
        print("\nengine throughput vs baseline (higher is better):")
        print(format_throughput_rows(throughput_rows))
    memory_rows = memory_delta(load_memory(args.current), load_memory(args.baseline))
    if memory_rows:
        print("\npeak memory vs baseline (lower is better):")
        print(format_memory_rows(memory_rows))
    write_github_summary(rows, throughput_rows, memory_rows)
    regressions = [row for row in rows if row["regressed"]]
    if regressions:
        print(
            f"\n{len(regressions)} benchmark(s) regressed more than "
            f"{args.threshold:g}x vs {args.baseline.name}"
        )
        return 1
    print(f"\nno regression beyond {args.threshold:g}x vs {args.baseline.name}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
