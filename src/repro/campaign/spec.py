"""Frozen campaign specifications: stages, seed grids, analysis knobs.

A campaign is the declarative description of a whole experiment matrix —
which figures to run, at which knob settings, over which seed grids, and
how to aggregate the result cells.  :class:`CampaignSpec` and
:class:`StageSpec` are frozen dataclasses so campaigns are content-keyed
the same way single arms are: two campaigns with equal canonical forms
are the same computation, and every compiled arm reuses the runner's
:func:`~repro.runner.spec.content_key` so results dedupe across stages
and across campaigns through the on-disk cache.

The compilation target is the ``figure.cells`` task via the
spec-producing entry points each experiment module exports
(:data:`repro.experiments.FIGURE_SPECS`): a stage lowers to one
:class:`~repro.runner.spec.ScenarioSpec` per seed, with deterministic
figures collapsing to a single seed-free arm.
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import Any

from repro.experiments.lab_common import (
    DETERMINISTIC_FIGURES,
    LAB_CELL_FIGURES,
)
from repro.runner.spec import ScenarioSpec, canonical, content_key

__all__ = [
    "AnalysisSettings",
    "StageSpec",
    "CampaignSpec",
    "CampaignArm",
    "figure_knobs",
    "figure_is_seeded",
]


def figure_knobs(figure: str) -> frozenset[str]:
    """The knob names that apply to (and key) one figure's arms.

    Lab figures consume ``noise`` (their outcomes are otherwise exact);
    every other figure consumes ``quick``.  Keeping inapplicable knobs
    out of a stage keeps them out of the content keys, so an inert knob
    can never split the cache.
    """
    if figure in LAB_CELL_FIGURES:
        return frozenset({"noise"})
    return frozenset({"quick"})


def figure_is_seeded(figure: str) -> bool:
    """Whether the figure consumes the seed (False ⇒ one seed-free arm)."""
    return figure not in DETERMINISTIC_FIGURES


@dataclass(frozen=True)
class AnalysisSettings:
    """Campaign-level analysis knobs applied when aggregating cells.

    Attributes
    ----------
    confidence:
        Confidence level of the t-based interval reported per cell
        across seed replications (default 0.95).
    """

    confidence: float = 0.95

    def __post_init__(self) -> None:
        """Reject confidence levels outside the open unit interval."""
        if not 0.0 < self.confidence < 1.0:
            raise ValueError(
                f"analysis confidence must be in (0, 1), got {self.confidence!r}"
            )


@dataclass(frozen=True)
class StageSpec:
    """One stage of a campaign: a figure at fixed knobs over a seed grid.

    Attributes
    ----------
    name:
        Unique stage name inside the campaign (defaults to the figure
        name in the loader; sweep expansion suffixes ``[knob=value]``).
    figure:
        A sweepable figure name (one of
        :data:`repro.runner.tasks.FIGURE_CELL_TASKS`).
    knobs:
        Figure-applicable knob settings (``noise`` for lab figures,
        ``quick`` for the rest).  Canonicalized, never mutated.
    seeds:
        Seed grid; one arm per seed.  Empty for deterministic figures,
        which compile to a single seed-free arm.
    """

    name: str
    figure: str
    # Mapping default is deliberate: knobs are canonicalised (sorted) by
    # the content key, never hashed via __hash__ and never mutated.
    knobs: Mapping[str, Any] = field(default_factory=dict)  # repro-lint: disable=KEY001
    seeds: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        """Validate knob applicability and the seed grid shape."""
        extra = set(self.knobs) - figure_knobs(self.figure)
        if extra:
            raise ValueError(
                f"stage {self.name!r}: knob(s) {sorted(extra)} do not apply to "
                f"figure {self.figure!r} (allowed: {sorted(figure_knobs(self.figure))})"
            )
        if figure_is_seeded(self.figure):
            if not self.seeds:
                raise ValueError(
                    f"stage {self.name!r}: figure {self.figure!r} consumes the "
                    "seed; provide a non-empty seed grid"
                )
            if len(set(self.seeds)) != len(self.seeds):
                raise ValueError(
                    f"stage {self.name!r}: duplicate seeds in {self.seeds!r}"
                )
        elif self.seeds:
            raise ValueError(
                f"stage {self.name!r}: figure {self.figure!r} is deterministic; "
                "seeds have no effect (the loader collapses them — leave empty)"
            )

    @property
    def deterministic(self) -> bool:
        """Whether this stage compiles to a single seed-free arm."""
        return not figure_is_seeded(self.figure)

    def arms(self) -> tuple[ScenarioSpec, ...]:
        """Lower this stage onto runner specs, one per seed."""
        from repro.experiments import FIGURE_SPECS

        entry = FIGURE_SPECS[self.figure]
        knobs = dict(self.knobs)
        if self.deterministic:
            return (entry(**knobs, label=f"{self.name}[deterministic]"),)
        return tuple(
            entry(**knobs, seed=seed, label=f"{self.name}[seed={seed}]")
            for seed in self.seeds
        )


@dataclass(frozen=True)
class CampaignArm:
    """One compiled arm of a campaign: a runner spec plus its provenance.

    Attributes
    ----------
    stage:
        Name of the stage the arm belongs to.
    figure:
        The stage's figure.
    seed:
        The arm's seed (``None`` for deterministic figures).
    spec:
        The compiled :class:`~repro.runner.spec.ScenarioSpec`.
    key:
        The spec's content key — the unit of caching and dedupe.
    """

    stage: str
    figure: str
    seed: int | None
    spec: ScenarioSpec
    key: str


@dataclass(frozen=True)
class CampaignSpec:
    """A whole declarative campaign: named stages plus analysis settings.

    Attributes
    ----------
    name:
        Campaign name (from the ``campaign:`` key or the file stem).
    description:
        Free-text description carried into the manifest.
    stages:
        The expanded stages, in file order.
    analysis:
        Aggregation knobs (:class:`AnalysisSettings`).
    """

    name: str
    description: str = ""
    stages: tuple[StageSpec, ...] = ()
    analysis: AnalysisSettings = field(default_factory=AnalysisSettings)

    def __post_init__(self) -> None:
        """Reject duplicate stage names — arms must be addressable."""
        names = [stage.name for stage in self.stages]
        duplicates = sorted({n for n in names if names.count(n) > 1})
        if duplicates:
            raise ValueError(f"duplicate stage name(s): {duplicates}")

    def arms(self) -> tuple[CampaignArm, ...]:
        """Compile every stage into content-keyed runner arms."""
        compiled: list[CampaignArm] = []
        for stage in self.stages:
            for spec in stage.arms():
                compiled.append(
                    CampaignArm(
                        stage=stage.name,
                        figure=stage.figure,
                        seed=spec.seed,
                        spec=spec,
                        key=content_key(spec),
                    )
                )
        return tuple(compiled)

    def content_key(self) -> str:
        """Stable hex digest identifying the resolved campaign.

        Covers the canonicalized campaign (stages, knobs, seed grids,
        analysis settings) and the package version, mirroring the
        per-arm :func:`~repro.runner.spec.content_key` contract.
        """
        from repro import __version__

        payload = {"version": __version__, "campaign": canonical(self)}
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()
