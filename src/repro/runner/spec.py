"""Declarative scenario specifications and the runner task registry.

A :class:`ScenarioSpec` names a *task* — a registered, importable function
— together with the picklable parameters and seed it should run with.
Specs are the unit of work for :class:`~repro.runner.executor.ParallelExecutor`
and the unit of identity for :class:`~repro.runner.cache.ResultCache`:
:func:`content_key` derives a stable hash from the task name, the
canonicalized parameters, the seed and the package version.

Tasks are registered with :func:`register_task` and must satisfy two
rules so specs can cross process boundaries:

* the task function is defined at module level (worker processes import
  it by name when the pool uses the ``spawn`` start method);
* it accepts a ``seed`` keyword argument (possibly ``None``) and draws
  *all* of its randomness from it, so a spec's result is a pure function
  of the spec.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from collections.abc import Callable, Mapping
from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = [
    "ScenarioSpec",
    "register_task",
    "get_task",
    "run_spec",
    "content_key",
    "canonical",
]

#: Registered task functions, keyed by task name.
_TASKS: dict[str, Callable[..., Any]] = {}


def register_task(name: str) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Register a function as a runner task under ``name`` (decorator)."""

    def decorator(fn: Callable[..., Any]) -> Callable[..., Any]:
        """Record ``fn`` in the task table and return it unchanged."""
        existing = _TASKS.get(name)
        if existing is not None and existing is not fn:
            raise ValueError(f"task {name!r} is already registered to {existing!r}")
        _TASKS[name] = fn
        return fn

    return decorator


def get_task(name: str) -> Callable[..., Any]:
    """Look up a registered task, loading the built-in tasks on first use."""
    _ensure_builtin_tasks()
    try:
        return _TASKS[name]
    except KeyError:
        raise KeyError(
            f"unknown runner task {name!r}; registered tasks: {sorted(_TASKS)}"
        ) from None


def _ensure_builtin_tasks() -> None:
    # The built-in tasks call into the simulators, which themselves import
    # the runner; importing them lazily here keeps the modules acyclic.
    import repro.runner.tasks  # noqa: F401


@dataclass(frozen=True)
class ScenarioSpec:
    """One independent simulation arm.

    Attributes
    ----------
    task:
        Name of a registered task function.
    params:
        Keyword arguments for the task.  Everything in here must be
        picklable (to reach worker processes) and canonicalizable (to be
        content-keyed); dataclasses, mappings, sequences, numpy arrays and
        scalars all qualify.
    seed:
        Seed passed to the task as ``seed=``; the task derives all of its
        randomness from it.
    label:
        Human-readable identifier used in logs and error messages.
    """

    task: str
    # Mapping default is deliberate: params are canonicalised (sorted) by
    # content_key, never hashed via __hash__ and never mutated in place;
    # an immutable proxy would not survive pickling to worker processes.
    params: Mapping[str, Any] = field(default_factory=dict)  # repro-lint: disable=KEY001
    seed: int | None = None
    label: str = ""

    def run(self) -> Any:
        """Execute this spec in the current process."""
        return run_spec(self)

    def key(self) -> str:
        """Content key identifying this spec's result."""
        return content_key(self)


def run_spec(spec: ScenarioSpec) -> Any:
    """Execute one spec in the current process and return its result."""
    fn = get_task(spec.task)
    return fn(seed=spec.seed, **dict(spec.params))


def content_key(spec: ScenarioSpec) -> str:
    """Stable hex digest identifying a spec's result.

    The key covers the task name, seed, canonicalized parameters and the
    package version (so cached results do not survive code releases).
    """
    from repro import __version__

    payload = {
        "version": __version__,
        "task": spec.task,
        "seed": spec.seed,
        "params": canonical(spec.params),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def canonical(obj: Any) -> Any:
    """Reduce ``obj`` to a JSON-serializable form with a stable ordering.

    This is the substrate of every content key in the package: two objects
    with the same canonical form are treated as the same computation.  The
    reduction must therefore be *total* on keyable inputs and *loud* on
    anything else — an object it cannot order deterministically raises
    :class:`TypeError` rather than falling back to a lossy representation
    that could silently collide.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return float(obj)
    if isinstance(obj, (np.bool_, np.integer, np.floating)):
        return obj.item()
    if isinstance(obj, np.ndarray):
        data = np.ascontiguousarray(obj)
        return {
            "__ndarray__": hashlib.sha256(data.tobytes()).hexdigest(),
            "dtype": str(data.dtype),
            "shape": list(data.shape),
        }
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            "__dataclass__": f"{type(obj).__module__}.{type(obj).__qualname__}",
            "fields": {
                f.name: canonical(getattr(obj, f.name))
                for f in dataclasses.fields(obj)
            },
        }
    if isinstance(obj, Mapping):
        # The sort key must never fall back to repr/str: two distinct
        # members stringifying identically would make the ordering depend
        # on insertion order, i.e. equal mappings could key apart.  Any
        # member json.dumps cannot serialize raises TypeError instead.
        items = [[canonical(k), canonical(v)] for k, v in obj.items()]
        items.sort(key=lambda kv: json.dumps(kv[0], sort_keys=True))
        return {"__mapping__": items}
    if isinstance(obj, (list, tuple)):
        return [canonical(x) for x in obj]
    if isinstance(obj, (set, frozenset)):
        members = [canonical(x) for x in obj]
        members.sort(key=lambda m: json.dumps(m, sort_keys=True))
        return {"__set__": members}
    if not callable(obj) and hasattr(obj, "__dict__"):
        # Plain classes (AllocationPlan, OutcomeTable, ...) are keyed by
        # their instance state.  Callables are rejected: their identity is
        # their code, which instance state cannot capture.
        return {
            "__object__": f"{type(obj).__module__}.{type(obj).__qualname__}",
            "state": canonical(vars(obj)),
        }
    raise TypeError(
        f"cannot build a content key for {type(obj).__name__!s}: {obj!r}"
    )
