"""repro: reproduction of "Unbiased Experiments in Congested Networks" (IMC 2021).

The package is organised in four layers:

``repro.core``
    The paper's primary contribution: a potential-outcomes framework for
    network experiments, experiment designs (naive A/B, paired link,
    switchback, event study, gradual deployment, A/A), and the statistical
    analysis pipeline (hourly aggregation, fixed-effect regression,
    Newey-West standard errors, interference diagnostics).

``repro.netsim``
    The lab substrate: a fluid bottleneck-sharing simulator and a
    packet-level discrete-event simulator with Reno, Cubic, BBR and pacing
    on a composable topology — pluggable queue disciplines (drop-tail,
    RED, CoDel, FQ-CoDel with the RFC 8290 new-flow priority list), ECN
    marking, per-flow RTTs, lossy path segments, multi-queue parking-lot
    chains (optionally with heterogeneous per-segment capacities),
    unmeasured cross traffic, and a dynamic-traffic subsystem
    (``repro.netsim.traffic``): finite transfers with flow-completion
    times, Poisson/on-off/trace arrival processes with heavy-tailed flow
    sizes, and time-varying demand profiles.

``repro.workload``
    The production substrate: a synthetic Netflix-like paired-link video
    workload with diurnal demand, congestion, ABR and QoE outcome models.

``repro.experiments``
    End-to-end harnesses that re-run every experiment in the paper and
    return the rows/series behind each figure.

Cross-cutting layers: ``repro.runner`` (content-keyed parallel
execution), ``repro.campaign`` (declarative multi-figure campaigns,
``repro run campaign.yaml``), ``repro.obs`` (tracing/profiling) and
``repro.api`` (the stable programmatic facade).
"""

from repro.core.assignment import (
    Assignment,
    bernoulli_assignment,
    fixed_fraction_assignment,
)
from repro.core.estimands import EstimandSet, PotentialOutcomeCurve
from repro.core.estimators import (
    DifferenceInMeans,
    EstimateWithCI,
    difference_in_means,
    quantile_treatment_effect,
)
from repro.core.units import OutcomeTable, Session, Unit

__version__ = "2.0.0"

__all__ = [
    "Assignment",
    "bernoulli_assignment",
    "fixed_fraction_assignment",
    "EstimandSet",
    "PotentialOutcomeCurve",
    "DifferenceInMeans",
    "EstimateWithCI",
    "difference_in_means",
    "quantile_treatment_effect",
    "OutcomeTable",
    "Session",
    "Unit",
    "__version__",
]
