"""The paired-link bitrate-capping experiment (Section 4, Figures 5-9, 13).

Runs the full protocol:

1. a baseline week with no treatment anywhere (used to validate that the
   two links are statistically similar — Section 4.1);
2. the five-day main experiment: link 1 at 95 % capping, link 2 at 5 %;
3. an A/A week after the experiment (used to calibrate the alternate
   designs of Section 5).

From the main-experiment data, the harness computes every estimate the
paper reports: the two naive within-link A/B effects, the approximate TTE,
the spillover (Figure 5), the hourly throughput time series (Figure 6),
the four-cell means for throughput and minimum RTT (Figures 7-8), the
peak/off-peak retransmission split (Figure 9), and the hourly-vs-account
confidence-interval comparison (Figure 13).
"""

from __future__ import annotations

from repro.experiments.lab_common import figure_cells_spec

from dataclasses import dataclass, field
from collections.abc import Sequence

import numpy as np

from repro.core.analysis.pipeline import AnalysisConfig, MetricEstimate
from repro.core.designs import PairedLinkDesign
from repro.core.experiment import ExperimentResult, evaluate_design
from repro.core.units import SESSION_METRICS, OutcomeTable
from repro.runner.cache import ResultCache
from repro.runner.executor import ParallelExecutor
from repro.runner.spec import ScenarioSpec
from repro.workload.netflix import WorkloadConfig

__all__ = ["PairedLinkExperiment", "PairedLinkOutcome", "CellMeans", "paired_figure_spec"]

#: Estimand labels reported in Figure 5, in display order.
FIGURE5_ESTIMANDS: tuple[str, ...] = ("ab_0.05", "ab_0.95", "tte", "spillover")


@dataclass(frozen=True)
class CellMeans:
    """Mean of one metric in the four cells of the paired-link experiment.

    The four cells are (link 1 treated, link 1 control, link 2 treated,
    link 2 control); the paper's Figures 7 and 8 plot exactly these.
    """

    metric: str
    link1_treated: float
    link1_control: float
    link2_treated: float
    link2_control: float

    def normalized(self, reference: float | None = None) -> "CellMeans":
        """Return the cells divided by ``reference`` (default: smallest cell)."""
        values = (
            self.link1_treated,
            self.link1_control,
            self.link2_treated,
            self.link2_control,
        )
        ref = reference if reference is not None else min(values)
        if ref == 0:
            raise ZeroDivisionError("cannot normalize by a zero reference")
        return CellMeans(self.metric, *(v / ref for v in values))

    @property
    def approximate_tte(self) -> float:
        """TTE read off the cells: link-1 treated minus link-2 control."""
        return self.link1_treated - self.link2_control

    @property
    def spillover(self) -> float:
        """Spillover read off the cells: link-1 control minus link-2 control."""
        return self.link1_control - self.link2_control

    @property
    def naive_high(self) -> float:
        """Naive A/B effect within link 1 (the 95 % test)."""
        return self.link1_treated - self.link1_control

    @property
    def naive_low(self) -> float:
        """Naive A/B effect within link 2 (the 5 % test)."""
        return self.link2_treated - self.link2_control


@dataclass
class PairedLinkOutcome:
    """Everything produced by one run of the paired-link experiment."""

    config: WorkloadConfig
    design: PairedLinkDesign
    days: tuple[int, ...]
    baseline_days: tuple[int, ...]
    baseline_table: OutcomeTable
    experiment_table: OutcomeTable
    aa_table: OutcomeTable
    baselines: dict[str, float]
    estimates: dict[str, dict[str, MetricEstimate]]

    # -- Figure 5 -----------------------------------------------------------------

    def figure5_rows(self) -> list[dict[str, object]]:
        """Rows of Figure 5: per metric, the four estimates in percent."""
        rows: list[dict[str, object]] = []
        for metric in SESSION_METRICS:
            row: dict[str, object] = {"metric": metric}
            for estimand in FIGURE5_ESTIMANDS:
                estimate = self.estimates[estimand][metric]
                row[estimand] = estimate.relative_percent
                row[f"{estimand}_ci"] = (
                    100.0 * estimate.relative.ci_low,
                    100.0 * estimate.relative.ci_high,
                )
            rows.append(row)
        return rows

    def estimate(self, estimand: str, metric: str) -> MetricEstimate:
        """One estimate (e.g. ``estimate("tte", "throughput_mbps")``)."""
        return self.estimates[estimand][metric]

    # -- Figure 6 -----------------------------------------------------------------

    def hourly_throughput_series(
        self, table: OutcomeTable, day: int
    ) -> dict[int, dict[int, float]]:
        """Mean client throughput per (link, hour) for one day, normalized.

        Returns ``series[link][hour]`` normalized by the largest hourly mean
        across both links, matching the paper's Figure 6 presentation.
        """
        day_table = table.where(day=day)
        raw: dict[int, dict[int, float]] = {}
        largest = 0.0
        for link in (self.design.treated_link, self.design.control_link):
            link_table = day_table.where(link=link)
            per_hour = link_table.groupby_mean("hour", "throughput_mbps")
            raw[link] = {int(h): v for h, v in per_hour.items()}
            if per_hour:
                largest = max(largest, max(per_hour.values()))
        if largest <= 0:
            raise ValueError(f"no throughput data for day {day}")
        return {
            link: {h: v / largest for h, v in hours.items()} for link, hours in raw.items()
        }

    def figure6_series(
        self, saturday_day: int | None = None
    ) -> dict[str, dict[int, dict[int, float]]]:
        """Baseline vs experiment Saturday throughput time series (Figure 6)."""
        if saturday_day is None:
            saturday_day = self._first_weekend_day(self.days)
        baseline_saturday = self._first_weekend_day(self.baseline_days)
        return {
            "baseline": self.hourly_throughput_series(self.baseline_table, baseline_saturday),
            "experiment": self.hourly_throughput_series(self.experiment_table, saturday_day),
        }

    def _first_weekend_day(self, days: Sequence[int]) -> int:
        for day in days:
            if self.config.demand.is_weekend(int(day)):
                return int(day)
        return int(list(days)[-1])

    # -- Figures 7 and 8 -------------------------------------------------------------

    def cell_means(self, metric: str) -> CellMeans:
        """Mean of a metric in the four (link, arm) cells."""
        t = self.experiment_table
        link1, link2 = self.design.treated_link, self.design.control_link
        return CellMeans(
            metric=metric,
            link1_treated=t.where(link=link1, treated=1).mean(metric),
            link1_control=t.where(link=link1, treated=0).mean(metric),
            link2_treated=t.where(link=link2, treated=1).mean(metric),
            link2_control=t.where(link=link2, treated=0).mean(metric),
        )

    def figure7_cells(self) -> CellMeans:
        """Average throughput per cell (Figure 7)."""
        return self.cell_means("throughput_mbps")

    def figure8_cells(self) -> CellMeans:
        """Average minimum RTT per cell, normalized to the smallest (Figure 8)."""
        return self.cell_means("min_rtt_ms").normalized()

    # -- Figure 9 ---------------------------------------------------------------------

    def figure9_retransmit_split(
        self, peak_hours: Sequence[int] = tuple(range(18, 23))
    ) -> dict[str, float]:
        """Relative change in retransmitted-byte fraction, peak vs off-peak.

        Compares capped traffic on link 1 against uncapped traffic on link 2
        (the TTE comparison) separately for peak and off-peak hours.
        """
        peak_set = {int(h) for h in peak_hours}
        t = self.experiment_table
        link1, link2 = self.design.treated_link, self.design.control_link
        hours = t["hour"].astype(int)
        in_peak = np.isin(hours, np.array(sorted(peak_set)))

        def mean_fraction(link: int, treated: int, peak: bool) -> float:
            subset = t.select(
                (t["link"].astype(int) == link)
                & (t["treated"].astype(int) == treated)
                & (in_peak == peak)
            )
            return subset.mean("retransmit_fraction")

        result: dict[str, float] = {}
        for label, peak in (("peak", True), ("off_peak", False)):
            treated_mean = mean_fraction(link1, 1, peak)
            control_mean = mean_fraction(link2, 0, peak)
            result[label] = (treated_mean - control_mean) / control_mean
        overall = self.estimates["tte"]["retransmit_fraction"]
        result["overall"] = overall.relative.estimate
        return result

    # -- Figure 13 -----------------------------------------------------------------------

    def figure13_ci_comparison(
        self, metrics: Sequence[str] = SESSION_METRICS
    ) -> dict[str, dict[str, MetricEstimate]]:
        """Naive 95 % A/B effects under hourly vs account-level aggregation."""
        link1 = self.design.treated_link
        table = self.experiment_table.where(link=link1)
        treated = table.where(treated=1)
        control = table.where(treated=0)
        from repro.core.analysis.pipeline import analyze_metric

        out: dict[str, dict[str, MetricEstimate]] = {"hourly": {}, "account": {}}
        for metric in metrics:
            baseline = self.baselines[metric]
            out["hourly"][metric] = analyze_metric(
                treated,
                control,
                metric,
                "ab_0.95_hourly",
                baseline=baseline,
                config=AnalysisConfig(aggregation="hourly"),
            )
            out["account"][metric] = analyze_metric(
                treated,
                control,
                metric,
                "ab_0.95_account",
                baseline=baseline,
                config=AnalysisConfig(aggregation="account"),
            )
        return out


@dataclass
class PairedLinkExperiment:
    """Configuration and runner for the full paired-link protocol.

    Parameters
    ----------
    config:
        Workload configuration (session volumes, congestion model, seeds).
    design:
        The paired-link design (allocations and which link is which).
    days:
        Days of the main experiment (paper: Wednesday-Sunday, five days).
    baseline_days:
        Days of the pre-experiment baseline week.
    aa_days:
        Days of the post-experiment A/A week.
    analysis:
        Statistical analysis configuration.
    """

    config: WorkloadConfig = field(default_factory=WorkloadConfig)
    design: PairedLinkDesign = field(default_factory=PairedLinkDesign)
    days: tuple[int, ...] = (0, 1, 2, 3, 4)
    baseline_days: tuple[int, ...] = (0, 1, 2, 3, 4, 5, 6)
    aa_days: tuple[int, ...] = (0, 1, 2, 3, 4)
    analysis: AnalysisConfig = field(default_factory=AnalysisConfig)

    def run(
        self,
        jobs: int = 1,
        cache: ResultCache | None = None,
        executor: ParallelExecutor | None = None,
    ) -> PairedLinkOutcome:
        """Run baseline, main experiment and A/A weeks, then analyze.

        The three workload weeks are independently seeded (each table
        draws from ``config.seed`` plus its own offset), so they run as
        three parallel scenario specs when ``jobs > 1`` with results
        bit-identical to the serial path.
        """
        links = self.config.links
        specs = (
            ScenarioSpec(
                task="workload.baseline_table",
                params={"config": self.config, "days": tuple(self.baseline_days)},
                label="paired_link[baseline]",
            ),
            ScenarioSpec(
                task="workload.experiment_table",
                params={
                    "config": self.config,
                    "design": self.design,
                    "days": tuple(self.days),
                },
                label="paired_link[experiment]",
            ),
            ScenarioSpec(
                task="workload.aa_table",
                params={"config": self.config, "days": tuple(self.aa_days)},
                label="paired_link[aa]",
            ),
        )
        executor = executor or ParallelExecutor(jobs=jobs, cache=cache)
        baseline_table, experiment_table, aa_table = executor.map(specs)

        # Normalize everything by the global control condition: the control
        # sessions on the mostly-uncapped link (Appendix B.1).
        global_control = experiment_table.where(
            link=self.design.control_link, treated=0
        )
        baselines = {metric: global_control.mean(metric) for metric in SESSION_METRICS}

        result = ExperimentResult(self.design, experiment_table, tuple(links), self.days)
        estimates = evaluate_design(
            result, metrics=SESSION_METRICS, baselines=baselines, config=self.analysis
        )

        return PairedLinkOutcome(
            config=self.config,
            design=self.design,
            days=self.days,
            baseline_days=self.baseline_days,
            baseline_table=baseline_table,
            experiment_table=experiment_table,
            aa_table=aa_table,
            baselines=baselines,
            estimates=estimates,
        )


def paired_figure_spec(
    figure: str,
    quick: bool = False,
    seed: int | None = 0,
    label: str | None = None,
) -> ScenarioSpec:
    """Runner spec for one paired-link figure replication (fig5/7/8/9/10).

    The campaign compiler's entry point: returns the content-keyed
    ``figure.cells`` spec whose execution re-runs the
    :class:`PairedLinkExperiment` workload at one seed and reduces it to
    the named figure's scalar cells.
    """
    from repro.experiments.lab_common import PAIRED_CELL_FIGURES

    if figure not in PAIRED_CELL_FIGURES:
        raise KeyError(
            f"unknown paired-link figure {figure!r}; choose one of {PAIRED_CELL_FIGURES}"
        )
    return figure_cells_spec(figure, quick=quick, seed=seed, label=label)
