"""Tests for ``repro report`` and the new observability CLI flags."""

import pytest

from repro.cli import build_parser, main
from repro.obs import RunTracer, TaskRun
from repro.obs.report import render_report
from repro.runner import ParallelExecutor, ScenarioSpec


def _traced_rundir(tmp_path, profile=False):
    rundir = tmp_path / "run"
    tracer = RunTracer(rundir, command="repro sweep fig2a --trace ...")
    specs = [
        ScenarioSpec(task="debug.echo", params={"index": i}, seed=i) for i in range(3)
    ]
    ParallelExecutor(jobs=1, tracer=tracer, profile=profile).map(specs)
    tracer.add_counters({"events_processed": 1234, "pool_reused": 56})
    tracer.finish({"figure": "fig2a"})
    return rundir


class TestRenderReport:
    def test_full_report_sections(self, tmp_path):
        report = render_report(_traced_rundir(tmp_path, profile=True))
        assert "command:  repro sweep fig2a" in report
        assert "3 executed" in report
        assert "slowest tasks" in report
        assert "engine counters:" in report
        assert "events_processed  1,234" in report
        assert "cProfile hotspots" in report
        assert "tottime" in report

    def test_unprofiled_run_omits_hotspots(self, tmp_path):
        report = render_report(_traced_rundir(tmp_path, profile=False))
        assert "engine counters:" in report
        assert "cProfile" not in report

    def test_empty_directory_falls_back(self, tmp_path):
        report = render_report(tmp_path)
        assert "no trace artifacts found" in report

    def test_partial_artifacts_render(self, tmp_path):
        # Only trace.jsonl (e.g. the run crashed before finish()).
        tracer = RunTracer(tmp_path / "run")
        tracer.task(TaskRun(task="t", label="slow-one", started=tracer.started,
                            wall_s=1.5, pid=9))
        tracer._jsonl.close()
        (tmp_path / "run" / "meta.json").unlink(missing_ok=True)
        report = render_report(tmp_path / "run")
        assert "slow-one" in report


class TestReportCommand:
    def test_report_renders_traced_run(self, tmp_path, capsys):
        rundir = _traced_rundir(tmp_path)
        assert main(["report", str(rundir)]) == 0
        out = capsys.readouterr().out
        assert "run report:" in out
        assert "engine counters:" in out

    def test_report_rejects_missing_directory(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "nope")]) == 2
        assert "not a directory" in capsys.readouterr().err

    def test_report_top_flag(self, tmp_path, capsys):
        rundir = _traced_rundir(tmp_path, profile=True)
        assert main(["report", str(rundir), "--top", "3"]) == 0
        lines = capsys.readouterr().out.splitlines()
        header = next(i for i, line in enumerate(lines) if "tottime" in line)
        assert len(lines[header + 1 :]) <= 3


class TestObservabilityFlags:
    def test_trace_profile_probe_parse(self):
        args = build_parser().parse_args(
            ["fleet", "--trace", "/tmp/r", "--profile", "--probe", "0.5"]
        )
        assert args.trace == "/tmp/r"
        assert args.profile is True
        assert args.probe == 0.5

    def test_profile_requires_trace(self, capsys):
        with pytest.raises(SystemExit):
            main(["fleet", "--quick", "--profile"])
        assert "--profile requires --trace" in capsys.readouterr().err

    def test_probe_only_for_fleet(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig2a", "--probe", "0.5"])
        assert "--probe" in capsys.readouterr().err

    def test_trace_only_for_sweep_and_fleet(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig2a", "--trace", "/tmp/r"])
        assert "--trace" in capsys.readouterr().err

    def test_negative_probe_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["fleet", "--quick", "--probe", "-1"])
        assert "--probe" in capsys.readouterr().err


class TestTracedFleetEndToEnd:
    def test_traced_probed_fleet_then_report(self, tmp_path, capsys):
        rundir = tmp_path / "rundir"
        assert (
            main(
                [
                    "fleet",
                    "--units", "40",
                    "--edges", "4",
                    "--quick",
                    "--trace", str(rundir),
                    "--profile",
                    "--probe", "0.5",
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["report", str(rundir)]) == 0
        out = capsys.readouterr().out
        assert "shards:" in out
        assert "events_processed" in out
        assert "cProfile hotspots" in out
