"""Tests for the discrete-event engine and the drop-tail queue."""

import pytest

from repro.netsim.packet.engine import EventScheduler
from repro.netsim.packet.packets import Packet
from repro.netsim.packet.queue import DropTailQueue


class TestEventScheduler:
    def test_events_run_in_time_order(self):
        sched = EventScheduler()
        fired = []
        sched.schedule(2.0, lambda: fired.append("late"))
        sched.schedule(1.0, lambda: fired.append("early"))
        sched.run(until=3.0)
        assert fired == ["early", "late"]

    def test_ties_run_in_scheduling_order(self):
        sched = EventScheduler()
        fired = []
        sched.schedule(1.0, lambda: fired.append("first"))
        sched.schedule(1.0, lambda: fired.append("second"))
        sched.run(until=2.0)
        assert fired == ["first", "second"]

    def test_run_until_does_not_execute_later_events(self):
        sched = EventScheduler()
        fired = []
        sched.schedule(5.0, lambda: fired.append("x"))
        sched.run(until=1.0)
        assert fired == []
        assert sched.now == pytest.approx(1.0)

    def test_schedule_in_past_raises(self):
        sched = EventScheduler()
        sched.schedule(1.0, lambda: None)
        sched.run(until=2.0)
        with pytest.raises(ValueError):
            sched.schedule(1.5, lambda: None)

    def test_schedule_in_relative(self):
        sched = EventScheduler()
        fired = []
        sched.schedule_in(0.5, lambda: fired.append(sched.now))
        sched.run(until=1.0)
        assert fired == [pytest.approx(0.5)]

    def test_negative_delay_raises(self):
        with pytest.raises(ValueError):
            EventScheduler().schedule_in(-0.1, lambda: None)

    def test_cancel(self):
        sched = EventScheduler()
        fired = []
        event_id = sched.schedule(1.0, lambda: fired.append("cancelled"))
        sched.schedule(2.0, lambda: fired.append("kept"))
        sched.cancel(event_id)
        sched.run(until=3.0)
        assert fired == ["kept"]

    def test_events_can_schedule_events(self):
        sched = EventScheduler()
        fired = []

        def chain():
            fired.append(sched.now)
            if len(fired) < 3:
                sched.schedule_in(1.0, chain)

        sched.schedule(0.0, chain)
        sched.run(until=10.0)
        assert fired == [pytest.approx(0.0), pytest.approx(1.0), pytest.approx(2.0)]

    def test_step(self):
        sched = EventScheduler()
        fired = []
        sched.schedule(1.0, lambda: fired.append(1))
        assert sched.step()
        assert not sched.step()
        assert fired == [1]

    def test_len_counts_pending(self):
        sched = EventScheduler()
        sched.schedule(1.0, lambda: None)
        sched.schedule(2.0, lambda: None)
        assert len(sched) == 2

    def test_len_excludes_cancelled_events(self):
        sched = EventScheduler()
        event_id = sched.schedule(1.0, lambda: None)
        sched.schedule(2.0, lambda: None)
        sched.cancel(event_id)
        assert len(sched) == 1

    def test_cancel_unknown_or_finished_id_is_noop(self):
        sched = EventScheduler()
        event_id = sched.schedule(1.0, lambda: None)
        sched.run(until=2.0)
        sched.cancel(event_id)  # already executed
        sched.cancel(999)  # never scheduled
        assert len(sched) == 0
        assert sched._cancelled == set()

    def test_cancel_is_idempotent(self):
        sched = EventScheduler()
        event_id = sched.schedule(1.0, lambda: None)
        sched.cancel(event_id)
        sched.cancel(event_id)
        assert len(sched) == 0

    def test_run_purges_cancelled_entries(self):
        sched = EventScheduler()
        event_id = sched.schedule(1.0, lambda: None)
        sched.cancel(event_id)
        sched.run(until=2.0)
        assert len(sched) == 0
        assert sched._heap == []
        assert sched._cancelled == set()

    def test_cancelled_events_do_not_accumulate(self):
        # A long-lived scheduler that schedules and cancels far-future
        # events must not grow its heap or cancelled set without bound.
        sched = EventScheduler()
        for _ in range(1000):
            sched.cancel(sched.schedule(1e9, lambda: None))
        assert len(sched) == 0
        assert len(sched._heap) <= 2 * EventScheduler._COMPACT_THRESHOLD
        assert len(sched._cancelled) <= 2 * EventScheduler._COMPACT_THRESHOLD

    def test_compaction_preserves_live_events(self):
        sched = EventScheduler()
        fired = []
        keep = [sched.schedule(float(i + 1), lambda i=i: fired.append(i)) for i in range(5)]
        for _ in range(200):
            sched.cancel(sched.schedule(500.0, lambda: fired.append("dead")))
        assert len(sched) == len(keep)
        sched.run(until=1000.0)
        assert fired == [0, 1, 2, 3, 4]


def make_packet(flow_id=0, seq=0, size=1000, time=0.0):
    return Packet(flow_id=flow_id, sequence=seq, size_bytes=size, send_time=time)


class TestDropTailQueue:
    def _setup(self, rate_bps=8000.0, buffer_bytes=2000.0):
        sched = EventScheduler()
        departed, dropped = [], []
        queue = DropTailQueue(
            sched,
            rate_bps,
            buffer_bytes,
            on_departure=lambda p, t: departed.append((p.sequence, t)),
            on_drop=lambda p, t: dropped.append((p.sequence, t)),
        )
        return sched, queue, departed, dropped

    def test_single_packet_serialization_time(self):
        sched, queue, departed, _ = self._setup(rate_bps=8000.0)
        queue.enqueue(make_packet(size=1000))  # 1000 B at 8 kb/s -> 1 s
        sched.run(until=10.0)
        assert departed == [(0, pytest.approx(1.0))]

    def test_fifo_order(self):
        sched, queue, departed, _ = self._setup()
        for seq in range(3):
            queue.enqueue(make_packet(seq=seq))
        sched.run(until=10.0)
        assert [seq for seq, _ in departed] == [0, 1, 2]

    def test_drop_when_buffer_full(self):
        sched, queue, departed, dropped = self._setup(buffer_bytes=1500.0)
        # First packet enters service immediately; next one fits the buffer;
        # the third exceeds the 1500-byte buffer and is dropped.
        accepted = [queue.enqueue(make_packet(seq=i)) for i in range(3)]
        assert accepted == [True, True, False]
        sched.run(until=10.0)
        assert [seq for seq, _ in dropped] == [2]
        assert queue.packets_dropped == 1

    def test_queueing_delay_estimate(self):
        # One packet in service (1 s residual at 8 kb/s) plus one waiting
        # (1 s of backlog): an arrival now would wait 2 s.
        sched, queue, _, _ = self._setup(rate_bps=8000.0, buffer_bytes=10000.0)
        queue.enqueue(make_packet(seq=0))
        queue.enqueue(make_packet(seq=1))
        assert queue.occupancy_bytes == 1000.0
        assert queue.queueing_delay() == pytest.approx(2.0)

    def test_queueing_delay_counts_residual_service_time(self):
        sched, queue, _, _ = self._setup(rate_bps=8000.0, buffer_bytes=10000.0)
        queue.enqueue(make_packet(seq=0))  # enters service, finishes at t=1
        assert queue.queueing_delay() == pytest.approx(1.0)
        sched.schedule(0.75, lambda: None)
        sched.step()  # advance the clock partway through the transmission
        assert queue.queueing_delay() == pytest.approx(0.25)

    def test_queueing_delay_zero_when_idle(self):
        sched, queue, _, _ = self._setup()
        assert queue.queueing_delay() == 0.0
        queue.enqueue(make_packet(seq=0))
        sched.run(until=10.0)
        assert queue.queueing_delay() == 0.0

    def test_counters(self):
        sched, queue, _, _ = self._setup(buffer_bytes=100000.0)
        for seq in range(5):
            queue.enqueue(make_packet(seq=seq))
        sched.run(until=100.0)
        assert queue.packets_served == 5
        assert queue.bytes_served == 5000.0
        assert queue.max_occupancy_bytes > 0

    def test_work_conserving_after_idle(self):
        sched, queue, departed, _ = self._setup(rate_bps=8000.0)
        queue.enqueue(make_packet(seq=0))
        sched.run(until=5.0)
        queue.enqueue(make_packet(seq=1))
        sched.run(until=10.0)
        assert departed[1][1] == pytest.approx(6.0)

    def test_invalid_parameters_raise(self):
        sched = EventScheduler()
        with pytest.raises(ValueError):
            DropTailQueue(sched, 0.0, 100.0, lambda p, t: None, lambda p, t: None)
        with pytest.raises(ValueError):
            DropTailQueue(sched, 100.0, -1.0, lambda p, t: None, lambda p, t: None)
