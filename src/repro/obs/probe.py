"""In-simulation probes: sampled telemetry driven by simulation time.

A probe observes a running packet simulation at a fixed simulation-time
cadence without perturbing it.  The contract, enforced by the golden
tests and ``repro lint`` (DET002):

* probes never read wall clocks — every timestamp is the scheduler's
  simulated ``now``;
* probes never schedule events — the network runs the scheduler in
  probe-interval chunks (both schedulers pop the exact same event order
  across repeated ``run(until=t)`` barriers) and samples *between*
  chunks, so the event sequence, every counter and every result is
  byte-identical with probes on or off;
* probes never reach into simulator internals — the network pushes
  read-only snapshot dictionaries (``QueueDiscipline.probe_snapshot`` /
  ``TcpSender.probe_snapshot``) into the recorder.

The knob is inert by default: ``probe=None`` everywhere, and sweep/fleet
specs only carry a probe parameter when one is requested, so enabling a
probe on an uncached run cannot split the result cache.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

__all__ = ["ProbeConfig", "ProbeRecord", "ProbeLog", "TraceRecorder", "Probe"]


@dataclass(frozen=True)
class ProbeConfig:
    """Configuration of an in-simulation probe.

    Attributes
    ----------
    interval_s:
        Sampling cadence in *simulated* seconds.
    include_queues:
        Sample every queue's depth/sojourn/drop/mark counters.
    include_flows:
        Sample every sender's cwnd, pacing rate, RTT and loss counters.
        Fleet shards turn this off: per-flow series over thousands of
        units would break the O(cells) contract.
    max_samples:
        Hard cap on the number of sampling instants; sampling past the
        cap is skipped and the resulting log is flagged ``truncated``.
    """

    interval_s: float
    include_queues: bool = True
    include_flows: bool = True
    max_samples: int = 100_000

    def __post_init__(self) -> None:
        if self.interval_s <= 0:
            raise ValueError("interval_s must be positive")
        if self.max_samples < 1:
            raise ValueError("max_samples must be at least 1")


@dataclass(frozen=True)
class ProbeRecord:
    """One sampled observation of one object at one simulated instant.

    Attributes
    ----------
    t:
        Simulation time of the sample, in seconds.
    kind:
        What was sampled: ``"queue"`` or ``"flow"``.
    name:
        Queue name, or ``"conn<id>"`` for a sender.
    fields:
        The sampled values (a read-only snapshot of public counters).
    """

    t: float
    kind: str
    name: str
    fields: Mapping[str, float]


class TraceRecorder:
    """Append-only store of :class:`ProbeRecord` observations.

    The recorder is deliberately passive: it holds what it is given and
    enforces the sample cap.  Anything capable of reading simulated time
    and producing snapshot dictionaries can feed it; :class:`Probe` is
    the standard driver.
    """

    def __init__(self, max_records: int = 10_000_000):
        if max_records < 1:
            raise ValueError("max_records must be at least 1")
        self.max_records = int(max_records)
        self.records: list[ProbeRecord] = []
        #: True once a record was discarded because the cap was reached.
        self.truncated = False

    def record(self, t: float, kind: str, name: str, fields: Mapping[str, float]) -> None:
        """Append one observation (dropped, and flagged, past the cap)."""
        if len(self.records) >= self.max_records:
            self.truncated = True
            return
        self.records.append(ProbeRecord(t=float(t), kind=kind, name=name, fields=dict(fields)))


@dataclass(frozen=True)
class ProbeLog:
    """The finished output of one probed simulation.

    Attributes
    ----------
    config:
        The :class:`ProbeConfig` the run was probed with.
    records:
        Every observation, in sampling order (time-major, queues before
        flows at each instant, each group in deterministic name order).
    truncated:
        True when the ``max_samples`` cap cut sampling short.
    """

    config: ProbeConfig
    records: tuple[ProbeRecord, ...] = ()
    truncated: bool = False

    @property
    def sample_times(self) -> tuple[float, ...]:
        """Distinct sampling instants, in order."""
        times: list[float] = []
        for record in self.records:
            if not times or record.t != times[-1]:
                times.append(record.t)
        return tuple(times)

    def names(self, kind: str) -> tuple[str, ...]:
        """Distinct sampled object names of one kind, sorted."""
        return tuple(sorted({r.name for r in self.records if r.kind == kind}))

    def series(self, kind: str, name: str, metric: str) -> list[tuple[float, float]]:
        """Time series ``[(t, value), ...]`` of one metric of one object."""
        return [
            (r.t, float(r.fields[metric]))
            for r in self.records
            if r.kind == kind and r.name == name and metric in r.fields
        ]


class Probe:
    """Drives sampling of a packet simulation at a fixed sim-time cadence.

    The network owns the loop: it runs the scheduler up to each instant
    in :meth:`sample_times` and then calls :meth:`sample` with snapshot
    dictionaries of its queues and senders.  The probe itself never
    touches the scheduler or the network.
    """

    def __init__(self, config: ProbeConfig):
        self.config = config
        self.recorder = TraceRecorder()
        self._samples_taken = 0
        self._truncated = False

    def sample_times(self, duration_s: float) -> list[float]:
        """The sampling instants for a run of ``duration_s`` seconds.

        Multiples of the interval (``k * interval_s`` — multiplication,
        not accumulation, so float error cannot drift the cadence) up to
        and including ``duration_s``, capped at ``max_samples``.
        """
        interval = self.config.interval_s
        count = int(duration_s / interval + 1e-9)
        if count > self.config.max_samples:
            count = self.config.max_samples
            self._truncated = True
        return [k * interval for k in range(1, count + 1)]

    def sample(
        self,
        now: float,
        queues: Mapping[str, Mapping[str, float]],
        flows: Mapping[int, Mapping[str, float]],
    ) -> None:
        """Record one sampling instant from prepared snapshots.

        ``queues`` maps queue name to its snapshot; ``flows`` maps
        connection id to its snapshot.  Iteration is over sorted keys so
        the record order is deterministic.
        """
        self._samples_taken += 1
        if self.config.include_queues:
            for name in sorted(queues):
                self.recorder.record(now, "queue", name, queues[name])
        if self.config.include_flows:
            for cid in sorted(flows):
                self.recorder.record(now, "flow", f"conn{cid}", flows[cid])

    def log(self) -> ProbeLog:
        """Freeze the recorded observations into a :class:`ProbeLog`."""
        return ProbeLog(
            config=self.config,
            records=tuple(self.recorder.records),
            truncated=self._truncated or self.recorder.truncated,
        )
