"""Figure 1 (conceptual): A/B tests with and without congestion interference.

Regenerates the two worlds of the paper's Figure 1 with the fluid
simulator: when every unit has a dedicated link (no shared bottleneck) the
treatment and control curves are flat in the allocation and the A/B test
estimates the TTE; when units share a bottleneck the curves move with the
allocation and the A/B estimate is biased.
"""

from benchmarks._helpers import run_once

from repro.core.estimands import sutva_holds
from repro.netsim.fluid import Application
from repro.netsim.fluid.lab import run_isolated_sweep, run_lab_sweep


def _treatment(i):
    return Application(i, cc="reno", connections=2)


def _control(i):
    return Application(i, cc="reno", connections=1)


def test_fig1_no_interference_world(benchmark):
    sweep = run_once(benchmark, run_isolated_sweep, 10, _treatment, _control)
    curve = sweep.curve("throughput_mbps")
    assert sutva_holds(curve, tolerance=0.01, relative=True)
    # Without interference the A/B estimate equals the TTE at any allocation.
    assert abs(curve.ate(0.5) - curve.tte()) < 1e-6
    print("\nFigure 1a (no interference): mu_T and mu_C are flat in the allocation")
    for p in (0.1, 0.5, 0.9):
        print(f"  p={p:.1f}  mu_T={curve.mu_treatment(p):8.1f}  mu_C={curve.mu_control(p):8.1f}")


def test_fig1_interference_world(benchmark):
    sweep = run_once(benchmark, run_lab_sweep, 10, _treatment, _control)
    curve = sweep.curve("throughput_mbps")
    assert not sutva_holds(curve, tolerance=0.01, relative=True)
    # With interference the A/B estimate is far from the (zero) TTE.
    assert abs(curve.ate(0.5) - curve.tte()) > 100.0
    print("\nFigure 1b (interference): the curves move with the allocation")
    for p in (0.1, 0.5, 0.9):
        print(f"  p={p:.1f}  mu_T={curve.mu_treatment(p):8.1f}  mu_C={curve.mu_control(p):8.1f}")
