"""Integrity checks for a campaign run directory.

:func:`validate_run` replays a run's ``manifest.json`` against the
installed package and the ``results.json`` artifact next to it: every
arm's content key must recompute to the pinned value, every arm must
have results (and nothing else may), cells must be finite and agree in
shape across a stage's replications, and the manifest's own campaign
key must match the campaign it describes.  Checks degrade gracefully —
a version drift is reported once and key recomputation (which embeds
the version) is skipped rather than producing one spurious mismatch per
arm.

The return value is a :class:`ValidationReport`; an empty ``problems``
tuple means the run directory is internally consistent and reproducible
by the installed package version.
"""

from __future__ import annotations

import json
import math
from collections.abc import Mapping
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.campaign.run import MANIFEST_NAME, MANIFEST_SCHEMA, RESULTS_NAME
from repro.campaign.spec import (
    AnalysisSettings,
    CampaignSpec,
    StageSpec,
)
from repro.runner.spec import ScenarioSpec, content_key

__all__ = ["ValidationReport", "validate_run"]


@dataclass(frozen=True)
class ValidationReport:
    """Outcome of validating one run directory.

    Attributes
    ----------
    rundir:
        The directory that was checked.
    problems:
        Human-readable findings; empty means the run validates.
    arms:
        Number of arms pinned by the manifest (0 if unreadable).
    unique_arms:
        Number of distinct content keys among those arms.
    stages:
        Number of stages the manifest describes.
    """

    rundir: Path
    problems: tuple[str, ...]
    arms: int = 0
    unique_arms: int = 0
    stages: int = 0

    @property
    def ok(self) -> bool:
        """True when no problems were found."""
        return not self.problems

    def summary_lines(self) -> list[str]:
        """Deterministic report: verdict line plus one line per problem."""
        if self.ok:
            return [
                f"{self.rundir}: OK "
                f"({self.stages} stages, {self.arms} arms, "
                f"{self.unique_arms} unique)"
            ]
        lines = [f"{self.rundir}: FAILED ({len(self.problems)} problem(s))"]
        lines.extend(f"  - {problem}" for problem in self.problems)
        return lines


def validate_run(
    rundir: str | Path, campaign: CampaignSpec | None = None
) -> ValidationReport:
    """Check a run directory's manifest and results for consistency.

    When ``campaign`` is given (e.g. the freshly loaded campaign file),
    the manifest must additionally match its content key — catching a
    run directory produced by a since-edited campaign.
    """
    rundir = Path(rundir)
    problems: list[str] = []
    if not rundir.is_dir():
        return ValidationReport(rundir=rundir, problems=(f"not a directory: {rundir}",))

    manifest = _load_json(rundir / MANIFEST_NAME, problems)
    if manifest is None:
        return ValidationReport(rundir=rundir, problems=tuple(problems))

    drift = _check_header(manifest, problems)
    stages = _check_stages(manifest, problems)
    arms = _check_arms(manifest, stages, drift, problems)
    if campaign is not None:
        manifest_key = _campaign_key(manifest)
        if manifest_key != campaign.content_key():
            problems.append(
                "campaign mismatch: the given campaign's content key "
                f"{campaign.content_key()[:12]}… does not match the manifest's "
                f"{str(manifest_key)[:12]}…"
            )
    _check_results(rundir, manifest, arms, stages, problems)
    _check_meta(rundir, problems)

    return ValidationReport(
        rundir=rundir,
        problems=tuple(problems),
        arms=len(arms),
        unique_arms=len({arm.get("key") for arm in arms if isinstance(arm, Mapping)}),
        stages=len(stages),
    )


def _load_json(path: Path, problems: list[str]) -> Any | None:
    """Read one artifact; record a problem and return None on failure."""
    if not path.is_file():
        problems.append(f"missing artifact: {path.name}")
        return None
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (json.JSONDecodeError, OSError) as exc:
        problems.append(f"unreadable artifact {path.name}: {exc}")
        return None


def _campaign_key(manifest: Any) -> Any:
    """The campaign content key pinned by the manifest (or None)."""
    campaign = manifest.get("campaign") if isinstance(manifest, Mapping) else None
    if isinstance(campaign, Mapping):
        return campaign.get("key")
    return None


def _check_header(manifest: Any, problems: list[str]) -> bool:
    """Validate schema/package/version; returns True on version drift."""
    if not isinstance(manifest, Mapping):
        problems.append("manifest.json: expected a mapping")
        return True
    if manifest.get("schema") != MANIFEST_SCHEMA:
        problems.append(
            f"manifest.json: schema {manifest.get('schema')!r} != {MANIFEST_SCHEMA}"
        )
    if manifest.get("package") != "repro":
        problems.append(f"manifest.json: package {manifest.get('package')!r} != 'repro'")
    from repro import __version__

    version = manifest.get("version")
    if version != __version__:
        problems.append(
            f"version drift: manifest was written by {version!r}, "
            f"installed is {__version__!r} (content keys not recomputed)"
        )
        return True
    return False


def _check_stages(manifest: Any, problems: list[str]) -> list[Mapping[str, Any]]:
    """Validate the manifest's stage list; returns the readable stages."""
    campaign = manifest.get("campaign") if isinstance(manifest, Mapping) else None
    if not isinstance(campaign, Mapping):
        problems.append("manifest.json: missing 'campaign' section")
        return []
    raw_stages = campaign.get("stages")
    if not isinstance(raw_stages, list) or not raw_stages:
        problems.append("manifest.json: campaign.stages must be a non-empty list")
        return []
    stages: list[Mapping[str, Any]] = []
    for index, stage in enumerate(raw_stages):
        if not isinstance(stage, Mapping) or not isinstance(stage.get("name"), str):
            problems.append(f"manifest.json: campaign.stages[{index}] is malformed")
            continue
        stages.append(stage)
    # The pinned campaign key must recompute from the pinned stages (it
    # embeds the version, so this is only meaningful without drift).
    try:
        rebuilt = CampaignSpec(
            name=str(campaign.get("name", "")),
            description=str(campaign.get("description", "")),
            stages=tuple(
                StageSpec(
                    name=stage["name"],
                    figure=str(stage.get("figure", "")),
                    knobs=dict(stage.get("knobs", {})),
                    seeds=tuple(stage.get("seeds", ())),
                )
                for stage in stages
            ),
            analysis=AnalysisSettings(
                confidence=float(
                    (campaign.get("analysis") or {}).get("confidence", 0.95)
                )
            ),
        )
    except (ValueError, KeyError, TypeError) as exc:
        problems.append(f"manifest.json: campaign does not rebuild: {exc}")
        return stages
    from repro import __version__

    if manifest.get("version") == __version__ and rebuilt.content_key() != campaign.get(
        "key"
    ):
        problems.append(
            "campaign key mismatch: manifest pins "
            f"{str(campaign.get('key'))[:12]}… but the pinned stages recompute to "
            f"{rebuilt.content_key()[:12]}…"
        )
    return stages


def _check_arms(
    manifest: Any,
    stages: list[Mapping[str, Any]],
    drift: bool,
    problems: list[str],
) -> list[Mapping[str, Any]]:
    """Validate the manifest's arm list; returns the readable arms."""
    raw_arms = manifest.get("arms") if isinstance(manifest, Mapping) else None
    if not isinstance(raw_arms, list) or not raw_arms:
        problems.append("manifest.json: arms must be a non-empty list")
        return []
    arms: list[Mapping[str, Any]] = []
    seen: set[tuple[str, Any]] = set()
    for index, arm in enumerate(raw_arms):
        if not isinstance(arm, Mapping):
            problems.append(f"manifest.json: arms[{index}] is not a mapping")
            continue
        missing = [
            field
            for field in ("stage", "figure", "task", "params", "key")
            if field not in arm
        ]
        if missing:
            problems.append(f"manifest.json: arms[{index}] lacks {missing}")
            continue
        arms.append(arm)
        ident = (str(arm["stage"]), arm.get("seed"))
        if ident in seen:
            problems.append(
                f"duplicate arm: stage {arm['stage']!r}, seed {arm.get('seed')!r}"
            )
        seen.add(ident)
        if not drift:
            spec = ScenarioSpec(
                task=str(arm["task"]),
                params=dict(arm["params"]),
                seed=arm.get("seed"),
                label=str(arm.get("label", "")),
            )
            if content_key(spec) != arm["key"]:
                problems.append(
                    f"arm key mismatch: {arm.get('label') or arm['stage']!r} pins "
                    f"{str(arm['key'])[:12]}… but recomputes to "
                    f"{content_key(spec)[:12]}…"
                )

    # Seed-grid agreement: each stage's arms must cover exactly its seeds.
    arms_by_stage: dict[str, list[Mapping[str, Any]]] = {}
    for arm in arms:
        arms_by_stage.setdefault(str(arm["stage"]), []).append(arm)
    for stage in stages:
        name = str(stage["name"])
        expected = list(stage.get("seeds", ()))
        got = [arm.get("seed") for arm in arms_by_stage.pop(name, [])]
        if not expected:
            expected = [None]
        if sorted(got, key=repr) != sorted(expected, key=repr):
            problems.append(
                f"seed mismatch in stage {name!r}: manifest stages pin "
                f"{expected} but arms cover {got}"
            )
    for name in sorted(arms_by_stage):
        problems.append(f"arms reference unknown stage {name!r}")
    return arms


def _check_results(
    rundir: Path,
    manifest: Any,
    arms: list[Mapping[str, Any]],
    stages: list[Mapping[str, Any]],
    problems: list[str],
) -> None:
    """Validate results.json against the manifest's arms."""
    results = _load_json(rundir / RESULTS_NAME, problems)
    if results is None:
        return
    if not isinstance(results, Mapping):
        problems.append("results.json: expected a mapping")
        return
    if results.get("schema") != MANIFEST_SCHEMA:
        problems.append(
            f"results.json: schema {results.get('schema')!r} != {MANIFEST_SCHEMA}"
        )
    if results.get("campaign_key") != _campaign_key(manifest):
        problems.append("results.json: campaign_key does not match manifest.json")
    cells_by_key = results.get("cells")
    if not isinstance(cells_by_key, Mapping):
        problems.append("results.json: 'cells' must be a mapping keyed by content key")
        return

    arm_keys = {str(arm["key"]) for arm in arms}
    for key in sorted(arm_keys - set(cells_by_key)):
        problems.append(f"missing arm result: no cells for key {key[:12]}…")
    for key in sorted(set(cells_by_key) - arm_keys):
        problems.append(f"unreferenced result: cells for unknown key {key[:12]}…")

    for key in sorted(arm_keys & set(cells_by_key)):
        cells = cells_by_key[key]
        if not isinstance(cells, Mapping) or not cells:
            problems.append(f"results.json: cells for {key[:12]}… must be a non-empty mapping")
            continue
        for name, value in cells.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                problems.append(
                    f"non-numeric cell {name!r} in {key[:12]}…: {value!r}"
                )
            elif not math.isfinite(value):
                problems.append(f"non-finite cell {name!r} in {key[:12]}…: {value!r}")

    # Replications of one stage must agree on the cell-name set.
    for stage in stages:
        name = str(stage["name"])
        shapes = {
            tuple(sorted(cells_by_key[str(arm["key"])]))
            for arm in arms
            if str(arm["stage"]) == name
            and str(arm["key"]) in cells_by_key
            and isinstance(cells_by_key[str(arm["key"])], Mapping)
        }
        if len(shapes) > 1:
            problems.append(
                f"cell-set mismatch within stage {name!r}: replications "
                "disagree on which cells exist"
            )


def _check_meta(rundir: Path, problems: list[str]) -> None:
    """Sanity-check the tracer's meta.json when present (it is optional)."""
    path = rundir / "meta.json"
    if not path.is_file():
        return
    meta = _load_json(path, problems)
    if not isinstance(meta, Mapping):
        problems.append("meta.json: expected a mapping")
        return
    for counter in ("tasks", "cache_hits", "cache_misses"):
        value = meta.get(counter)
        if value is not None and (not isinstance(value, int) or value < 0):
            problems.append(f"meta.json: counter {counter!r} is not a non-negative int")
