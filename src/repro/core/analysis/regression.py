"""Ordinary least squares with fixed effects and robust standard errors.

The paper's estimator for effects at scale (Appendix B) is the regression

.. math::

    Z_t(A) = c + \\beta_0 A + \\beta_t + \\varepsilon

fit on the hourly aggregates ``Z_t(A)``, where ``A`` is the treatment
indicator and ``beta_t`` are hour-of-day fixed effects absorbing diurnal
heterogeneity.  The coefficient ``beta_0`` on the treatment indicator is
the estimated treatment effect; its standard error uses the Newey-West
correction from :mod:`repro.core.analysis.newey_west`.

Implemented from scratch on numpy (no statsmodels dependency).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.core.analysis.aggregation import HourlyAggregate
from repro.core.analysis.newey_west import newey_west_covariance
from repro.core.estimators import EstimateWithCI

__all__ = ["OLSResult", "ols", "treatment_effect_regression"]


@dataclass(frozen=True)
class OLSResult:
    """Fitted ordinary-least-squares regression.

    Attributes
    ----------
    coefficients:
        Estimated coefficients, one per design-matrix column.
    covariance:
        Covariance matrix of the coefficients (robust if requested).
    residuals:
        Per-observation residuals.
    column_names:
        Human-readable names of the design-matrix columns.
    n_observations:
        Number of rows in the regression.
    """

    coefficients: np.ndarray
    covariance: np.ndarray
    residuals: np.ndarray
    column_names: tuple[str, ...]
    n_observations: int

    def std_errors(self) -> np.ndarray:
        """Standard errors of all coefficients."""
        return np.sqrt(np.clip(np.diag(self.covariance), 0.0, None))

    def coefficient(self, name: str) -> float:
        """Point estimate of the named coefficient."""
        return float(self.coefficients[self._index(name)])

    def std_error(self, name: str) -> float:
        """Standard error of the named coefficient."""
        return float(self.std_errors()[self._index(name)])

    def confidence_interval(
        self, name: str, confidence: float = 0.95
    ) -> EstimateWithCI:
        """Normal-theory confidence interval for the named coefficient."""
        est = self.coefficient(name)
        se = self.std_error(name)
        z = float(stats.norm.ppf(0.5 + confidence / 2.0))
        return EstimateWithCI(
            estimate=est,
            std_error=se,
            ci_low=est - z * se,
            ci_high=est + z * se,
            confidence=confidence,
            n=self.n_observations,
        )

    def r_squared(self, outcomes: np.ndarray) -> float:
        """Coefficient of determination against the original outcomes."""
        y = np.asarray(outcomes, dtype=float)
        total = float(((y - y.mean()) ** 2).sum())
        if total == 0.0:
            return 1.0
        residual = float((self.residuals**2).sum())
        return 1.0 - residual / total

    def _index(self, name: str) -> int:
        try:
            return self.column_names.index(name)
        except ValueError:
            raise KeyError(
                f"no coefficient named {name!r}; available: {self.column_names}"
            ) from None


def ols(
    design: np.ndarray,
    outcomes: np.ndarray,
    column_names: tuple[str, ...] | None = None,
    hac_max_lag: int | None = None,
) -> OLSResult:
    """Fit OLS by least squares, optionally with Newey-West covariance.

    Parameters
    ----------
    design:
        Design matrix ``X`` of shape ``(n, k)``.
    outcomes:
        Outcome vector ``y`` of shape ``(n,)``.
    column_names:
        Optional names for the columns of ``X``.
    hac_max_lag:
        When given, the coefficient covariance is Newey-West with this
        maximum lag; otherwise the classical homoskedastic covariance
        ``sigma^2 (X'X)^{-1}`` is used.
    """
    X = np.asarray(design, dtype=float)
    y = np.asarray(outcomes, dtype=float)
    if X.ndim != 2:
        raise ValueError("design must be two-dimensional")
    if y.ndim != 1 or y.shape[0] != X.shape[0]:
        raise ValueError("outcomes must be 1-D and match the design's row count")
    n, k = X.shape
    if n <= k:
        raise ValueError(
            f"regression needs more observations ({n}) than parameters ({k})"
        )
    if column_names is None:
        column_names = tuple(f"x{i}" for i in range(k))
    if len(column_names) != k:
        raise ValueError("column_names length must match the number of columns")

    beta, *_ = np.linalg.lstsq(X, y, rcond=None)
    residuals = y - X @ beta

    if hac_max_lag is not None:
        cov = newey_west_covariance(X, residuals, max_lag=hac_max_lag)
    else:
        dof = n - k
        sigma2 = float(residuals @ residuals) / dof if dof > 0 else 0.0
        cov = sigma2 * np.linalg.pinv(X.T @ X)

    return OLSResult(
        coefficients=beta,
        covariance=cov,
        residuals=residuals,
        column_names=tuple(column_names),
        n_observations=n,
    )


def treatment_effect_regression(
    aggregate: HourlyAggregate,
    hac_max_lag: int = 2,
    weight_by_count: bool = False,
) -> OLSResult:
    """Fit the paper's hourly fixed-effects regression.

    The design has an intercept, the treatment indicator and one dummy per
    hour of day (the first hour is absorbed into the intercept to avoid
    collinearity).  Rows are ordered by time index so the Newey-West lag
    structure corresponds to successive hours.

    Parameters
    ----------
    aggregate:
        Hourly aggregated outcomes from
        :func:`repro.core.analysis.aggregation.aggregate_hourly`.
    hac_max_lag:
        Newey-West maximum lag, default two hours as in the paper.
    weight_by_count:
        When True, rows are weighted by the square root of the session count
        behind each cell (a precision weight).  The paper's analysis uses
        unweighted rows, which is the default.
    """
    if len(aggregate) == 0:
        raise ValueError("cannot run a regression on an empty aggregate")
    order = np.lexsort((aggregate.treated, aggregate.time_index))
    hour = aggregate.hour[order]
    treated = aggregate.treated[order].astype(float)
    value = aggregate.value[order].astype(float)
    count = aggregate.count[order].astype(float)

    hours_present = sorted(set(int(h) for h in hour))
    fe_hours = hours_present[1:]  # first hour absorbed by the intercept
    columns: list[np.ndarray] = [np.ones_like(value), treated]
    names: list[str] = ["intercept", "treatment"]
    for h in fe_hours:
        columns.append((hour == h).astype(float))
        names.append(f"hour_{h:02d}")
    X = np.column_stack(columns)
    y = value

    if weight_by_count:
        w = np.sqrt(count)
        X = X * w[:, None]
        y = y * w

    return ols(X, y, tuple(names), hac_max_lag=hac_max_lag)
