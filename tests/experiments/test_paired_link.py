"""Integration tests for the paired-link bitrate-capping experiment.

These are the repository's headline checks: the synthetic paired-link
experiment must reproduce the *qualitative* findings of the paper's
Section 4 — naive A/B estimates that are near zero or wrong-signed while
the TTE and spillover are large, with the specific per-metric patterns of
Figure 5 and the time-series/cell structure of Figures 6-9.
"""

import numpy as np
import pytest

from repro.core.units import SESSION_METRICS
from repro.experiments import PairedLinkExperiment, compare_links_at_baseline
from repro.workload import WorkloadConfig


@pytest.fixture(scope="module")
def outcome():
    """A single moderate-size run shared by all tests in this module."""
    config = WorkloadConfig(sessions_at_peak=220, n_accounts=3000, seed=11)
    return PairedLinkExperiment(config=config).run()


class TestRunStructure:
    def test_all_estimands_and_metrics_present(self, outcome):
        assert set(outcome.estimates) == {"ab_0.05", "ab_0.95", "tte", "spillover"}
        for per_metric in outcome.estimates.values():
            assert set(per_metric) == set(SESSION_METRICS)

    def test_experiment_covers_five_days_on_two_links(self, outcome):
        table = outcome.experiment_table
        assert set(table["day"].astype(int)) == {0, 1, 2, 3, 4}
        assert set(table["link"].astype(int)) == {1, 2}

    def test_baselines_use_global_control(self, outcome):
        control = outcome.experiment_table.where(link=2, treated=0)
        assert outcome.baselines["throughput_mbps"] == pytest.approx(
            control.mean("throughput_mbps")
        )

    def test_figure5_rows_cover_all_metrics(self, outcome):
        rows = outcome.figure5_rows()
        assert {row["metric"] for row in rows} == set(SESSION_METRICS)
        for row in rows:
            for estimand in ("ab_0.05", "ab_0.95", "tte", "spillover"):
                assert estimand in row
                low, high = row[f"{estimand}_ci"]
                assert low <= row[estimand] <= high


class TestFigure5Shape:
    """The headline qualitative pattern of the paper's Figure 5."""

    def test_throughput_naive_small_or_negative_but_tte_positive(self, outcome):
        naive_05 = outcome.estimate("ab_0.05", "throughput_mbps").relative_percent
        naive_95 = outcome.estimate("ab_0.95", "throughput_mbps").relative_percent
        tte = outcome.estimate("tte", "throughput_mbps").relative_percent
        assert naive_05 < 3.0 and naive_95 < 3.0
        assert tte > 3.0
        assert tte > naive_05 and tte > naive_95

    def test_throughput_spillover_positive(self, outcome):
        assert outcome.estimate("spillover", "throughput_mbps").relative_percent > 5.0

    def test_min_rtt_naive_positive_but_tte_negative(self, outcome):
        """The paper's 'smoking gun': naive tests report increased minimum
        RTT while the true effect is a large decrease."""
        naive_05 = outcome.estimate("ab_0.05", "min_rtt_ms").relative_percent
        tte = outcome.estimate("tte", "min_rtt_ms").relative_percent
        assert naive_05 > 0.0
        assert tte < -8.0

    def test_min_rtt_spillover_negative(self, outcome):
        assert outcome.estimate("spillover", "min_rtt_ms").relative_percent < -8.0

    def test_play_delay_missed_by_naive_tests(self, outcome):
        naive_05 = abs(outcome.estimate("ab_0.05", "play_delay_s").relative_percent)
        naive_95 = abs(outcome.estimate("ab_0.95", "play_delay_s").relative_percent)
        tte = outcome.estimate("tte", "play_delay_s").relative_percent
        assert naive_05 < 5.0 and naive_95 < 5.0
        assert tte < -5.0

    def test_video_bitrate_reduction_large_everywhere(self, outcome):
        for estimand in ("ab_0.05", "ab_0.95", "tte"):
            assert outcome.estimate(estimand, "video_bitrate_kbps").relative_percent < -25.0

    def test_bytes_sent_reduced(self, outcome):
        assert outcome.estimate("tte", "bytes_sent_gb").relative_percent < -20.0

    def test_retransmit_fraction_tte_positive(self, outcome):
        assert outcome.estimate("tte", "retransmit_fraction").relative_percent > 0.0

    def test_rebuffers_improve_in_naive_tests(self, outcome):
        assert outcome.estimate("ab_0.05", "rebuffer_rate").relative_percent < -5.0
        assert outcome.estimate("ab_0.95", "rebuffer_rate").relative_percent < -5.0

    def test_perceptual_quality_cost_is_small(self, outcome):
        assert abs(outcome.estimate("tte", "perceptual_quality").relative_percent) < 6.0

    def test_sign_flip_detected_for_min_rtt(self, outcome):
        naive = outcome.estimate("ab_0.05", "min_rtt_ms").relative.estimate
        tte = outcome.estimate("tte", "min_rtt_ms").relative.estimate
        assert (naive > 0) != (tte > 0)


class TestFigure6Series:
    def test_series_normalized_to_one(self, outcome):
        series = outcome.figure6_series()
        for period in ("baseline", "experiment"):
            values = [v for hours in series[period].values() for v in hours.values()]
            assert max(values) == pytest.approx(1.0)
            assert min(values) > 0.0

    def test_links_similar_at_baseline_but_different_in_experiment(self, outcome):
        series = outcome.figure6_series()
        peak_hours = range(18, 23)

        def peak_gap(period):
            link1 = series[period][1]
            link2 = series[period][2]
            return np.mean([link1[h] - link2[h] for h in peak_hours if h in link1 and h in link2])

        assert abs(peak_gap("baseline")) < 0.1
        assert peak_gap("experiment") > 0.05

    def test_peak_hours_have_lower_throughput_than_off_peak(self, outcome):
        series = outcome.figure6_series()["experiment"][2]
        assert series[20] < series[10]


class TestCellFigures:
    def test_figure7_throughput_cells(self, outcome):
        cells = outcome.figure7_cells()
        # Both link-1 cells beat both link-2 cells (capping relieved congestion).
        assert min(cells.link1_treated, cells.link1_control) > max(
            cells.link2_treated, cells.link2_control
        ) * 0.98
        assert cells.approximate_tte > 0.0
        assert cells.spillover > 0.0

    def test_figure8_rtt_cells_normalized(self, outcome):
        cells = outcome.figure8_cells()
        values = [
            cells.link1_treated,
            cells.link1_control,
            cells.link2_treated,
            cells.link2_control,
        ]
        assert min(values) == pytest.approx(1.0)
        # Link 2 (mostly uncapped) has the large standing queue.
        assert cells.link2_control > cells.link1_control

    def test_cell_means_unknown_metric_raises(self, outcome):
        with pytest.raises(KeyError):
            outcome.cell_means("nope")


class TestFigure9:
    def test_retransmits_up_off_peak_down_at_peak(self, outcome):
        split = outcome.figure9_retransmit_split()
        assert split["off_peak"] > 0.0
        assert split["peak"] < 0.0
        assert split["overall"] > split["peak"]


class TestFigure13:
    def test_hourly_intervals_at_least_as_wide_as_account(self, outcome):
        comparison = outcome.figure13_ci_comparison(["throughput_mbps", "video_bitrate_kbps"])
        for metric in ("throughput_mbps", "video_bitrate_kbps"):
            hourly = comparison["hourly"][metric].relative.width
            account = comparison["account"][metric].relative.width
            assert hourly >= account * 0.9

    def test_point_estimates_agree_between_aggregations(self, outcome):
        comparison = outcome.figure13_ci_comparison(["video_bitrate_kbps"])
        hourly = comparison["hourly"]["video_bitrate_kbps"].relative.estimate
        account = comparison["account"]["video_bitrate_kbps"].relative.estimate
        assert hourly == pytest.approx(account, abs=0.1)


class TestBaselineValidation:
    def test_rebuffer_difference_matches_configured_link_effect(self, outcome):
        rows = {r.metric: r for r in compare_links_at_baseline(outcome.baseline_table)}
        assert rows["rebuffer_rate"].relative_percent == pytest.approx(20.0, abs=8.0)
        assert rows["bytes_sent_gb"].relative_percent == pytest.approx(5.0, abs=4.0)

    def test_network_metrics_similar_at_baseline(self, outcome):
        rows = {r.metric: r for r in compare_links_at_baseline(outcome.baseline_table)}
        for metric in ("throughput_mbps", "min_rtt_ms", "video_bitrate_kbps"):
            assert abs(rows[metric].relative_percent) < 5.0

    def test_missing_link_raises(self, outcome):
        with pytest.raises(ValueError):
            compare_links_at_baseline(outcome.baseline_table, link_a=1, link_b=9)
