"""Tests for repro.core.experiment: wiring designs, data and analysis."""

import numpy as np
import pytest

from repro.core.designs import ABTestDesign, PairedLinkDesign
from repro.core.designs.base import CellSelector, ComparisonSpec
from repro.core.experiment import (
    ExperimentResult,
    evaluate_comparisons,
    evaluate_design,
    select_cells,
)
from repro.core.units import OutcomeTable


def make_table(seed=0, effect_on_link1=3.0):
    """Two links, two days, 24 hours, with an arm effect only on link 1."""
    rng = np.random.default_rng(seed)
    cols = {k: [] for k in ("link", "day", "hour", "treated", "account_id", "value")}
    for link in (1, 2):
        for day in (0, 1):
            for hour in range(24):
                for arm in (0, 1):
                    n = 10
                    effect = effect_on_link1 if (link == 1 and arm == 1) else 0.0
                    values = rng.normal(10.0 + effect, 1.0, n)
                    cols["link"].extend([link] * n)
                    cols["day"].extend([day] * n)
                    cols["hour"].extend([hour] * n)
                    cols["treated"].extend([arm] * n)
                    cols["account_id"].extend(rng.integers(0, 30, n).tolist())
                    cols["value"].extend(values.tolist())
    return OutcomeTable({k: np.array(v, dtype=float) for k, v in cols.items()})


class TestSelectCells:
    def test_select_by_link(self):
        table = make_table()
        subset = select_cells(table, CellSelector(links=(1,)))
        assert set(subset["link"].astype(int)) == {1}

    def test_select_by_day_and_arm(self):
        table = make_table()
        subset = select_cells(table, CellSelector(days=(0,), treated=True))
        assert set(subset["day"].astype(int)) == {0}
        assert set(subset["treated"].astype(int)) == {1}

    def test_wildcard_selects_all(self):
        table = make_table()
        assert len(select_cells(table, CellSelector())) == len(table)


class TestEvaluateComparisons:
    def test_recovers_effect(self):
        table = make_table(effect_on_link1=3.0)
        spec = ComparisonSpec(
            estimand="link1_effect",
            treatment_selector=CellSelector(links=(1,), treated=True),
            control_selector=CellSelector(links=(1,), treated=False),
        )
        results = evaluate_comparisons(table, [spec], metrics=("value",))
        estimate = results["link1_effect"]["value"]
        assert estimate.absolute.covers(3.0)

    def test_empty_group_raises(self):
        table = make_table()
        spec = ComparisonSpec(
            estimand="empty",
            treatment_selector=CellSelector(links=(9,)),
            control_selector=CellSelector(links=(1,)),
        )
        with pytest.raises(ValueError):
            evaluate_comparisons(table, [spec], metrics=("value",))

    def test_baseline_overrides_normalization(self):
        table = make_table(effect_on_link1=3.0)
        spec = ComparisonSpec(
            estimand="e",
            treatment_selector=CellSelector(links=(1,), treated=True),
            control_selector=CellSelector(links=(1,), treated=False),
        )
        results = evaluate_comparisons(
            table, [spec], metrics=("value",), baselines={"value": 100.0}
        )
        assert results["e"]["value"].baseline == pytest.approx(100.0)


class TestEvaluateDesign:
    def test_ab_design_end_to_end(self):
        table = make_table(effect_on_link1=3.0)
        design = ABTestDesign(0.5)
        result = ExperimentResult(design, table, (1, 2), (0, 1))
        estimates = evaluate_design(result, metrics=("value",))
        # The pooled A/B effect over both links is about half the link-1 effect.
        assert estimates["ab_0.5"]["value"].absolute.estimate == pytest.approx(
            1.5, abs=0.5
        )

    def test_paired_link_design_estimands_present(self):
        table = make_table(effect_on_link1=3.0)
        design = PairedLinkDesign()
        result = ExperimentResult(design, table, (1, 2), (0, 1))
        estimates = evaluate_design(result, metrics=("value",))
        assert set(estimates) == {"tte", "spillover", "ab_0.95", "ab_0.05"}

    def test_comparisons_use_run_days(self):
        table = make_table()
        design = PairedLinkDesign()
        result = ExperimentResult(design, table, (1, 2), (0,))
        for spec in result.comparisons():
            assert spec.treatment_selector.days == (0,)
