"""Causal estimands for network experiments.

Section 2 of the paper defines, for a treatment allocation ``p``:

``mu_T(p)``
    Expected average outcome of *treated* units when a fraction ``p`` of
    units is treated.
``mu_C(p)``
    Expected average outcome of *control* units when a fraction ``p`` of
    units is treated.
``tau(p) = mu_T(p) - mu_C(p)``
    The average treatment effect measured by an A/B test at allocation ``p``.
``TTE = mu_T(1) - mu_C(0)``
    The total treatment effect: what changes if the experimenter moves all
    of their traffic to the new algorithm.
``s(p) = mu_C(p) - mu_C(0)``
    The spillover of treatment onto control units.
``rho(p) = mu_T(p) - mu_C(0)``
    The partial treatment effect, useful during gradual deployments.

When the Stable Unit Treatment Value Assumption (SUTVA) holds, ``mu_T`` and
``mu_C`` do not depend on ``p``; then ``tau(p) = TTE`` for every ``p`` and
spillovers are identically zero.  Congestion interference breaks SUTVA.

:class:`PotentialOutcomeCurve` stores ``mu_T(p)`` and ``mu_C(p)`` sampled on
a grid of allocations — exactly what the lab experiments of Section 3
measure — and computes every estimand from it.  :class:`EstimandSet` is the
scalar summary used in figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping

import numpy as np

__all__ = [
    "EstimandSet",
    "PotentialOutcomeCurve",
    "sutva_holds",
]


@dataclass(frozen=True)
class EstimandSet:
    """Scalar estimands for one metric at one allocation.

    Attributes
    ----------
    metric:
        Name of the outcome metric.
    allocation:
        Treatment allocation ``p`` at which ``ate`` and ``spillover`` are
        evaluated.
    ate:
        The average treatment effect ``tau(p)``.
    tte:
        The total treatment effect ``mu_T(1) - mu_C(0)``.
    spillover:
        The spillover ``s(p) = mu_C(p) - mu_C(0)``.
    partial_effect:
        The partial treatment effect ``rho(p) = mu_T(p) - mu_C(0)``.
    """

    metric: str
    allocation: float
    ate: float
    tte: float
    spillover: float
    partial_effect: float

    @property
    def ab_test_bias(self) -> float:
        """Bias of the naive A/B estimate: ``tau(p) - TTE``.

        Zero when SUTVA holds; non-zero bias is the paper's headline
        phenomenon.
        """
        return self.ate - self.tte

    @property
    def sign_flipped(self) -> bool:
        """True when the A/B test gets the *direction* of the effect wrong."""
        if self.ate == 0.0 or self.tte == 0.0:
            return False
        return (self.ate > 0) != (self.tte > 0)


class PotentialOutcomeCurve:
    """Treatment and control outcome means as a function of allocation.

    This is the object drawn in Figure 1 of the paper: for each allocation
    ``p`` on a grid, the mean outcome of treated units ``mu_T(p)`` and of
    control units ``mu_C(p)``.  The lab experiments of Section 3 measure
    these curves exhaustively by sweeping the number of treated flows from
    0 to 10.

    Parameters
    ----------
    metric:
        Name of the outcome metric the curve describes.
    treatment_means:
        Mapping from allocation ``p`` (0 < p <= 1) to ``mu_T(p)``.
    control_means:
        Mapping from allocation ``p`` (0 <= p < 1) to ``mu_C(p)``.
    """

    def __init__(
        self,
        metric: str,
        treatment_means: Mapping[float, float],
        control_means: Mapping[float, float],
    ):
        self.metric = metric
        self._mu_t = {float(p): float(v) for p, v in treatment_means.items()}
        self._mu_c = {float(p): float(v) for p, v in control_means.items()}
        for p in self._mu_t:
            if not 0.0 < p <= 1.0:
                raise ValueError(f"treatment mean defined at invalid allocation {p}")
        for p in self._mu_c:
            if not 0.0 <= p < 1.0:
                raise ValueError(f"control mean defined at invalid allocation {p}")
        if not self._mu_t:
            raise ValueError("at least one treatment mean is required")
        if not self._mu_c:
            raise ValueError("at least one control mean is required")

    # -- accessors ----------------------------------------------------------

    @property
    def allocations(self) -> list[float]:
        """Sorted list of all allocations at which either curve is defined."""
        return sorted(set(self._mu_t) | set(self._mu_c))

    def mu_treatment(self, allocation: float) -> float:
        """``mu_T(p)``: mean treated outcome at the given allocation."""
        return self._interpolate(self._mu_t, allocation, "treatment")

    def mu_control(self, allocation: float) -> float:
        """``mu_C(p)``: mean control outcome at the given allocation."""
        return self._interpolate(self._mu_c, allocation, "control")

    @staticmethod
    def _interpolate(curve: dict[float, float], p: float, label: str) -> float:
        p = float(p)
        if p in curve:
            return curve[p]
        xs = np.array(sorted(curve))
        ys = np.array([curve[x] for x in xs])
        if p < xs[0] or p > xs[-1]:
            raise ValueError(
                f"allocation {p} outside the measured {label} range "
                f"[{xs[0]}, {xs[-1]}]"
            )
        return float(np.interp(p, xs, ys))

    # -- estimands ------------------------------------------------------------

    def ate(self, allocation: float) -> float:
        """Average treatment effect ``tau(p) = mu_T(p) - mu_C(p)``."""
        return self.mu_treatment(allocation) - self.mu_control(allocation)

    def tte(self) -> float:
        """Total treatment effect ``mu_T(1) - mu_C(0)``.

        Requires the curve to be measured at full deployment (p = 1) and at
        zero deployment (p = 0).
        """
        if 1.0 not in self._mu_t:
            raise ValueError("TTE requires mu_T measured at allocation 1.0")
        if 0.0 not in self._mu_c:
            raise ValueError("TTE requires mu_C measured at allocation 0.0")
        return self._mu_t[1.0] - self._mu_c[0.0]

    def spillover(self, allocation: float) -> float:
        """Spillover ``s(p) = mu_C(p) - mu_C(0)`` of treatment on control."""
        if allocation >= 1.0:
            raise ValueError("spillover is undefined at allocation 1.0 (no control)")
        if 0.0 not in self._mu_c:
            raise ValueError("spillover requires mu_C measured at allocation 0.0")
        return self.mu_control(allocation) - self._mu_c[0.0]

    def partial_effect(self, allocation: float) -> float:
        """Partial treatment effect ``rho(p) = mu_T(p) - mu_C(0)``."""
        if 0.0 not in self._mu_c:
            raise ValueError("partial effect requires mu_C measured at allocation 0.0")
        return self.mu_treatment(allocation) - self._mu_c[0.0]

    def estimands(self, allocation: float) -> EstimandSet:
        """All scalar estimands for the curve at the given allocation.

        At full deployment (``allocation == 1``) there is no concurrent
        control group: the within-experiment effect equals the TTE and the
        spillover is zero by convention.
        """
        full = allocation >= 1.0
        return EstimandSet(
            metric=self.metric,
            allocation=float(allocation),
            ate=self.tte() if full else self.ate(allocation),
            tte=self.tte(),
            spillover=0.0 if full else self.spillover(allocation),
            partial_effect=self.partial_effect(allocation),
        )

    def ab_test_bias(self, allocation: float) -> float:
        """Bias of a naive A/B test at ``allocation``: ``tau(p) - TTE``."""
        return self.ate(allocation) - self.tte()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PotentialOutcomeCurve(metric={self.metric!r}, "
            f"allocations={self.allocations})"
        )


def sutva_holds(
    curve: PotentialOutcomeCurve,
    tolerance: float = 1e-9,
    relative: bool = False,
) -> bool:
    """Check whether the measured curve is consistent with SUTVA.

    Under SUTVA the treatment curve and the control curve are each flat in
    the allocation: ``mu_T(p)`` and ``mu_C(p)`` do not depend on ``p``.
    This check compares the spread of each curve against ``tolerance``
    (absolutely, or relative to the curve's mean magnitude when
    ``relative=True``).
    """
    mu_t = np.array([curve.mu_treatment(p) for p in sorted(curve._mu_t)])
    mu_c = np.array([curve.mu_control(p) for p in sorted(curve._mu_c)])

    def _flat(values: np.ndarray) -> bool:
        if values.size <= 1:
            return True
        spread = float(values.max() - values.min())
        if relative:
            scale = max(abs(float(values.mean())), 1e-12)
            return spread / scale <= tolerance
        return spread <= tolerance

    return _flat(mu_t) and _flat(mu_c)
