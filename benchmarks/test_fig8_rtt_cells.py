"""Figure 8: average minimum RTT in the four experiment cells (normalized).

Paper finding: the mostly-capped link's standing queue is empty for much
more of the day, so both of its cells show far lower minimum RTTs than the
mostly-uncapped link's cells; within each link the capped cell reports a
slightly *higher* minimum RTT, which is what misleads the naive tests.
"""

from benchmarks._helpers import run_once

from repro.reporting import format_table


def test_fig8_min_rtt_cells(benchmark, paired_outcome):
    cells = run_once(benchmark, paired_outcome.figure8_cells)

    print(
        "\n"
        + format_table(
            ["cell", "min RTT (normalized)"],
            [
                ["link 1, capped 95%", f"{cells.link1_treated:.3f}"],
                ["link 1, uncapped 5%", f"{cells.link1_control:.3f}"],
                ["link 2, capped 5%", f"{cells.link2_treated:.3f}"],
                ["link 2, uncapped 95%", f"{cells.link2_control:.3f}"],
            ],
        )
    )

    values = [
        cells.link1_treated,
        cells.link1_control,
        cells.link2_treated,
        cells.link2_control,
    ]
    assert min(values) >= 0.999  # normalized to the smallest cell

    # The mostly-uncapped link has much larger minimum RTTs than the capped link.
    assert cells.link2_control > 1.15 * cells.link1_control
    assert cells.link2_treated > 1.15 * cells.link1_treated
    # Within each link, capped sessions report a slightly higher minimum RTT.
    assert cells.link1_treated >= cells.link1_control
    assert cells.link2_treated >= cells.link2_control
    # TTE (link1 treated vs link2 control) is a reduction.
    assert cells.approximate_tte < 0.0
