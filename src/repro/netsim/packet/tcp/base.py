"""Common sender machinery shared by all congestion-control algorithms.

By default the sender models a bulk transfer with unlimited data: it
always has packets to send and is only limited by its congestion window
(and, when pacing is enabled, its pacing rate).  A *finite* transfer
(``transfer_bytes``) instead sends exactly that much data, completes when
the last byte is acknowledged — recording its completion time (the
network reads it when assembling results; the optional ``on_complete``
hook surfaces the event to interested callers) — and never transmits
again (stale feedback after completion is ignored).  The surrounding simulation
delivers two kinds of feedback:

* :meth:`TcpSender.handle_ack` when a packet was delivered (one RTT after
  it left the bottleneck, including any queueing delay it experienced);
* :meth:`TcpSender.handle_loss` when a packet was dropped at the bottleneck
  (notification arrives roughly one RTT later, standing in for duplicate
  ACK detection).

Subclasses implement :meth:`TcpSender.on_ack` and :meth:`TcpSender.on_loss`
to update the congestion window, and may override
:meth:`TcpSender.current_pacing_rate_bps` to pace at an algorithm-specific
rate (BBR always paces; Reno/Cubic pace only when Linux-style ``fq`` pacing
is enabled for the flow).

Flows that negotiated ECN (``ecn=True`` or ``ecn="classic"``) send
ECN-capable packets; an AQM queue may CE-mark such a packet instead of
dropping it.  The mark comes back with the ack and triggers
:meth:`TcpSender.on_ecn_mark` — a window reduction like a loss, but with
**no retransmission** (the marked packet was delivered), and at most once
per RTT (RFC 3168's one-reduction-per-window rule).  Marks therefore
reduce throughput without moving the retransmit counters, decoupling the
two observables.

``ecn="l4s"`` selects the scalable DCTCP/Prague response instead: the
sender tracks the fraction of acked packets that carried CE over each
RTT, folds it into an EWMA (``l4s_alpha``, DCTCP's alpha), and reacts to
marks with a *proportional* cut — ``cwnd -= cwnd * alpha / 2`` — rather
than the classic halving, still at most once per RTT.  Fine-grained
marking (many small signals) then steers the window smoothly instead of
sawtoothing it.  L4S packets carry the ``l4s`` flag (the model's ECT(1)),
which a dual-queue AQM uses to classify them into its low-latency queue.
BBR overrides :meth:`TcpSender.on_ecn_mark` to ignore marks in both
modes, exactly as it ignores loss.
"""

from __future__ import annotations

import math
from collections.abc import Callable

from repro.netsim.packet.engine import EventScheduler
from repro.netsim.packet.packets import Packet, PacketPool

__all__ = ["TcpSender", "normalize_ecn"]


def normalize_ecn(ecn: bool | str | None) -> str | None:
    """Normalize an ECN negotiation flag to its response mode.

    The single source of truth for the accepted values — ``False`` /
    ``None`` (no ECN, returns ``None``), ``True`` / ``"classic"`` (the
    RFC 3168 response, returns ``"classic"``) and ``"l4s"`` (the
    DCTCP/Prague response).  Identity checks, not equality: ``0``/``1``
    (or numpy bools) are rejected here, at configuration time, rather
    than surviving into the simulation.
    """
    if ecn is True:
        return "classic"
    if ecn is False or ecn is None:
        return None
    if isinstance(ecn, str) and ecn in ("classic", "l4s"):
        return ecn
    raise ValueError(f"ecn must be a bool, 'classic' or 'l4s'; got {ecn!r}")


class TcpSender:
    """Base class for simplified TCP senders.

    Parameters
    ----------
    flow_id:
        Identifier of the flow.
    scheduler:
        The simulation's event scheduler.
    transmit:
        Callable that injects a packet into the network (the bottleneck
        queue in the single-link topology).
    mss_bytes:
        Segment size in bytes.
    base_rtt_s:
        Two-way propagation delay, in seconds, excluding queueing.
    paced:
        Whether the flow paces its packets (Linux ``fq`` style) instead of
        sending ack-clocked bursts.
    ecn:
        ECN negotiation: ``False`` (default) disables ECN; ``True`` or
        ``"classic"`` selects the RFC 3168 response (one loss-equivalent
        reduction per RTT on an echoed mark, no retransmission);
        ``"l4s"`` selects the DCTCP/Prague response (marked-fraction EWMA
        driving a proportional cut) and flags the flow's packets as L4S
        so dual-queue AQMs classify them into the low-latency queue.
    initial_cwnd:
        Initial congestion window in packets.
    transfer_bytes:
        Total bytes this flow transfers before completing; ``None``
        (default) models an unlimited bulk transfer.  Data is sent in
        MSS-sized packets, so the transfer is rounded up to whole
        packets; a zero-byte transfer completes the instant it starts.
    batch_segments:
        Event-batching factor.  1 (default) sends one MSS-sized packet
        per simulated packet, exactly as before.  Greater than 1 lets
        the sender coalesce up to that many segments into a single
        *macro-packet* (one enqueue, one service completion, one ack or
        loss event for the whole burst), so a window of k segments costs
        O(k / batch) scheduler events instead of O(k).  Per-segment
        counters (``packets_sent``, ``inflight``, cwnd growth, ...) are
        scaled by each packet's ``segments`` field, and subclasses
        provide closed-form :meth:`on_ack_batch` growth so a batch of n
        acks costs O(1) work.  The congestion *dynamics* are slightly
        coarser (burstier arrivals, burst-granular losses); see
        ``docs/performance.md`` for the measured deviations.
    pool:
        Optional :class:`~repro.netsim.packet.packets.PacketPool` to
        allocate packets from.  The network builder shares one pool per
        simulation and recycles packets after their ack/loss handler
        runs; a pooled packet has every field rewritten on reuse, so
        results are bit-identical with or without a pool.
    """

    #: Pacing-rate multiple of cwnd/RTT used during congestion avoidance by
    #: Linux's TCP pacing (tcp_input.c): 1.2 in CA, 2.0 in slow start.
    CA_PACING_GAIN = 1.2
    SS_PACING_GAIN = 2.0

    #: EWMA gain of the L4S marked-fraction estimator (DCTCP's g = 1/16).
    L4S_ALPHA_GAIN = 1.0 / 16.0

    #: Event batching keeps at least this many macro-packets per window:
    #: a macro never exceeds window/4, so batching only coalesces when
    #: the window is large and one macro loss never costs more than a
    #: quarter of it.  Small windows degrade gracefully to per-segment
    #: sending (macro size 1 — the exact dynamics).
    MIN_MACROS_PER_WINDOW = 4

    def __init__(
        self,
        flow_id: int,
        scheduler: EventScheduler,
        transmit: Callable[[Packet], None],
        mss_bytes: int = 1500,
        base_rtt_s: float = 0.02,
        paced: bool = False,
        ecn: bool | str = False,
        initial_cwnd: float = 10.0,
        transfer_bytes: float | None = None,
        batch_segments: int = 1,
        pool: PacketPool | None = None,
    ):
        if mss_bytes <= 0:
            raise ValueError("mss_bytes must be positive")
        if base_rtt_s <= 0:
            raise ValueError("base_rtt_s must be positive")
        if initial_cwnd < 1:
            raise ValueError("initial_cwnd must be at least one packet")
        if transfer_bytes is not None and transfer_bytes < 0:
            raise ValueError("transfer_bytes must be non-negative")
        if batch_segments < 1:
            raise ValueError("batch_segments must be at least 1")
        ecn_mode = normalize_ecn(ecn)
        self.flow_id = flow_id
        self.scheduler = scheduler
        self.transmit = transmit
        self.mss_bytes = int(mss_bytes)
        self.base_rtt_s = float(base_rtt_s)
        self.paced = bool(paced)
        self.batch_segments = int(batch_segments)
        self._pool = pool
        #: Whether the flow negotiated ECN at all (either response mode).
        self.ecn = ecn_mode is not None
        #: ``"classic"`` / ``"l4s"`` / ``None`` (no ECN).
        self.ecn_mode = ecn_mode

        # Congestion state.
        self.cwnd = float(initial_cwnd)
        self.ssthresh = float("inf")
        self.inflight = 0
        self.srtt = base_rtt_s
        self.min_rtt = float("inf")

        # Sequence / retransmission bookkeeping.
        self.next_sequence = 0
        self._pending_retransmissions = 0

        # Finite-transfer lifecycle.  ``None`` packet budget = unlimited.
        self.transfer_bytes = None if transfer_bytes is None else float(transfer_bytes)
        self._transfer_packets = (
            None
            if transfer_bytes is None
            else int(math.ceil(transfer_bytes / self.mss_bytes))
        )
        self._new_packets_sent = 0
        self.completed = False
        self.start_time: float | None = None
        self.completion_time: float | None = None
        #: Optional caller hook, invoked as ``on_complete(sender)`` the
        #: moment a finite transfer is fully acknowledged.  The network
        #: itself reads ``completion_time`` after the run; the hook
        #: exists for callers that need the completion *event* (tests,
        #: custom retirement logic).
        self.on_complete: Callable[[TcpSender], None] | None = None

        # Counters (lifetime).
        self.packets_sent = 0
        self.packets_acked = 0
        self.packets_lost = 0
        self.packets_retransmitted = 0
        self.packets_marked = 0
        self.bytes_sent = 0
        self.bytes_acked = 0
        self.bytes_retransmitted = 0

        # ECN: earliest time the next echoed mark may shrink the window
        # (one reduction per RTT, cf. RFC 3168's once-per-window rule).
        self._ecn_reaction_deadline = 0.0

        # L4S (DCTCP/Prague) response state: an EWMA of the fraction of
        # acked packets carrying CE, updated once per RTT window.  Alpha
        # starts at 1 so the first mark of a flow's life still halves —
        # DCTCP's conservative initialisation.
        self.l4s_alpha = 1.0
        self._alpha_window_end = 0.0
        self._window_acked = 0
        self._window_marked = 0

        # Counters at the start of the measurement window.
        self._measure_start_time = 0.0
        self._bytes_acked_at_start = 0
        self._bytes_sent_at_start = 0
        self._bytes_retx_at_start = 0

        # Pacing state.
        self._next_pacing_time = 0.0
        self._pacing_timer_armed = False

        self._started = False

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        """Begin transmitting (sends the initial window).

        A zero-byte finite transfer completes immediately: there is
        nothing to send, so its flow-completion time is exactly zero.
        """
        self._started = True
        self.start_time = self.scheduler.now
        if self._transfer_packets == 0:
            self._complete()
            return
        self._try_send()

    def _complete(self) -> None:
        """Mark a finite transfer as fully delivered and retire."""
        if self.completed:
            return
        self.completed = True
        self.completion_time = self.scheduler.now
        if self.on_complete is not None:
            self.on_complete(self)

    def begin_measurement(self) -> None:
        """Mark the start of the throughput/retransmission measurement window."""
        self._measure_start_time = self.scheduler.now
        self._bytes_acked_at_start = self.bytes_acked
        self._bytes_sent_at_start = self.bytes_sent
        self._bytes_retx_at_start = self.bytes_retransmitted

    # -- metrics ---------------------------------------------------------------

    @property
    def measured_bytes_sent(self) -> int:
        """Bytes sent since :meth:`begin_measurement` (including retransmits)."""
        return self.bytes_sent - self._bytes_sent_at_start

    @property
    def measured_bytes_retransmitted(self) -> int:
        """Retransmitted bytes since :meth:`begin_measurement`."""
        return self.bytes_retransmitted - self._bytes_retx_at_start

    @property
    def measured_bytes_acked(self) -> int:
        """Bytes acknowledged since :meth:`begin_measurement`."""
        return self.bytes_acked - self._bytes_acked_at_start

    def goodput_mbps(self, end_time: float | None = None) -> float:
        """Acked throughput over the measurement window, in Mb/s."""
        end = end_time if end_time is not None else self.scheduler.now
        elapsed = end - self._measure_start_time
        if elapsed <= 0:
            return 0.0
        return self.measured_bytes_acked * 8.0 / elapsed / 1e6

    def retransmit_fraction(self) -> float:
        """Fraction of sent bytes that were retransmissions, over the window."""
        sent = self.measured_bytes_sent
        if sent <= 0:
            return 0.0
        return self.measured_bytes_retransmitted / sent

    def probe_snapshot(self) -> dict[str, float]:
        """Read-only telemetry snapshot for :class:`repro.obs.probe.Probe`.

        Pure reads of public congestion state and lifetime counters
        (``current_pacing_rate_bps`` is a pure function of them), so
        sampling between scheduler chunks cannot perturb the run.
        """
        return {
            "cwnd": float(self.cwnd),
            "srtt_s": float(self.srtt),
            "inflight": float(self.inflight),
            "pacing_rate_bps": float(self.current_pacing_rate_bps()),
            "packets_sent": float(self.packets_sent),
            "packets_lost": float(self.packets_lost),
            "packets_marked": float(self.packets_marked),
            "bytes_acked": float(self.bytes_acked),
        }

    # -- hooks for subclasses ---------------------------------------------------

    def on_ack(self, packet: Packet, rtt_sample: float) -> None:
        """Update congestion state after a successful delivery."""
        raise NotImplementedError

    def on_ack_batch(self, packet: Packet, rtt_sample: float, segments: int) -> None:
        """Update congestion state after a macro-packet delivery.

        Called instead of :meth:`on_ack` when event batching coalesced
        ``segments`` acks into one.  The default simply replays
        :meth:`on_ack` per segment — always correct, O(segments).
        Subclasses override with a closed-form O(1) update (Reno adds
        ``n/cwnd`` in one step; BBR takes a single delivery-rate sample
        for the whole burst).
        """
        for _ in range(segments):
            self.on_ack(packet, rtt_sample)

    def on_loss(self, packet: Packet) -> None:
        """Update congestion state after a loss."""
        raise NotImplementedError

    def on_ecn_mark(self, packet: Packet) -> None:
        """Update congestion state after an echoed CE mark.

        Classic mode defaults to the subclass's loss response; L4S mode
        dispatches to :meth:`on_l4s_mark` (the proportional DCTCP cut).
        Either way the packet was delivered, so the base class queues no
        retransmission and the retransmit counters stay untouched.
        Rate-based algorithms that ignore loss (BBR) override this to
        ignore marks too, in both modes.
        """
        if self.ecn_mode == "l4s":
            self.on_l4s_mark(packet)
        else:
            self.on_loss(packet)

    def on_l4s_mark(self, packet: Packet) -> None:
        """DCTCP/Prague response: cut the window in proportion to alpha.

        ``cwnd -= cwnd * alpha / 2`` — a halving when marking is
        saturated (alpha = 1), a gentle trim when marks are sparse.
        Subclasses whose growth law keeps extra state (Cubic's epoch)
        extend this to resynchronise that state with the reduced window.
        """
        self.cwnd = max(
            self.cwnd * (1.0 - self.l4s_alpha / 2.0),
            getattr(self, "MIN_CWND", 2.0),
        )
        self.ssthresh = self.cwnd

    @property
    def in_slow_start(self) -> bool:
        """True while the window is below the slow-start threshold."""
        return self.cwnd < self.ssthresh

    def current_pacing_rate_bps(self) -> float:
        """Pacing rate for paced flows (Linux-style multiple of cwnd/RTT)."""
        gain = self.SS_PACING_GAIN if self.in_slow_start else self.CA_PACING_GAIN
        rtt = self.srtt if self.srtt > 0 else self.base_rtt_s
        return gain * self.cwnd * self.mss_bytes * 8.0 / rtt

    def window_limit(self) -> int:
        """Maximum number of packets allowed in flight right now."""
        return max(int(self.cwnd), 1)

    # -- feedback from the network ----------------------------------------------

    def handle_ack(self, packet: Packet, rtt_sample: float) -> None:
        """Process an acknowledgment for ``packet``.

        A macro-packet (``packet.segments > 1``) acknowledges its whole
        burst at once: per-segment counters scale by the segment count,
        the RTT sample is taken once, and congestion growth runs through
        :meth:`on_ack_batch` instead of :meth:`on_ack`.
        """
        if self.completed:
            return  # stale feedback for an already-finished transfer
        segments = packet.segments
        self.packets_acked += segments
        self.bytes_acked += packet.size_bytes
        self.inflight = max(self.inflight - segments, 0)
        if rtt_sample > 0:
            self.min_rtt = min(self.min_rtt, rtt_sample)
            # Standard EWMA with alpha = 1/8.
            self.srtt = 0.875 * self.srtt + 0.125 * rtt_sample
        if packet.ce_marked:
            # Count the mark before any completion exit so the sender's
            # tally reconciles with the queues' even when the final ack
            # of a finite transfer carries CE.
            self.packets_marked += segments
        if self.ecn_mode == "l4s":
            # Marked-fraction bookkeeping (DCTCP): every acked packet
            # lands in the current RTT window; at the window boundary the
            # observed CE fraction folds into the alpha EWMA.
            self._window_acked += segments
            if packet.ce_marked:
                self._window_marked += segments
            now = self.scheduler.now
            if now >= self._alpha_window_end:
                if self._alpha_window_end > 0.0:
                    fraction = self._window_marked / self._window_acked
                    self.l4s_alpha += self.L4S_ALPHA_GAIN * (
                        fraction - self.l4s_alpha
                    )
                self._window_acked = 0
                self._window_marked = 0
                self._alpha_window_end = now + self.srtt
        if (
            self._transfer_packets is not None
            and self.packets_acked >= self._transfer_packets
        ):
            # Every distinct chunk is delivered exactly once (lost packets
            # never ack; each loss triggers exactly one retransmission),
            # so the acked-packet count reaching the budget means the
            # whole transfer arrived.
            self._complete()
            return
        if packet.ce_marked:
            now = self.scheduler.now
            if now >= self._ecn_reaction_deadline:
                self._ecn_reaction_deadline = now + self.srtt
                self.on_ecn_mark(packet)
        if segments == 1:
            self.on_ack(packet, rtt_sample)
        else:
            self.on_ack_batch(packet, rtt_sample, segments)
        self._try_send()

    def handle_loss(self, packet: Packet) -> None:
        """Process a loss notification for ``packet``.

        Losing a macro-packet loses its whole burst (the counters scale
        by the segment count, and every segment is queued for
        retransmission) but counts as *one* congestion event — one
        :meth:`on_loss` window reduction — just as a real burst loss
        within a window triggers a single fast-recovery episode.
        """
        if self.completed:
            return  # stale feedback for an already-finished transfer
        segments = packet.segments
        self.packets_lost += segments
        self.inflight = max(self.inflight - segments, 0)
        self._pending_retransmissions += segments
        self.on_loss(packet)
        self._try_send()

    # -- transmission -------------------------------------------------------------

    def _batch_size(self) -> int:
        """Segments to coalesce into the next packet (1 without batching).

        A macro-packet never overshoots the congestion window (it is
        capped by the current headroom), never exceeds a quarter of the
        window (``MIN_MACROS_PER_WINDOW`` — so batching engages as the
        window grows and vanishes when it is small), never mixes
        retransmitted and new data, and never runs past a finite
        transfer's budget.

        L4S senders never batch: the DCTCP control law steers on the
        *fraction* of individually marked packets against a shallow,
        sub-RTT marking threshold, and macro-sized bursts both quantise
        that fraction and overrun the threshold, inflating alpha until
        the flow starves (measured: a dualpi2 lab loses half its
        aggregate throughput).  Classic ECN and loss-based feedback
        react once per RTT and are insensitive to the burst granularity.
        """
        if self.batch_segments <= 1 or self.ecn_mode == "l4s":
            return 1
        limit = self.window_limit()
        segments = min(
            self.batch_segments,
            limit - self.inflight,
            limit // self.MIN_MACROS_PER_WINDOW,
        )
        if self._pending_retransmissions > 0:
            segments = min(segments, self._pending_retransmissions)
        elif self._transfer_packets is not None:
            segments = min(segments, self._transfer_packets - self._new_packets_sent)
        return max(segments, 1)

    def _build_packet(self) -> Packet:
        segments = self._batch_size()
        if self._pending_retransmissions > 0:
            self._pending_retransmissions -= segments
            retransmission = True
        else:
            retransmission = False
            self._new_packets_sent += segments
        if self._pool is not None:
            packet = self._pool.acquire(
                flow_id=self.flow_id,
                sequence=self.next_sequence,
                size_bytes=self.mss_bytes * segments,
                send_time=self.scheduler.now,
                is_retransmission=retransmission,
                ecn_capable=self.ecn,
                l4s=self.ecn_mode == "l4s",
                segments=segments,
            )
        else:
            packet = Packet(
                flow_id=self.flow_id,
                sequence=self.next_sequence,
                size_bytes=self.mss_bytes * segments,
                send_time=self.scheduler.now,
                is_retransmission=retransmission,
                ecn_capable=self.ecn,
                l4s=self.ecn_mode == "l4s",
                segments=segments,
            )
        self.next_sequence += 1
        return packet

    def _send_one(self) -> Packet:
        packet = self._build_packet()
        self.packets_sent += packet.segments
        self.bytes_sent += packet.size_bytes
        if packet.is_retransmission:
            self.packets_retransmitted += packet.segments
            self.bytes_retransmitted += packet.size_bytes
        self.inflight += packet.segments
        self.transmit(packet)
        return packet

    def _can_send(self) -> bool:
        return (
            self._started
            and not self.completed
            and self.inflight < self.window_limit()
            and self._has_data_to_send()
        )

    def _has_data_to_send(self) -> bool:
        """Whether un-sent new data or a queued retransmission remains."""
        if self._pending_retransmissions > 0:
            return True
        return (
            self._transfer_packets is None
            or self._new_packets_sent < self._transfer_packets
        )

    def _try_send(self) -> None:
        """Send as many packets as the window (and pacing) currently allows."""
        if not self._started or self.completed:
            return
        if self.paced:
            self._try_send_paced()
        else:
            while self._can_send():
                self._send_one()

    def _try_send_paced(self) -> None:
        if self._pacing_timer_armed:
            return
        if not self._can_send():
            return
        now = self.scheduler.now
        send_at = max(now, self._next_pacing_time)
        if send_at <= now:
            self._send_paced_packet()
        else:
            self._pacing_timer_armed = True
            self.scheduler.schedule(send_at, self._pacing_timer_fired)

    def _pacing_timer_fired(self) -> None:
        self._pacing_timer_armed = False
        if self._can_send():
            self._send_paced_packet()

    def _send_paced_packet(self) -> None:
        packet = self._send_one()
        rate = max(self.current_pacing_rate_bps(), 1.0)
        # A macro-packet earns a proportionally longer pacing interval,
        # so the paced *byte* rate is unchanged by batching (for a
        # single-segment packet this is exactly the old mss/rate gap).
        interval = packet.size_bytes * 8.0 / rate
        self._next_pacing_time = self.scheduler.now + interval
        if self._can_send():
            self._pacing_timer_armed = True
            self.scheduler.schedule(self._next_pacing_time, self._pacing_timer_fired)
