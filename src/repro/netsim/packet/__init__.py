"""Packet-level discrete-event network simulator.

This substrate reproduces the lab testbed of Section 3 from first
principles: senders with simplified Reno, Cubic or BBR congestion control
(optionally paced) share one or more bottleneck queues; throughput and
retransmissions are measured per flow.

The topology is composable (:mod:`repro.netsim.packet.network`): queue
disciplines are pluggable (drop-tail, RED, CoDel, FQ-CoDel — see
:mod:`repro.netsim.packet.queue`), flows may negotiate ECN (AQMs then
CE-mark instead of dropping), each flow can carry its own RTT and path,
paths may include a random-loss segment or a sequence of queues
(parking-lot chains, optionally with per-segment capacities), and
unmeasured cross traffic can share any queue.  Traffic is dynamic when
asked (:mod:`repro.netsim.traffic`): applications may transfer a finite
number of bytes and retire with a flow-completion time, and traffic
sources spawn churning flows at runtime from seeded arrival processes.
The default remains the paper's testbed: a single drop-tail bottleneck
with one symmetric RTT and long-lived flows.

The simulator is intentionally compact — it models exactly what the
lab experiments exercise (window dynamics, ack clocking, queue-discipline
losses, pacing, BBR's rate-based probing) and nothing else (no SACK, no
delayed acks, no slow-start restart).  It exists to validate the fluid
model's sharing behaviour and to support ablation benchmarks.

Public entry point: :func:`repro.netsim.packet.simulation.simulate`.
"""

from repro.netsim.packet.engine import CalendarScheduler, EventScheduler, make_scheduler
from repro.netsim.packet.network import (
    Network,
    PathConfig,
    QueueConfig,
    parking_lot_path,
    parking_lot_queues,
)
from repro.netsim.packet.queue import (
    QUEUE_DISCIPLINES,
    CoDelQueue,
    DropTailQueue,
    FqCoDelQueue,
    QueueDiscipline,
    REDQueue,
    make_queue,
)
from repro.netsim.packet.simulation import FlowConfig, PacketSimResult, simulate
from repro.netsim.packet.sweep import PacketSweepResult, run_packet_sweep
from repro.netsim.packet.tcp import BBRSender, CubicSender, RenoSender, TcpSender

__all__ = [
    "EventScheduler",
    "CalendarScheduler",
    "make_scheduler",
    "QueueDiscipline",
    "DropTailQueue",
    "REDQueue",
    "CoDelQueue",
    "FqCoDelQueue",
    "QUEUE_DISCIPLINES",
    "make_queue",
    "Network",
    "PathConfig",
    "QueueConfig",
    "parking_lot_queues",
    "parking_lot_path",
    "FlowConfig",
    "PacketSimResult",
    "simulate",
    "PacketSweepResult",
    "run_packet_sweep",
    "BBRSender",
    "CubicSender",
    "RenoSender",
    "TcpSender",
]
