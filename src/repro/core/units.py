"""Units and outcome tables for the potential-outcomes framework.

In the paper (Section 2) a *unit* is anything that can be independently
allocated to treatment or control: a user, a session, a flow, a connection,
a server.  All of the paper's production experiments use *video sessions*
as units, with outcomes recorded per session and later aggregated by hour
or by account.

This module provides:

* :class:`Unit` — the generic experimental unit.
* :class:`Session` — a video-streaming session unit carrying the QoE and
  network metrics used throughout Sections 4 and 5.
* :class:`OutcomeTable` — a column-oriented container of per-unit outcomes
  that the estimators and the regression analysis operate on.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping, Sequence
from dataclasses import dataclass, field, fields
from typing import Any

import numpy as np

__all__ = [
    "Unit",
    "Session",
    "SESSION_METRICS",
    "OutcomeTable",
]


@dataclass(frozen=True)
class Unit:
    """A generic experimental unit.

    Parameters
    ----------
    unit_id:
        Unique identifier of the unit within an experiment.
    account_id:
        Identifier of the account (user) the unit belongs to.  Several
        units may share an account; account-level aggregation clusters
        standard errors on this key.
    attributes:
        Arbitrary extra covariates (e.g. the link a session used, the ISP,
        the device type).  Covariates never influence treatment assignment
        in a randomized design, but they are available for targeting and
        for stratified analysis.
    """

    unit_id: int
    account_id: int = 0
    attributes: Mapping[str, Any] = field(default_factory=dict)

    def with_attributes(self, **extra: Any) -> "Unit":
        """Return a copy of the unit with additional attributes merged in."""
        merged = dict(self.attributes)
        merged.update(extra)
        return Unit(self.unit_id, self.account_id, merged)


#: Metric names carried by :class:`Session`, in the order the paper's
#: Figure 5 reports them.  These are the outcomes of the bitrate-capping
#: experiment; the sign convention is "higher is more of the quantity"
#: (not "higher is better").
SESSION_METRICS: tuple[str, ...] = (
    "throughput_mbps",
    "min_rtt_ms",
    "play_delay_s",
    "video_bitrate_kbps",
    "retransmit_fraction",
    "rebuffer_rate",
    "cancelled_start",
    "perceptual_quality",
    "stability",
    "bytes_sent_gb",
)


@dataclass
class Session:
    """A single video-streaming session and its observed outcomes.

    A session is the unit of randomization in the paper's production
    experiments (Section 4).  Each session belongs to an account, starts in
    a particular hour on a particular day, is served over one of the two
    peering links, and is assigned to treatment (bitrate capping) or
    control.

    The outcome attributes mirror the metrics reported in Figure 5 of the
    paper.  All are per-session scalars:

    ``throughput_mbps``
        Client-reported average throughput over the session.
    ``min_rtt_ms``
        Minimum round-trip time observed during the session.  Standing
        queues at a congested link raise even the minimum RTT.
    ``play_delay_s``
        Start play delay: time from request to first frame.
    ``video_bitrate_kbps``
        Average video bitrate selected by the ABR algorithm.
    ``retransmit_fraction``
        Fraction of sent bytes that were retransmitted.
    ``rebuffer_rate``
        Rebuffer events per hour of viewing.
    ``cancelled_start``
        1.0 if the user abandoned the session before playback started.
    ``perceptual_quality``
        Perceptual quality score (e.g. VMAF-like, 0-100).
    ``stability``
        Video stability metric: 100 minus the number of bitrate switches
        per hour, clipped at zero.
    ``bytes_sent_gb``
        Total bytes delivered to the client, in gigabytes.
    """

    session_id: int
    account_id: int
    day: int
    hour: int
    link: int
    treated: bool
    throughput_mbps: float = 0.0
    min_rtt_ms: float = 0.0
    play_delay_s: float = 0.0
    video_bitrate_kbps: float = 0.0
    retransmit_fraction: float = 0.0
    rebuffer_rate: float = 0.0
    cancelled_start: float = 0.0
    perceptual_quality: float = 0.0
    stability: float = 0.0
    bytes_sent_gb: float = 0.0

    def metric(self, name: str) -> float:
        """Return the value of the named outcome metric."""
        if name not in SESSION_METRICS:
            raise KeyError(f"unknown session metric: {name!r}")
        return float(getattr(self, name))

    def as_dict(self) -> dict[str, Any]:
        """Return the session as a plain dictionary (useful for tables)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


class OutcomeTable:
    """Column-oriented container of per-unit experimental data.

    The table stores, for every unit, its treatment indicator, grouping
    keys (hour, day, account, link, ...) and one column per outcome metric.
    Estimators (:mod:`repro.core.estimators`) and the regression analysis
    (:mod:`repro.core.analysis`) consume :class:`OutcomeTable` instances.

    The container intentionally has a very small surface: it is a thin,
    dependency-free stand-in for a dataframe, backed by numpy arrays.
    """

    def __init__(self, columns: Mapping[str, Sequence[float] | np.ndarray]):
        if not columns:
            raise ValueError("OutcomeTable requires at least one column")
        self._columns: dict[str, np.ndarray] = {}
        length: int | None = None
        for name, values in columns.items():
            arr = np.asarray(values, dtype=float)
            if arr.ndim != 1:
                raise ValueError(f"column {name!r} must be one-dimensional")
            if length is None:
                length = arr.shape[0]
            elif arr.shape[0] != length:
                raise ValueError(
                    f"column {name!r} has length {arr.shape[0]}, expected {length}"
                )
            self._columns[name] = arr
        self._length = int(length or 0)

    # -- construction -----------------------------------------------------

    @classmethod
    def from_sessions(cls, sessions: Iterable[Session]) -> "OutcomeTable":
        """Build a table from an iterable of :class:`Session` objects."""
        sessions = list(sessions)
        if not sessions:
            raise ValueError("cannot build an OutcomeTable from zero sessions")
        cols: dict[str, list[float]] = {
            "session_id": [],
            "account_id": [],
            "day": [],
            "hour": [],
            "link": [],
            "treated": [],
        }
        for name in SESSION_METRICS:
            cols[name] = []
        for s in sessions:
            cols["session_id"].append(float(s.session_id))
            cols["account_id"].append(float(s.account_id))
            cols["day"].append(float(s.day))
            cols["hour"].append(float(s.hour))
            cols["link"].append(float(s.link))
            cols["treated"].append(1.0 if s.treated else 0.0)
            for name in SESSION_METRICS:
                cols[name].append(s.metric(name))
        return cls(cols)

    @classmethod
    def from_records(cls, records: Sequence[Mapping[str, float]]) -> "OutcomeTable":
        """Build a table from a sequence of dictionaries with identical keys."""
        if not records:
            raise ValueError("cannot build an OutcomeTable from zero records")
        # Sorted so the column order is a function of the key set, not of
        # the first record's incidental insertion order.
        keys = sorted(records[0])
        cols = {k: [float(r[k]) for r in records] for k in keys}
        return cls(cols)

    # -- basic protocol ----------------------------------------------------

    def __len__(self) -> int:
        return self._length

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def __iter__(self) -> Iterator[str]:
        return iter(self._columns)

    @property
    def column_names(self) -> list[str]:
        """Names of all columns in the table."""
        return list(self._columns)

    def column(self, name: str) -> np.ndarray:
        """Return the named column as a numpy array (a copy-free view)."""
        try:
            return self._columns[name]
        except KeyError:
            raise KeyError(
                f"no column {name!r}; available: {sorted(self._columns)}"
            ) from None

    def __getitem__(self, name: str) -> np.ndarray:
        return self.column(name)

    # -- transformations ---------------------------------------------------

    def select(self, mask: np.ndarray) -> "OutcomeTable":
        """Return a new table containing only the rows where ``mask`` is true."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape[0] != self._length:
            raise ValueError("mask length does not match table length")
        return OutcomeTable({k: v[mask] for k, v in self._columns.items()})

    def where(self, **conditions: float) -> "OutcomeTable":
        """Return rows where every named column equals the given value.

        Example
        -------
        ``table.where(link=1, treated=1)`` selects treated sessions on link 1.
        """
        mask = np.ones(self._length, dtype=bool)
        for name, value in conditions.items():
            mask &= self.column(name) == float(value)
        return self.select(mask)

    def with_column(self, name: str, values: Sequence[float] | np.ndarray) -> "OutcomeTable":
        """Return a new table with an added or replaced column."""
        arr = np.asarray(values, dtype=float)
        if arr.shape[0] != self._length:
            raise ValueError("new column length does not match table length")
        cols = dict(self._columns)
        cols[name] = arr
        return OutcomeTable(cols)

    def concat(self, other: "OutcomeTable") -> "OutcomeTable":
        """Concatenate two tables that share the same columns."""
        if set(self._columns) != set(other._columns):
            raise ValueError("cannot concatenate tables with different columns")
        return OutcomeTable(
            {k: np.concatenate([v, other._columns[k]]) for k, v in self._columns.items()}
        )

    # -- summaries ----------------------------------------------------------

    def mean(self, name: str) -> float:
        """Mean of the named column."""
        col = self.column(name)
        if col.size == 0:
            raise ValueError(f"column {name!r} is empty; cannot take mean")
        return float(np.mean(col))

    def groupby_mean(self, key: str, value: str) -> dict[float, float]:
        """Mean of ``value`` for each distinct value of ``key``."""
        keys = self.column(key)
        values = self.column(value)
        out: dict[float, float] = {}
        for k in np.unique(keys):
            out[float(k)] = float(values[keys == k].mean())
        return out

    def to_records(self) -> list[dict[str, float]]:
        """Return the table as a list of row dictionaries."""
        names = self.column_names
        arrays = [self._columns[n] for n in names]
        return [
            {n: float(a[i]) for n, a in zip(names, arrays)} for i in range(self._length)
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OutcomeTable(rows={self._length}, columns={self.column_names})"
