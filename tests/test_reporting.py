"""Tests for the text reporting helpers."""

import pytest

from repro.reporting import (
    format_estimate_row,
    format_percent,
    format_series,
    format_table,
)


class TestFormatPercent:
    def test_positive_sign(self):
        assert format_percent(0.12) == "+12.0%"

    def test_negative_sign(self):
        assert format_percent(-0.055) == "-5.5%"

    def test_decimals(self):
        assert format_percent(0.12345, decimals=2) == "+12.35%"


class TestFormatTable:
    def test_headers_and_rows_align(self):
        text = format_table(["metric", "value"], [["throughput", "+12%"]])
        lines = text.splitlines()
        assert len(lines) == 3
        assert "metric" in lines[0]
        assert "throughput" in lines[2]

    def test_row_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only one"]])

    def test_empty_headers_raise(self):
        with pytest.raises(ValueError):
            format_table([], [])

    def test_wide_cells_extend_columns(self):
        text = format_table(["h"], [["a-very-long-cell-value"]])
        assert "a-very-long-cell-value" in text


class TestFormatEstimateRow:
    def test_contains_metric_and_values(self):
        row = format_estimate_row("throughput", {"tte": 0.12, "ab": -0.05})
        assert row.startswith("throughput:")
        assert "tte=+12.0%" in row
        assert "ab=-5.0%" in row


class TestFormatSeries:
    def test_sorted_by_hour(self):
        text = format_series({20: 0.5, 3: 1.0})
        assert text.index("03:") < text.index("20:")

    def test_decimals(self):
        assert "03:1.00" in format_series({3: 1.0}, decimals=2)
