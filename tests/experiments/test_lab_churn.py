"""Tests for the churn experiments (dynamic traffic, switchback-vs-ramp).

These pin the two claims the dynamic-traffic subsystem exists to test:

* the zero-churn arm of the churn sweep IS the static experiment — same
  specs, same numbers — so the bias-vs-intensity curve is anchored at
  today's result;
* under demand that ramps across the experiment, the randomized
  switchback tracks the ground-truth TTE while the before/after event
  study conflates the launch with the ramp.
"""

import pytest

from repro.experiments.lab_churn import (
    run_churn_experiment,
    run_switchback_ramp_experiment,
)
from repro.experiments.lab_topology import run_aqm_experiment


@pytest.fixture(scope="module")
def churn_comparison():
    return run_churn_experiment(quick=True, seed=0)


@pytest.fixture(scope="module")
def ramp_outcome():
    return run_switchback_ramp_experiment(quick=True, seed=0)


class TestChurnExperiment:
    def test_all_requested_intensities_present(self, churn_comparison):
        assert churn_comparison.rates() == (0.0, 2.0, 6.0)
        assert set(churn_comparison.churn) == {0.0, 2.0, 6.0}

    def test_zero_churn_matches_static_droptail_result(self, churn_comparison):
        # The acceptance anchor: no churn sources means byte-identical
        # specs to the static drop-tail sweep, so every curve matches
        # today's topo_aqm drop-tail figure exactly.
        static = run_aqm_experiment(disciplines=("droptail",), quick=True)
        static_figure = static.figures["droptail"]
        zero = churn_comparison.figures[0.0]
        assert zero.rows == static_figure.rows  # every cell, exactly
        assert zero.tte("throughput_mbps") == static_figure.tte("throughput_mbps")
        assert churn_comparison.bias(0.0) == static.bias("droptail")

    def test_bias_positive_at_every_intensity(self, churn_comparison):
        for rate in churn_comparison.rates():
            assert churn_comparison.bias(rate) > 0.5

    def test_churn_stats_scale_with_intensity(self, churn_comparison):
        zero = churn_comparison.churn[0.0]
        low = churn_comparison.churn[2.0]
        high = churn_comparison.churn[6.0]
        assert zero.flows_started == 0 and zero.mean_fct_s is None
        assert 0 < low.flows_started < high.flows_started
        assert low.mean_fct_s > 0
        assert high.flows_completed > 0

    def test_summary_lines_cover_bias_and_fct(self, churn_comparison):
        text = "\n".join(churn_comparison.summary_lines())
        assert "churn intensity: 0 flows/s" in text
        assert "churn intensity: 6 flows/s" in text
        assert "mean FCT" in text
        assert "bias" in text.lower()

    def test_seeded_run_reproducible(self):
        a = run_churn_experiment(churn_rates=(3.0,), quick=True, seed=5)
        b = run_churn_experiment(churn_rates=(3.0,), quick=True, seed=5)
        assert a.bias(3.0) == b.bias(3.0)
        assert a.churn[3.0] == b.churn[3.0]

    def test_jobs_do_not_change_results(self):
        serial = run_churn_experiment(churn_rates=(4.0,), quick=True, seed=2, jobs=1)
        parallel = run_churn_experiment(churn_rates=(4.0,), quick=True, seed=2, jobs=4)
        assert serial.bias(4.0) == parallel.bias(4.0)
        assert serial.churn[4.0] == parallel.churn[4.0]
        assert serial.figures[4.0].rows == parallel.figures[4.0].rows

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            run_churn_experiment(churn_rates=(), quick=True)
        with pytest.raises(ValueError):
            run_churn_experiment(churn_rates=(1.0, -2.0), quick=True)
        with pytest.raises(ValueError):
            run_churn_experiment(churn_rates=(1.0, 1.0), quick=True)
        with pytest.raises(ValueError):
            run_churn_experiment(treatment_connections=0, quick=True)


class TestSwitchbackRamp:
    def test_interval_assignment_is_balanced(self, ramp_outcome):
        treated = len(ramp_outcome.treatment_intervals)
        assert treated == ramp_outcome.n_intervals // 2
        assert sorted(set(ramp_outcome.treatment_intervals)) == sorted(
            ramp_outcome.treatment_intervals
        )

    def test_demand_really_ramps(self, ramp_outcome):
        m = ramp_outcome.demand_multipliers
        assert m[0] == 1.0
        assert m[-1] > 2.0
        assert list(m) == sorted(m)

    def test_switchback_beats_event_study_under_ramp(self, ramp_outcome):
        # The headline: randomized intervals absorb the demand trend the
        # before/after comparison conflates with the launch.
        assert ramp_outcome.switchback_error() < ramp_outcome.event_study_error()

    def test_event_study_biased_downward_by_rising_demand(self, ramp_outcome):
        # Rising churn depresses later (all-treated) intervals, so the
        # event study under-estimates relative to the truth.
        assert ramp_outcome.event_study_estimate < ramp_outcome.truth_tte

    def test_summary_lines_name_both_designs(self, ramp_outcome):
        text = "\n".join(ramp_outcome.summary_lines())
        assert "switchback" in text
        assert "event-study" in text
        assert "ground-truth" in text

    def test_seeded_run_reproducible(self, ramp_outcome):
        again = run_switchback_ramp_experiment(quick=True, seed=0)
        assert again.switchback_estimate == ramp_outcome.switchback_estimate
        assert again.event_study_estimate == ramp_outcome.event_study_estimate
        assert again.truth_tte == ramp_outcome.truth_tte

    def test_jobs_do_not_change_results(self):
        serial = run_switchback_ramp_experiment(quick=True, seed=1, jobs=1)
        parallel = run_switchback_ramp_experiment(quick=True, seed=1, jobs=4)
        assert serial == parallel

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            run_switchback_ramp_experiment(base_churn_per_s=0.0, quick=True)
        with pytest.raises(ValueError):
            run_switchback_ramp_experiment(ramp_factor=-1.0, quick=True)
        with pytest.raises(ValueError):
            run_switchback_ramp_experiment(control_connections=0, quick=True)


class TestFctPercentiles:
    """The PR-4 follow-up: FCT percentiles surfaced beyond the mean."""

    def test_percentiles_present_and_ordered_under_churn(self, churn_comparison):
        for rate in (2.0, 6.0):
            stats = churn_comparison.churn[rate]
            assert stats.p50_fct_s is not None
            assert stats.p50_fct_s <= stats.p95_fct_s <= stats.p99_fct_s
            # Heavy-tailed sizes: the tail stretches well past the median.
            assert stats.p99_fct_s > stats.p50_fct_s

    def test_percentiles_none_without_completions(self, churn_comparison):
        zero = churn_comparison.churn[0.0]
        assert zero.p50_fct_s is None
        assert zero.p95_fct_s is None
        assert zero.p99_fct_s is None

    def test_summary_lines_show_the_tail(self, churn_comparison):
        text = "\n".join(churn_comparison.summary_lines())
        assert "p50" in text and "p95" in text and "p99" in text

    def test_figure_cells_emit_percentiles(self):
        from repro.runner.spec import ScenarioSpec, run_spec

        cells = run_spec(
            ScenarioSpec(
                task="figure.cells",
                params={"figure": "topo_churn", "quick": True},
                seed=0,
            )
        )
        for rate in (0, 2, 6):
            for name in ("fct_p50_s", "fct_p95_s", "fct_p99_s"):
                assert f"{name}:churn{rate}" in cells
        # Zero churn has no completions: the placeholder cell is 0.0.
        assert cells["fct_p50_s:churn0"] == 0.0
        assert cells["fct_p95_s:churn6"] >= cells["fct_p50_s:churn6"]


class TestTrafficSplit:
    """The PR-4 follow-up: a production-split (e.g. 95/5) switchback."""

    @pytest.fixture(scope="class")
    def split_outcome(self):
        # 75/25 keeps the quick unit count (4 units: 3 treated / 1
        # control) so the variant stays cheap; the mechanics are the
        # same as 95/5's.
        return run_switchback_ramp_experiment(
            quick=True, seed=0, jobs=4, traffic_split=0.75
        )

    def test_split_recorded_and_within_interval_reported(self, split_outcome):
        assert split_outcome.traffic_split == 0.75
        assert split_outcome.within_interval_ab_estimate is not None
        assert split_outcome.within_interval_error() is not None

    def test_within_interval_estimator_biased_by_interference(self, split_outcome):
        # The naive within-interval A/B at a production split inherits
        # the connection-count interference bias: it promises far more
        # than the ground-truth TTE delivers.
        assert (
            split_outcome.within_interval_ab_estimate - split_outcome.truth_tte
            > 1.0
        )

    def test_pure_switchback_has_no_within_interval_estimate(self, ramp_outcome):
        assert ramp_outcome.traffic_split == 1.0
        assert ramp_outcome.within_interval_ab_estimate is None
        assert ramp_outcome.within_interval_error() is None
        assert ramp_outcome.allocation_units is None

    def test_summary_mentions_the_split(self, split_outcome):
        text = "\n".join(split_outcome.summary_lines())
        assert "75%/25%" in text
        assert "within-interval" in text

    def test_rounded_split_never_degenerates_to_fifty_fifty(self):
        # Banker's rounding of 0.6 * 4 lands on exactly n/2; the clamp
        # must force a strict majority so treatment and control intervals
        # genuinely differ.
        outcome = run_switchback_ramp_experiment(
            quick=True, seed=0, jobs=4, traffic_split=0.6
        )
        k_lo, k_hi = outcome.allocation_units
        assert k_hi > k_lo
        assert k_hi + k_lo > 0

    def test_allocation_units_exposed_for_mixed_splits(self, split_outcome):
        # Quick scale: 4 units at 75/25 -> 3 treated in treatment
        # intervals, 1 in control intervals.
        assert split_outcome.allocation_units == (1, 3)

    def test_unit_count_scales_for_fine_splits(self):
        # 0.95 needs at least 20 units for the 5% arm to exist; the
        # validation itself must accept the production split.
        import math

        assert math.ceil(1.0 / (1.0 - 0.95)) == 20

    def test_invalid_split_rejected(self):
        with pytest.raises(ValueError):
            run_switchback_ramp_experiment(traffic_split=0.5, quick=True)
        with pytest.raises(ValueError):
            run_switchback_ramp_experiment(traffic_split=1.2, quick=True)

    def test_pure_split_unchanged_by_the_new_parameter(self, ramp_outcome):
        # traffic_split=1.0 must reproduce the historical pure result
        # exactly (same specs, same cache keys).
        explicit = run_switchback_ramp_experiment(
            quick=True, seed=0, traffic_split=1.0
        )
        assert explicit.switchback_estimate == ramp_outcome.switchback_estimate
        assert explicit.truth_tte == ramp_outcome.truth_tte
