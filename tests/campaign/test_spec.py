"""Tests for the frozen campaign spec layer (stages, arms, content keys)."""

import pytest

from repro.campaign import (
    AnalysisSettings,
    CampaignSpec,
    StageSpec,
    figure_is_seeded,
    figure_knobs,
)
from repro.runner.tasks import FIGURE_CELL_TASKS


class TestFigureTaxonomy:
    def test_lab_figures_take_noise(self):
        assert figure_knobs("fig2a") == {"noise"}
        assert figure_knobs("fig3") == {"noise"}

    def test_other_figures_take_quick(self):
        assert figure_knobs("fig5") == {"quick"}
        assert figure_knobs("topo_rtt") == {"quick"}
        assert figure_knobs("fleet") == {"quick"}

    def test_seeded_split(self):
        assert figure_is_seeded("fig2a")
        assert figure_is_seeded("topo_churn")
        assert figure_is_seeded("fleet")
        assert not figure_is_seeded("topo_rtt")
        assert not figure_is_seeded("topo_l4s")


class TestAnalysisSettings:
    def test_default_confidence(self):
        assert AnalysisSettings().confidence == 0.95

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.5, 2.0])
    def test_out_of_range_confidence_rejected(self, bad):
        with pytest.raises(ValueError, match="confidence"):
            AnalysisSettings(confidence=bad)


class TestStageSpec:
    def test_inapplicable_knob_rejected(self):
        with pytest.raises(ValueError, match="do not apply"):
            StageSpec(name="s", figure="fig2a", knobs={"quick": True}, seeds=(0,))
        with pytest.raises(ValueError, match="do not apply"):
            StageSpec(name="s", figure="topo_rtt", knobs={"noise": 0.1})

    def test_seeded_stage_requires_seeds(self):
        with pytest.raises(ValueError, match="seed"):
            StageSpec(name="s", figure="fig2a", knobs={"noise": 0.1}, seeds=())

    def test_duplicate_seeds_rejected(self):
        with pytest.raises(ValueError, match="duplicate seeds"):
            StageSpec(name="s", figure="fig2a", seeds=(1, 1))

    def test_deterministic_stage_rejects_seeds(self):
        with pytest.raises(ValueError, match="deterministic"):
            StageSpec(name="s", figure="topo_rtt", seeds=(0,))

    def test_deterministic_stage_compiles_to_one_seedless_arm(self):
        stage = StageSpec(name="rtt", figure="topo_rtt", knobs={"quick": True})
        arms = stage.arms()
        assert len(arms) == 1
        assert arms[0].seed is None
        assert arms[0].params == {"figure": "topo_rtt", "quick": True}
        assert stage.deterministic

    def test_seeded_stage_compiles_one_arm_per_seed(self):
        stage = StageSpec(name="lab", figure="fig2a", knobs={"noise": 0.1}, seeds=(3, 5))
        arms = stage.arms()
        assert [arm.seed for arm in arms] == [3, 5]
        assert all(arm.params == {"figure": "fig2a", "noise": 0.1} for arm in arms)
        assert arms[0].label == "lab[seed=3]"


class TestCampaignSpec:
    def _campaign(self, **kwargs):
        defaults = dict(
            name="c",
            stages=(
                StageSpec(name="lab", figure="fig2a", knobs={"noise": 0.1}, seeds=(0, 1)),
                StageSpec(name="rtt", figure="topo_rtt", knobs={"quick": True}),
            ),
        )
        defaults.update(kwargs)
        return CampaignSpec(**defaults)

    def test_duplicate_stage_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate stage name"):
            CampaignSpec(
                name="c",
                stages=(
                    StageSpec(name="s", figure="fig2a", seeds=(0,)),
                    StageSpec(name="s", figure="fig2b", seeds=(0,)),
                ),
            )

    def test_arms_carry_stage_and_content_key(self):
        arms = self._campaign().arms()
        assert [(a.stage, a.seed) for a in arms] == [("lab", 0), ("lab", 1), ("rtt", None)]
        assert all(len(a.key) == 64 for a in arms)

    def test_content_key_stable_and_sensitive(self):
        campaign = self._campaign()
        assert campaign.content_key() == self._campaign().content_key()
        assert campaign.content_key() != self._campaign(name="other").content_key()
        reseeded = self._campaign(
            stages=(
                StageSpec(name="lab", figure="fig2a", knobs={"noise": 0.1}, seeds=(0, 2)),
                StageSpec(name="rtt", figure="topo_rtt", knobs={"quick": True}),
            )
        )
        assert campaign.content_key() != reseeded.content_key()

    def test_explicit_default_knob_keys_like_omitted_knob(self):
        # The inert-at-default contract: spelling out a knob at its task
        # default must produce the same *arm* content keys as omitting it.
        explicit = StageSpec(name="rtt", figure="topo_rtt", knobs={"quick": False})
        omitted = StageSpec(name="rtt", figure="topo_rtt", knobs={})
        keys = lambda stage: [  # noqa: E731
            arm.key
            for arm in CampaignSpec(name="c", stages=(stage,)).arms()
        ]
        assert keys(explicit) == keys(omitted)

    def test_arm_keys_match_sweep_spelling(self):
        # A campaign arm and the equivalent `repro sweep` spec are the
        # same computation, so they must share a cache entry.
        from repro.runner.spec import ScenarioSpec, content_key

        stage = StageSpec(name="lab", figure="fig2a", knobs={"noise": 0.02}, seeds=(7,))
        [arm] = CampaignSpec(name="c", stages=(stage,)).arms()
        sweep_spec = ScenarioSpec(
            task="figure.cells",
            params={"figure": "fig2a", "noise": 0.02},
            seed=7,
            label="sweep[fig2a, seed=7]",
        )
        assert arm.key == content_key(sweep_spec)

    def test_every_figure_compiles(self):
        for figure in FIGURE_CELL_TASKS:
            seeds = () if not figure_is_seeded(figure) else (0,)
            stage = StageSpec(name=figure, figure=figure, seeds=seeds)
            [arm] = stage.arms()
            assert arm.params["figure"] == figure
