"""Fluid bottleneck-sharing simulator.

The lab testbed of Section 3 (two servers, a Tofino switch, a 10 Gb/s
bottleneck with a 1-BDP buffer and 1 ms of added delay) is replaced by a
steady-state model of how long-lived flows share a single bottleneck:

* :mod:`repro.netsim.fluid.link` — the bottleneck link.
* :mod:`repro.netsim.fluid.application` — applications (units) and their
  transport configuration: congestion control algorithm, number of
  parallel connections, pacing.
* :mod:`repro.netsim.fluid.competition` — the bandwidth-sharing and loss
  models.
* :mod:`repro.netsim.fluid.lab` — the A/B-sweep harness that recreates the
  paper's Figures 2 and 3.
"""

from repro.netsim.fluid.application import Application
from repro.netsim.fluid.link import BottleneckLink, loss_probability
from repro.netsim.fluid.competition import (
    CompetitionModel,
    allocate_throughput,
    allocate_throughput_reference,
    link_loss_rate,
    link_loss_rate_reference,
    weighted_water_fill,
    weighted_water_fill_reference,
)
from repro.netsim.fluid.lab import (
    LabExperimentResult,
    LabSweepResult,
    run_lab_experiment,
    run_lab_sweep,
)

__all__ = [
    "Application",
    "BottleneckLink",
    "CompetitionModel",
    "allocate_throughput",
    "allocate_throughput_reference",
    "link_loss_rate",
    "link_loss_rate_reference",
    "loss_probability",
    "weighted_water_fill",
    "weighted_water_fill_reference",
    "LabExperimentResult",
    "LabSweepResult",
    "run_lab_experiment",
    "run_lab_sweep",
]
