"""Tests for the per-session QoE outcome model."""

import numpy as np
import pytest

from repro.core.units import SESSION_METRICS
from repro.workload.congestion import LinkHourState
from repro.workload.qoe import LinkEffects, SessionOutcomeModel
from repro.workload.video import BitrateCapPolicy


UNCONGESTED = LinkHourState(
    utilization=0.5, congested=False, throughput_factor=1.0, queueing_delay_ms=0.0, loss_rate=0.0
)
CONGESTED = LinkHourState(
    utilization=1.3,
    congested=True,
    throughput_factor=0.45,
    queueing_delay_ms=60.0,
    loss_rate=0.003,
)


def generate(
    n=4000, capped_fraction=0.5, state=UNCONGESTED, link=LinkEffects(), seed=0, **model_kwargs
):
    model = SessionOutcomeModel(**model_kwargs)
    rng = np.random.default_rng(seed)
    capped = rng.random(n) < capped_fraction
    ones = np.ones(n)
    outcomes = model.generate(
        capped=capped,
        state=state,
        link_effects=link,
        cap_policy=BitrateCapPolicy(),
        account_throughput_factor=ones,
        account_rtt_factor=ones,
        weekend=False,
        rng=rng,
    )
    return capped, outcomes


class TestOutcomeGeneration:
    def test_all_metrics_present(self):
        _, outcomes = generate(n=100)
        assert set(outcomes) == set(SESSION_METRICS)

    def test_empty_input_returns_empty(self):
        model = SessionOutcomeModel()
        result = model.generate(
            capped=np.array([], dtype=bool),
            state=UNCONGESTED,
            link_effects=LinkEffects(),
            cap_policy=BitrateCapPolicy(),
            account_throughput_factor=np.array([]),
            account_rtt_factor=np.array([]),
            weekend=False,
            rng=np.random.default_rng(0),
        )
        assert result == {}

    def test_mismatched_account_arrays_raise(self):
        model = SessionOutcomeModel()
        with pytest.raises(ValueError):
            model.generate(
                capped=np.array([True, False]),
                state=UNCONGESTED,
                link_effects=LinkEffects(),
                cap_policy=BitrateCapPolicy(),
                account_throughput_factor=np.ones(3),
                account_rtt_factor=np.ones(2),
                weekend=False,
                rng=np.random.default_rng(0),
            )

    def test_outputs_have_expected_ranges(self):
        _, outcomes = generate(n=2000, state=CONGESTED)
        assert np.all(outcomes["throughput_mbps"] > 0)
        assert np.all(outcomes["min_rtt_ms"] > 0)
        assert np.all(outcomes["retransmit_fraction"] >= 0)
        assert np.all(outcomes["retransmit_fraction"] <= 1)
        assert np.all(outcomes["stability"] <= 100)
        assert np.all(outcomes["perceptual_quality"] <= 100)
        assert set(np.unique(outcomes["cancelled_start"])) <= {0.0, 1.0}


class TestCapEffects:
    def test_capped_bitrate_is_lower(self):
        capped, outcomes = generate(n=4000)
        bitrate = outcomes["video_bitrate_kbps"]
        assert bitrate[capped].mean() < bitrate[~capped].mean()

    def test_capped_bitrate_respects_cap(self):
        capped, outcomes = generate(n=4000)
        assert outcomes["video_bitrate_kbps"][capped].max() <= BitrateCapPolicy().cap_kbps

    def test_capped_sends_fewer_bytes(self):
        capped, outcomes = generate(n=4000)
        bytes_sent = outcomes["bytes_sent_gb"]
        assert bytes_sent[capped].mean() < bytes_sent[~capped].mean()

    def test_capped_measured_throughput_slightly_lower(self):
        capped, outcomes = generate(n=20000)
        throughput = outcomes["throughput_mbps"]
        ratio = throughput[capped].mean() / throughput[~capped].mean()
        assert 0.90 < ratio < 1.0

    def test_capped_min_rtt_higher_under_congestion(self):
        # The sampling-relief mechanism: within the same congested link-hour,
        # capped sessions report slightly higher minimum RTTs.
        capped, outcomes = generate(n=20000, state=CONGESTED)
        rtt = outcomes["min_rtt_ms"]
        assert rtt[capped].mean() > rtt[~capped].mean()

    def test_capped_rebuffers_lower_under_congestion(self):
        capped, outcomes = generate(n=20000, state=CONGESTED)
        rebuffer = outcomes["rebuffer_rate"]
        assert rebuffer[capped].mean() < rebuffer[~capped].mean()

    def test_play_delay_does_not_depend_on_cap(self):
        capped, outcomes = generate(n=40000, state=CONGESTED)
        delay = outcomes["play_delay_s"]
        ratio = delay[capped].mean() / delay[~capped].mean()
        assert ratio == pytest.approx(1.0, abs=0.03)

    def test_retransmit_fraction_higher_for_capped_off_peak(self):
        # Off peak, the fixed per-session retransmitted bytes weigh more for
        # capped sessions because they send fewer bytes overall.
        capped, outcomes = generate(n=20000, state=UNCONGESTED)
        retx = outcomes["retransmit_fraction"]
        assert retx[capped].mean() > retx[~capped].mean()


class TestCongestionEffects:
    def test_congestion_lowers_throughput(self):
        _, calm = generate(n=10000, state=UNCONGESTED, seed=1)
        _, busy = generate(n=10000, state=CONGESTED, seed=1)
        assert busy["throughput_mbps"].mean() < calm["throughput_mbps"].mean()

    def test_congestion_raises_min_rtt(self):
        _, calm = generate(n=10000, state=UNCONGESTED, seed=2)
        _, busy = generate(n=10000, state=CONGESTED, seed=2)
        assert busy["min_rtt_ms"].mean() > calm["min_rtt_ms"].mean()

    def test_congestion_raises_play_delay(self):
        _, calm = generate(n=10000, state=UNCONGESTED, seed=3)
        _, busy = generate(n=10000, state=CONGESTED, seed=3)
        assert busy["play_delay_s"].mean() > calm["play_delay_s"].mean()

    def test_congestion_raises_rebuffers(self):
        _, calm = generate(n=10000, state=UNCONGESTED, seed=4)
        _, busy = generate(n=10000, state=CONGESTED, seed=4)
        assert busy["rebuffer_rate"].mean() > calm["rebuffer_rate"].mean()

    def test_cell_shock_scales_throughput(self):
        model = SessionOutcomeModel(noise_sigma=0.0)
        rng1, rng2 = np.random.default_rng(5), np.random.default_rng(5)
        kwargs = dict(
            capped=np.zeros(1000, dtype=bool),
            state=UNCONGESTED,
            link_effects=LinkEffects(),
            cap_policy=BitrateCapPolicy(),
            account_throughput_factor=np.ones(1000),
            account_rtt_factor=np.ones(1000),
            weekend=False,
        )
        base = model.generate(rng=rng1, cell_shock=1.0, **kwargs)
        shocked = model.generate(rng=rng2, cell_shock=1.2, **kwargs)
        ratio = shocked["throughput_mbps"].mean() / base["throughput_mbps"].mean()
        assert ratio == pytest.approx(1.2, rel=0.01)


class TestLinkEffects:
    def test_rebuffer_multiplier(self):
        _, base = generate(n=10000, link=LinkEffects(), seed=6)
        _, boosted = generate(n=10000, link=LinkEffects(rebuffer_multiplier=1.2), seed=6)
        ratio = boosted["rebuffer_rate"].mean() / base["rebuffer_rate"].mean()
        assert ratio == pytest.approx(1.2, rel=0.05)

    def test_bytes_multiplier(self):
        _, base = generate(n=10000, link=LinkEffects(), seed=7)
        _, boosted = generate(n=10000, link=LinkEffects(bytes_multiplier=1.05), seed=7)
        ratio = boosted["bytes_sent_gb"].mean() / base["bytes_sent_gb"].mean()
        assert ratio == pytest.approx(1.05, rel=0.05)

    def test_weekend_increases_cancelled_starts(self):
        model = SessionOutcomeModel()
        rng1, rng2 = np.random.default_rng(8), np.random.default_rng(8)
        kwargs = dict(
            capped=np.zeros(30000, dtype=bool),
            state=UNCONGESTED,
            link_effects=LinkEffects(),
            cap_policy=BitrateCapPolicy(),
            account_throughput_factor=np.ones(30000),
            account_rtt_factor=np.ones(30000),
        )
        weekday = model.generate(weekend=False, rng=rng1, **kwargs)
        weekend = model.generate(weekend=True, rng=rng2, **kwargs)
        assert weekend["cancelled_start"].mean() > weekday["cancelled_start"].mean()
