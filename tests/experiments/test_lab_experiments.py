"""Tests for the lab experiment harnesses (Figures 2a, 2b and 3)."""

import pytest

from repro.experiments import (
    run_cc_experiment,
    run_connections_experiment,
    run_pacing_experiment,
    sweep_to_figure,
)
from repro.experiments.lab_common import LabFigure


@pytest.fixture(scope="module")
def connections_figure():
    return run_connections_experiment()


@pytest.fixture(scope="module")
def pacing_figure():
    return run_pacing_experiment()


@pytest.fixture(scope="module")
def cc_figure():
    return run_cc_experiment()


class TestConnectionsFigure:
    """Shape checks against the paper's Section 3.1 findings."""

    def test_eleven_rows(self, connections_figure):
        assert len(connections_figure.rows) == 11

    def test_ab_estimate_is_plus_100_percent_throughput(self, connections_figure):
        for allocation in (0.1, 0.5, 0.9):
            ab = connections_figure.ab_estimate("throughput_mbps", allocation)
            control = connections_figure.throughput_curve.mu_control(allocation)
            assert ab / control == pytest.approx(1.0, rel=0.05)

    def test_ab_estimate_shows_no_retransmission_change(self, connections_figure):
        for allocation in (0.1, 0.5, 0.9):
            estimate = connections_figure.ab_estimate("retransmit_fraction", allocation)
            assert estimate == pytest.approx(0.0, abs=1e-6)

    def test_throughput_tte_is_zero(self, connections_figure):
        assert connections_figure.tte("throughput_mbps") == pytest.approx(0.0, abs=1e-6)

    def test_retransmission_tte_is_large_increase(self, connections_figure):
        tte = connections_figure.tte("retransmit_fraction")
        baseline = connections_figure.retransmit_curve.mu_control(0.0)
        assert tte / baseline > 1.0  # at least a 100 % relative increase

    def test_spillover_reduces_control_throughput(self, connections_figure):
        # The paper reports a ~25 % throughput decrease on the one remaining
        # single-connection application; the idealized per-connection
        # fairness model gives an even larger decrease (C/19 vs C/10).
        spill = connections_figure.spillover("throughput_mbps", 0.9)
        baseline = connections_figure.throughput_curve.mu_control(0.0)
        assert spill / baseline < -0.2

    def test_treated_throughput_declines_with_adoption(self, connections_figure):
        curve = connections_figure.throughput_curve
        assert curve.mu_treatment(0.1) > curve.mu_treatment(0.5) > curve.mu_treatment(1.0)

    def test_invalid_connection_counts_raise(self):
        with pytest.raises(ValueError):
            run_connections_experiment(treatment_connections=0)


class TestPacingFigure:
    """Shape checks against the paper's Section 3.2 findings."""

    def test_paced_gets_half_throughput_in_any_ab_test(self, pacing_figure):
        for allocation in (0.1, 0.5, 0.9):
            treated = pacing_figure.throughput_curve.mu_treatment(allocation)
            control = pacing_figure.throughput_curve.mu_control(allocation)
            assert treated / control == pytest.approx(0.5, rel=0.05)

    def test_throughput_tte_is_zero(self, pacing_figure):
        assert pacing_figure.tte("throughput_mbps") == pytest.approx(0.0, abs=1e-6)

    def test_retransmission_tte_is_large_decrease(self, pacing_figure):
        tte = pacing_figure.tte("retransmit_fraction")
        baseline = pacing_figure.retransmit_curve.mu_control(0.0)
        assert tte / baseline < -0.5

    def test_ab_test_shows_no_retransmission_benefit(self, pacing_figure):
        for allocation in (0.1, 0.5, 0.9):
            assert pacing_figure.ab_estimate("retransmit_fraction", allocation) == pytest.approx(
                0.0, abs=1e-6
            )

    def test_spillover_on_unpaced_traffic_is_positive(self, pacing_figure):
        assert pacing_figure.spillover("throughput_mbps", 0.9) > 0.0


class TestCongestionControlFigure:
    """Shape checks against the paper's Section 3.3 findings."""

    def test_minority_bbr_wins_big(self, cc_figure):
        ab = cc_figure.ab_estimate("throughput_mbps", 0.1)
        control = cc_figure.throughput_curve.mu_control(0.1)
        assert ab / control > 1.0  # more than double

    def test_minority_cubic_also_wins_big(self, cc_figure):
        # At 90 % BBR allocation, the remaining Cubic flow dominates, so the
        # "treatment minus control" estimate is strongly negative.
        ab = cc_figure.ab_estimate("throughput_mbps", 0.9)
        treated = cc_figure.throughput_curve.mu_treatment(0.9)
        assert ab < 0.0
        assert abs(ab) > treated

    def test_throughput_tte_is_zero(self, cc_figure):
        assert cc_figure.tte("throughput_mbps") == pytest.approx(0.0, abs=1e-6)

    def test_swapping_roles_mirrors_the_result(self):
        swapped = run_cc_experiment(treatment_cc="cubic", control_cc="bbr")
        assert swapped.ab_estimate("throughput_mbps", 0.1) > 0.0
        assert swapped.tte("throughput_mbps") == pytest.approx(0.0, abs=1e-6)


class TestLabFigureHelpers:
    def test_summary_lines_mention_tte(self, connections_figure):
        lines = connections_figure.summary_lines()
        assert any("TTE" in line for line in lines)
        assert len(lines) > 11

    def test_unknown_metric_raises(self, connections_figure):
        with pytest.raises(KeyError):
            connections_figure.tte("nope")

    def test_rows_expose_ab_effects(self, connections_figure):
        interior = [r for r in connections_figure.rows if 0 < r.n_treated < 10]
        assert all(r.ab_throughput_effect is not None for r in interior)
        endpoints = [r for r in connections_figure.rows if r.n_treated in (0, 10)]
        assert all(r.ab_throughput_effect is None for r in endpoints)

    def test_sweep_to_figure_builds_from_any_sweep(self):
        from repro.netsim.fluid import Application, run_lab_sweep

        sweep = run_lab_sweep(
            4, lambda i: Application(i, connections=2), lambda i: Application(i)
        )
        figure = sweep_to_figure(sweep, "custom", "a four-unit sweep")
        assert isinstance(figure, LabFigure)
        assert len(figure.rows) == 5
        assert figure.name == "custom"
