"""Packet representation for the packet-level simulator."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Packet"]


@dataclass
class Packet:
    """A data packet in flight.

    Attributes
    ----------
    flow_id:
        Identifier of the sending flow.
    sequence:
        Sequence number of the packet within its flow (counts packets, not
        bytes).
    size_bytes:
        Packet size in bytes (MTU-sized for bulk transfers).
    send_time:
        Simulation time at which the sender transmitted the packet.
    is_retransmission:
        True when the packet retransmits previously lost data.
    ecn_capable:
        True when the sending flow negotiated ECN: AQM queues may CE-mark
        this packet instead of dropping it.
    ce_marked:
        Congestion Experienced: set by a queue that would otherwise have
        dropped the packet; echoed back to the sender with the ack.
    """

    flow_id: int
    sequence: int
    size_bytes: int
    send_time: float
    is_retransmission: bool = False
    ecn_capable: bool = False
    ce_marked: bool = False
