"""Figure 11: throughput time series of the emulated event study.

The event study deploys 95 % bitrate capping between the second and third
experiment days.  The figure shows the hourly throughput of the traffic
the event-study analyst would observe: the pre period follows the 5 %-
capped link, the post period follows the 95 %-capped link, and peak-hour
throughput visibly improves after the switch.
"""

import numpy as np
from benchmarks._helpers import EXPERIMENT_DAYS, run_once

from repro.core.designs import EventStudyDesign
from repro.experiments.alternate_designs import emulate_event_study


def _event_study_series(outcome, switch_day=2):
    """Hourly observed throughput under the event-study emulation."""
    table = outcome.experiment_table
    series: dict[int, dict[int, float]] = {}
    for day in EXPERIMENT_DAYS:
        if day < switch_day:
            subset = table.where(day=day, link=2, treated=0)
        else:
            subset = table.where(day=day, link=1, treated=1)
        series[day] = {int(h): v for h, v in subset.groupby_mean("hour", "throughput_mbps").items()}
    return series


def test_fig11_event_study_series(benchmark, paired_outcome):
    series = run_once(benchmark, _event_study_series, paired_outcome)

    peak_hours = range(19, 22)
    pre_peak = np.mean([series[d][h] for d in (0, 1) for h in peak_hours])
    post_peak = np.mean([series[d][h] for d in (2, 3, 4) for h in peak_hours])
    print(f"\npre-switch peak throughput:  {pre_peak:.2f} Mb/s")
    print(f"post-switch peak throughput: {post_peak:.2f} Mb/s")

    # After deploying 95 % capping, peak-hour throughput improves.
    assert post_peak > pre_peak

    # And the event-study estimator sees a positive throughput effect —
    # though (as the paper notes) it is biased relative to the paired link.
    estimates = emulate_event_study(
        paired_outcome.experiment_table,
        EXPERIMENT_DAYS,
        design=EventStudyDesign(switch_day=2),
        metrics=("throughput_mbps",),
        baselines=paired_outcome.baselines,
    )
    print(f"event-study throughput TTE: {estimates['throughput_mbps'].relative_percent:+.1f}%")
    assert estimates["throughput_mbps"].relative.estimate != 0.0
