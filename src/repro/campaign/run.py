"""Execute a compiled campaign and persist its run directory.

:func:`run_campaign` lowers a :class:`~repro.campaign.spec.CampaignSpec`
onto the existing runner stack: compile every stage into content-keyed
arms, dedupe arms that share a key (identical computations run once, no
matter how many stages reference them), fan the unique specs out through
:class:`~repro.runner.executor.ParallelExecutor`, and fold the results
back into per-stage aggregates.  Because each arm carries its own seed,
the output is bit-identical for any ``jobs`` value.

A run directory (``--trace RUN``) receives two JSON artifacts next to
the tracer's ``trace.jsonl``/``meta.json``:

``manifest.json``
    Provenance: package version, campaign content key, the resolved
    stages, and one entry per arm pinning its task, parameters, seed and
    content key.  ``repro validate`` replays this manifest.
``results.json``
    The scalar cells of every unique arm, keyed by content key.
"""

from __future__ import annotations

import json
import math
from collections.abc import Callable, Mapping
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.campaign.spec import CampaignArm, CampaignSpec
from repro.runner.cache import ResultCache
from repro.runner.executor import ParallelExecutor

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.trace import RunTracer, TaskRun

__all__ = [
    "ArmResult",
    "CampaignResult",
    "run_campaign",
    "write_run_dir",
    "confidence_half_width",
    "MANIFEST_NAME",
    "RESULTS_NAME",
    "MANIFEST_SCHEMA",
]

#: File names of the run-directory artifacts.
MANIFEST_NAME = "manifest.json"
RESULTS_NAME = "results.json"

#: Schema version stamped into (and required of) both artifacts.
MANIFEST_SCHEMA = 1


def confidence_half_width(values: np.ndarray, confidence: float = 0.95) -> float:
    """Half-width of the t-based CI on the mean of ``values``."""
    n = len(values)
    if n < 2:
        return 0.0
    from scipy import stats

    std = float(np.std(values, ddof=1))
    return float(stats.t.ppf(0.5 + confidence / 2.0, n - 1) * std / np.sqrt(n))


@dataclass(frozen=True)
class ArmResult:
    """One arm's provenance plus its computed cells.

    Attributes
    ----------
    stage:
        Stage the arm belongs to.
    figure:
        The stage's figure.
    seed:
        The arm's seed (``None`` for deterministic figures).
    label:
        The compiled spec's label.
    key:
        The arm's content key (shared with the cache and the manifest).
    cells:
        Flat ``{cell name: value}`` mapping of scalar outcomes.
    """

    stage: str
    figure: str
    seed: int | None
    label: str
    key: str
    cells: Mapping[str, float]


@dataclass(frozen=True)
class CampaignResult:
    """Everything one campaign run produced.

    Attributes
    ----------
    campaign:
        The spec that was run.
    arms:
        Per-arm results in compilation order (stage order, then seed).
    unique_arms:
        Number of distinct content keys actually executed or fetched.
    cache_hits / cache_misses:
        Cache traffic attributable to this run (0/0 without a cache).
    """

    campaign: CampaignSpec
    arms: tuple[ArmResult, ...]
    unique_arms: int
    cache_hits: int
    cache_misses: int

    def stage_arms(self, stage: str) -> tuple[ArmResult, ...]:
        """The results of one stage, in seed order."""
        return tuple(arm for arm in self.arms if arm.stage == stage)

    def summary_lines(self) -> list[str]:
        """Deterministic human-readable report: per-stage cell aggregates.

        For seeded stages with more than one replication each cell shows
        ``mean ±half-width`` at the campaign's confidence level; single
        arms show the bare value.
        """
        spec = self.campaign
        lines = [f"campaign {spec.name}: {spec.description}".rstrip().rstrip(":")]
        lines.append(
            f"stages: {len(spec.stages)}, arms: {len(self.arms)}, "
            f"unique: {self.unique_arms}"
        )
        for stage in spec.stages:
            arms = self.stage_arms(stage.name)
            if stage.deterministic:
                grid = "deterministic"
            else:
                grid = f"seeds {','.join(str(s) for s in stage.seeds)}"
            lines.append("")
            lines.append(f"{stage.name} (figure {stage.figure}, {grid})")
            cell_names = sorted(arms[0].cells)
            width = max(len(name) for name in cell_names)
            for cell in cell_names:
                values = np.array([float(arm.cells[cell]) for arm in arms])
                mean = float(np.mean(values))
                if len(values) > 1:
                    half = confidence_half_width(
                        values, self.campaign.analysis.confidence
                    )
                    lines.append(
                        f"  {cell:<{width}}  {mean:>14.6g} ±{half:.4g} (n={len(values)})"
                    )
                else:
                    lines.append(f"  {cell:<{width}}  {mean:>14.6g}")
        return lines


def run_campaign(
    campaign: CampaignSpec,
    jobs: int | None = 1,
    cache: ResultCache | None = None,
    tracer: RunTracer | None = None,
    profile: bool = False,
    on_task_done: Callable[[int, int, TaskRun], None] | None = None,
    rundir: str | Path | None = None,
) -> CampaignResult:
    """Run every arm of ``campaign`` and return the folded results.

    Arms sharing a content key are executed once and fanned back out to
    every referencing stage.  When ``rundir`` is given, ``manifest.json``
    and ``results.json`` are written there (the directory is created).
    """
    arms = campaign.arms()
    unique: dict[str, CampaignArm] = {}
    for arm in arms:
        unique.setdefault(arm.key, arm)

    hits_before = cache.hits if cache is not None else 0
    misses_before = cache.misses if cache is not None else 0
    executor = ParallelExecutor(
        jobs=jobs,
        cache=cache,
        tracer=tracer,
        profile=profile,
        on_task_done=on_task_done,
    )
    outputs = executor.map([arm.spec for arm in unique.values()])
    cells_by_key = {
        key: _normalize_cells(value, unique[key])
        for key, value in zip(unique, outputs)
    }

    arm_results = tuple(
        ArmResult(
            stage=arm.stage,
            figure=arm.figure,
            seed=arm.seed,
            label=arm.spec.label,
            key=arm.key,
            cells=cells_by_key[arm.key],
        )
        for arm in arms
    )
    result = CampaignResult(
        campaign=campaign,
        arms=arm_results,
        unique_arms=len(unique),
        cache_hits=(cache.hits - hits_before) if cache is not None else 0,
        cache_misses=(cache.misses - misses_before) if cache is not None else 0,
    )
    if rundir is not None:
        write_run_dir(rundir, result)
    return result


def _normalize_cells(value: Any, arm: CampaignArm) -> dict[str, float]:
    """Coerce a ``figure.cells`` payload to plain finite-checkable floats."""
    if not isinstance(value, Mapping):
        raise TypeError(
            f"arm {arm.spec.label!r} returned {type(value).__name__}, "
            "expected a cell mapping"
        )
    cells: dict[str, float] = {}
    for name, raw in value.items():
        number = float(raw)
        if not math.isfinite(number):
            raise ValueError(
                f"arm {arm.spec.label!r} produced non-finite cell {name!r}: {raw!r}"
            )
        cells[str(name)] = number
    return cells


def write_run_dir(rundir: str | Path, result: CampaignResult) -> Path:
    """Write ``manifest.json`` and ``results.json`` into ``rundir``."""
    from repro import __version__

    rundir = Path(rundir)
    rundir.mkdir(parents=True, exist_ok=True)
    campaign = result.campaign
    manifest = {
        "schema": MANIFEST_SCHEMA,
        "package": "repro",
        "version": __version__,
        "campaign": {
            "name": campaign.name,
            "description": campaign.description,
            "key": campaign.content_key(),
            "analysis": {"confidence": campaign.analysis.confidence},
            "stages": [
                {
                    "name": stage.name,
                    "figure": stage.figure,
                    "knobs": dict(sorted(stage.knobs.items())),
                    "seeds": list(stage.seeds),
                }
                for stage in campaign.stages
            ],
        },
        "arms": [
            {
                "stage": arm.stage,
                "figure": arm.figure,
                "seed": arm.seed,
                "label": arm.label,
                "task": compiled.spec.task,
                "params": dict(sorted(compiled.spec.params.items())),
                "key": arm.key,
            }
            for arm, compiled in zip(result.arms, campaign.arms(), strict=True)
        ],
    }
    results = {
        "schema": MANIFEST_SCHEMA,
        "campaign_key": manifest["campaign"]["key"],
        "cells": {
            arm.key: dict(sorted(arm.cells.items())) for arm in result.arms
        },
    }
    _write_json(rundir / MANIFEST_NAME, manifest)
    _write_json(rundir / RESULTS_NAME, results)
    return rundir


def _write_json(path: Path, payload: Any) -> None:
    """Serialize one artifact deterministically (sorted keys, UTF-8)."""
    path.write_text(
        json.dumps(payload, indent=1, sort_keys=True) + "\n", encoding="utf-8"
    )
