"""cProfile hooks: per-task hotspot rows, cross-process merge, rendering.

Runner tasks executed under ``--profile`` are wrapped in a
:class:`cProfile.Profile`; instead of shipping pickled ``pstats`` state
across the process boundary, each worker reduces its profile to plain
*hotspot rows* — ``(function label, ncalls, tottime, cumtime)`` tuples —
which the parent merges by summing per function and renders as a top-N
table.  Rows are plain tuples so they pickle cheaply and serialize to
JSON without ceremony.
"""

from __future__ import annotations

import cProfile
import pstats
from collections.abc import Callable, Iterable, Sequence
from typing import Any

__all__ = ["ProfileRow", "run_profiled", "top_rows", "merge_profile_rows", "format_hotspots"]

#: One hotspot: (function label, ncalls, tottime seconds, cumtime seconds).
ProfileRow = tuple[str, int, float, float]

#: Rows kept per profiled task before the merge (the merge re-ranks).
DEFAULT_ROW_LIMIT = 60


def _function_label(filename: str, lineno: int, func_name: str) -> str:
    """Compact ``path:line(function)`` label, trimmed to the last two path parts."""
    if filename.startswith("~"):  # pstats' marker for builtins
        return func_name
    parts = filename.replace("\\", "/").split("/")
    short = "/".join(parts[-2:]) if len(parts) > 1 else filename
    return f"{short}:{lineno}({func_name})"


def top_rows(profiler: cProfile.Profile, limit: int = DEFAULT_ROW_LIMIT) -> tuple[ProfileRow, ...]:
    """Reduce a finished profiler to its top rows by total time."""
    stats = pstats.Stats(profiler)
    rows: list[ProfileRow] = []
    for (filename, lineno, func_name), entry in stats.stats.items():  # type: ignore[attr-defined]
        _cc, ncalls, tottime, cumtime, _callers = entry
        rows.append((_function_label(filename, lineno, func_name), int(ncalls), float(tottime), float(cumtime)))
    rows.sort(key=lambda row: (-row[2], row[0]))
    return tuple(rows[:limit])


def run_profiled(
    fn: Callable[[], Any], limit: int = DEFAULT_ROW_LIMIT
) -> tuple[Any, tuple[ProfileRow, ...]]:
    """Run ``fn`` under cProfile; return its result and the hotspot rows."""
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = fn()
    finally:
        profiler.disable()
    return result, top_rows(profiler, limit=limit)


def merge_profile_rows(groups: Iterable[Sequence[Sequence[Any]]]) -> list[ProfileRow]:
    """Merge hotspot rows from many tasks by summing per function.

    Accepts any nesting of row sequences (tuples from workers, lists from
    JSON round-trips) and returns rows ranked by summed total time.
    """
    totals: dict[str, list[float]] = {}
    for rows in groups:
        for label, ncalls, tottime, cumtime in rows:
            bucket = totals.setdefault(str(label), [0.0, 0.0, 0.0])
            bucket[0] += int(ncalls)
            bucket[1] += float(tottime)
            bucket[2] += float(cumtime)
    merged = [
        (label, int(bucket[0]), bucket[1], bucket[2])
        for label, bucket in totals.items()
    ]
    merged.sort(key=lambda row: (-row[2], row[0]))
    return merged


def format_hotspots(rows: Sequence[Sequence[Any]], top: int = 15) -> str:
    """Render hotspot rows as a fixed-width table (top N by total time)."""
    lines = [f"{'tottime':>9}  {'cumtime':>9}  {'ncalls':>10}  function"]
    for label, ncalls, tottime, cumtime in list(rows)[:top]:
        lines.append(f"{tottime:>8.3f}s  {cumtime:>8.3f}s  {int(ncalls):>10,}  {label}")
    return "\n".join(lines)
