"""Gradual deployment as a measurement instrument (Section 5.1).

Engineers already deploy new algorithms gradually — increasing the
allocation in steps (1 %, 5 %, 25 %, 50 %, 100 %) while monitoring for
regressions.  The paper points out that the same ramp, analyzed carefully,
measures congestion interference for free: at every step the experimenter
observes an A/B test at allocation ``p_i`` and can estimate

* the average treatment effect ``tau(p_i)``,
* the spillover ``s(p_i)`` (comparing control at ``p_i`` to control at 0),
* the partial treatment effect ``rho(p_i)`` (treatment at ``p_i`` vs
  control at 0),

and, once the ramp reaches 100 %, the total treatment effect.  If SUTVA
held, all the ``tau(p_i)`` would agree, all spillovers would be zero and
``rho(p_i) = tau(p_i)``.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.designs.base import (
    AllocationPlan,
    CellSelector,
    ComparisonSpec,
    ExperimentDesign,
)

__all__ = ["GradualDeploymentDesign"]

#: A conventional ramp used when the caller does not specify one.
DEFAULT_RAMP: tuple[float, ...] = (0.0, 0.01, 0.05, 0.25, 0.5, 0.75, 0.95, 1.0)


class GradualDeploymentDesign(ExperimentDesign):
    """A staged allocation ramp across the experiment's days.

    Parameters
    ----------
    ramp:
        Sequence of allocations, one per deployment stage.  Stages are
        mapped onto the experiment's days in order; if there are more days
        than stages the final stage persists, if there are fewer days than
        stages the ramp is truncated.
    """

    name = "gradual_deployment"

    def __init__(self, ramp: Sequence[float] = DEFAULT_RAMP):
        if not ramp:
            raise ValueError("ramp must contain at least one allocation")
        for p in ramp:
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"ramp allocations must be in [0, 1], got {p}")
        if list(ramp) != sorted(ramp):
            raise ValueError("ramp allocations must be non-decreasing")
        self.ramp = tuple(float(p) for p in ramp)

    def allocation_for_day_index(self, index: int) -> float:
        """Allocation used on the ``index``-th day of the deployment."""
        if index < 0:
            raise ValueError("day index must be non-negative")
        return self.ramp[min(index, len(self.ramp) - 1)]

    def allocation_plan(
        self, links: Sequence[int], days: Sequence[int]
    ) -> AllocationPlan:
        cells: dict[tuple[int, int], float] = {}
        for idx, day in enumerate(sorted(int(d) for d in days)):
            allocation = self.allocation_for_day_index(idx)
            for link in links:
                cells[(int(link), day)] = allocation
        return AllocationPlan(cells, default=self.ramp[-1])

    def comparisons(
        self, links: Sequence[int], days: Sequence[int]
    ) -> list[ComparisonSpec]:
        links_t = tuple(int(link) for link in links)
        ordered_days = sorted(int(d) for d in days)
        stage_days: dict[float, list[int]] = {}
        for idx, day in enumerate(ordered_days):
            stage_days.setdefault(self.allocation_for_day_index(idx), []).append(day)

        baseline_days = tuple(stage_days.get(0.0, ()))
        specs: list[ComparisonSpec] = []
        for allocation in sorted(stage_days):
            day_set = tuple(stage_days[allocation])
            if 0.0 < allocation < 1.0:
                specs.append(
                    ComparisonSpec(
                        estimand=f"ab_{allocation:g}",
                        treatment_selector=CellSelector(links_t, day_set, treated=True),
                        control_selector=CellSelector(links_t, day_set, treated=False),
                        description=f"A/B effect at ramp stage p={allocation:g}.",
                    )
                )
            if baseline_days and allocation > 0.0:
                specs.append(
                    ComparisonSpec(
                        estimand=f"partial_{allocation:g}",
                        treatment_selector=CellSelector(links_t, day_set, treated=True),
                        control_selector=CellSelector(
                            links_t, baseline_days, treated=False
                        ),
                        description=(
                            f"Partial treatment effect rho(p={allocation:g}) vs the "
                            "all-control baseline stage."
                        ),
                    )
                )
                if allocation < 1.0:
                    specs.append(
                        ComparisonSpec(
                            estimand=f"spillover_{allocation:g}",
                            treatment_selector=CellSelector(
                                links_t, day_set, treated=False
                            ),
                            control_selector=CellSelector(
                                links_t, baseline_days, treated=False
                            ),
                            description=(
                                f"Spillover s(p={allocation:g}) vs the all-control "
                                "baseline stage."
                            ),
                        )
                    )
        if baseline_days and 1.0 in stage_days:
            specs.append(
                ComparisonSpec(
                    estimand="tte",
                    treatment_selector=CellSelector(
                        links_t, tuple(stage_days[1.0]), treated=True
                    ),
                    control_selector=CellSelector(links_t, baseline_days, treated=False),
                    description="TTE: the fully-deployed stage vs the all-control stage.",
                )
            )
        return specs

    def describe(self) -> str:
        ramp = ", ".join(f"{p:g}" for p in self.ramp)
        return f"Gradual deployment with ramp [{ramp}]"
