"""Reproduce the paired-link bitrate-capping experiment (Section 4).

Generates the synthetic paired-link workload, runs the 95 % / 5 %
experiment for five days, and prints:

* the baseline link-similarity table (Section 4.1),
* the Figure 5 treatment-effect table (naive A/B vs TTE vs spillover),
* the Figure 7/8 cell means,
* the Figure 9 peak/off-peak retransmission split.

Run with:  python examples/bitrate_capping_paired_link.py
(Use --quick for a smaller, faster workload.)
"""

import argparse

from repro.core.units import SESSION_METRICS
from repro.experiments import PairedLinkExperiment, compare_links_at_baseline
from repro.reporting import format_table
from repro.workload import WorkloadConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="run a smaller workload (faster)"
    )
    parser.add_argument("--seed", type=int, default=7, help="workload random seed")
    args = parser.parse_args()

    sessions_at_peak = 150 if args.quick else 400
    config = WorkloadConfig(sessions_at_peak=sessions_at_peak, seed=args.seed)
    experiment = PairedLinkExperiment(config=config)
    print(f"Running paired-link experiment ({experiment.design.describe()}) ...")
    outcome = experiment.run()
    print(f"Generated {len(outcome.experiment_table)} experiment sessions.\n")

    print("Baseline week: link 1 vs link 2 (Section 4.1)")
    rows = []
    for row in compare_links_at_baseline(outcome.baseline_table):
        rows.append(
            [
                row.metric,
                f"{row.relative_percent:+.1f}%",
                "yes" if row.significant else "no",
            ]
        )
    print(format_table(["metric", "link1 vs link2", "significant"], rows))
    print()

    print("Figure 5: treatment effects of bitrate capping (percent of global control)")
    rows = []
    for row in outcome.figure5_rows():
        rows.append(
            [
                row["metric"],
                f"{row['ab_0.05']:+.1f}%",
                f"{row['ab_0.95']:+.1f}%",
                f"{row['tte']:+.1f}%",
                f"{row['spillover']:+.1f}%",
            ]
        )
    print(format_table(["metric", "A/B 5%", "A/B 95%", "TTE", "spillover"], rows))
    print()

    cells = outcome.figure7_cells()
    print("Figure 7: average throughput by cell (Mb/s)")
    print(
        format_table(
            ["cell", "throughput"],
            [
                ["link 1, capped (95%)", f"{cells.link1_treated:.2f}"],
                ["link 1, uncapped (5%)", f"{cells.link1_control:.2f}"],
                ["link 2, capped (5%)", f"{cells.link2_treated:.2f}"],
                ["link 2, uncapped (95%)", f"{cells.link2_control:.2f}"],
            ],
        )
    )
    print()

    rtt = outcome.figure8_cells()
    print("Figure 8: minimum RTT by cell (normalized to smallest)")
    print(
        format_table(
            ["cell", "min RTT"],
            [
                ["link 1, capped (95%)", f"{rtt.link1_treated:.2f}"],
                ["link 1, uncapped (5%)", f"{rtt.link1_control:.2f}"],
                ["link 2, capped (5%)", f"{rtt.link2_treated:.2f}"],
                ["link 2, uncapped (95%)", f"{rtt.link2_control:.2f}"],
            ],
        )
    )
    print()

    split = outcome.figure9_retransmit_split()
    print("Figure 9: retransmitted-byte fraction, capping vs uncapped control")
    print(f"  peak hours:     {100 * split['peak']:+.1f}%")
    print(f"  off-peak hours: {100 * split['off_peak']:+.1f}%")
    print(f"  overall TTE:    {100 * split['overall']:+.1f}%")
    print()

    flipped = [
        m
        for m in SESSION_METRICS
        if (outcome.estimate("ab_0.05", m).relative.estimate > 0)
        != (outcome.estimate("tte", m).relative.estimate > 0)
    ]
    print(f"Metrics whose direction the 5% A/B test gets wrong: {', '.join(flipped) or 'none'}")


if __name__ == "__main__":
    main()
