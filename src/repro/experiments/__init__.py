"""End-to-end reproductions of every experiment in the paper.

Each module runs one of the paper's experiments on the corresponding
substrate and returns the rows/series behind the paper's figures:

* :mod:`repro.experiments.lab_connections` — Figure 2a (parallel
  connections).
* :mod:`repro.experiments.lab_pacing` — Figure 2b (pacing).
* :mod:`repro.experiments.lab_cc` — Figure 3 (Cubic vs BBR).
* :mod:`repro.experiments.lab_topology` — beyond-the-paper topology
  scenarios: A/B bias under heterogeneous RTTs and under AQM (CoDel/RED)
  vs drop-tail, on the packet-level simulator.
* :mod:`repro.experiments.lab_parking_lot` — beyond-the-paper topology
  scenarios: multi-bottleneck parking lots with unmeasured cross traffic
  (bias amplification, cross-segment spillover) and per-flow FQ-CoDel
  (the paper's bias-elimination prediction).
* :mod:`repro.experiments.lab_churn` — dynamic-traffic scenarios: the
  A/B bias as a function of short-flow churn intensity, and a
  switchback-vs-event-study comparison under a ramping demand profile.
* :mod:`repro.experiments.lab_l4s` — the L4S lab: the connection-count
  bias under drop-tail vs classic-ECN CoDel vs the DualPI2/DCTCP L4S
  stack vs FQ-CoDel (signal-based vs scheduling-based sharing), plus a
  classic/L4S coexistence arm on one DualPI2 bottleneck.
* :mod:`repro.experiments.lab_fleet` — the fleet experiment: the A/B
  bias vs assignment cluster size (unit / edge / region) on the sharded
  packet/fluid hybrid at five-figure unit counts.
* :mod:`repro.experiments.baseline_validation` — the Section 4.1 baseline
  link-similarity table.
* :mod:`repro.experiments.paired_link` — the Section 4 bitrate-capping
  experiment (Figures 5-9 and 13).
* :mod:`repro.experiments.alternate_designs` — the Section 5 emulated
  switchback and event study (Figures 10-12) and the A/A calibration.
"""

from repro.experiments.lab_common import (
    LabFigure,
    packet_sweep_to_figure,
    sweep_to_figure,
)
from repro.experiments.lab_connections import run_connections_experiment
from repro.experiments.lab_pacing import run_pacing_experiment
from repro.experiments.lab_cc import run_cc_experiment
from repro.experiments.lab_topology import (
    AqmBiasComparison,
    run_aqm_experiment,
    run_rtt_experiment,
)
from repro.experiments.lab_parking_lot import (
    ParkingLotComparison,
    run_fq_experiment,
    run_parking_lot_experiment,
)
from repro.experiments.lab_churn import (
    ChurnBiasComparison,
    SwitchbackRampOutcome,
    run_churn_experiment,
    run_switchback_ramp_experiment,
)
from repro.experiments.lab_l4s import (
    L4sBiasComparison,
    run_l4s_experiment,
)
from repro.experiments.paired_link import PairedLinkExperiment, PairedLinkOutcome
from repro.experiments.baseline_validation import compare_links_at_baseline
from repro.experiments.alternate_designs import (
    AlternateDesignComparison,
    emulate_event_study,
    emulate_switchback,
    run_aa_calibration,
    compare_designs,
)
from repro.experiments.gradual_deployment import (
    GradualDeploymentOutcome,
    run_gradual_deployment,
)
from repro.experiments.lab_fleet import (
    FleetBiasComparison,
    FleetOutcome,
    run_fleet_experiment,
)

__all__ = [
    "LabFigure",
    "sweep_to_figure",
    "packet_sweep_to_figure",
    "run_connections_experiment",
    "run_pacing_experiment",
    "run_cc_experiment",
    "AqmBiasComparison",
    "run_rtt_experiment",
    "run_aqm_experiment",
    "ParkingLotComparison",
    "run_parking_lot_experiment",
    "run_fq_experiment",
    "ChurnBiasComparison",
    "SwitchbackRampOutcome",
    "run_churn_experiment",
    "run_switchback_ramp_experiment",
    "FleetBiasComparison",
    "FleetOutcome",
    "run_fleet_experiment",
    "L4sBiasComparison",
    "run_l4s_experiment",
    "PairedLinkExperiment",
    "PairedLinkOutcome",
    "compare_links_at_baseline",
    "AlternateDesignComparison",
    "emulate_event_study",
    "emulate_switchback",
    "run_aa_calibration",
    "compare_designs",
    "GradualDeploymentOutcome",
    "run_gradual_deployment",
]
