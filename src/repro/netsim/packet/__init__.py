"""Packet-level discrete-event network simulator.

This substrate reproduces the lab testbed of Section 3 from first
principles: senders with simplified Reno, Cubic or BBR congestion control
(optionally paced) share a drop-tail bottleneck queue; throughput and
retransmissions are measured per flow.

The simulator is intentionally compact — it models exactly what the
paper's lab experiments exercise (window dynamics, ack clocking, drop-tail
losses, pacing, BBR's rate-based probing) and nothing else (no SACK, no
delayed acks, no slow-start restart).  It exists to validate the fluid
model's sharing behaviour and to support ablation benchmarks.

Public entry point: :func:`repro.netsim.packet.simulation.simulate`.
"""

from repro.netsim.packet.engine import EventScheduler
from repro.netsim.packet.queue import DropTailQueue
from repro.netsim.packet.simulation import FlowConfig, PacketSimResult, simulate
from repro.netsim.packet.sweep import PacketSweepResult, run_packet_sweep
from repro.netsim.packet.tcp import BBRSender, CubicSender, RenoSender, TcpSender

__all__ = [
    "EventScheduler",
    "DropTailQueue",
    "FlowConfig",
    "PacketSimResult",
    "simulate",
    "PacketSweepResult",
    "run_packet_sweep",
    "BBRSender",
    "CubicSender",
    "RenoSender",
    "TcpSender",
]
