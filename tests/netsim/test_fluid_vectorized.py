"""Pin the vectorized fluid kernels against their scalar references."""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.netsim.fluid import (
    Application,
    BottleneckLink,
    CompetitionModel,
    allocate_throughput,
    allocate_throughput_reference,
    link_loss_rate,
    link_loss_rate_reference,
    loss_probability,
    weighted_water_fill,
    weighted_water_fill_reference,
)

LINK = BottleneckLink()


def _random_apps(seed: int, n: int) -> list[Application]:
    """A deterministic mixed-population application list."""
    rng = random.Random(f"fluid-vec:{seed}")
    apps = []
    for i in range(n):
        apps.append(
            Application(
                app_id=i,
                cc=rng.choice(["reno", "cubic", "bbr"]),
                connections=rng.randint(1, 4),
                paced=rng.random() < 0.3,
            )
        )
    return apps


MIXES = {
    "loss_only": [Application(0, connections=2), Application(1), Application(2, cc="cubic")],
    "bbr_only": [Application(0, cc="bbr"), Application(1, cc="bbr", connections=3)],
    "mixed": [
        Application(0, cc="bbr", connections=2),
        Application(1, connections=2, paced=True),
        Application(2, cc="cubic"),
    ],
    "paced_mix": [Application(0, paced=True), Application(1), Application(2, paced=True)],
}


class TestAllocationPinnedToScalar:
    @pytest.mark.parametrize("name", sorted(MIXES))
    def test_named_mixes(self, name):
        apps = MIXES[name]
        fast = allocate_throughput(LINK, apps)
        slow = allocate_throughput_reference(LINK, apps)
        assert fast.keys() == slow.keys()
        for app_id in fast:
            assert fast[app_id] == pytest.approx(slow[app_id], rel=1e-12)

    @pytest.mark.parametrize("seed", range(5))
    def test_random_populations(self, seed):
        apps = _random_apps(seed, n=50)
        model = CompetitionModel(paced_weight=0.6, bbr_aggregate_share=0.35)
        fast = allocate_throughput(LINK, apps, model)
        slow = allocate_throughput_reference(LINK, apps, model)
        for app_id in fast:
            assert fast[app_id] == pytest.approx(slow[app_id], rel=1e-12)

    def test_validation_matches_reference(self):
        with pytest.raises(ValueError):
            allocate_throughput(LINK, [])
        with pytest.raises(ValueError):
            allocate_throughput(LINK, [Application(0), Application(0)])


class TestLossRatePinnedToScalar:
    @pytest.mark.parametrize("name", sorted(MIXES))
    def test_named_mixes(self, name):
        apps = MIXES[name]
        link = BottleneckLink(capacity_gbps=0.05)
        assert link_loss_rate(link, apps) == pytest.approx(
            link_loss_rate_reference(link, apps), rel=1e-12
        )

    @pytest.mark.parametrize("seed", range(5))
    def test_random_populations(self, seed):
        apps = _random_apps(seed + 100, n=40)
        link = BottleneckLink(capacity_gbps=0.2)
        assert link_loss_rate(link, apps) == pytest.approx(
            link_loss_rate_reference(link, apps), rel=1e-12
        )


class TestLossProbabilityKernel:
    def test_scalar_matches_inline_formula(self):
        link = BottleneckLink()
        rate = 500.0
        expected = 1.5 * (
            link.mtu_bytes * 8 / ((link.base_rtt_ms / 1000.0) * rate * 1e6)
        ) ** 2
        assert link.loss_probability(rate) == pytest.approx(expected, rel=1e-12)

    def test_array_broadcast(self):
        rates = np.array([0.5, 5.0, 50.0])
        rtts = np.array([1.0, 10.0, 100.0])
        result = loss_probability(rates, rtt_ms=rtts, mtu_bytes=1500)
        assert result.shape == (3,)
        for i in range(3):
            assert result[i] == pytest.approx(
                loss_probability(float(rates[i]), rtt_ms=float(rtts[i]), mtu_bytes=1500)
            )

    def test_clipping(self):
        assert loss_probability(0.0, rtt_ms=1.0, mtu_bytes=1500) == 1.0
        assert loss_probability(1e-9, rtt_ms=1000.0, mtu_bytes=9000) == 1.0
        assert loss_probability(1e9, rtt_ms=1.0, mtu_bytes=1500) < 1e-10


class TestWeightedWaterFill:
    def _random_case(self, seed: int, n: int):
        rng = random.Random(f"waterfill:{seed}")
        demands = np.array([rng.uniform(0.0, 100.0) for _ in range(n)])
        weights = np.array([rng.uniform(0.5, 4.0) for _ in range(n)])
        capacity = rng.uniform(0.1, 1.2) * float(demands.sum())
        return capacity, demands, weights

    @pytest.mark.parametrize("seed", range(10))
    def test_pinned_to_scalar_reference(self, seed):
        capacity, demands, weights = self._random_case(seed, n=64)
        fast = weighted_water_fill(capacity, demands, weights)
        slow = weighted_water_fill_reference(capacity, demands, weights)
        np.testing.assert_allclose(fast, slow, rtol=1e-9, atol=1e-9)

    def test_conservation_and_demand_cap(self):
        capacity, demands, weights = self._random_case(99, n=128)
        alloc = weighted_water_fill(capacity, demands, weights)
        assert float(alloc.sum()) == pytest.approx(min(capacity, float(demands.sum())))
        assert (alloc <= demands + 1e-9).all()
        assert (alloc >= 0).all()

    def test_uncongested_meets_all_demands(self):
        demands = np.array([10.0, 20.0, 30.0])
        alloc = weighted_water_fill(100.0, demands, np.ones(3))
        np.testing.assert_allclose(alloc, demands)

    def test_weights_shape_shares(self):
        # Unsaturated entities split in proportion to weight.
        demands = np.array([1000.0, 1000.0])
        alloc = weighted_water_fill(90.0, demands, np.array([2.0, 1.0]))
        np.testing.assert_allclose(alloc, [60.0, 30.0])

    def test_saturated_entity_frees_capacity(self):
        demands = np.array([5.0, 1000.0, 1000.0])
        alloc = weighted_water_fill(105.0, demands, np.ones(3))
        np.testing.assert_allclose(alloc, [5.0, 50.0, 50.0])

    def test_zero_capacity(self):
        alloc = weighted_water_fill(0.0, np.array([1.0, 2.0]), np.ones(2))
        np.testing.assert_allclose(alloc, [0.0, 0.0])

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            weighted_water_fill(1.0, np.array([1.0]), np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            weighted_water_fill(1.0, np.array([-1.0]), np.array([1.0]))
        with pytest.raises(ValueError):
            weighted_water_fill(1.0, np.array([1.0]), np.array([0.0]))
