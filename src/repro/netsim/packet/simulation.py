"""Packet-level simulation harness.

Builds a lab topology — ``n`` applications, each with one or more TCP
connections, crossing one or more bottleneck queues — runs it for a fixed
duration, and reports per-application throughput and retransmission
fraction measured after a warm-up period.

The default topology mirrors the paper's testbed: a single drop-tail
bottleneck, symmetric propagation delay, receivers acknowledging every
packet immediately.  Beyond the default, every axis is composable via
:mod:`repro.netsim.packet.network`: per-flow RTTs (``FlowConfig.rtt_ms``),
AQM queue disciplines (``queue_discipline="red"`` / ``"codel"`` /
``"fq_codel"``), ECN negotiation (``FlowConfig.ecn``), random-loss path
segments (``FlowConfig.path``), additional named queues
(``extra_queues``, e.g. a parking-lot chain) and unmeasured background
flows (``cross_traffic``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Mapping, Sequence
from typing import Any

from repro.netsim.packet.network import Network, PathConfig, QueueConfig

__all__ = ["FlowConfig", "FlowResult", "PacketSimResult", "simulate"]


@dataclass(frozen=True)
class FlowConfig:
    """Configuration of one application in a packet-level simulation.

    Parameters
    ----------
    flow_id:
        Identifier of the application.
    cc:
        Congestion control algorithm: ``"reno"``, ``"cubic"`` or ``"bbr"``.
    connections:
        Number of parallel TCP connections the application opens.
    paced:
        Whether the application's loss-based connections pace their packets
        (BBR always paces).
    ecn:
        Whether the application's connections negotiate ECN: AQM queues
        CE-mark their packets instead of dropping them, and the senders
        respond to echoed marks with a window cut but no retransmission.
    treated:
        Arm label carried through to the results; does not change behaviour.
    rtt_ms:
        This application's two-way propagation delay.  ``None`` inherits
        the simulation's ``base_rtt_ms``; setting it overrides the path's
        ``rtt_ms`` too.
    path:
        Network path of this application's packets (loss segment, queue
        sequence).  ``None`` means the default path through the single
        bottleneck.
    """

    flow_id: int
    cc: str = "reno"
    connections: int = 1
    paced: bool = False
    ecn: bool = False
    treated: bool = False
    rtt_ms: float | None = None
    path: PathConfig | None = None

    def __post_init__(self) -> None:
        if self.connections < 1:
            raise ValueError("connections must be at least 1")
        if self.rtt_ms is not None and self.rtt_ms <= 0:
            raise ValueError("rtt_ms must be positive")


@dataclass
class FlowResult:
    """Measured outcomes of one application."""

    flow_id: int
    treated: bool
    throughput_mbps: float
    retransmit_fraction: float
    packets_sent: int
    packets_lost: int
    #: Acked packets that carried a CE mark (0 unless the flow uses ECN).
    packets_marked: int = 0


@dataclass
class PacketSimResult:
    """Results of a packet-level simulation run.

    Cross-traffic applications are excluded from ``flows`` but their
    packets still show up in the queue counters.
    """

    flows: list[FlowResult]
    duration_s: float
    capacity_mbps: float
    total_drops: int
    max_queue_occupancy_bytes: float
    #: Drops per named queue (one entry, "bottleneck", in the default topology).
    queue_drops: dict[str, int] = field(default_factory=dict)
    #: ECN CE marks per named queue.
    queue_marks: dict[str, int] = field(default_factory=dict)

    def flow(self, flow_id: int) -> FlowResult:
        """Result of the application with the given id."""
        for f in self.flows:
            if f.flow_id == flow_id:
                return f
        raise KeyError(f"no flow with id {flow_id}")

    def group_mean_throughput(self, treated: bool) -> float:
        """Mean application throughput (Mb/s) of one arm."""
        values = [f.throughput_mbps for f in self.flows if f.treated == treated]
        if not values:
            raise ValueError("no flows in the requested arm")
        return sum(values) / len(values)

    def group_mean_retransmit(self, treated: bool) -> float:
        """Mean retransmit fraction of one arm."""
        values = [f.retransmit_fraction for f in self.flows if f.treated == treated]
        if not values:
            raise ValueError("no flows in the requested arm")
        return sum(values) / len(values)

    def total_throughput_mbps(self) -> float:
        """Aggregate throughput of all applications."""
        return sum(f.throughput_mbps for f in self.flows)

    def total_marks(self) -> int:
        """Aggregate ECN CE marks across all queues."""
        return sum(self.queue_marks.values())


def simulate(
    flows: Sequence[FlowConfig],
    capacity_mbps: float = 100.0,
    base_rtt_ms: float = 20.0,
    buffer_bdp: float = 1.0,
    mss_bytes: int = 1500,
    duration_s: float = 10.0,
    warmup_s: float = 2.0,
    queue_discipline: str = "droptail",
    queue_params: Mapping[str, Any] | None = None,
    extra_queues: Sequence[QueueConfig] | None = None,
    cross_traffic: Sequence[FlowConfig] | None = None,
    seed: int | None = None,
) -> PacketSimResult:
    """Run a packet-level simulation of flows sharing a bottleneck.

    A thin wrapper over :class:`~repro.netsim.packet.network.Network`:
    builds the default single-bottleneck topology, adds any extra queues
    and cross traffic, attaches every flow (honouring per-flow ``rtt_ms``
    and ``path`` overrides) and runs it.

    Parameters
    ----------
    flows:
        Application configurations.
    capacity_mbps:
        Bottleneck capacity in megabits per second.  The default is scaled
        down from the paper's 10 Gb/s so simulations complete quickly; the
        sharing behaviour under study is rate-independent.
    base_rtt_ms:
        Two-way propagation delay in milliseconds; flows with their own
        ``rtt_ms`` override it.
    buffer_bdp:
        Bottleneck buffer in bandwidth-delay products (paper: 1 BDP).
    mss_bytes:
        Segment size.
    duration_s:
        Total simulated time.
    warmup_s:
        Time excluded from measurements while flows ramp up.
    queue_discipline:
        Bottleneck queue discipline: ``"droptail"`` (default), ``"red"``,
        ``"codel"`` or ``"fq_codel"``.
    queue_params:
        Extra parameters for the queue discipline (RED thresholds, CoDel
        target delay, ...).
    extra_queues:
        Additional named queues beyond the default bottleneck (e.g. the
        chain built by
        :func:`~repro.netsim.packet.network.parking_lot_queues`); paths
        may then route through them by name.
    cross_traffic:
        Unmeasured background applications: they compete in the queues
        like any flow but are excluded from the result's ``flows``.
    seed:
        Seed for the random-loss and RED RNGs; inert for the default
        loss-free drop-tail topology.
    """
    if not flows:
        raise ValueError("at least one flow is required")
    if duration_s <= warmup_s:
        raise ValueError("duration_s must exceed warmup_s")
    ids = [f.flow_id for f in flows] + [f.flow_id for f in (cross_traffic or ())]
    if len(set(ids)) != len(ids):
        raise ValueError("flow ids must be unique (including cross traffic)")

    network = Network(
        capacity_mbps=capacity_mbps,
        base_rtt_ms=base_rtt_ms,
        buffer_bdp=buffer_bdp,
        mss_bytes=mss_bytes,
        queue_discipline=queue_discipline,
        queue_params=dict(queue_params) if queue_params else None,
        seed=seed,
    )
    for queue_config in extra_queues or ():
        network.add_queue_config(queue_config)
    for config in flows:
        network.add_flow(config)
    for config in cross_traffic or ():
        network.add_cross_traffic(config)
    return network.run(duration_s=duration_s, warmup_s=warmup_s)
