"""Tests for the fluid bottleneck-sharing simulator."""

import pytest

from repro.core.estimands import sutva_holds
from repro.netsim.fluid import (
    Application,
    BottleneckLink,
    allocate_throughput,
    link_loss_rate,
    run_lab_experiment,
    run_lab_sweep,
)
from repro.netsim.fluid.competition import CompetitionModel
from repro.netsim.fluid.lab import run_isolated_sweep


class TestBottleneckLink:
    def test_defaults_match_paper_testbed(self):
        link = BottleneckLink()
        assert link.capacity_gbps == 10.0
        assert link.base_rtt_ms == 1.0
        assert link.mtu_bytes == 9000

    def test_capacity_mbps(self):
        assert BottleneckLink(capacity_gbps=10).capacity_mbps == 10000.0

    def test_bdp(self):
        link = BottleneckLink(capacity_gbps=10, base_rtt_ms=1)
        assert link.bdp_bytes == pytest.approx(10e9 / 8 * 1e-3)
        assert link.bdp_packets == pytest.approx(link.bdp_bytes / 9000)

    def test_buffer_and_queueing_delay(self):
        link = BottleneckLink(buffer_bdp=1.0)
        assert link.buffer_bytes == pytest.approx(link.bdp_bytes)
        assert link.max_queueing_delay_ms == pytest.approx(link.base_rtt_ms)

    def test_fair_share(self):
        assert BottleneckLink().fair_share_mbps(10) == pytest.approx(1000.0)

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            BottleneckLink(capacity_gbps=0)
        with pytest.raises(ValueError):
            BottleneckLink(base_rtt_ms=-1)
        with pytest.raises(ValueError):
            BottleneckLink().fair_share_mbps(0)


class TestApplication:
    def test_unknown_cc_raises(self):
        with pytest.raises(ValueError):
            Application(0, cc="vegas")

    def test_zero_connections_raise(self):
        with pytest.raises(ValueError):
            Application(0, connections=0)

    def test_arm_flipping(self):
        app = Application(0)
        assert app.as_treated().treated
        assert not app.as_treated().as_control().treated

    def test_loss_based_classification(self):
        assert Application(0, cc="reno").is_loss_based
        assert Application(0, cc="cubic").is_loss_based
        assert not Application(0, cc="bbr").is_loss_based


class TestCompetitionModel:
    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            CompetitionModel(paced_weight=0.0)
        with pytest.raises(ValueError):
            CompetitionModel(bbr_aggregate_share=1.0)
        with pytest.raises(ValueError):
            CompetitionModel(pacing_loss_floor=0.0)

    def test_connection_weights(self):
        model = CompetitionModel(paced_weight=0.5)
        assert model.connection_weight(Application(0, cc="reno")) == 1.0
        assert model.connection_weight(Application(0, cc="reno", paced=True)) == 0.5
        # Pacing does not change BBR's weight (BBR always paces anyway).
        assert model.connection_weight(Application(0, cc="bbr", paced=True)) == 1.0


class TestThroughputAllocation:
    def test_equal_flows_share_equally(self):
        apps = [Application(i, cc="reno") for i in range(10)]
        shares = allocate_throughput(BottleneckLink(), apps)
        for value in shares.values():
            assert value == pytest.approx(1000.0)

    def test_total_never_exceeds_capacity(self):
        apps = [Application(i, cc="reno", connections=1 + i % 3) for i in range(7)]
        shares = allocate_throughput(BottleneckLink(), apps)
        assert sum(shares.values()) == pytest.approx(10000.0)

    def test_two_connections_double_throughput(self):
        apps = [Application(0, connections=2)] + [
            Application(i, connections=1) for i in range(1, 10)
        ]
        shares = allocate_throughput(BottleneckLink(), apps)
        assert shares[0] == pytest.approx(2 * shares[1])

    def test_paced_gets_half_of_unpaced(self):
        apps = [Application(0, paced=True)] + [Application(i) for i in range(1, 10)]
        shares = allocate_throughput(BottleneckLink(), apps)
        assert shares[0] == pytest.approx(0.5 * shares[1])

    def test_all_paced_equals_all_unpaced(self):
        paced = [Application(i, paced=True) for i in range(10)]
        unpaced = [Application(i, paced=False) for i in range(10)]
        link = BottleneckLink()
        assert allocate_throughput(link, paced)[0] == pytest.approx(
            allocate_throughput(link, unpaced)[0]
        )

    def test_bbr_aggregate_share_independent_of_flow_count(self):
        link, model = BottleneckLink(), CompetitionModel(bbr_aggregate_share=0.4)
        one_bbr = [Application(0, cc="bbr")] + [Application(i, cc="cubic") for i in range(1, 10)]
        many_bbr = [Application(i, cc="bbr") for i in range(9)] + [Application(9, cc="cubic")]
        shares_one = allocate_throughput(link, one_bbr, model)
        shares_many = allocate_throughput(link, many_bbr, model)
        bbr_total_one = shares_one[0]
        bbr_total_many = sum(shares_many[i] for i in range(9))
        assert bbr_total_one == pytest.approx(4000.0)
        assert bbr_total_many == pytest.approx(4000.0)

    def test_all_bbr_shares_equally(self):
        apps = [Application(i, cc="bbr") for i in range(10)]
        shares = allocate_throughput(BottleneckLink(), apps)
        for value in shares.values():
            assert value == pytest.approx(1000.0)

    def test_duplicate_ids_raise(self):
        with pytest.raises(ValueError):
            allocate_throughput(BottleneckLink(), [Application(0), Application(0)])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            allocate_throughput(BottleneckLink(), [])


class TestLossRate:
    def test_more_connections_more_loss(self):
        link = BottleneckLink()
        one = [Application(i, connections=1) for i in range(10)]
        two = [Application(i, connections=2) for i in range(10)]
        assert link_loss_rate(link, two) > link_loss_rate(link, one)

    def test_all_paced_reduces_loss(self):
        link = BottleneckLink()
        unpaced = [Application(i) for i in range(10)]
        paced = [Application(i, paced=True) for i in range(10)]
        model = CompetitionModel(pacing_loss_floor=0.25)
        assert link_loss_rate(link, paced, model) == pytest.approx(
            0.25 * link_loss_rate(link, unpaced, model)
        )

    def test_loss_identical_for_all_apps_in_one_run(self):
        # The loss rate is a link property, not a per-application property.
        result = run_lab_experiment(
            [Application(0, connections=2).as_treated()]
            + [Application(i) for i in range(1, 10)]
        )
        values = set(round(v, 12) for v in result.retransmit_fraction.values())
        assert len(values) == 1

    def test_bbr_only_loss_is_small(self):
        apps = [Application(i, cc="bbr") for i in range(10)]
        assert link_loss_rate(BottleneckLink(), apps) <= 0.01

    def test_loss_bounded_by_one(self):
        tiny = BottleneckLink(capacity_gbps=0.001)
        apps = [Application(i, connections=4) for i in range(10)]
        assert link_loss_rate(tiny, apps) <= 1.0


class TestLabSweep:
    def test_sweep_covers_all_allocations(self):
        sweep = run_lab_sweep(
            10,
            lambda i: Application(i, connections=2),
            lambda i: Application(i, connections=1),
        )
        assert sorted(sweep.results) == list(range(11))
        assert sweep.allocations[0] == 0.0 and sweep.allocations[-1] == 1.0

    def test_connections_tte_is_zero_for_throughput(self):
        sweep = run_lab_sweep(
            10,
            lambda i: Application(i, connections=2),
            lambda i: Application(i, connections=1),
        )
        assert sweep.tte("throughput_mbps") == pytest.approx(0.0, abs=1e-6)

    def test_connections_ab_estimate_is_double_throughput(self):
        sweep = run_lab_sweep(
            10,
            lambda i: Application(i, connections=2),
            lambda i: Application(i, connections=1),
        )
        curve = sweep.curve("throughput_mbps")
        for p in (0.1, 0.5, 0.9):
            assert curve.mu_treatment(p) == pytest.approx(2 * curve.mu_control(p))

    def test_connections_retransmit_tte_positive(self):
        sweep = run_lab_sweep(
            10,
            lambda i: Application(i, connections=2),
            lambda i: Application(i, connections=1),
        )
        assert sweep.tte("retransmit_fraction") > 0.0

    def test_connections_spillover_negative_for_control_throughput(self):
        sweep = run_lab_sweep(
            10,
            lambda i: Application(i, connections=2),
            lambda i: Application(i, connections=1),
        )
        assert sweep.spillover("throughput_mbps", 0.9) < 0.0

    def test_sweep_violates_sutva(self):
        sweep = run_lab_sweep(
            10,
            lambda i: Application(i, connections=2),
            lambda i: Application(i, connections=1),
        )
        assert not sutva_holds(sweep.curve("throughput_mbps"), tolerance=0.01, relative=True)

    def test_ab_estimates_only_interior_allocations(self):
        sweep = run_lab_sweep(
            4, lambda i: Application(i, connections=2), lambda i: Application(i)
        )
        estimates = sweep.ab_estimates("throughput_mbps")
        assert set(estimates) == {0.25, 0.5, 0.75}

    def test_noise_is_reproducible(self):
        kwargs = dict(noise=0.02, seed=42)
        treatment = lambda i: Application(i, connections=2)  # noqa: E731
        control = lambda i: Application(i)  # noqa: E731
        a = run_lab_sweep(5, treatment, control, **kwargs)
        b = run_lab_sweep(5, treatment, control, **kwargs)
        assert a.curve("throughput_mbps").mu_treatment(0.4) == pytest.approx(
            b.curve("throughput_mbps").mu_treatment(0.4)
        )

    def test_invalid_n_units_raises(self):
        with pytest.raises(ValueError):
            run_lab_sweep(0, lambda i: Application(i), lambda i: Application(i))


class TestIsolatedSweep:
    def test_isolated_sweep_satisfies_sutva(self):
        sweep = run_isolated_sweep(
            5,
            lambda i: Application(i, connections=2),
            lambda i: Application(i, connections=1),
        )
        assert sutva_holds(sweep.curve("throughput_mbps"), tolerance=0.01, relative=True)

    def test_isolated_tte_equals_ab_estimate(self):
        sweep = run_isolated_sweep(
            5,
            lambda i: Application(i, connections=2),
            lambda i: Application(i, connections=1),
        )
        curve = sweep.curve("throughput_mbps")
        assert curve.tte() == pytest.approx(curve.ate(0.4), abs=1e-6)


class TestLabExperimentResult:
    def test_group_mean_requires_members(self):
        result = run_lab_experiment([Application(0).as_control()])
        with pytest.raises(ValueError):
            result.group_mean("throughput_mbps", treated=True)

    def test_unknown_metric_raises(self):
        result = run_lab_experiment([Application(0).as_control()])
        with pytest.raises(KeyError):
            result.group_values("nope", treated=False)
