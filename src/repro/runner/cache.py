"""Content-keyed on-disk result cache for scenario specs.

Each cached result lives in one pickle file named after its content key
(see :func:`repro.runner.spec.content_key`).  Writes go through a
temporary file and an atomic rename, so a cache directory shared by many
worker processes never exposes a half-written entry; unreadable entries
are treated as misses and overwritten.
"""

from __future__ import annotations

import os
import pickle
from pathlib import Path
from typing import Any

__all__ = ["ResultCache", "default_cache_dir"]

#: Environment variable overriding the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """The default on-disk cache location.

    ``$REPRO_CACHE_DIR`` if set, otherwise ``~/.cache/repro`` (or
    ``$XDG_CACHE_HOME/repro`` when XDG is configured).
    """
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro"


class ResultCache:
    """Pickle-per-key result store under one directory."""

    def __init__(self, directory: str | Path | None = None):
        self.directory = Path(directory) if directory is not None else default_cache_dir()
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def path_for(self, key: str) -> Path:
        """File backing one content key."""
        if not key or any(c in key for c in "/\\"):
            raise ValueError(f"invalid cache key {key!r}")
        return self.directory / f"{key}.pkl"

    def get(self, key: str) -> tuple[bool, Any]:
        """Return ``(hit, value)``; unreadable entries count as misses."""
        path = self.path_for(key)
        try:
            with path.open("rb") as fh:
                value = pickle.load(fh)
        except FileNotFoundError:
            self.misses += 1
            return False, None
        except (pickle.UnpicklingError, EOFError, AttributeError, OSError):
            self.misses += 1
            return False, None
        self.hits += 1
        return True, value

    def put(self, key: str, value: Any) -> None:
        """Store a result atomically under ``key``."""
        path = self.path_for(key)
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        with tmp.open("wb") as fh:
            pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.pkl"))

    def clear(self) -> int:
        """Delete every cached entry; returns the number removed."""
        removed = 0
        for path in self.directory.glob("*.pkl"):
            try:
                path.unlink()
                removed += 1
            except FileNotFoundError:
                pass
        return removed
