"""CLI tests for the `repro run` and `repro validate` subcommands."""

import json

import pytest

from repro.cli import build_parser, main

CAMPAIGN_DOC = {
    "campaign": "cli-smoke",
    "stages": [{"figure": "topo_rtt", "quick": True}],
}


@pytest.fixture
def campaign_file(tmp_path):
    path = tmp_path / "camp.json"
    path.write_text(json.dumps(CAMPAIGN_DOC), encoding="utf-8")
    return path


class TestRunParser:
    def test_run_takes_a_campaign_file(self):
        args = build_parser().parse_args(["run", "c.yaml", "--jobs", "4", "--cache"])
        assert args.figure == "run"
        assert args.campaign_file == "c.yaml"
        assert args.jobs == 4
        assert args.cache is True

    def test_run_requires_a_campaign_file(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])

    def test_validate_takes_a_rundir(self):
        args = build_parser().parse_args(["validate", "RUN", "--campaign", "c.yaml"])
        assert args.figure == "validate"
        assert args.rundir == "RUN"
        assert args.campaign == "c.yaml"


class TestRunCommand:
    def test_run_prints_summary_and_is_jobs_invariant(self, campaign_file, capsys):
        assert main(["run", str(campaign_file), "--jobs", "1"]) == 0
        serial = capsys.readouterr().out
        assert main(["run", str(campaign_file), "--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert serial == parallel
        assert serial.startswith("campaign cli-smoke")
        assert "stages: 1, arms: 1, unique: 1" in serial
        assert "topo_rtt (figure topo_rtt, deterministic)" in serial

    def test_cached_rerun_hits_every_arm(self, campaign_file, tmp_path, capsys):
        argv = ["run", str(campaign_file), "--cache", "--cache-dir", str(tmp_path / "c")]
        assert main(argv) == 0
        cold = capsys.readouterr()
        assert "cache: 0 hit(s), 1 miss(es)" in cold.err
        assert main(argv) == 0
        warm = capsys.readouterr()
        assert "cache: 1 hit(s), 0 miss(es)" in warm.err
        assert cold.out == warm.out

    def test_trace_writes_a_validatable_run_dir(self, campaign_file, tmp_path, capsys):
        rundir = tmp_path / "RUN"
        assert main(["run", str(campaign_file), "--trace", str(rundir)]) == 0
        err = capsys.readouterr().err
        assert f"trace written to {rundir}" in err
        assert (rundir / "manifest.json").is_file()
        assert (rundir / "results.json").is_file()
        assert (rundir / "trace.jsonl").is_file()

        argv = ["validate", str(rundir), "--campaign", str(campaign_file)]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert ": OK (1 stages, 1 arms, 1 unique)" in out

    def test_bad_campaign_file_is_a_usage_error(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"stages": [{"figure": "figZ"}]}), encoding="utf-8")
        with pytest.raises(SystemExit) as excinfo:
            main(["run", str(path)])
        assert excinfo.value.code == 2
        assert "unknown figure" in capsys.readouterr().err

    def test_missing_campaign_file_is_a_usage_error(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", str(tmp_path / "nope.yaml")])
        assert excinfo.value.code == 2
        assert "not found" in capsys.readouterr().err

    def test_profile_requires_trace(self, campaign_file, capsys):
        with pytest.raises(SystemExit):
            main(["run", str(campaign_file), "--profile"])
        assert "--profile requires --trace" in capsys.readouterr().err


class TestValidateCommand:
    def test_missing_rundir_exits_2(self, tmp_path, capsys):
        assert main(["validate", str(tmp_path / "nope")]) == 2
        assert "not a directory" in capsys.readouterr().err

    def test_mutilated_rundir_exits_1(self, campaign_file, tmp_path, capsys):
        rundir = tmp_path / "RUN"
        assert main(["run", str(campaign_file), "--trace", str(rundir)]) == 0
        capsys.readouterr()
        results = rundir / "results.json"
        data = json.loads(results.read_text(encoding="utf-8"))
        data["cells"] = {}
        results.write_text(json.dumps(data), encoding="utf-8")

        assert main(["validate", str(rundir)]) == 1
        out = capsys.readouterr().out
        assert "FAILED" in out
        assert "missing arm result" in out

    def test_wrong_campaign_exits_1(self, campaign_file, tmp_path, capsys):
        rundir = tmp_path / "RUN"
        assert main(["run", str(campaign_file), "--trace", str(rundir)]) == 0
        other = tmp_path / "other.json"
        other.write_text(
            json.dumps({"campaign": "other", "stages": [{"figure": "topo_aqm"}]}),
            encoding="utf-8",
        )
        assert main(["validate", str(rundir), "--campaign", str(other)]) == 1
        out = capsys.readouterr().out
        assert "campaign mismatch" in out


class TestListCommand:
    def test_list_mentions_campaigns(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "campaigns:" in out
        assert "repro run" in out
