"""Developer tooling for the reproduction: invariant linting and checks.

``repro.devtools`` hosts machinery that guards the repo's conventions
rather than producing results: the AST-based invariant linter
(:mod:`repro.devtools.lint`, exposed as ``repro lint``) enforces the
determinism, content-key and API-hygiene contracts that every simulation
result rests on.  See ``docs/invariants.md`` for the contracts and the
rule table.
"""
