"""One shard: an edge bottleneck packet simulation reduced to statistics.

``run_shard`` is the body of the ``fleet.shard_arm`` runner task.  It
builds the edge's flow population (treated units open
``treatment_connections`` connections — the paper's Figure 2a
intervention), runs the packet engine on the fast path
(``scheduler="auto"``, ``event_batching=True``), and reduces the result
to a :class:`~repro.netsim.fleet.aggregate.ShardStats` before returning
— the full ``PacketSimResult`` (O(units on this edge)) never leaves the
worker process.

Upstream congestion computed by the fluid passes arrives as plain
numbers: ``capacity_mbps`` is the *effective* (upstream-limited) drain
rate, ``loss_rate`` the early-loss stand-in for drops at the binding
upstream queue, and ``rtt_ms`` already includes core propagation and any
standing-queue delay.
"""

from __future__ import annotations

from repro.netsim.fleet.aggregate import (
    FCT_CELL,
    QUEUE_DEPTH_CELL,
    UNIT_METRICS,
    CellStats,
    ShardStats,
    cell_key,
)

__all__ = ["run_shard", "shard_simulation", "reduce_result"]


def shard_simulation(
    treated_mask: tuple[bool, ...],
    treatment_connections: int,
    control_connections: int,
    capacity_mbps: float,
    rtt_ms: float,
    loss_rate: float,
    buffer_bdp: float,
    duration_s: float,
    warmup_s: float,
    churn_per_s: float = 0.0,
    seed: int | None = None,
    probe_interval_s: float = 0.0,
):
    """Run one edge bottleneck's packet simulation and return the raw result.

    The full ``PacketSimResult`` this returns is what :func:`run_shard`
    immediately reduces; it is exposed separately so tests can compare
    the reduced statistics against exact values from the same run.
    ``probe_interval_s > 0`` samples the edge queue at that sim-time
    cadence (queues only — per-flow series on a fleet shard would break
    the O(cells) contract); probing never perturbs the simulation.
    """
    from repro.netsim.packet.network import PathConfig
    from repro.netsim.packet.simulation import FlowConfig, simulate
    from repro.obs.probe import ProbeConfig

    path = PathConfig(loss_rate=loss_rate) if loss_rate > 0.0 else None
    flows = [
        FlowConfig(
            flow_id=i,
            cc="reno",
            connections=treatment_connections if treated else control_connections,
            treated=bool(treated),
            path=path,
        )
        for i, treated in enumerate(treated_mask)
    ]

    traffic_sources = None
    if churn_per_s > 0.0:
        from repro.netsim.traffic import ParetoSizes, PoissonArrivals, TrafficSource

        traffic_sources = [
            TrafficSource(
                arrivals=PoissonArrivals(rate_per_s=churn_per_s),
                sizes=ParetoSizes(min_bytes=50_000.0),
                path=path,
                label="churn",
            )
        ]

    return simulate(
        flows,
        capacity_mbps=capacity_mbps,
        base_rtt_ms=rtt_ms,
        buffer_bdp=buffer_bdp,
        duration_s=duration_s,
        warmup_s=warmup_s,
        traffic_sources=traffic_sources,
        seed=seed,
        scheduler="auto",
        event_batching=True,
        probe=(
            ProbeConfig(interval_s=probe_interval_s, include_flows=False)
            if probe_interval_s > 0.0
            else None
        ),
    )


def run_shard(
    treated_mask: tuple[bool, ...],
    treatment_connections: int,
    control_connections: int,
    capacity_mbps: float,
    rtt_ms: float,
    loss_rate: float,
    buffer_bdp: float,
    duration_s: float,
    warmup_s: float,
    churn_per_s: float = 0.0,
    sketch_compression: int = 100,
    seed: int | None = None,
    probe_interval_s: float = 0.0,
) -> ShardStats:
    """Simulate one edge bottleneck and return its sufficient statistics."""
    result = shard_simulation(
        treated_mask,
        treatment_connections=treatment_connections,
        control_connections=control_connections,
        capacity_mbps=capacity_mbps,
        rtt_ms=rtt_ms,
        loss_rate=loss_rate,
        buffer_bdp=buffer_bdp,
        duration_s=duration_s,
        warmup_s=warmup_s,
        churn_per_s=churn_per_s,
        seed=seed,
        probe_interval_s=probe_interval_s,
    )
    return reduce_result(result, sketch_compression=sketch_compression)


def reduce_result(result, sketch_compression: int = 100) -> ShardStats:
    """Reduce a ``PacketSimResult`` to cells + counters.

    Kept separate from :func:`run_shard` so tests can feed hand-built
    simulation results through the same reduction.
    """
    stats = ShardStats(units=len(result.flows), shards=1)
    for arm_name, arm_flag in (("treated", True), ("control", False)):
        for metric in UNIT_METRICS:
            cell = CellStats.with_compression(sketch_compression)
            for flow in result.flows:
                if flow.treated == arm_flag:
                    cell.add(getattr(flow, metric))
            if cell.stats.count:
                stats.cells[cell_key(arm_name, metric)] = cell

    if result.traffic:
        fct_cell = CellStats.with_compression(sketch_compression)
        for source in result.traffic.values():
            stats.dynamic_flows_started += source.flows_started
            stats.dynamic_flows_completed += source.flows_completed
            for fct in source.completion_times_s:
                fct_cell.add(fct)
        if fct_cell.stats.count:
            stats.cells[FCT_CELL] = fct_cell

    stats.packets = sum(f.packets_sent for f in result.flows)
    stats.drops = result.total_drops

    # Engine counters and probe samples are optional: tests feed
    # hand-built result objects through this reduction.
    engine = getattr(result, "engine", None)
    if engine is not None:
        stats.events_processed = engine.events_processed
        stats.pool_reused = engine.pool_reused

    probe = getattr(result, "probe", None)
    if probe is not None:
        depth_cell = CellStats.with_compression(sketch_compression)
        for record in probe.records:
            if record.kind == "queue" and "occupancy_packets" in record.fields:
                depth_cell.add(float(record.fields["occupancy_packets"]))
        if depth_cell.stats.count:
            stats.cells[QUEUE_DEPTH_CELL] = depth_cell
    return stats
