"""Figure 6: hourly client throughput, baseline Saturday vs experiment Saturday.

Paper finding: during the baseline period the two links' throughput curves
lie on top of each other; during the experiment the mostly-capped link
stays uncongested longer and shows visibly higher throughput through the
peak hours.
"""

import numpy as np
from benchmarks._helpers import run_once

from repro.reporting import format_series


def test_fig6_hourly_throughput(benchmark, paired_outcome):
    series = run_once(benchmark, paired_outcome.figure6_series)

    for period in ("baseline", "experiment"):
        print(f"\n{period} Saturday, link 1: {format_series(series[period][1])}")
        print(f"{period} Saturday, link 2: {format_series(series[period][2])}")

    peak_hours = [h for h in range(18, 23)]

    def peak_gap(period):
        link1, link2 = series[period][1], series[period][2]
        common = [h for h in peak_hours if h in link1 and h in link2]
        return float(np.mean([link1[h] - link2[h] for h in common]))

    # Baseline: links indistinguishable at peak.  Experiment: link 1 clearly higher.
    assert abs(peak_gap("baseline")) < 0.1
    assert peak_gap("experiment") > 0.05

    # Peak-hour congestion is visible as a throughput drop on the uncapped link.
    experiment_link2 = series["experiment"][2]
    assert experiment_link2[20] < 0.75 * max(experiment_link2.values())
