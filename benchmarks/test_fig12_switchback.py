"""Figure 12: throughput time series of the emulated switchback experiment.

95 % of traffic is capped on the first, third and fifth days.  Because the
observed traffic alternates between the two regimes, the clear throughput
difference of the paired-link time series (Figure 6) is much harder to see
by eye — which is exactly why the statistical analysis matters.  The
switchback estimator still recovers the paired-link TTE.
"""

import numpy as np
from benchmarks._helpers import EXPERIMENT_DAYS, run_once

from repro.core.designs import SwitchbackDesign
from repro.experiments.alternate_designs import emulate_switchback

TREATMENT_DAYS = (0, 2, 4)


def _switchback_series(outcome):
    """Hourly observed throughput under the switchback emulation."""
    table = outcome.experiment_table
    series: dict[int, dict[int, float]] = {}
    for day in EXPERIMENT_DAYS:
        if day in TREATMENT_DAYS:
            subset = table.where(day=day, link=1, treated=1)
        else:
            subset = table.where(day=day, link=2, treated=0)
        series[day] = {int(h): v for h, v in subset.groupby_mean("hour", "throughput_mbps").items()}
    return series


def test_fig12_switchback_series(benchmark, paired_outcome):
    series = run_once(benchmark, _switchback_series, paired_outcome)

    peak_hours = range(19, 22)
    treated_peak = np.mean([series[d][h] for d in TREATMENT_DAYS for h in peak_hours])
    control_peak = np.mean(
        [series[d][h] for d in EXPERIMENT_DAYS if d not in TREATMENT_DAYS for h in peak_hours]
    )
    print(f"\ntreatment-day peak throughput: {treated_peak:.2f} Mb/s")
    print(f"control-day peak throughput:   {control_peak:.2f} Mb/s")
    assert treated_peak > control_peak

    estimates = emulate_switchback(
        paired_outcome.experiment_table,
        EXPERIMENT_DAYS,
        design=SwitchbackDesign(treatment_days=TREATMENT_DAYS),
        metrics=("throughput_mbps", "min_rtt_ms"),
        baselines=paired_outcome.baselines,
    )
    print(f"switchback throughput TTE: {estimates['throughput_mbps'].relative_percent:+.1f}%")
    print(f"switchback min-RTT TTE:    {estimates['min_rtt_ms'].relative_percent:+.1f}%")

    paired_throughput = paired_outcome.estimates["tte"]["throughput_mbps"].relative.estimate
    paired_rtt = paired_outcome.estimates["tte"]["min_rtt_ms"].relative.estimate
    assert estimates["throughput_mbps"].relative.covers(paired_throughput)
    assert estimates["min_rtt_ms"].relative.covers(paired_rtt)
