"""Tests for the parallel executor."""

import os

import pytest

from repro.runner import ParallelExecutor, ResultCache, ScenarioSpec, register_task, run_specs

_EXECUTIONS = []


@register_task("test.record")
def _record(value, seed=None):
    _EXECUTIONS.append(value)
    return value


@register_task("test.fail")
def _fail(seed=None):
    raise RuntimeError("task exploded")


def _echo_specs(n):
    return [
        ScenarioSpec(task="debug.echo", params={"index": i}, seed=i) for i in range(n)
    ]


class TestParallelExecutor:
    def test_serial_map_preserves_order(self):
        results = ParallelExecutor(jobs=1).map(_echo_specs(5))
        assert [r["index"] for r in results] == list(range(5))
        assert [r["seed"] for r in results] == list(range(5))

    def test_parallel_map_preserves_order(self):
        results = ParallelExecutor(jobs=2).map(_echo_specs(6))
        assert [r["index"] for r in results] == list(range(6))

    def test_parallel_equals_serial(self):
        specs = _echo_specs(4)
        assert ParallelExecutor(jobs=1).map(specs) == ParallelExecutor(jobs=4).map(specs)

    def test_jobs_below_one_means_cpu_count(self):
        assert ParallelExecutor(jobs=0).jobs == (os.cpu_count() or 1)
        assert ParallelExecutor(jobs=None).jobs == (os.cpu_count() or 1)

    def test_run_single_spec(self):
        result = ParallelExecutor(jobs=1).run(
            ScenarioSpec(task="debug.echo", params={"x": 9})
        )
        assert result["x"] == 9

    def test_empty_map(self):
        assert ParallelExecutor(jobs=2).map([]) == []

    def test_task_error_propagates(self):
        with pytest.raises(RuntimeError, match="task exploded"):
            ParallelExecutor(jobs=1).map([ScenarioSpec(task="test.fail")])

    def test_run_specs_convenience(self):
        assert run_specs(_echo_specs(2))[1]["index"] == 1


class TestExecutorCaching:
    def test_cache_skips_execution_on_second_run(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = ScenarioSpec(task="test.record", params={"value": 42})
        _EXECUTIONS.clear()

        first = ParallelExecutor(jobs=1, cache=cache).map([spec])
        assert first == [42]
        assert _EXECUTIONS == [42]

        second = ParallelExecutor(jobs=1, cache=cache).map([spec])
        assert second == [42]
        assert _EXECUTIONS == [42]  # not executed again
        assert cache.hits == 1

    def test_cache_distinguishes_parameters(self, tmp_path):
        cache = ResultCache(tmp_path)
        executor = ParallelExecutor(jobs=1, cache=cache)
        _EXECUTIONS.clear()
        executor.map([ScenarioSpec(task="test.record", params={"value": 1})])
        executor.map([ScenarioSpec(task="test.record", params={"value": 2})])
        assert _EXECUTIONS == [1, 2]

    def test_mixed_hits_and_misses_keep_order(self, tmp_path):
        cache = ResultCache(tmp_path)
        specs = _echo_specs(4)
        ParallelExecutor(jobs=1, cache=cache).map(specs[:2])
        results = ParallelExecutor(jobs=1, cache=cache).map(specs)
        assert [r["index"] for r in results] == list(range(4))
