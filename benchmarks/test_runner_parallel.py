"""Wall-time of packet-level sweeps: serial vs the parallel runner.

The packet sweep is the repository's slowest path; its arms are
independent, so the parallel runner should cut wall-time roughly by the
number of workers (bounded by the slowest arm).  Recording both timings
here keeps the speedup visible in the perf trajectory, and the equality
assertion guards the runner's bit-identical contract on a workload-sized
sweep.

On a single-core machine the parallel timing degenerates to serial plus
a few percent of pool overhead — the comparison is informative, not
asserted, so the benchmark stays green everywhere.
"""

from _helpers import run_once

from repro.netsim.packet.simulation import FlowConfig
from repro.netsim.packet.sweep import run_packet_sweep

#: Sweep sized so each arm is heavy enough to dwarf pool start-up.
SWEEP_KWARGS = dict(
    allocations=(0, 1, 2, 3, 4),
    capacity_mbps=60.0,
    duration_s=15.0,
    warmup_s=5.0,
)

_RESULTS = {}


def _sweep(jobs):
    return run_packet_sweep(
        4,
        treatment_factory=lambda i: FlowConfig(i, cc="reno", connections=2),
        control_factory=lambda i: FlowConfig(i, cc="reno", connections=1),
        jobs=jobs,
        **SWEEP_KWARGS,
    )


def test_packet_sweep_serial(benchmark):
    sweep = run_once(benchmark, _sweep, jobs=1)
    assert sorted(sweep.results) == [0, 1, 2, 3, 4]
    _RESULTS["serial"] = sweep


def test_packet_sweep_parallel_jobs4(benchmark):
    sweep = run_once(benchmark, _sweep, jobs=4)
    assert sorted(sweep.results) == [0, 1, 2, 3, 4]
    serial = _RESULTS.get("serial")
    if serial is not None:
        for k in serial.results:
            assert serial.results[k] == sweep.results[k]
