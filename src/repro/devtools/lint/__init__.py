"""AST-based invariant linter (``repro lint``).

Machine-checks the conventions every result in this reproduction rests
on: all randomness seeded and spec-derived (DET001), no wall clocks in
simulation code (DET002), no unordered set iteration feeding results
(DET003), frozen content-keyable specs (KEY001), inert-at-default task
knobs (KEY002), and no cross-module private reads (API001).

Library entry point::

    from repro.devtools.lint import lint_paths
    diagnostics = lint_paths(["src"])

CLI::

    repro lint [PATHS] [--select CODES] [--list-rules]

Suppress a finding inline with a justification::

    treated = set(units)  # repro-lint: disable=DET003 -- membership only

See ``docs/invariants.md`` for the full rule table and rationale.
"""

from repro.devtools.lint.base import RULES, Diagnostic, Rule, register_rule, rule_table
from repro.devtools.lint.config import DEFAULT_CONFIG, LintConfig
from repro.devtools.lint.engine import lint_paths, main

__all__ = [
    "Diagnostic",
    "Rule",
    "RULES",
    "register_rule",
    "rule_table",
    "LintConfig",
    "DEFAULT_CONFIG",
    "lint_paths",
    "main",
]
