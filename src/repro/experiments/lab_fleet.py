"""Fleet experiment: A/B bias vs cluster size at production scale.

The paper's small labs show *why* A/B tests lie in congested networks
(within-bottleneck interference); the fleet engine asks the follow-up
question production teams actually face: **at what assignment
granularity does the lie disappear?**  :func:`run_fleet_experiment` runs
the same connection-count treatment (the paper's Figure 2a intervention)
over a sharded packet/fluid fleet at three cluster sizes:

* **unit** — randomize individual units; treated and control units share
  every edge bottleneck.  Maximum interference, the paper's headline
  bias.
* **edge** — randomize whole edges (cluster size ``units/edges``);
  arms only interact through the fluid-modelled region aggregation
  links, where treated edges' extra connections win a larger water-fill
  share.
* **region** — randomize whole regions (cluster size ``units/regions``);
  arms only interact across the backbone, which at the default
  oversubscription is not a binding constraint.

The ground truth comes from all-treated / all-control counterfactual
fleets (computed once — the assignment is degenerate at allocation 0/1,
so the counterfactuals are granularity-independent), and the expected
picture is the paper's, now with a knob: bias shrinks monotonically as
clusters grow past the interference domain, and the true total treatment
effect of "open more connections" is approximately zero when everyone
does it.

Every shard fans out through the parallel runner, so results are
bit-identical for any ``jobs`` value and honest about their cost: each
:class:`FleetOutcome` reports how many distinct simulations its fleet
actually needed after content-key dedupe.
"""

from __future__ import annotations

from repro.experiments.lab_common import figure_cells_spec
from repro.runner.spec import ScenarioSpec

from collections.abc import Sequence
from dataclasses import dataclass, field, replace

from repro.netsim.fleet import GRANULARITIES, FleetResult, FleetSpec, run_fleet

__all__ = [
    "DEFAULT_FLEET",
    "QUICK_FLEET",
    "FleetOutcome",
    "FleetBiasComparison",
    "run_fleet_experiment",
    "fleet_spec",
]

#: Full-scale fleet defaults: 20k units on 200 edge bottlenecks.
DEFAULT_FLEET = FleetSpec(units=20_000, edges=200, regions=4, duration_s=4.0, warmup_s=1.0)

#: ``--quick`` fleet: still a five-figure unit count across 100 edges
#: (the scale contract CI smoke-tests), but shorter simulations.
QUICK_FLEET = FleetSpec(units=10_000, edges=100, regions=4, duration_s=2.0, warmup_s=0.5)


@dataclass
class FleetOutcome:
    """One granularity's experiment fleet, reduced to its estimates."""

    granularity: str
    cluster_size: float
    result: FleetResult

    def ab_estimate(self, metric: str = "throughput_mbps") -> float:
        """Naive A/B estimate at this granularity (treated − control mean)."""
        return self.result.ab_estimate(metric)


@dataclass
class FleetBiasComparison:
    """The fleet experiment at several assignment granularities.

    ``outcomes[granularity]`` holds each experiment fleet;
    ``truth_tte`` is the all-treated-minus-all-control counterfactual
    difference every A/B estimate is judged against.
    """

    outcomes: dict[str, FleetOutcome]
    truth_tte: float
    spec: FleetSpec
    unique_sims: int
    #: Engine counters summed across every fleet this comparison ran
    #: (the two counterfactuals plus one fleet per granularity); the CLI
    #: surfaces them under ``--trace`` and in ``repro report``.
    counters: dict[str, int] = field(default_factory=dict)

    def granularities(self) -> tuple[str, ...]:
        """Assignment granularities in run order."""
        return tuple(self.outcomes)

    def bias(self, granularity: str, metric: str = "throughput_mbps") -> float:
        """Naive A/B estimate minus the true TTE at one granularity."""
        return self.outcomes[granularity].ab_estimate(metric) - self.truth_tte

    def summary_lines(self) -> list[str]:
        """Human-readable summary: the bias-vs-cluster-size table."""
        spec = self.spec
        lines = [
            f"fleet: {spec.units} units on {spec.edges} edge bottlenecks in "
            f"{spec.regions} regions ({spec.treatment_connections} vs "
            f"{spec.control_connections} connections, {spec.allocation:.0%} allocation)",
            f"  ground-truth TTE (all-treated vs all-control): "
            f"{self.truth_tte:+.3f} Mb/s per unit",
            "  granularity   cluster   A/B estimate      bias",
        ]
        for granularity, outcome in self.outcomes.items():
            lines.append(
                f"  {granularity:<11} {outcome.cluster_size:>7g}   "
                f"{outcome.ab_estimate():+11.3f}   {self.bias(granularity):+9.3f}"
            )
        lines.append(
            f"  {self.unique_sims} distinct shard simulations for "
            f"{len(self.outcomes) + 2} fleets of {spec.edges} edges each "
            "(content-key dedupe)"
        )
        lines.append(
            "  interference lives inside the cluster: unit-level assignment "
            "inflates the estimate, edge-level leaves only cross-edge "
            "water-fill coupling, region-level only the (uncongested) backbone"
        )
        return lines


def run_fleet_experiment(
    units: int | None = None,
    edges: int | None = None,
    granularities: Sequence[str] = GRANULARITIES,
    quick: bool = False,
    jobs: int = 1,
    cache=None,
    executor=None,
    probe_interval_s: float = 0.0,
    seed: int = 0,
) -> FleetBiasComparison:
    """Measure the A/B bias of a fleet experiment at several granularities.

    Runs one 50 %-allocation fleet per granularity plus the two
    counterfactual fleets (all treated / all control) that define the
    ground-truth TTE, and reduces everything to the bias-vs-cluster-size
    comparison.

    Parameters
    ----------
    units, edges:
        Fleet size overrides; defaults come from :data:`DEFAULT_FLEET`
        (or :data:`QUICK_FLEET` with ``quick``).
    granularities:
        Assignment granularities to compare (subset of
        :data:`~repro.netsim.fleet.GRANULARITIES`).
    quick:
        Use the smaller quick-scale fleet for smoke tests.
    jobs, cache:
        Worker processes and optional result cache; every fleet's shards
        fan out through the same executor settings.
    executor:
        Optional pre-built :class:`~repro.runner.executor.ParallelExecutor`
        (overrides ``jobs``/``cache``); the CLI passes a traced one so
        shard spans and live progress flow out of every fleet.
    probe_interval_s:
        Sim-time cadence of in-shard queue-depth probing; 0 (default)
        disables it.  Probing never changes the estimates.
    seed:
        Master seed: derives the treatment assignment and every
        seed-consuming shard's stream.
    """
    if not granularities:
        raise ValueError("at least one granularity is required")
    unknown = [g for g in granularities if g not in GRANULARITIES]
    if unknown:
        raise ValueError(f"unknown granularities {unknown}; choose from {GRANULARITIES}")
    if len(set(granularities)) != len(granularities):
        raise ValueError("granularities must be distinct")

    base = QUICK_FLEET if quick else DEFAULT_FLEET
    overrides: dict[str, int] = {}
    if units is not None:
        overrides["units"] = units
    if edges is not None:
        overrides["edges"] = edges
    base = replace(base, seed=seed, **overrides)
    if probe_interval_s > 0.0:
        # Keep the knob off the spec when unset: it must stay inert in
        # shard content keys so probe-free fleets keep their cache.
        base = replace(base, probe_interval_s=probe_interval_s)

    counters: dict[str, int] = {}

    def fold_counters(result: FleetResult) -> None:
        for name, value in result.engine_counters().items():
            counters[name] = counters.get(name, 0) + value

    # The counterfactual fleets: at allocation 0/1 the assignment is
    # degenerate (every cluster lands in the same arm no matter how
    # clusters are drawn), so the truth is granularity-independent and
    # computed once.
    treated_fleet = run_fleet(
        replace(base, allocation=1.0), jobs=jobs, cache=cache, executor=executor
    )
    control_fleet = run_fleet(
        replace(base, allocation=0.0), jobs=jobs, cache=cache, executor=executor
    )
    truth_tte = treated_fleet.mean("treated", "throughput_mbps") - control_fleet.mean(
        "control", "throughput_mbps"
    )
    fold_counters(treated_fleet)
    fold_counters(control_fleet)

    outcomes: dict[str, FleetOutcome] = {}
    unique = treated_fleet.unique_sims + control_fleet.unique_sims
    for granularity in granularities:
        spec = replace(base, granularity=granularity)
        result = run_fleet(spec, jobs=jobs, cache=cache, executor=executor)
        outcomes[granularity] = FleetOutcome(
            granularity=granularity,
            cluster_size=spec.cluster_size(),
            result=result,
        )
        unique += result.unique_sims
        fold_counters(result)

    return FleetBiasComparison(
        outcomes=outcomes,
        truth_tte=truth_tte,
        spec=base,
        unique_sims=unique,
        counters=counters,
    )


def fleet_spec(
    quick: bool = False, seed: int | None = 0, label: str | None = None
) -> ScenarioSpec:
    """Runner spec for one fleet replication (seeded assignment + loss).

    The campaign compiler's entry point: returns the content-keyed
    ``figure.cells`` spec whose execution reproduces
    :func:`run_fleet_experiment`'s scalar cells at one seed.
    """
    return figure_cells_spec("fleet", quick=quick, seed=seed, label=label)
