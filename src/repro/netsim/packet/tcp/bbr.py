"""Simplified BBRv1 congestion control.

BBR estimates the bottleneck bandwidth (windowed maximum of per-packet
delivery-rate samples) and the minimum round-trip time, paces at
``pacing_gain * bottleneck_bw`` and caps inflight at
``cwnd_gain * BDP``.  It is loss-agnostic: packet drops do not reduce the
sending rate (they are retransmitted, which is what makes BBRv1 unfair to
loss-based flows in shallow buffers).

Phases implemented:

* **Startup** — gains of 2/ln(2) (~2.89) until the bandwidth estimate stops
  growing for three consecutive round trips.
* **Drain** — one round trip at the inverse gain to empty the queue built
  during startup.
* **ProbeBW** — the standard eight-phase gain cycle
  ``[1.25, 0.75, 1, 1, 1, 1, 1, 1]``, advancing once per min-RTT.

ProbeRTT is omitted: the lab experiments run long-lived flows on a link
whose propagation delay never changes, so min-RTT expiry is irrelevant to
the sharing behaviour under study.
"""

from __future__ import annotations

from collections import deque

from repro.netsim.packet.packets import Packet
from repro.netsim.packet.tcp.base import TcpSender

__all__ = ["BBRSender"]


class BBRSender(TcpSender):
    """Rate-based, loss-agnostic sender modelled on BBRv1."""

    STARTUP_GAIN = 2.885
    DRAIN_GAIN = 1.0 / 2.885
    PROBE_GAINS = (1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0)
    CWND_GAIN = 2.0
    #: Number of delivery-rate samples kept for the windowed-max filter.
    BW_FILTER_LEN = 10

    def __init__(self, *args, **kwargs):
        # BBR always paces, regardless of the fq setting of the host.
        kwargs["paced"] = True
        super().__init__(*args, **kwargs)
        self._phase = "startup"
        self._pacing_gain = self.STARTUP_GAIN
        self._cwnd_gain = self.STARTUP_GAIN
        self._bw_samples: deque[float] = deque(maxlen=self.BW_FILTER_LEN)
        self._bw_samples.append(self.mss_bytes * 8.0 / self.base_rtt_s * self.cwnd)
        self._full_bw = 0.0
        self._full_bw_rounds = 0
        self._cycle_index = 0
        self._cycle_start = 0.0
        self._round_start_time = 0.0
        self._delivered_bytes_total = 0
        self._delivered_at_send: dict[int, tuple[int, float]] = {}

    # -- estimators ------------------------------------------------------------

    @property
    def bottleneck_bw_bps(self) -> float:
        """Current windowed-max bottleneck bandwidth estimate, bits/s."""
        return max(self._bw_samples) if self._bw_samples else 0.0

    @property
    def estimated_bdp_packets(self) -> float:
        """Estimated bandwidth-delay product in packets."""
        rtt = self.min_rtt if self.min_rtt != float("inf") else self.base_rtt_s
        return self.bottleneck_bw_bps * rtt / (self.mss_bytes * 8.0)

    # -- TcpSender overrides ------------------------------------------------------

    def current_pacing_rate_bps(self) -> float:
        """Pacing rate: the phase gain times the bottleneck estimate."""
        return max(self._pacing_gain * self.bottleneck_bw_bps, 1e3)

    def window_limit(self) -> int:
        """Inflight cap: the cwnd gain times the estimated BDP."""
        return max(int(self._cwnd_gain * self.estimated_bdp_packets), 4)

    def _send_one(self) -> Packet:  # record delivery state at send time
        self._delivered_at_send[self.next_sequence] = (
            self._delivered_bytes_total,
            self.scheduler.now,
        )
        return super()._send_one()

    def on_ack(self, packet: Packet, rtt_sample: float) -> None:
        """Fold one delivery-rate sample into the bandwidth filter."""
        self._delivered_bytes_total += packet.size_bytes
        sample = self._delivered_at_send.pop(packet.sequence, None)
        if sample is not None:
            delivered_then, sent_time = sample
            elapsed = self.scheduler.now - sent_time
            if elapsed > 0:
                rate = (self._delivered_bytes_total - delivered_then) * 8.0 / elapsed
                self._bw_samples.append(rate)
        self._update_phase()

    def on_ack_batch(self, packet: Packet, rtt_sample: float, segments: int) -> None:
        """One delivery-rate sample per macro-packet, not per segment.

        BBR's model is byte-based: :meth:`on_ack` already credits the
        macro-packet's full ``size_bytes`` to the delivery total and
        takes exactly one rate sample from the burst — replaying it per
        segment (the base-class default) would multiply the delivered
        byte count.  So a batched ack is simply a single :meth:`on_ack`.
        """
        self.on_ack(packet, rtt_sample)

    def on_loss(self, packet: Packet) -> None:
        """Drop the stale delivery sample; BBRv1 does not react to loss.

        The packet is retransmitted by the base-class bookkeeping but
        the rate model is unchanged.
        """
        self._delivered_at_send.pop(packet.sequence, None)

    def on_ecn_mark(self, packet: Packet) -> None:
        """Ignore the mark: BBRv1 is ECN-agnostic in both response modes.

        This override bypasses the base class's mode dispatch entirely.
        The marked packet was delivered, so its delivery sample must
        stay for :meth:`on_ack`.
        """

    # -- phase machine -------------------------------------------------------------

    def _update_phase(self) -> None:
        now = self.scheduler.now
        rtt = self.min_rtt if self.min_rtt != float("inf") else self.base_rtt_s

        if now - self._round_start_time >= rtt:
            self._round_start_time = now
            self._on_round_end()

        if self._phase == "probe_bw" and now - self._cycle_start >= rtt:
            self._cycle_start = now
            self._cycle_index = (self._cycle_index + 1) % len(self.PROBE_GAINS)
            self._pacing_gain = self.PROBE_GAINS[self._cycle_index]
            self._cwnd_gain = self.CWND_GAIN

    def _on_round_end(self) -> None:
        if self._phase == "startup":
            bw = self.bottleneck_bw_bps
            if bw > self._full_bw * 1.25:
                self._full_bw = bw
                self._full_bw_rounds = 0
            else:
                self._full_bw_rounds += 1
            if self._full_bw_rounds >= 3:
                self._phase = "drain"
                self._pacing_gain = self.DRAIN_GAIN
                self._cwnd_gain = self.CWND_GAIN
        elif self._phase == "drain":
            if self.inflight <= self.estimated_bdp_packets:
                self._enter_probe_bw()

    def _enter_probe_bw(self) -> None:
        self._phase = "probe_bw"
        self._cycle_index = 0
        self._cycle_start = self.scheduler.now
        self._pacing_gain = self.PROBE_GAINS[0]
        self._cwnd_gain = self.CWND_GAIN
