"""Figure 2b — lab experiment with TCP pacing.

Ten single-connection Reno applications share a 10 Gb/s bottleneck.
Treated applications pace their packets (Linux ``fq``-style); control
applications send ack-clocked bursts.  The paper's findings reproduced
here:

* In every A/B test the paced group obtains roughly 50 % lower throughput
  than the unpaced group and a similar retransmission rate — a naive
  experimenter would abandon pacing.
* The total treatment effect is zero for throughput and a large *decrease*
  in retransmissions.
* Spillover is positive: pacing improves the unpaced traffic it shares the
  link with.
"""

from __future__ import annotations

from repro.experiments.lab_common import figure_cells_spec, LabFigure, sweep_to_figure
from repro.runner.spec import ScenarioSpec
from repro.netsim.fluid.application import Application
from repro.netsim.fluid.competition import CompetitionModel
from repro.netsim.fluid.lab import run_lab_sweep
from repro.netsim.fluid.link import BottleneckLink

__all__ = ["run_pacing_experiment", "pacing_spec"]


def run_pacing_experiment(
    n_units: int = 10,
    link: BottleneckLink | None = None,
    model: CompetitionModel | None = None,
    noise: float = 0.0,
    seed: int | None = 0,
    jobs: int = 1,
    cache=None,
) -> LabFigure:
    """Run the pacing lab sweep and return the figure data."""
    sweep = run_lab_sweep(
        n_units,
        treatment_factory=lambda i: Application(i, cc="reno", paced=True),
        control_factory=lambda i: Application(i, cc="reno", paced=False),
        link=link,
        model=model,
        noise=noise,
        seed=seed,
        jobs=jobs,
        cache=cache,
    )
    return sweep_to_figure(
        sweep,
        name="fig2b_pacing",
        description=(
            f"{n_units} TCP Reno connections, paced (treatment) vs unpaced (control), "
            "sharing a bottleneck"
        ),
    )


def pacing_spec(
    noise: float = 0.0, seed: int | None = 0, label: str | None = None
) -> ScenarioSpec:
    """Runner spec for one Figure 2b (pacing) replication.

    The campaign compiler's entry point: returns the content-keyed
    ``figure.cells`` spec whose execution reproduces
    :func:`run_pacing_experiment`'s scalar cells at one seed.
    """
    return figure_cells_spec("fig2b", noise=noise, seed=seed, label=label)
