"""Sharded packet/fluid hybrid simulation of a fleet of edge networks.

The scale layer over the packet engine: ``units`` senders spread across
``edges`` independent packet-simulated bottlenecks, with the region
aggregation links and backbone above them approximated by the vectorized
fluid model.  Every shard returns only sufficient statistics (exact
moments + mergeable quantile sketches), so fleet memory is O(cells),
never O(units).

* :mod:`repro.netsim.fleet.spec` — :class:`FleetSpec` geometry,
  treatment assignment at unit / edge / region granularity.
* :mod:`repro.netsim.fleet.hybrid` — the fluid coupling passes
  (effective capacities, upstream loss, path delay).
* :mod:`repro.netsim.fleet.shard` — one edge's packet simulation,
  reduced to :class:`ShardStats` inside the worker.
* :mod:`repro.netsim.fleet.aggregate` — the mergeable statistics.
* :mod:`repro.netsim.fleet.engine` — ``run_fleet``: content-key dedupe,
  parallel fan-out, deterministic pairwise merge.
"""

from repro.netsim.fleet.aggregate import (
    ARMS,
    FCT_CELL,
    UNIT_METRICS,
    CellStats,
    ShardStats,
    cell_key,
)
from repro.netsim.fleet.engine import FleetResult, run_fleet, shard_specs
from repro.netsim.fleet.hybrid import FleetCoupling, couple_fleet
from repro.netsim.fleet.shard import reduce_result, run_shard, shard_simulation
from repro.netsim.fleet.spec import GRANULARITIES, FleetSpec, fleet_assignment

__all__ = [
    "ARMS",
    "FCT_CELL",
    "GRANULARITIES",
    "UNIT_METRICS",
    "CellStats",
    "FleetCoupling",
    "FleetResult",
    "FleetSpec",
    "ShardStats",
    "cell_key",
    "couple_fleet",
    "fleet_assignment",
    "reduce_result",
    "run_fleet",
    "run_shard",
    "shard_simulation",
    "shard_specs",
]
