"""Tests for the command-line interface."""

import pytest

from repro.cli import LAB_FIGURES, PAIRED_FIGURES, build_parser, main


class TestParser:
    def test_known_figures_accepted(self):
        parser = build_parser()
        for name in list(LAB_FIGURES) + list(PAIRED_FIGURES):
            args = parser.parse_args([name])
            assert args.figure == name

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_quick_and_seed_flags(self):
        args = build_parser().parse_args(["fig5", "--quick", "--seed", "3"])
        assert args.quick is True
        assert args.seed == 3


class TestCommands:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig2a" in out
        assert "fig5" in out

    def test_lab_figure_command(self, capsys):
        assert main(["fig2a"]) == 0
        out = capsys.readouterr().out
        assert "TTE throughput" in out

    def test_paired_figure_command_quick(self, capsys):
        assert main(["fig9", "--quick", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "off-peak" in out
        assert "overall TTE" in out
