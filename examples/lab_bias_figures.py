"""Reproduce the three lab-bias figures (Figures 2a, 2b and 3).

For each lab experiment — parallel connections, pacing, Cubic vs BBR —
prints the per-allocation treatment/control means and the derived
estimands, and says what a naive experimenter would have (wrongly)
concluded.

Run with:  python examples/lab_bias_figures.py
"""

from repro.experiments import (
    run_cc_experiment,
    run_connections_experiment,
    run_pacing_experiment,
)
from repro.reporting import format_percent


def describe(figure, allocation=0.1) -> None:
    print("=" * 78)
    for line in figure.summary_lines():
        print(line)
    throughput = figure.throughput_curve
    control = throughput.mu_control(0.0)
    ab = throughput.ate(allocation) / control
    tte = throughput.tte() / control
    print(
        f"Naive A/B throughput estimate at p={allocation:g}: {format_percent(ab)}; "
        f"TTE: {format_percent(tte)}; bias: {format_percent(ab - tte)}"
    )
    print()


def main() -> None:
    print("Figure 2a: multiple parallel connections")
    describe(run_connections_experiment())

    print("Figure 2b: pacing")
    figure = run_pacing_experiment()
    describe(figure)
    retransmit = figure.retransmit_curve
    print(
        "Pacing retransmission TTE: "
        + format_percent(retransmit.tte() / retransmit.mu_control(0.0))
        + " (invisible to every A/B test)"
    )
    print()

    print("Figure 3: Cubic vs BBR")
    bbr = run_cc_experiment(treatment_cc="bbr", control_cc="cubic")
    cubic = run_cc_experiment(treatment_cc="cubic", control_cc="bbr")
    describe(bbr)
    print(
        "Deploying BBR at 10%: "
        + format_percent(
            bbr.throughput_curve.ate(0.1) / bbr.throughput_curve.mu_control(0.1)
        )
        + " throughput vs Cubic"
    )
    print(
        "Deploying Cubic at 10% (into a BBR world): "
        + format_percent(
            cubic.throughput_curve.ate(0.1) / cubic.throughput_curve.mu_control(0.1)
        )
        + " throughput vs BBR"
    )
    print("Both look like huge wins; both TTEs are zero.")


if __name__ == "__main__":
    main()
