"""L4S experiments: does signal-based sharing collapse the A/B bias?

The repo has confirmed the paper's scheduling-based prediction: per-unit
FQ-CoDel eliminates the connection-count A/B bias (PR 3).  L4S poses the
complementary falsifiable question for *signal-based* sharing: a
dual-queue coupled AQM (:class:`~repro.netsim.packet.queue.DualPI2Queue`,
RFC 9332) marks L4S traffic at a shallow sojourn threshold and the
DCTCP/Prague sender responds with a cut proportional to the marked
fraction (``FlowConfig(ecn="l4s")``) — fine-grained signalling and a
smooth response instead of per-flow scheduling.  Does that collapse the
bias the way FQ did?

:func:`run_l4s_experiment` answers it by running the paper's Figure 2a
treatment (opening a second TCP connection) under four arms:

* ``droptail`` — the paper's baseline: loss-based Reno on a drop-tail
  bottleneck;
* ``codel-classic`` — classic RFC 3168 ECN on CoDel: marks instead of
  drops, one window-halving per RTT;
* ``dualpi2-l4s`` — the full L4S stack: DualPI2 bottleneck, paced
  senders (Prague mandates pacing), DCTCP fraction-based response;
* ``fq_codel`` — the scheduling-based reference that eliminates the
  bias.

The measured answer: **no** — shallow marking with a proportional
response trims the bias slightly below the classic-ECN arm's (the smooth
response tracks the fair share without the sawtooth overshoot that
favours multi-connection units), but per-connection fairness is baked
into any signal-based mechanism: every connection sees the same marks,
so a unit opening a second connection still buys close to a second
share.  Only scheduling that pins *units* to queues (FQ) removes the
incentive.  A coexistence arm (classic and L4S units mixed on one
DualPI2 bottleneck) additionally reports the classic-vs-L4S throughput
ratio the coupling law is designed to keep near one.

Everything runs through the
:class:`~repro.runner.executor.ParallelExecutor` (``jobs``/``cache``),
so results are deterministic for a fixed seed and bit-identical for any
worker count.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.lab_common import figure_cells_spec, LabFigure, packet_sweep_to_figure
from repro.runner.spec import ScenarioSpec
from repro.experiments.lab_topology import sweep_scale
from repro.netsim.packet.queue import QUEUE_DISCIPLINES
from repro.netsim.packet.simulation import FlowConfig
from repro.netsim.packet.sweep import run_packet_sweep

__all__ = ["L4S_ARMS", "L4sBiasComparison", "run_l4s_experiment", "l4s_spec"]

#: The four arms of the L4S lab: (arm name, queue discipline, the
#: ``FlowConfig.ecn`` mode of every unit, whether units pace).  The L4S
#: arm paces because TCP Prague mandates pacing; the others keep the
#: paper's unpaced default so each arm is its stack's natural form.
L4S_ARMS: tuple[tuple[str, str, bool | str, bool], ...] = (
    ("droptail", "droptail", False, False),
    ("codel-classic", "codel", "classic", False),
    ("dualpi2-l4s", "dualpi2", "l4s", True),
    ("fq_codel", "fq_codel", False, False),
)


@dataclass
class L4sBiasComparison:
    """The connection-count sweep under the four L4S-lab arms.

    ``figures[arm]`` is the :class:`LabFigure` obtained under that arm;
    :meth:`bias` reduces each to how far the naive A/B estimate sits
    from the true total treatment effect.  The coexistence fields hold
    the mixed classic+L4S run on the DualPI2 bottleneck: mean per-unit
    throughput of each camp, whose ratio the RFC 9332 coupling law is
    designed to keep near one.
    """

    figures: dict[str, LabFigure]
    coexistence_l4s_mbps: float
    coexistence_classic_mbps: float
    allocation: float = 0.5

    def arms(self) -> tuple[str, ...]:
        """Arm names in sweep order."""
        return tuple(self.figures)

    def bias(self, arm: str, metric: str = "throughput_mbps") -> float:
        """Naive A/B estimate minus the TTE at :attr:`allocation` (per unit)."""
        figure = self.figures[arm]
        return figure.ab_estimate(metric, self.allocation) - figure.tte(metric)

    @property
    def coexistence_ratio(self) -> float:
        """Mean L4S-unit throughput over mean classic-unit throughput."""
        return self.coexistence_l4s_mbps / self.coexistence_classic_mbps

    def summary_lines(self) -> list[str]:
        """Per-arm figure summaries plus the bias and coexistence report."""
        lines: list[str] = []
        for arm, figure in self.figures.items():
            lines.append(f"=== arm: {arm} ===")
            lines.extend(figure.summary_lines())
        lines.append("")
        lines.append(
            f"A/B-vs-TTE bias at {self.allocation:.0%} allocation "
            f"(throughput, Mb/s per unit):"
        )
        for arm in self.figures:
            lines.append(f"  {arm:>14}: {self.bias(arm):+.2f}")
        lines.append(
            "classic/L4S coexistence on one DualPI2 bottleneck "
            "(mean per-unit throughput):"
        )
        lines.append(
            f"  l4s {self.coexistence_l4s_mbps:.2f} Mb/s vs classic "
            f"{self.coexistence_classic_mbps:.2f} Mb/s "
            f"(ratio {self.coexistence_ratio:.2f})"
        )
        return lines


def run_l4s_experiment(
    treatment_connections: int = 2,
    control_connections: int = 1,
    quick: bool = False,
    jobs: int = 1,
    cache=None,
    seed: int = 0,
) -> L4sBiasComparison:
    """The parallel-connections bias under the four L4S-lab arms.

    Each arm re-runs the full allocation sweep with its own bottleneck
    discipline and sender stack (see :data:`L4S_ARMS`); a fifth run
    mixes classic-ECN and L4S units half/half on one DualPI2 bottleneck
    at the 50 % allocation and reports their throughput ratio — the
    coexistence question RFC 9332's coupling law answers.

    Parameters
    ----------
    treatment_connections, control_connections:
        Connections opened by treated / control applications (paper: 2 / 1).
    quick:
        Shrink the sweep (fewer units, shorter runs) for smoke tests.
    jobs, cache:
        Worker processes and optional result cache; arms of *all*
        disciplines fan out over the same executor settings.
    seed:
        Seed of the DualPI2 drop/mark lotteries (inert for the
        deterministic drop-tail/CoDel/FQ-CoDel arms, mirroring the
        inert-knob rule).
    """
    if treatment_connections < 1 or control_connections < 1:
        raise ValueError("connection counts must be at least 1")

    figures: dict[str, LabFigure] = {}
    for arm, discipline, ecn, paced in L4S_ARMS:
        scale = sweep_scale(quick)
        n_units = scale.pop("n_units")
        sweep = run_packet_sweep(
            n_units,
            treatment_factory=lambda i, e=ecn, p=paced: FlowConfig(
                i, cc="reno", connections=treatment_connections, ecn=e, paced=p
            ),
            control_factory=lambda i, e=ecn, p=paced: FlowConfig(
                i, cc="reno", connections=control_connections, ecn=e, paced=p
            ),
            queue_discipline=discipline,
            seed=seed if QUEUE_DISCIPLINES[discipline].uses_seed else None,
            jobs=jobs,
            cache=cache,
            **scale,
        )
        ecn_label = "no ECN" if ecn is False else f"ecn={ecn}"
        figures[arm] = packet_sweep_to_figure(
            sweep,
            name=f"topo_l4s[{arm}]",
            description=(
                f"{n_units} applications using {treatment_connections} "
                f"(treatment) or {control_connections} (control) TCP Reno "
                f"connections ({ecn_label}{', paced' if paced else ''}) on a "
                f"shared {discipline} bottleneck"
            ),
        )

    # Coexistence: half the units classic ECN, half L4S, one DualPI2
    # bottleneck, one connection each — the sweep machinery's 50 %
    # "allocation" doubles as the classic/L4S split, reusing its
    # executor fan-out and cache keys.
    scale = sweep_scale(quick)
    n_units = scale.pop("n_units")
    half = n_units // 2
    scale["allocations"] = (half,)  # one mixed run, not a sweep
    coexistence = run_packet_sweep(
        n_units,
        treatment_factory=lambda i: FlowConfig(i, cc="reno", ecn="l4s", paced=True),
        control_factory=lambda i: FlowConfig(i, cc="reno", ecn="classic"),
        queue_discipline="dualpi2",
        seed=seed,
        jobs=jobs,
        cache=cache,
        **scale,
    )
    mixed = coexistence.results[half]
    return L4sBiasComparison(
        figures=figures,
        coexistence_l4s_mbps=mixed.group_mean_throughput(True),
        coexistence_classic_mbps=mixed.group_mean_throughput(False),
    )


def l4s_spec(quick: bool = False, label: str | None = None) -> ScenarioSpec:
    """Runner spec for the topo_l4s figure (deterministic lottery seed).

    The campaign compiler's entry point: returns the content-keyed
    ``figure.cells`` spec whose execution reproduces
    :func:`run_l4s_experiment`'s scalar cells.
    """
    return figure_cells_spec("topo_l4s", quick=quick, label=label)
