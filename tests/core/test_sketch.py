"""Tests for the mergeable streaming summaries used at the shard boundary."""

from __future__ import annotations

import math
import random

import numpy as np
import pytest

from repro.core.analysis import QuantileSketch, StreamingStats


def _pareto_sample(n: int, seed: int, alpha: float = 1.5) -> list[float]:
    """Heavy-tailed Pareto(alpha) sample via inverse CDF (deterministic)."""
    rng = random.Random(f"sketch-pareto:{seed}")
    return [(1.0 - rng.random()) ** (-1.0 / alpha) for _ in range(n)]


def _rank_error(sketch: QuantileSketch, sorted_values: list[float], q: float) -> float:
    """|true rank of the estimated quantile - q|, the t-digest accuracy metric."""
    estimate = sketch.quantile(q)
    rank = np.searchsorted(sorted_values, estimate) / len(sorted_values)
    return abs(float(rank) - q)


class TestStreamingStats:
    def test_moments_match_numpy(self):
        values = _pareto_sample(500, seed=1)
        stats = StreamingStats()
        stats.extend(values)
        assert stats.count == 500
        assert stats.mean == pytest.approx(np.mean(values))
        assert stats.variance == pytest.approx(np.var(values))
        assert stats.minimum == min(values)
        assert stats.maximum == max(values)

    def test_merge_is_exact(self):
        values = _pareto_sample(400, seed=2)
        whole = StreamingStats()
        whole.extend(values)
        left, right = StreamingStats(), StreamingStats()
        left.extend(values[:150])
        right.extend(values[150:])
        merged = left.merge(right)
        assert merged.count == whole.count
        assert merged.total == pytest.approx(whole.total, rel=1e-12)
        assert merged.total_sq == pytest.approx(whole.total_sq, rel=1e-12)
        assert merged.minimum == whole.minimum
        assert merged.maximum == whole.maximum

    def test_empty_stats(self):
        stats = StreamingStats()
        assert len(stats) == 0
        assert math.isnan(stats.mean)
        assert math.isnan(stats.variance)

    def test_round_trip(self):
        stats = StreamingStats()
        stats.extend([1.0, 2.5, -3.0])
        assert StreamingStats.from_dict(stats.to_dict()) == stats


class TestQuantileSketchBasics:
    def test_empty_sketch(self):
        sketch = QuantileSketch()
        assert sketch.count == 0
        assert math.isnan(sketch.quantile(0.5))

    def test_single_value(self):
        sketch = QuantileSketch()
        sketch.add(42.0)
        assert sketch.quantile(0.0) == 42.0
        assert sketch.quantile(0.5) == 42.0
        assert sketch.quantile(1.0) == 42.0

    def test_small_sample_is_near_exact(self):
        # Fewer values than the centroid budget: quantiles interpolate the
        # exact sample.
        values = [float(v) for v in range(1, 21)]
        sketch = QuantileSketch()
        sketch.extend(values)
        assert sketch.quantile(0.0) == 1.0
        assert sketch.quantile(1.0) == 20.0
        assert sketch.quantile(0.5) == pytest.approx(10.5, abs=0.5)

    def test_rejects_nan_and_bad_quantile(self):
        sketch = QuantileSketch()
        with pytest.raises(ValueError):
            sketch.add(math.nan)
        sketch.add(1.0)
        with pytest.raises(ValueError):
            sketch.quantile(1.5)
        with pytest.raises(ValueError):
            QuantileSketch(compression=5)

    def test_centroid_count_is_bounded(self):
        # The O(cells) memory contract: centroid count is bounded by the
        # compression factor, never by how many values were added.
        sketch = QuantileSketch(compression=100)
        sketch.extend(_pareto_sample(20_000, seed=3))
        assert len(sketch) <= 100


class TestQuantileSketchMergeAlgebra:
    def test_merge_commutes_exactly(self):
        a, b = QuantileSketch(), QuantileSketch()
        a.extend(_pareto_sample(2_000, seed=4))
        b.extend(_pareto_sample(3_000, seed=5))
        assert a.merge(b) == b.merge(a)

    def test_merge_associative_within_tolerance(self):
        # Regrouping changes which centroids coalesce, so associativity is
        # approximate: quantile estimates agree to well within the sketch's
        # own accuracy bound.
        a, b, c = QuantileSketch(), QuantileSketch(), QuantileSketch()
        a.extend(_pareto_sample(2_000, seed=6))
        b.extend(_pareto_sample(2_000, seed=7))
        c.extend(_pareto_sample(2_000, seed=8))
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        assert left.count == right.count
        assert left.mean == pytest.approx(right.mean, rel=1e-9)
        for q in (0.1, 0.5, 0.9, 0.99):
            assert left.quantile(q) == pytest.approx(right.quantile(q), rel=0.02)

    def test_merge_with_empty_is_identity_on_queries(self):
        a = QuantileSketch()
        a.extend(_pareto_sample(1_000, seed=9))
        merged = a.merge(QuantileSketch())
        assert merged.count == a.count
        for q in (0.05, 0.5, 0.95):
            assert merged.quantile(q) == pytest.approx(a.quantile(q), rel=1e-6)


class TestQuantileSketchAccuracy:
    # Documented tolerance: rank error < 0.01 in the body, < 0.005 in the
    # tails, for compression=100 on heavy-tailed samples.  These bounds are
    # what docs/architecture.md quotes for the fleet shard boundary.
    BODY_TOLERANCE = 0.01
    TAIL_TOLERANCE = 0.005

    def test_pareto_accuracy_bounds(self):
        values = _pareto_sample(50_000, seed=10)
        sketch = QuantileSketch(compression=100)
        sketch.extend(values)
        ordered = sorted(values)
        for q in (0.25, 0.5, 0.75):
            assert _rank_error(sketch, ordered, q) < self.BODY_TOLERANCE
        for q in (0.01, 0.05, 0.95, 0.99, 0.999):
            assert _rank_error(sketch, ordered, q) < self.TAIL_TOLERANCE

    def test_sharded_merge_accuracy(self):
        # Build the sketch the way the fleet does: many shard sketches
        # merged pairwise in index order.
        values = _pareto_sample(20_000, seed=11)
        shards = []
        for i in range(100):
            shard = QuantileSketch(compression=100)
            shard.extend(values[i * 200 : (i + 1) * 200])
            shards.append(shard)
        merged = shards[0]
        for shard in shards[1:]:
            merged = merged.merge(shard)
        ordered = sorted(values)
        assert merged.count == len(values)
        for q in (0.25, 0.5, 0.75):
            assert _rank_error(merged, ordered, q) < self.BODY_TOLERANCE
        for q in (0.05, 0.95, 0.99):
            assert _rank_error(merged, ordered, q) < self.TAIL_TOLERANCE

    def test_min_max_are_exact(self):
        values = _pareto_sample(10_000, seed=12)
        sketch = QuantileSketch()
        sketch.extend(values)
        assert sketch.quantile(0.0) == min(values)
        assert sketch.quantile(1.0) == max(values)


class TestQuantileSketchSerialization:
    def test_round_trip_preserves_state_exactly(self):
        sketch = QuantileSketch(compression=64)
        sketch.extend(_pareto_sample(5_000, seed=13))
        restored = QuantileSketch.from_dict(sketch.to_dict())
        assert restored == sketch
        for q in (0.1, 0.5, 0.9, 0.99):
            assert restored.quantile(q) == sketch.quantile(q)

    def test_round_trip_is_json_compatible(self):
        import json

        sketch = QuantileSketch()
        sketch.extend([1.0, 2.0, 3.0])
        payload = json.loads(json.dumps(sketch.to_dict()))
        assert QuantileSketch.from_dict(payload) == sketch

    def test_merge_after_round_trip_matches(self):
        # The shard boundary serializes, ships, then merges: the result must
        # match merging the in-memory sketches.
        a, b = QuantileSketch(), QuantileSketch()
        a.extend(_pareto_sample(1_000, seed=14))
        b.extend(_pareto_sample(1_000, seed=15))
        shipped = QuantileSketch.from_dict(a.to_dict()).merge(
            QuantileSketch.from_dict(b.to_dict())
        )
        assert shipped == a.merge(b)
