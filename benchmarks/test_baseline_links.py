"""Section 4.1 baseline table: statistical similarity of the two links.

Paper finding: during the baseline week the links look very similar —
link 1 has ~5 % more bytes, ~2 % higher stability, ~0.1 % lower perceptual
quality and ~20 % more rebuffers; the network metrics (throughput, RTT,
bitrate, retransmissions) show no meaningful difference.
"""

from benchmarks._helpers import run_once

from repro.experiments import compare_links_at_baseline
from repro.reporting import format_table


def test_baseline_link_similarity(benchmark, paired_outcome):
    rows = run_once(benchmark, compare_links_at_baseline, paired_outcome.baseline_table)
    by_metric = {row.metric: row for row in rows}

    print(
        "\n"
        + format_table(
            ["metric", "link1 vs link2", "significant"],
            [
                [r.metric, f"{r.relative_percent:+.1f}%", "yes" if r.significant else "no"]
                for r in rows
            ],
        )
    )

    # The engineered pre-existing differences are recovered...
    assert 10.0 < by_metric["rebuffer_rate"].relative_percent < 32.0
    assert 1.0 < by_metric["bytes_sent_gb"].relative_percent < 10.0
    # ...and the network metrics are similar across links.
    for metric in ("throughput_mbps", "min_rtt_ms", "video_bitrate_kbps", "retransmit_fraction"):
        assert abs(by_metric[metric].relative_percent) < 6.0, metric
