"""Simplified TCP congestion-control senders for the packet simulator.

* :class:`~repro.netsim.packet.tcp.base.TcpSender` — common machinery:
  window/inflight accounting, ack clocking, optional pacing, retransmission
  bookkeeping.
* :class:`~repro.netsim.packet.tcp.reno.RenoSender` — AIMD (slow start +
  congestion avoidance, multiplicative decrease 0.5).
* :class:`~repro.netsim.packet.tcp.cubic.CubicSender` — cubic window growth
  with multiplicative decrease 0.7.
* :class:`~repro.netsim.packet.tcp.bbr.BBRSender` — simplified BBRv1:
  delivery-rate and min-RTT estimation, startup/drain/probe-bandwidth gain
  cycling, rate-based pacing, loss-agnostic.
"""

from repro.netsim.packet.tcp.base import TcpSender
from repro.netsim.packet.tcp.reno import RenoSender
from repro.netsim.packet.tcp.cubic import CubicSender
from repro.netsim.packet.tcp.bbr import BBRSender

__all__ = ["TcpSender", "RenoSender", "CubicSender", "BBRSender"]


def make_sender(cc: str, *args, **kwargs) -> TcpSender:
    """Construct a sender by congestion-control name (``reno``/``cubic``/``bbr``)."""
    registry = {"reno": RenoSender, "cubic": CubicSender, "bbr": BBRSender}
    try:
        cls = registry[cc]
    except KeyError:
        raise ValueError(
            f"unknown congestion control {cc!r}; expected one of {sorted(registry)}"
        ) from None
    return cls(*args, **kwargs)
