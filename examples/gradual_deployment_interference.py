"""Detect congestion interference during a gradual deployment (Section 5.1).

Simulates an engineering team ramping bitrate capping from 0 % to 100 % of
traffic over a week, computing at every stage the A/B effect, the partial
effect and the spillover, and then applying the paper's SUTVA consistency
checks.  Under interference the A/B effects disagree across stages and the
spillovers are non-zero — exactly what the diagnostics report.

Run with:  python examples/gradual_deployment_interference.py
"""

from repro.core.analysis import detect_interference
from repro.core.designs import GradualDeploymentDesign
from repro.core.experiment import ExperimentResult, evaluate_design
from repro.reporting import format_table
from repro.workload import PairedLinkWorkload, WorkloadConfig

METRIC = "throughput_mbps"


def main() -> None:
    config = WorkloadConfig(sessions_at_peak=250, seed=29)
    workload = PairedLinkWorkload(config)
    design = GradualDeploymentDesign(ramp=(0.0, 0.05, 0.25, 0.5, 0.75, 0.95, 1.0))
    days = tuple(range(len(design.ramp)))

    print(f"Deployment ramp: {design.describe()}")
    plan = design.allocation_plan(config.links, days)
    table = workload.generate(plan, days)
    result = ExperimentResult(design, table, config.links, days)
    estimates = evaluate_design(result, metrics=(METRIC,))

    rows = []
    ate_by_allocation = {}
    spillover_by_allocation = {}
    partial_by_allocation = {}
    for estimand, per_metric in sorted(estimates.items()):
        estimate = per_metric[METRIC]
        rows.append([estimand, f"{estimate.relative_percent:+.1f}%"])
        if estimand.startswith("ab_"):
            ate_by_allocation[float(estimand[3:])] = estimate.relative
        elif estimand.startswith("spillover_"):
            spillover_by_allocation[float(estimand[10:])] = estimate.relative
        elif estimand.startswith("partial_"):
            partial_by_allocation[float(estimand[8:])] = estimate.relative
    print(format_table(["estimand", METRIC], rows))
    print()

    diagnostics = detect_interference(
        ate_by_allocation, spillover_by_allocation, partial_by_allocation
    )
    print(diagnostics.summary())


if __name__ == "__main__":
    main()
