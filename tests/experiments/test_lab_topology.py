"""Tests for the topology experiments (RTT heterogeneity, AQM vs drop-tail)."""

import pytest

from repro.experiments.lab_topology import (
    AqmBiasComparison,
    run_aqm_experiment,
    run_rtt_experiment,
)


@pytest.fixture(scope="module")
def rtt_figure():
    return run_rtt_experiment(quick=True)


@pytest.fixture(scope="module")
def aqm_comparison():
    return run_aqm_experiment(quick=True)


class TestRttExperiment:
    def test_allocation_endpoints_present(self, rtt_figure):
        allocations = [row.allocation for row in rtt_figure.rows]
        assert 0.0 in allocations
        assert 1.0 in allocations

    def test_naive_ab_still_biased_under_rtt_heterogeneity(self, rtt_figure):
        # The paper's bias survives heterogeneous RTTs: the naive A/B
        # estimate at 50% promises a large gain the TTE does not deliver.
        ab = rtt_figure.ab_estimate("throughput_mbps", 0.5)
        tte = rtt_figure.tte("throughput_mbps")
        assert ab > 1.0
        assert ab - tte > 1.0

    def test_throughput_tte_small_relative_to_capacity(self, rtt_figure):
        # Opening extra connections cannot create capacity at any RTT mix.
        baseline = rtt_figure.throughput_curve.mu_control(0.0)
        assert abs(rtt_figure.tte("throughput_mbps")) / baseline < 0.2

    def test_spillover_negative(self, rtt_figure):
        assert rtt_figure.spillover("throughput_mbps", 0.5) < 0.0

    def test_empty_rtt_spread_raises(self):
        with pytest.raises(ValueError):
            run_rtt_experiment(rtt_spread_ms=())

    def test_invalid_connection_counts_raise(self):
        with pytest.raises(ValueError):
            run_rtt_experiment(treatment_connections=0)


class TestAqmExperiment:
    def test_compares_requested_disciplines(self, aqm_comparison):
        assert set(aqm_comparison.figures) == {"droptail", "codel"}

    def test_bias_positive_under_both_disciplines(self, aqm_comparison):
        # The connection-count treatment looks like a win in a naive A/B
        # test under every discipline; AQM changes the size, not the sign.
        for discipline in aqm_comparison.figures:
            assert aqm_comparison.bias(discipline) > 0.5

    def test_tte_near_zero_under_both_disciplines(self, aqm_comparison):
        for figure in aqm_comparison.figures.values():
            baseline = figure.throughput_curve.mu_control(0.0)
            assert abs(figure.tte("throughput_mbps")) / baseline < 0.2

    def test_summary_lines_cover_disciplines_and_bias(self, aqm_comparison):
        text = "\n".join(aqm_comparison.summary_lines())
        assert "droptail" in text
        assert "codel" in text
        assert "bias" in text.lower()

    def test_no_disciplines_raises(self):
        with pytest.raises(ValueError):
            run_aqm_experiment(disciplines=())

    def test_comparison_is_plain_dataclass(self, aqm_comparison):
        rebuilt = AqmBiasComparison(figures=dict(aqm_comparison.figures))
        assert rebuilt.bias("droptail") == aqm_comparison.bias("droptail")
