"""Invariant tests for every queue discipline (drop-tail, RED, CoDel).

Three properties must hold regardless of the admission/dequeue policy:

* conservation — once drained, served + dropped equals offered;
* bounded occupancy — the buffer limit is never exceeded;
* determinism — a discipline's behaviour is a pure function of its
  construction parameters (RED draws all randomness from its seed).
"""

import pytest

from repro.netsim.packet.engine import EventScheduler
from repro.netsim.packet.packets import Packet
from repro.netsim.packet.queue import (
    QUEUE_DISCIPLINES,
    CoDelQueue,
    DropTailQueue,
    REDQueue,
    make_queue,
)

ALL_DISCIPLINES = sorted(QUEUE_DISCIPLINES)


def make_packet(seq, size=1000, flow_id=0):
    return Packet(flow_id=flow_id, sequence=seq, size_bytes=size, send_time=0.0)


def build(discipline, rate_bps=8_000.0, buffer_bytes=4_000.0, **params):
    sched = EventScheduler()
    departed, dropped = [], []
    queue = make_queue(
        discipline,
        sched,
        rate_bps,
        buffer_bytes,
        on_departure=lambda p, t: departed.append((p.sequence, t)),
        on_drop=lambda p, t: dropped.append((p.sequence, t)),
        **params,
    )
    return sched, queue, departed, dropped


def offer_burst(sched, queue, n, gap_s=0.0, size=1000):
    """Offer ``n`` packets, ``gap_s`` apart, starting now."""
    for i in range(n):
        sched.schedule(sched.now + i * gap_s, lambda i=i: queue.enqueue(make_packet(i, size=size)))


class TestConservation:
    @pytest.mark.parametrize("discipline", ALL_DISCIPLINES)
    def test_served_plus_dropped_equals_offered_after_drain(self, discipline):
        sched, queue, departed, dropped = build(discipline, buffer_bytes=3_000.0)
        offer_burst(sched, queue, 40, gap_s=0.05)
        sched.run(until=1e6)  # drain completely
        assert queue.occupancy_bytes == 0.0
        assert queue.occupancy_packets == 0
        assert queue.packets_served + queue.packets_dropped == queue.packets_offered
        assert len(departed) == queue.packets_served
        assert len(dropped) == queue.packets_dropped
        assert queue.packets_offered == 40

    @pytest.mark.parametrize("discipline", ALL_DISCIPLINES)
    def test_every_packet_reported_exactly_once(self, discipline):
        sched, queue, departed, dropped = build(discipline, buffer_bytes=2_500.0)
        offer_burst(sched, queue, 25, gap_s=0.02)
        sched.run(until=1e6)
        seen = sorted([s for s, _ in departed] + [s for s, _ in dropped])
        assert seen == list(range(25))


class TestBoundedOccupancy:
    @pytest.mark.parametrize("discipline", ALL_DISCIPLINES)
    def test_occupancy_never_exceeds_buffer(self, discipline):
        buffer_bytes = 3_500.0
        sched, queue, _, _ = build(discipline, buffer_bytes=buffer_bytes)
        high_water = []
        for i in range(60):
            sched.schedule(
                sched.now + i * 0.01,
                lambda i=i: (
                    queue.enqueue(make_packet(i)),
                    high_water.append(queue.occupancy_bytes),
                ),
            )
        sched.run(until=1e6)
        assert max(high_water) <= buffer_bytes
        assert queue.max_occupancy_bytes <= buffer_bytes


class TestDropTail:
    def test_registry_name(self):
        assert QUEUE_DISCIPLINES["droptail"] is DropTailQueue

    def test_drops_only_when_buffer_full(self):
        sched, queue, departed, dropped = build("droptail", buffer_bytes=2_000.0)
        results = [queue.enqueue(make_packet(i)) for i in range(4)]
        # First enters service; two fit the 2000-byte buffer; fourth drops.
        assert results == [True, True, True, False]
        assert [s for s, _ in dropped] == [3]


class TestRED:
    def test_early_drops_before_buffer_full(self):
        sched, queue, departed, dropped = build(
            "red", buffer_bytes=40_000.0, weight=0.5, min_threshold=0.05,
            max_threshold=0.5, max_drop_probability=0.9, seed=1,
        )
        offer_burst(sched, queue, 80, gap_s=0.01)
        sched.run(until=1e6)
        assert queue.packets_dropped > 0
        # RED dropped while far from the hard limit.
        assert queue.max_occupancy_bytes < 40_000.0

    def test_seeded_runs_identical(self):
        outcomes = []
        for _ in range(2):
            sched, queue, departed, dropped = build(
                "red", buffer_bytes=10_000.0, weight=0.3, seed=7,
            )
            offer_burst(sched, queue, 60, gap_s=0.02)
            sched.run(until=1e6)
            outcomes.append((tuple(departed), tuple(dropped)))
        assert outcomes[0] == outcomes[1]

    def test_different_seeds_can_differ(self):
        outcomes = []
        for seed in (1, 2):
            sched, queue, _, dropped = build(
                "red", buffer_bytes=10_000.0, weight=0.3,
                min_threshold=0.1, max_threshold=0.9,
                max_drop_probability=0.5, seed=seed,
            )
            offer_burst(sched, queue, 60, gap_s=0.02)
            sched.run(until=1e6)
            outcomes.append(tuple(s for s, _ in dropped))
        assert outcomes[0] != outcomes[1]

    def test_invalid_thresholds_raise(self):
        sched = EventScheduler()
        with pytest.raises(ValueError):
            REDQueue(sched, 8000.0, 1000.0, lambda p, t: None, lambda p, t: None,
                     min_threshold=0.8, max_threshold=0.2)


class TestCoDel:
    def test_no_drops_below_target_delay(self):
        # 8 Mb/s, one 1000-byte packet per 10 ms => 1 ms sojourn << 5 ms target.
        sched, queue, _, dropped = build("codel", rate_bps=8_000_000.0,
                                         buffer_bytes=100_000.0)
        offer_burst(sched, queue, 100, gap_s=0.01)
        sched.run(until=1e6)
        assert dropped == []

    def test_drops_under_sustained_overload(self):
        # Offered load 2x the drain rate: the standing queue exceeds the
        # 5 ms target for far longer than one 100 ms interval.
        sched, queue, _, dropped = build("codel", rate_bps=800_000.0,
                                         buffer_bytes=1e9)
        offer_burst(sched, queue, 400, gap_s=0.005)
        sched.run(until=1e6)
        assert len(dropped) > 0
        # Drops happen at dequeue, after real sojourn, not at arrival.
        assert all(t > 0.1 for _, t in dropped)

    def test_standing_delay_well_below_droptail(self):
        # Open-loop 2x overload: CoDel cannot pin an unresponsive source to
        # the 5 ms target (that takes a responsive sender), but its dequeue
        # drops must keep the standing delay far below drop-tail's, which
        # just lets the backlog grow toward the (here huge) buffer.
        late_delay = {}
        for discipline in ("codel", "droptail"):
            sched, queue, _, _ = build(discipline, rate_bps=800_000.0,
                                       buffer_bytes=1e9)
            delays = []
            for i in range(600):
                sched.schedule(
                    sched.now + i * 0.005,
                    lambda i=i: (queue.enqueue(make_packet(i)),
                                 delays.append(queue.queueing_delay())),
                )
            sched.run(until=1e6)
            late = delays[500:]
            late_delay[discipline] = sum(late) / len(late)
        assert late_delay["codel"] < 0.5 * late_delay["droptail"]

    def test_invalid_parameters_raise(self):
        sched = EventScheduler()
        with pytest.raises(ValueError):
            CoDelQueue(sched, 8000.0, 1000.0, lambda p, t: None, lambda p, t: None,
                       target_delay_s=0.0)


class TestFactory:
    def test_unknown_discipline_raises(self):
        sched = EventScheduler()
        with pytest.raises(ValueError, match="unknown queue discipline"):
            make_queue("fq", sched, 8000.0, 1000.0, lambda p, t: None, lambda p, t: None)

    def test_unknown_parameter_raises(self):
        sched = EventScheduler()
        with pytest.raises(TypeError):
            make_queue("droptail", sched, 8000.0, 1000.0,
                       lambda p, t: None, lambda p, t: None, target_delay_s=0.01)

    @pytest.mark.parametrize("discipline", ALL_DISCIPLINES)
    def test_registry_names_match_classes(self, discipline):
        assert QUEUE_DISCIPLINES[discipline].name == discipline
