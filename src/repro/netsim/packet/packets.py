"""Packet representation for the packet-level simulator."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Packet"]


@dataclass
class Packet:
    """A data packet in flight.

    Attributes
    ----------
    flow_id:
        Identifier of the sending flow.
    sequence:
        Sequence number of the packet within its flow (counts packets, not
        bytes).
    size_bytes:
        Packet size in bytes (MTU-sized for bulk transfers).
    send_time:
        Simulation time at which the sender transmitted the packet.
    is_retransmission:
        True when the packet retransmits previously lost data.
    ecn_capable:
        True when the sending flow negotiated ECN: AQM queues may CE-mark
        this packet instead of dropping it.
    l4s:
        True when the sending flow negotiated the L4S service (the ECT(1)
        codepoint of RFC 9331): a dual-queue AQM classifies the packet
        into its low-latency queue and marks it at a shallow threshold.
        Implies ``ecn_capable``.
    ce_marked:
        Congestion Experienced: set by a queue that would otherwise have
        dropped the packet (classic ECN) or whose marking law selected it
        (L4S); echoed back to the sender with the ack.
    """

    flow_id: int
    sequence: int
    size_bytes: int
    send_time: float
    is_retransmission: bool = False
    ecn_capable: bool = False
    l4s: bool = False
    ce_marked: bool = False
