"""Flow-size samplers for dynamic traffic.

Internet flow sizes are famously heavy-tailed ("mice and elephants"):
most transfers are small, but a small fraction of very large flows carry
most of the bytes.  Each sampler here is a frozen, content-keyable
dataclass drawing sizes (in bytes) from one family:

* :class:`FixedSizes` — every flow the same size (degenerate, useful in
  tests and calibration);
* :class:`ParetoSizes` — the classic heavy-tailed model; with shape
  ``alpha <= 2`` the variance is infinite and elephants dominate;
* :class:`LogNormalSizes` — a milder heavy tail, common in measured CDNs;
* :class:`EmpiricalSizes` — inverse-CDF sampling from an observed list
  of sizes (linear interpolation between order statistics).

Samplers draw all randomness from the ``random.Random`` instance they
are handed, so a traffic source's flow sequence is a pure function of
the simulation seed.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

__all__ = [
    "SizeSampler",
    "FixedSizes",
    "ParetoSizes",
    "LogNormalSizes",
    "EmpiricalSizes",
]


class SizeSampler:
    """Base class for flow-size samplers (bytes per transfer)."""

    def sample(self, rng: random.Random) -> float:
        """Draw one flow size in bytes."""
        raise NotImplementedError

    def mean_bytes(self) -> float:
        """Expected flow size in bytes (``inf`` when undefined)."""
        raise NotImplementedError


@dataclass(frozen=True)
class FixedSizes(SizeSampler):
    """Every flow transfers exactly ``size_bytes``."""

    size_bytes: float

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError("size_bytes must be non-negative")

    def sample(self, rng: random.Random) -> float:
        return float(self.size_bytes)

    def mean_bytes(self) -> float:
        return float(self.size_bytes)


@dataclass(frozen=True)
class ParetoSizes(SizeSampler):
    """Pareto(``alpha``) sizes with minimum ``min_bytes``.

    ``sample = min_bytes / U^(1/alpha)``; the mean is
    ``alpha * min_bytes / (alpha - 1)`` for ``alpha > 1`` and infinite
    otherwise.  The default shape 1.5 gives the heavy tail reported for
    internet flow sizes (finite mean, infinite variance).
    """

    min_bytes: float = 50_000.0
    alpha: float = 1.5

    def __post_init__(self) -> None:
        if self.min_bytes <= 0:
            raise ValueError("min_bytes must be positive")
        if self.alpha <= 0:
            raise ValueError("alpha must be positive")

    def sample(self, rng: random.Random) -> float:
        # Guard against u == 0 (probability ~2**-53, but it would divide by 0).
        u = max(rng.random(), 1e-12)
        return self.min_bytes / u ** (1.0 / self.alpha)

    def mean_bytes(self) -> float:
        if self.alpha <= 1.0:
            return float("inf")
        return self.alpha * self.min_bytes / (self.alpha - 1.0)


@dataclass(frozen=True)
class LogNormalSizes(SizeSampler):
    """Log-normal sizes around ``median_bytes`` with log-std ``sigma``."""

    median_bytes: float = 100_000.0
    sigma: float = 1.0

    def __post_init__(self) -> None:
        if self.median_bytes <= 0:
            raise ValueError("median_bytes must be positive")
        if self.sigma < 0:
            raise ValueError("sigma must be non-negative")

    def sample(self, rng: random.Random) -> float:
        return self.median_bytes * math.exp(self.sigma * rng.gauss(0.0, 1.0))

    def mean_bytes(self) -> float:
        return self.median_bytes * math.exp(self.sigma**2 / 2.0)


@dataclass(frozen=True)
class EmpiricalSizes(SizeSampler):
    """Inverse-CDF sampling from an observed size distribution.

    Draws ``u ~ U[0, 1)`` and interpolates linearly between the order
    statistics of ``sizes_bytes``, i.e. the piecewise-linear empirical
    CDF fitted to the observations.
    """

    sizes_bytes: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.sizes_bytes:
            raise ValueError("sizes_bytes must not be empty")
        if any(s < 0 for s in self.sizes_bytes):
            raise ValueError("sizes must be non-negative")
        # Store sorted so sampling never re-sorts (frozen dataclass).
        object.__setattr__(
            self, "sizes_bytes", tuple(sorted(float(s) for s in self.sizes_bytes))
        )

    def sample(self, rng: random.Random) -> float:
        n = len(self.sizes_bytes)
        if n == 1:
            return self.sizes_bytes[0]
        position = rng.random() * (n - 1)
        low = int(position)
        frac = position - low
        return self.sizes_bytes[low] * (1.0 - frac) + self.sizes_bytes[low + 1] * frac

    def mean_bytes(self) -> float:
        return sum(self.sizes_bytes) / len(self.sizes_bytes)
