"""End-to-end analysis of one metric from session-level data.

This module wires together the Appendix-B workflow:

1. restrict the session table to the comparison of interest (which arm on
   which link counts as "treated" depends on the estimand — TTE, spillover,
   or a naive within-link A/B effect);
2. aggregate to the hourly level (or to the account level for naive A/B
   tests, as the paper does);
3. run the fixed-effects regression with Newey-West standard errors
   (hourly) or a clustered difference in means (account level);
4. normalize the effect by a global control baseline so results are
   comparable percentages.

:func:`analyze_metric` is the single entry point used by every experiment
harness in :mod:`repro.experiments`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.analysis.aggregation import aggregate_by_account, aggregate_hourly
from repro.core.analysis.regression import treatment_effect_regression
from repro.core.estimators import EstimateWithCI, difference_in_means
from repro.core.units import OutcomeTable

__all__ = ["AnalysisConfig", "MetricEstimate", "analyze_metric"]


@dataclass(frozen=True)
class AnalysisConfig:
    """Configuration of the statistical analysis.

    Attributes
    ----------
    aggregation:
        ``"hourly"`` for the paper's conservative hourly aggregation with
        Newey-West standard errors, or ``"account"`` for account-level
        clustering (the standard A/B-test analysis, producing much tighter
        intervals — the comparison in the paper's Figure 13).
    hac_max_lag:
        Newey-West maximum lag when ``aggregation == "hourly"``.
    confidence:
        Confidence level for the reported intervals.
    """

    aggregation: str = "hourly"
    hac_max_lag: int = 2
    confidence: float = 0.95

    def __post_init__(self) -> None:
        if self.aggregation not in ("hourly", "account"):
            raise ValueError("aggregation must be 'hourly' or 'account'")
        if self.hac_max_lag < 0:
            raise ValueError("hac_max_lag must be non-negative")
        if not 0.0 < self.confidence < 1.0:
            raise ValueError("confidence must be in (0, 1)")


@dataclass(frozen=True)
class MetricEstimate:
    """Estimated effect for one metric, in absolute and relative terms.

    Attributes
    ----------
    metric:
        Name of the analyzed outcome.
    estimand:
        Label of the quantity estimated (e.g. ``"tte"``, ``"spillover"``,
        ``"ab_0.05"``).
    absolute:
        Effect in the metric's own units, with confidence interval.
    relative:
        Effect as a fraction of ``baseline`` (the paper reports these as
        percentages), with confidence interval.
    baseline:
        The global control mean used for normalization.
    """

    metric: str
    estimand: str
    absolute: EstimateWithCI
    relative: EstimateWithCI
    baseline: float

    @property
    def relative_percent(self) -> float:
        """Relative effect in percent (e.g. ``12.0`` for +12 %)."""
        return 100.0 * self.relative.estimate


def analyze_metric(
    treated_table: OutcomeTable,
    control_table: OutcomeTable,
    metric: str,
    estimand: str,
    baseline: float | None = None,
    config: AnalysisConfig | None = None,
) -> MetricEstimate:
    """Estimate the effect of treatment on one metric.

    Parameters
    ----------
    treated_table:
        Sessions playing the role of ``A_i = 1`` for this comparison.
    control_table:
        Sessions playing the role of ``A_i = 0`` for this comparison.
    metric:
        Outcome column to analyze.
    estimand:
        Label recorded on the result (does not change the computation; the
        caller selects the comparison tables according to the estimand).
    baseline:
        Mean used to normalize the effect to a relative change.  When None,
        the control table's mean for this metric is used.  The paper
        normalizes every estimate by the same global control condition (the
        95 % control sessions on link 2).
    config:
        Analysis configuration (aggregation scheme, HAC lag, confidence).
    """
    config = config or AnalysisConfig()

    treated = treated_table.with_column(
        "treated", np.ones(len(treated_table))
    )
    control = control_table.with_column(
        "treated", np.zeros(len(control_table))
    )
    combined = treated.concat(control)

    if config.aggregation == "hourly":
        aggregate = aggregate_hourly(combined, metric)
        fit = treatment_effect_regression(aggregate, hac_max_lag=config.hac_max_lag)
        absolute = fit.confidence_interval("treatment", confidence=config.confidence)
    else:
        values, arms, _counts = aggregate_by_account(combined, metric)
        result = difference_in_means(
            values[arms == 1], values[arms == 0], confidence=config.confidence
        )
        absolute = result.effect

    if baseline is None:
        baseline = control_table.mean(metric)
    if baseline == 0.0:
        raise ZeroDivisionError(
            f"baseline for metric {metric!r} is zero; cannot normalize"
        )
    relative = absolute.scaled(1.0 / baseline)

    return MetricEstimate(
        metric=metric,
        estimand=estimand,
        absolute=absolute,
        relative=relative,
        baseline=float(baseline),
    )
