"""Figure 2b: pacing vs no pacing.

Paper finding: paced traffic obtains ~50 % lower throughput than unpaced
traffic in any A/B test with essentially no within-test retransmission
difference, yet a full deployment of pacing leaves throughput unchanged
and cuts retransmissions substantially; spillover on unpaced traffic is
positive.
"""

import pytest
from benchmarks._helpers import run_once

from repro.experiments import run_pacing_experiment


def test_fig2b_pacing(benchmark):
    figure = run_once(benchmark, run_pacing_experiment, 10)

    print("\n" + "\n".join(figure.summary_lines()))

    throughput = figure.throughput_curve
    retransmit = figure.retransmit_curve

    for p in (0.1, 0.5, 0.9):
        ratio = throughput.mu_treatment(p) / throughput.mu_control(p)
        assert ratio == pytest.approx(0.5, rel=0.05)
        assert retransmit.ate(p) == pytest.approx(0.0, abs=1e-9)

    assert throughput.tte() == pytest.approx(0.0, abs=1e-6)
    assert retransmit.tte() / retransmit.mu_control(0.0) < -0.5
    assert throughput.spillover(0.9) > 0.0
    assert retransmit.spillover(0.9) < 0.0
