"""Applications (experimental units) in the lab experiments.

In the lab, the *unit* of the A/B test is an application: a bulk-transfer
sender that opens one or more parallel TCP connections using a particular
congestion control algorithm, with or without pacing.  The three lab
experiments of Section 3 correspond to three treatments:

* **Multiple connections** — treatment uses two Reno connections, control
  uses one.
* **Pacing** — treatment paces its (single) Reno connection, control does
  not.
* **Congestion control** — treatment uses BBR, control uses Cubic (or vice
  versa).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["Application", "CC_ALGORITHMS"]

#: Congestion control algorithms supported by the fluid model.
CC_ALGORITHMS: tuple[str, ...] = ("reno", "cubic", "bbr")


@dataclass(frozen=True)
class Application:
    """One experimental unit: an application sending bulk data.

    Parameters
    ----------
    app_id:
        Identifier of the application within an experiment.
    cc:
        Congestion control algorithm: ``"reno"``, ``"cubic"`` or ``"bbr"``.
    connections:
        Number of parallel TCP connections the application opens.
    paced:
        Whether the application's connections pace their packets.
    treated:
        Whether the application is in the treatment group of the current
        A/B test.  The flag does not change behaviour by itself — the
        experiment harness builds treated applications with the treatment
        configuration.
    """

    app_id: int
    cc: str = "reno"
    connections: int = 1
    paced: bool = False
    treated: bool = False

    def __post_init__(self) -> None:
        if self.cc not in CC_ALGORITHMS:
            raise ValueError(
                f"unknown congestion control {self.cc!r}; expected one of {CC_ALGORITHMS}"
            )
        if self.connections < 1:
            raise ValueError("an application needs at least one connection")

    def as_treated(self) -> "Application":
        """Return a copy flagged as treated."""
        return replace(self, treated=True)

    def as_control(self) -> "Application":
        """Return a copy flagged as control."""
        return replace(self, treated=False)

    @property
    def is_loss_based(self) -> bool:
        """True for loss-based congestion control (Reno, Cubic)."""
        return self.cc in ("reno", "cubic")
