"""The paired-link design of Section 4.

Two statistically similar, reliably congested links are treated as
"parallel universes".  A high-allocation A/B test (default 95 %) runs on
link 1 and a low-allocation A/B test (default 5 %) runs on link 2,
simultaneously.  Four estimands follow:

* ``ab_0.95`` — the naive within-link A/B effect on the mostly-treated link.
* ``ab_0.05`` — the naive within-link A/B effect on the mostly-control link.
* ``tte`` — approximate total treatment effect: the 95 % treated sessions on
  link 1 compared against the 95 % control sessions on link 2.
* ``spillover`` — the 5 % control sessions on link 1 (sharing a link with
  mostly treated traffic) compared against the 95 % control sessions on
  link 2.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.designs.base import (
    AllocationPlan,
    CellSelector,
    ComparisonSpec,
    ExperimentDesign,
)

__all__ = ["PairedLinkDesign"]


class PairedLinkDesign(ExperimentDesign):
    """Simultaneous high/low-allocation A/B tests on two parallel links.

    Parameters
    ----------
    high_allocation:
        Treatment allocation on the mostly-treated link (paper: 0.95).
    low_allocation:
        Treatment allocation on the mostly-control link (paper: 0.05).
    treated_link:
        Identifier of the link receiving the high allocation (paper: link 1).
    control_link:
        Identifier of the link receiving the low allocation (paper: link 2).
    """

    name = "paired_link"

    def __init__(
        self,
        high_allocation: float = 0.95,
        low_allocation: float = 0.05,
        treated_link: int = 1,
        control_link: int = 2,
    ):
        if not 0.0 < high_allocation <= 1.0:
            raise ValueError("high_allocation must be in (0, 1]")
        if not 0.0 <= low_allocation < 1.0:
            raise ValueError("low_allocation must be in [0, 1)")
        if high_allocation <= low_allocation:
            raise ValueError("high_allocation must exceed low_allocation")
        if treated_link == control_link:
            raise ValueError("treated_link and control_link must differ")
        self.high_allocation = float(high_allocation)
        self.low_allocation = float(low_allocation)
        self.treated_link = int(treated_link)
        self.control_link = int(control_link)

    def allocation_plan(
        self, links: Sequence[int], days: Sequence[int]
    ) -> AllocationPlan:
        cells: dict[tuple[int, int], float] = {}
        for day in days:
            for link in links:
                if link == self.treated_link:
                    cells[(int(link), int(day))] = self.high_allocation
                elif link == self.control_link:
                    cells[(int(link), int(day))] = self.low_allocation
                else:
                    cells[(int(link), int(day))] = 0.0
        return AllocationPlan(cells, default=0.0)

    def comparisons(
        self, links: Sequence[int], days: Sequence[int]
    ) -> list[ComparisonSpec]:
        days_t = tuple(int(day) for day in days)
        link1 = (self.treated_link,)
        link2 = (self.control_link,)
        return [
            ComparisonSpec(
                estimand="tte",
                treatment_selector=CellSelector(link1, days_t, treated=True),
                control_selector=CellSelector(link2, days_t, treated=False),
                description=(
                    "Approximate TTE: mostly-treated sessions on the treated link "
                    "vs mostly-control sessions on the control link."
                ),
            ),
            ComparisonSpec(
                estimand="spillover",
                treatment_selector=CellSelector(link1, days_t, treated=False),
                control_selector=CellSelector(link2, days_t, treated=False),
                description=(
                    "Spillover: control sessions sharing a link with mostly "
                    "treated traffic vs control sessions on the mostly-control link."
                ),
            ),
            ComparisonSpec(
                estimand=f"ab_{self.high_allocation:g}",
                treatment_selector=CellSelector(link1, days_t, treated=True),
                control_selector=CellSelector(link1, days_t, treated=False),
                description="Naive A/B effect within the mostly-treated link.",
            ),
            ComparisonSpec(
                estimand=f"ab_{self.low_allocation:g}",
                treatment_selector=CellSelector(link2, days_t, treated=True),
                control_selector=CellSelector(link2, days_t, treated=False),
                description="Naive A/B effect within the mostly-control link.",
            ),
        ]

    def describe(self) -> str:
        return (
            f"Paired-link experiment: link {self.treated_link} at "
            f"p={self.high_allocation:g}, link {self.control_link} at "
            f"p={self.low_allocation:g}"
        )
