"""Shared fixtures for the figure-reproduction benchmarks.

Every benchmark regenerates one table or figure from the paper.  The
expensive inputs (the paired-link workload run) are produced once per
session and shared; each benchmark then times the analysis step that
produces its figure and asserts the qualitative shape the paper reports.

Run with:  pytest benchmarks/ --benchmark-only
"""

import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.experiments import PairedLinkExperiment  # noqa: E402
from repro.workload import WorkloadConfig  # noqa: E402

#: Days of the main experiment (Wednesday through Sunday).
EXPERIMENT_DAYS = (0, 1, 2, 3, 4)


@pytest.fixture(scope="session")
def paired_experiment():
    """The paired-link experiment configuration used by all benchmarks."""
    config = WorkloadConfig(sessions_at_peak=300, n_accounts=4000, seed=7)
    return PairedLinkExperiment(config=config)


@pytest.fixture(scope="session")
def paired_outcome(paired_experiment):
    """One full run of the paired-link experiment, shared across benchmarks."""
    return paired_experiment.run()


def run_once(benchmark, fn, *args, **kwargs):
    """Run a benchmark exactly once (the workloads are too large to repeat)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
