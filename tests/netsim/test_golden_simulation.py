"""Golden-output test: the network refactor must not change ``simulate()``.

The expected values below were captured from the pre-refactor
single-bottleneck harness (one hard-coded drop-tail queue, one symmetric
RTT).  The composable :class:`~repro.netsim.packet.network.Network`
builder must reproduce them *exactly* — same floats, same counters — for
the default topology, proving the refactor is a pure reorganization.
"""

import pytest

from repro.netsim.packet.network import Network
from repro.netsim.packet.simulation import FlowConfig, simulate

#: (flow_id, throughput_mbps, retransmit_fraction, packets_sent, packets_lost)
GOLDEN_MIXED = [
    (0, 9.666, 0.00708128078817734, 4512, 95),
    (1, 4.251, 0.009103641456582634, 2012, 48),
    (2, 6.459, 0.0027688047992616522, 2642, 21),
    (3, 9.624, 0.019704433497536946, 6301, 290),
]
GOLDEN_MIXED_DROPS = 454
GOLDEN_MIXED_MAX_OCCUPANCY = 75000.0

GOLDEN_TWO_RENO = [
    (0, 5.428, 0.007342143906020558, 1807, 29),
    (1, 4.572, 0.010443864229765013, 1564, 21),
]
GOLDEN_TWO_RENO_DROPS = 50
GOLDEN_TWO_RENO_MAX_OCCUPANCY = 24000.0


def _mixed_flows():
    return [
        FlowConfig(0, cc="reno", connections=2, treated=True),
        FlowConfig(1, cc="reno", connections=1),
        FlowConfig(2, cc="cubic", paced=True),
        FlowConfig(3, cc="bbr"),
    ]


class TestGoldenOutput:
    def test_mixed_cc_run_is_bit_identical(self):
        result = simulate(
            _mixed_flows(),
            capacity_mbps=30.0,
            base_rtt_ms=20.0,
            buffer_bdp=1.0,
            duration_s=6.0,
            warmup_s=2.0,
        )
        observed = [
            (f.flow_id, f.throughput_mbps, f.retransmit_fraction, f.packets_sent, f.packets_lost)
            for f in result.flows
        ]
        assert observed == GOLDEN_MIXED  # exact equality, no approx
        assert result.total_drops == GOLDEN_MIXED_DROPS
        assert result.max_queue_occupancy_bytes == GOLDEN_MIXED_MAX_OCCUPANCY
        assert result.queue_drops == {"bottleneck": GOLDEN_MIXED_DROPS}

    def test_two_reno_run_is_bit_identical(self):
        result = simulate(
            [FlowConfig(0), FlowConfig(1)],
            capacity_mbps=10.0,
            duration_s=4.0,
            warmup_s=1.0,
        )
        observed = [
            (f.flow_id, f.throughput_mbps, f.retransmit_fraction, f.packets_sent, f.packets_lost)
            for f in result.flows
        ]
        assert observed == GOLDEN_TWO_RENO
        assert result.total_drops == GOLDEN_TWO_RENO_DROPS
        assert result.max_queue_occupancy_bytes == GOLDEN_TWO_RENO_MAX_OCCUPANCY

    def test_explicit_network_build_matches_simulate(self):
        # Building the default topology by hand through the Network
        # builder is the same program simulate() runs.
        via_simulate = simulate(
            _mixed_flows(),
            capacity_mbps=30.0,
            duration_s=6.0,
            warmup_s=2.0,
        )
        network = Network(capacity_mbps=30.0, base_rtt_ms=20.0, buffer_bdp=1.0)
        for config in _mixed_flows():
            network.add_flow(config)
        via_network = network.run(duration_s=6.0, warmup_s=2.0)
        assert via_simulate == via_network

    def test_default_knobs_are_inert(self):
        # Spelling out the refactor's new defaults must not change anything.
        base = simulate([FlowConfig(0), FlowConfig(1)], capacity_mbps=10.0,
                        duration_s=4.0, warmup_s=1.0)
        explicit = simulate(
            [FlowConfig(0, rtt_ms=None, path=None), FlowConfig(1)],
            capacity_mbps=10.0,
            duration_s=4.0,
            warmup_s=1.0,
            queue_discipline="droptail",
            queue_params=None,
            seed=123,  # RNG is never drawn on a loss-free drop-tail path
        )
        assert base == explicit

    def test_seed_inert_for_default_topology(self):
        runs = [
            simulate([FlowConfig(0)], capacity_mbps=10.0, duration_s=3.0,
                     warmup_s=1.0, seed=seed)
            for seed in (None, 0, 7)
        ]
        assert runs[0] == runs[1] == runs[2]

    def test_probe_does_not_perturb_golden_run(self):
        # Telemetry on must not move a single golden float or counter:
        # the probe barriers pop the exact same event order as a single
        # scheduler run.
        from repro.obs import ProbeConfig

        probed = simulate(
            _mixed_flows(),
            capacity_mbps=30.0,
            base_rtt_ms=20.0,
            buffer_bdp=1.0,
            duration_s=6.0,
            warmup_s=2.0,
            probe=ProbeConfig(interval_s=0.5),
        )
        observed = [
            (f.flow_id, f.throughput_mbps, f.retransmit_fraction, f.packets_sent, f.packets_lost)
            for f in probed.flows
        ]
        assert observed == GOLDEN_MIXED  # exact equality, no approx
        assert probed.total_drops == GOLDEN_MIXED_DROPS
        assert probed.max_queue_occupancy_bytes == GOLDEN_MIXED_MAX_OCCUPANCY
        assert probed.probe is not None
        assert len(probed.probe.sample_times) == 12  # 6 s at 0.5 s cadence


class TestGoldenSweepCells:
    def test_quick_aqm_bias_cells_stable(self):
        # The figure.cells values printed by `repro sweep topo_aqm --quick`;
        # pins the full chain sweep -> executor -> experiment -> cells.
        from repro.runner.spec import ScenarioSpec

        cells = ScenarioSpec(
            task="figure.cells", params={"figure": "topo_aqm", "quick": True}
        ).run()
        assert set(cells) == {
            "bias_throughput@0.5:droptail",
            "tte_throughput_mbps:droptail",
            "ab_throughput_mbps@0.5:droptail",
            "bias_throughput@0.5:codel",
            "tte_throughput_mbps:codel",
            "ab_throughput_mbps@0.5:codel",
        }
        assert cells["bias_throughput@0.5:droptail"] == pytest.approx(3.534, abs=0.01)
        assert cells["bias_throughput@0.5:codel"] == pytest.approx(3.258, abs=0.01)
