"""Figure 2a — lab experiment with multiple parallel connections.

Ten applications share a 10 Gb/s bottleneck.  Control applications open a
single TCP Reno connection; treated applications open two.  Sweeping the
number of treated applications from 0 to 10 reproduces the eleven lab
tests of the paper's Section 3.1:

* At every interior allocation the treated group sees roughly 100 % higher
  throughput and the same retransmission rate as control (the naive A/B
  conclusion: "always use two connections").
* The total treatment effect is zero for throughput (the link's capacity
  does not change) and strongly positive for retransmitted bytes.
* Spillover on the remaining single-connection applications is a large
  throughput decrease.
"""

from __future__ import annotations

from repro.experiments.lab_common import figure_cells_spec, LabFigure, sweep_to_figure
from repro.runner.spec import ScenarioSpec
from repro.netsim.fluid.application import Application
from repro.netsim.fluid.competition import CompetitionModel
from repro.netsim.fluid.lab import run_lab_sweep
from repro.netsim.fluid.link import BottleneckLink

__all__ = ["run_connections_experiment", "connections_spec"]


def run_connections_experiment(
    n_units: int = 10,
    treatment_connections: int = 2,
    control_connections: int = 1,
    link: BottleneckLink | None = None,
    model: CompetitionModel | None = None,
    noise: float = 0.0,
    seed: int | None = 0,
    jobs: int = 1,
    cache=None,
) -> LabFigure:
    """Run the parallel-connections lab sweep and return the figure data.

    Parameters
    ----------
    n_units:
        Number of applications sharing the bottleneck (paper: 10).
    treatment_connections, control_connections:
        Connections opened by treated / control applications (paper: 2 / 1).
    link, model:
        Bottleneck and fluid-model parameters.
    noise, seed:
        Measurement noise level and seed.
    jobs, cache:
        Worker processes and optional result cache for the sweep arms.
    """
    if treatment_connections < 1 or control_connections < 1:
        raise ValueError("connection counts must be at least 1")
    sweep = run_lab_sweep(
        n_units,
        treatment_factory=lambda i: Application(
            i, cc="reno", connections=treatment_connections
        ),
        control_factory=lambda i: Application(
            i, cc="reno", connections=control_connections
        ),
        link=link,
        model=model,
        noise=noise,
        seed=seed,
        jobs=jobs,
        cache=cache,
    )
    return sweep_to_figure(
        sweep,
        name="fig2a_connections",
        description=(
            f"{n_units} applications using {treatment_connections} (treatment) or "
            f"{control_connections} (control) TCP Reno connections on a shared bottleneck"
        ),
    )


def connections_spec(
    noise: float = 0.0, seed: int | None = 0, label: str | None = None
) -> ScenarioSpec:
    """Runner spec for one Figure 2a (parallel connections) replication.

    The campaign compiler's entry point: returns the content-keyed
    ``figure.cells`` spec whose execution reproduces
    :func:`run_connections_experiment`'s scalar cells at one seed.
    """
    return figure_cells_spec("fig2a", noise=noise, seed=seed, label=label)
